// Ablation: LRU buffer pool size vs network disk pages (cache misses).
// The paper fixes a 1 MB buffer (256 frames of 4 KB); this sweep shows how
// each algorithm's access *locality* responds to smaller and larger pools
// — CE's undirected wavefronts re-touch pages across query points, while
// LBC's directional probes have a tighter working set.
#include "bench_common.h"

namespace msq::bench {
namespace {

void Run(const BenchEnv& env) {
  PrintHeader("Ablation",
              "buffer frames vs network pages (NA, |Q|=4, w=50%)", env);

  TablePrinter table({"frames", "KB", "CE", "EDC", "LBC"});
  for (const std::size_t frames : {8ul, 32ul, 128ul, 256ul, 1024ul}) {
    WorkloadConfig config;
    config.network = PaperNetworkConfig(NetworkClass::kNA, env.scale, 12);
    config.object_density = 0.5;
    config.graph_buffer_frames = frames;
    Workload workload(config);

    std::vector<std::string> row = {
        std::to_string(frames),
        std::to_string(frames * kPageSize / 1024)};
    for (const FigureAlgo algo :
         {FigureAlgo::kCe, FigureAlgo::kEdc, FigureAlgo::kLbc}) {
      const auto acc = RunAveraged(workload, algo, 4, env.runs);
      row.push_back(TablePrinter::Integer(acc.mean_network_pages()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace msq::bench

int main() {
  msq::bench::Run(msq::bench::GetBenchEnv());
  return 0;
}
