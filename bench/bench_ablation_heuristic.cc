// Ablation: Euclidean vs ALT-landmark lower bounds for LBC's A*/plb
// machinery across the density classes. The paper restricts its algorithm
// class to "no pre-computed distance information" (Theorem 1); this bench
// quantifies what that restriction costs on high-detour networks (CA),
// where the Euclidean bound is loose — exactly where Figure 4(c)/5 show
// EDC/LBC losing ground.
#include "bench_common.h"

namespace msq::bench {
namespace {

void Run(const BenchEnv& env) {
  PrintHeader("Ablation",
              "LBC with Euclidean vs ALT landmark bounds (|Q|=4, w=50%, "
              "8 landmarks)",
              env);

  TablePrinter table({"network", "delta", "settled(euclid)", "settled(alt)",
                      "pages(euclid)", "pages(alt)"});
  for (const NetworkClass cls :
       {NetworkClass::kCA, NetworkClass::kAU, NetworkClass::kNA}) {
    WorkloadConfig euclid_config;
    euclid_config.network = PaperNetworkConfig(cls, env.scale, 12);
    euclid_config.object_density = 0.5;
    Workload euclid_workload(euclid_config);

    WorkloadConfig alt_config = euclid_config;
    alt_config.landmark_count = 8;
    Workload alt_workload(alt_config);

    StatsAccumulator euclid_acc, alt_acc;
    for (std::size_t r = 0; r < env.runs; ++r) {
      const auto spec_e = euclid_workload.SampleQuery(4, 1 + r);
      euclid_workload.ResetBuffers();
      euclid_acc.Add(RunLbc(euclid_workload.dataset(), spec_e).stats);
      const auto spec_a = alt_workload.SampleQuery(4, 1 + r);
      alt_workload.ResetBuffers();
      alt_acc.Add(RunLbc(alt_workload.dataset(), spec_a).stats);
    }
    table.AddRow({NetworkClassName(cls),
                  TablePrinter::Fixed(
                      MeasureDetourRatio(euclid_workload.network(), 100, 5),
                      2),
                  TablePrinter::Integer(euclid_acc.mean_settled()),
                  TablePrinter::Integer(alt_acc.mean_settled()),
                  TablePrinter::Integer(euclid_acc.mean_network_pages()),
                  TablePrinter::Integer(alt_acc.mean_network_pages())});
  }
  table.Print();
  std::printf("\n(preprocessing cost — 8 full Dijkstra sweeps — is offline "
              "and not included)\n\n");
}

}  // namespace
}  // namespace msq::bench

int main() {
  msq::bench::Run(msq::bench::GetBenchEnv());
  return 0;
}
