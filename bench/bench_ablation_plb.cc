// Ablation: the contribution of the path-distance-lower-bound early
// termination to LBC (Section 5's analysis / the Figure 5 discussion —
// "LBC uses the path distance lower bound such that the network access is
// minimized to a just-enough region"). Compares LBC, LBC without plb
// (dominated candidates pay full network distances, as EDC's candidates
// do), and the naive full-sweep baseline across the density classes.
#include "bench_common.h"

namespace msq::bench {
namespace {

void Run(const BenchEnv& env) {
  PrintHeader("Ablation",
              "plb early termination: settled network nodes / disk pages "
              "(|Q|=4, w=50%)",
              env);

  TablePrinter table({"network", "metric", "LBC", "LBC-noplb", "naive"});
  for (const NetworkClass cls :
       {NetworkClass::kCA, NetworkClass::kAU, NetworkClass::kNA}) {
    WorkloadConfig config;
    config.network = PaperNetworkConfig(cls, env.scale, /*seed=*/12);
    config.object_density = 0.5;
    Workload workload(config);

    StatsAccumulator with_plb, without_plb, naive;
    for (std::size_t r = 0; r < env.runs; ++r) {
      const auto spec = workload.SampleQuery(4, 1 + r);
      workload.ResetBuffers();
      with_plb.Add(RunLbc(workload.dataset(), spec).stats);
      workload.ResetBuffers();
      without_plb.Add(
          RunLbc(workload.dataset(), spec, LbcOptions{.use_plb = false})
              .stats);
      workload.ResetBuffers();
      naive.Add(RunNaive(workload.dataset(), spec).stats);
    }
    table.AddRow({NetworkClassName(cls), "settled nodes",
                  TablePrinter::Integer(with_plb.mean_settled()),
                  TablePrinter::Integer(without_plb.mean_settled()),
                  TablePrinter::Integer(naive.mean_settled())});
    table.AddRow({NetworkClassName(cls), "network pages",
                  TablePrinter::Integer(with_plb.mean_network_pages()),
                  TablePrinter::Integer(without_plb.mean_network_pages()),
                  TablePrinter::Integer(naive.mean_network_pages())});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace msq::bench

int main() {
  msq::bench::Run(msq::bench::GetBenchEnv());
  return 0;
}
