// Churn harness for the dynamic world (DESIGN.md §16).
//
// Runs an in-process MsqServer over a fault-injected workload with the
// mutation path wired (update_edge / insert_object / delete_object through
// QueryExecutor::SubmitExclusive) and drives mixed traffic — CE/EDC/LBC
// queries with mutations interleaved — through real loopback NDJSON
// connections at 1x / 2x / 4x client concurrency, storage faults armed
// throughout. After a graceful drain, the gates:
//
//   - admission conservation is EXACT (received == rejected + shed +
//     completed + truncated + failed; admitted == completed + truncated +
//     failed) with mutations in the mix;
//   - mutations actually ran: applied > 0 on the server counters, and the
//     data_epoch reported by mutation responses is strictly monotone per
//     connection (an epoch that ever moved backwards means two mutations
//     raced the barrier);
//   - the oracle: with faults disarmed, a warm post-churn run of every
//     pooled query under each cached algorithm is byte-identical to a
//     cold, cacheless run on the same (mutated) world — epoch-correct
//     invalidation end to end;
//   - bounded storage growth: live pages (allocated minus freed) across
//     both page stores grow at most linearly with the net objects the
//     churn added, never with the mutation count — COW aborts and B+-tree
//     frees returned their pages.
//
// Any violation exits nonzero; any crash is its own verdict.
//
// Environment:
//   MSQ_CHURN_SCALE       dataset scale            (default 0.05)
//   MSQ_CHURN_PHASE_S     seconds per load phase   (default 2)
//   MSQ_CHURN_CLIENTS     base client threads      (default 2)
//   MSQ_CHURN_WORKERS     executor workers         (default 2)
//   MSQ_CHURN_MUTATE_EVERY a mutation every Nth request per client
//                         (default 6)
//   MSQ_CHURN_OUT         JSON report path (default BENCH_churn.json;
//                         empty string disables)
#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/query_cache.h"
#include "common/rng.h"
#include "core/skyline_query.h"
#include "exec/query_executor.h"
#include "gen/workloads.h"
#include "obs/build_info.h"
#include "serve/json.h"
#include "serve/server.h"
#include "serve/socket.h"

namespace msq::bench {
namespace {

struct ChurnEnv {
  double scale = 0.05;
  double phase_seconds = 2.0;
  std::size_t clients = 2;
  std::size_t workers = 2;
  std::size_t mutate_every = 6;
  std::string out = "BENCH_churn.json";
};

ChurnEnv GetChurnEnv() {
  ChurnEnv env;
  if (const char* s = std::getenv("MSQ_CHURN_SCALE")) {
    if (std::atof(s) > 0.0) env.scale = std::atof(s);
  }
  if (const char* s = std::getenv("MSQ_CHURN_PHASE_S")) {
    if (std::atof(s) > 0.0) env.phase_seconds = std::atof(s);
  }
  if (const char* s = std::getenv("MSQ_CHURN_CLIENTS")) {
    if (std::atol(s) > 0) env.clients = static_cast<std::size_t>(std::atol(s));
  }
  if (const char* s = std::getenv("MSQ_CHURN_WORKERS")) {
    if (std::atol(s) > 0) env.workers = static_cast<std::size_t>(std::atol(s));
  }
  if (const char* s = std::getenv("MSQ_CHURN_MUTATE_EVERY")) {
    if (std::atol(s) > 1) {
      env.mutate_every = static_cast<std::size_t>(std::atol(s));
    }
  }
  if (const char* s = std::getenv("MSQ_CHURN_OUT")) env.out = s;
  return env;
}

std::string EncodeQuery(const SkylineQuerySpec& spec, const char* algo) {
  std::string out = "{\"algo\":\"";
  out += algo;
  out += "\",\"sources\":[";
  for (std::size_t i = 0; i < spec.sources.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s{\"edge\":%u,\"offset\":%.17g}",
                  i > 0 ? "," : "", spec.sources[i].edge,
                  spec.sources[i].offset);
    out += buf;
  }
  out += "],\"limits\":{\"deadline_ms\":2000}}";
  return out;
}

// Per-client churn ledger; merged into the phase report after join.
struct ClientLedger {
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> query_ok{0};
  std::atomic<std::uint64_t> truncated{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> lost{0};
  std::atomic<std::uint64_t> mutations_ok{0};
  std::atomic<std::uint64_t> mutations_failed{0};
  std::atomic<std::uint64_t> inserted{0};
  std::atomic<std::uint64_t> deleted{0};
  std::atomic<std::uint64_t> epoch_regressions{0};
  std::atomic<std::uint64_t> max_epoch{0};
};

// One closed-loop client: queries with a mutation every `mutate_every`th
// request. Mutations rotate update_edge -> insert_object -> delete (of an
// id this client inserted, when one is available). The per-connection
// data_epoch must never move backwards: responses come back in request
// order on one connection, and every mutation bumps the epoch.
void ChurnClient(std::uint16_t port, const std::vector<std::string>& pool,
                 std::size_t edge_count, double mean_edge_length,
                 std::size_t mutate_every, double until,
                 std::size_t client_index, ClientLedger* ledger) {
  Rng rng(0xc0ffee + client_index * 977);
  std::vector<std::uint64_t> my_objects;
  std::uint64_t last_epoch = 0;
  int fd = -1;
  std::size_t next = client_index;
  std::size_t mutation_kind = client_index;
  while (MonotonicSeconds() < until) {
    if (fd < 0) {
      StatusOr<int> conn = serve::ConnectTcp("127.0.0.1", port);
      if (!conn.ok()) {
        usleep(1000);
        continue;
      }
      fd = conn.value();
      (void)serve::SetSocketTimeouts(fd, /*recv_seconds=*/10.0,
                                     /*send_seconds=*/5.0);
    }
    std::string request;
    const bool mutation = next % mutate_every == mutate_every - 1;
    if (mutation) {
      char buf[128];
      switch (mutation_kind++ % 3) {
        case 0: {
          const std::uint32_t edge =
              static_cast<std::uint32_t>(rng.NextBounded(edge_count));
          const double length =
              mean_edge_length * (0.25 + rng.NextDouble() * 2.0);
          std::snprintf(buf, sizeof(buf),
                        "{\"op\":\"update_edge\",\"edge\":%u,"
                        "\"length\":%.17g}",
                        edge, length);
          break;
        }
        case 1: {
          const std::uint32_t edge =
              static_cast<std::uint32_t>(rng.NextBounded(edge_count));
          std::snprintf(buf, sizeof(buf),
                        "{\"op\":\"insert_object\",\"edge\":%u,"
                        "\"offset\":0}",
                        edge);
          break;
        }
        default: {
          if (my_objects.empty()) {
            std::snprintf(buf, sizeof(buf),
                          "{\"op\":\"insert_object\",\"edge\":%u,"
                          "\"offset\":0}",
                          static_cast<std::uint32_t>(
                              rng.NextBounded(edge_count)));
          } else {
            const std::uint64_t id = my_objects.back();
            my_objects.pop_back();
            std::snprintf(buf, sizeof(buf),
                          "{\"op\":\"delete_object\",\"object\":%" PRIu64
                          "}",
                          id);
          }
          break;
        }
      }
      request = buf;
    } else {
      request = pool[next % pool.size()];
    }
    next += 1;
    if (!serve::WriteAll(fd, request + "\n").ok()) {
      ::close(fd);
      fd = -1;
      continue;
    }
    ledger->sent.fetch_add(1, std::memory_order_relaxed);
    serve::FrameReader reader(fd, 1u << 20);
    StatusOr<std::string> reply = reader.ReadLine();
    if (!reply.ok()) {
      ::close(fd);
      fd = -1;
      ledger->lost.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const StatusOr<serve::JsonValue> json = serve::ParseJson(reply.value());
    if (!json.ok() || !json.value().is_object()) {
      ledger->errors.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (const serve::JsonValue* error = json.value().Find("error")) {
      const serve::JsonValue* code =
          error->is_object() ? error->Find("code") : nullptr;
      const std::string name =
          code != nullptr && code->is_string() ? code->AsString() : "";
      if (name == "RESOURCE_EXHAUSTED" || name == "UNAVAILABLE") {
        ledger->shed.fetch_add(1, std::memory_order_relaxed);
      } else if (mutation) {
        ledger->mutations_failed.fetch_add(1, std::memory_order_relaxed);
      } else {
        ledger->errors.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    if (const serve::JsonValue* op = json.value().Find("op")) {
      ledger->mutations_ok.fetch_add(1, std::memory_order_relaxed);
      const serve::JsonValue* epoch = json.value().Find("data_epoch");
      if (epoch != nullptr && epoch->is_number()) {
        const std::uint64_t e =
            static_cast<std::uint64_t>(epoch->AsNumber());
        if (e <= last_epoch) {
          ledger->epoch_regressions.fetch_add(1, std::memory_order_relaxed);
        }
        last_epoch = e;
        std::uint64_t seen = ledger->max_epoch.load();
        while (e > seen && !ledger->max_epoch.compare_exchange_weak(seen, e)) {
        }
      }
      if (op->is_string() && op->AsString() == "insert_object") {
        const serve::JsonValue* id = json.value().Find("object");
        if (id != nullptr && id->is_number()) {
          my_objects.push_back(static_cast<std::uint64_t>(id->AsNumber()));
          ledger->inserted.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (op->is_string() && op->AsString() == "delete_object") {
        const serve::JsonValue* removed = json.value().Find("removed");
        if (removed != nullptr && removed->is_bool() && removed->AsBool()) {
          ledger->deleted.fetch_add(1, std::memory_order_relaxed);
        }
      }
      continue;
    }
    const serve::JsonValue* truncated = json.value().Find("truncated");
    if (truncated != nullptr && truncated->is_bool() &&
        truncated->AsBool()) {
      ledger->truncated.fetch_add(1, std::memory_order_relaxed);
    } else {
      ledger->query_ok.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (fd >= 0) ::close(fd);
}

struct PhaseReport {
  std::string name;
  std::size_t clients = 0;
  double achieved_qps = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t query_ok = 0;
  std::uint64_t truncated = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::uint64_t lost = 0;
  std::uint64_t mutations_ok = 0;
  std::uint64_t mutations_failed = 0;
  std::uint64_t inserted = 0;
  std::uint64_t deleted = 0;
  std::uint64_t epoch_regressions = 0;
  std::uint64_t max_epoch = 0;
};

PhaseReport RunPhase(const char* name, std::uint16_t port,
                     const std::vector<std::string>& pool,
                     std::size_t edge_count, double mean_edge_length,
                     std::size_t mutate_every, double seconds,
                     std::size_t clients) {
  ClientLedger ledger;
  const double until = MonotonicSeconds() + seconds;
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < clients; ++i) {
    threads.emplace_back(ChurnClient, port, std::cref(pool), edge_count,
                         mean_edge_length, mutate_every, until, i, &ledger);
  }
  for (std::thread& t : threads) t.join();
  PhaseReport report;
  report.name = name;
  report.clients = clients;
  report.sent = ledger.sent.load();
  report.query_ok = ledger.query_ok.load();
  report.truncated = ledger.truncated.load();
  report.shed = ledger.shed.load();
  report.errors = ledger.errors.load();
  report.lost = ledger.lost.load();
  report.mutations_ok = ledger.mutations_ok.load();
  report.mutations_failed = ledger.mutations_failed.load();
  report.inserted = ledger.inserted.load();
  report.deleted = ledger.deleted.load();
  report.epoch_regressions = ledger.epoch_regressions.load();
  report.max_epoch = ledger.max_epoch.load();
  report.achieved_qps = static_cast<double>(report.sent) / seconds;
  return report;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace
}  // namespace msq::bench

int main() {
  using namespace msq;
  using namespace msq::bench;
  const ChurnEnv env = GetChurnEnv();

  WorkloadConfig config;
  config.network = PaperNetworkConfig(NetworkClass::kCA, env.scale,
                                      /*seed=*/21);
  config.object_density = 0.5;
  FaultInjectionConfig inject;
  inject.seed = 31;
  inject.transient_read_rate = 0.01;  // retries absorb these
  config.fault_injection = inject;
  Workload workload(config);
  workload.graph_faults()->Arm();
  workload.index_faults()->Arm();

  QueryCache cache;
  Dataset dataset = workload.dataset();
  dataset.cache = &cache;
  QueryExecutor executor(dataset, env.workers);

  serve::ServerConfig server_config;
  server_config.admission.max_pending = 2 * env.clients + 2;
  server_config.admission.max_pending_cost = 64.0;
  QueryExecutor* exec = &executor;
  Workload* wl = &workload;
  server_config.mutation_handler =
      [exec, wl](const serve::ServeRequest& req) {
        serve::MutationResult out;
        out.status =
            exec->SubmitExclusive([wl, &req, &out] {
                  switch (req.op) {
                    case serve::ServeOp::kUpdateEdge: {
                      if (req.edge >= wl->network().edge_count()) {
                        return Status::InvalidArgument("edge out of range");
                      }
                      StatusOr<Dist> applied =
                          wl->UpdateEdgeWeight(req.edge, req.length);
                      if (!applied.ok()) return applied.status();
                      out.applied_length = applied.value();
                      return Status();
                    }
                    case serve::ServeOp::kInsertObject: {
                      if (req.edge >= wl->network().edge_count()) {
                        return Status::InvalidArgument("edge out of range");
                      }
                      if (req.offset >
                          wl->network().EdgeAt(req.edge).length) {
                        return Status::InvalidArgument(
                            "offset beyond edge length");
                      }
                      StatusOr<ObjectId> id = wl->InsertObject(
                          Location{req.edge, req.offset});
                      if (!id.ok()) return id.status();
                      out.object = id.value();
                      return Status();
                    }
                    case serve::ServeOp::kDeleteObject: {
                      StatusOr<bool> removed = wl->DeleteObject(req.object);
                      if (!removed.ok()) return removed.status();
                      out.removed = removed.value();
                      return Status();
                    }
                    case serve::ServeOp::kQuery:
                      break;
                  }
                  return Status::InvalidArgument("not a mutation");
                })
                .get();
        out.data_epoch = wl->dataset().graph_pager->data_epoch();
        return out;
      };
  serve::MsqServer server(&executor, server_config);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "bench_churn: %s\n", started.ToString().c_str());
    return 1;
  }

  const obs::BuildInfo& build = obs::GetBuildInfo();
  std::printf("bench_churn: CA scale %.2f, %zu workers, %zu base clients, "
              "mutation every %zu requests, %u hw threads (build %s)\n",
              env.scale, env.workers, env.clients, env.mutate_every,
              std::thread::hardware_concurrency(),
              std::string(build.git_sha).c_str());

  // Query pool + mutation parameters.
  std::vector<std::string> pool;
  constexpr const char* kAlgos[] = {"lbc", "ce", "edc"};
  for (std::size_t i = 0; i < 18; ++i) {
    pool.push_back(EncodeQuery(workload.SampleQuery(2 + i % 3, 600 + i),
                               kAlgos[i % 3]));
  }
  const std::size_t edge_count = workload.network().edge_count();
  double mean_edge_length = 0.0;
  for (std::size_t e = 0; e < edge_count; ++e) {
    mean_edge_length +=
        workload.network().EdgeAt(static_cast<EdgeId>(e)).length;
  }
  mean_edge_length /= static_cast<double>(edge_count);

  // Live-page baseline after build, before churn.
  DiskManager* graph_disk = workload.dataset().graph_buffer->disk();
  DiskManager* index_disk = workload.dataset().index_buffer->disk();
  const std::size_t live_start = (graph_disk->PageCount() -
                                  graph_disk->FreeCount()) +
                                 (index_disk->PageCount() -
                                  index_disk->FreeCount());

  constexpr double kMultipliers[] = {1.0, 2.0, 4.0};
  std::vector<PhaseReport> phases;
  for (const double multiplier : kMultipliers) {
    char name[16];
    std::snprintf(name, sizeof(name), "%.0fx", multiplier);
    const std::size_t clients = static_cast<std::size_t>(
        static_cast<double>(env.clients) * multiplier);
    phases.push_back(RunPhase(name, server.port(), pool, edge_count,
                              mean_edge_length, env.mutate_every,
                              env.phase_seconds, clients));
  }

  server.Shutdown();
  workload.graph_faults()->Disarm();
  workload.index_faults()->Disarm();

  std::printf("%-6s %8s %10s %8s %8s %6s %6s %6s %8s %8s %8s\n", "phase",
              "clients", "achieved", "ok", "trunc", "shed", "errs", "lost",
              "mut_ok", "mut_err", "epoch");
  for (const PhaseReport& p : phases) {
    std::printf("%-6s %8zu %10.0f %8" PRIu64 " %8" PRIu64 " %6" PRIu64
                " %6" PRIu64 " %6" PRIu64 " %8" PRIu64 " %8" PRIu64
                " %8" PRIu64 "\n",
                p.name.c_str(), p.clients, p.achieved_qps, p.query_ok,
                p.truncated, p.shed, p.errors, p.lost, p.mutations_ok,
                p.mutations_failed, p.max_epoch);
  }

  // --- The gates ---
  std::size_t violations = 0;
  auto gate = [&](bool ok, const char* what, const std::string& detail) {
    std::printf("gate %-42s %s%s%s\n", what, ok ? "PASS" : "FAIL",
                detail.empty() ? "" : " — ", detail.c_str());
    if (!ok) ++violations;
  };

  const serve::AdmissionController& admission = server.admission();
  const std::string conservation = admission.CheckConservation();
  gate(conservation.empty(), "admission conservation exact", conservation);

  std::uint64_t mutations_ok = 0;
  std::uint64_t query_ok = 0;
  std::uint64_t epoch_regressions = 0;
  std::uint64_t inserted = 0;
  std::uint64_t deleted = 0;
  for (const PhaseReport& p : phases) {
    mutations_ok += p.mutations_ok;
    query_ok += p.query_ok + p.truncated;
    epoch_regressions += p.epoch_regressions;
    inserted += p.inserted;
    deleted += p.deleted;
  }
  {
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "%" PRIu64 " mutations, %" PRIu64 " queries answered OK",
                  mutations_ok, query_ok);
    gate(mutations_ok > 0 && query_ok > 0,
         "churn actually interleaved with queries", detail);
  }
  {
    char detail[64];
    std::snprintf(detail, sizeof(detail), "%" PRIu64 " regressions",
                  epoch_regressions);
    gate(epoch_regressions == 0, "data_epoch monotone per connection",
         detail);
  }

  // The oracle: warm answers on the churned world equal a cold cacheless
  // rebuild of each answer. Any stale cache entry surviving the epoch
  // bumps shows up here as a vector or membership mismatch.
  std::size_t oracle_mismatches = 0;
  std::size_t oracle_failures = 0;
  constexpr Algorithm kOracleAlgos[] = {Algorithm::kCe, Algorithm::kEdc,
                                        Algorithm::kLbc};
  for (std::size_t i = 0; i < 6; ++i) {
    const SkylineQuerySpec spec = workload.SampleQuery(2 + i % 3, 900 + i);
    for (const Algorithm algorithm : kOracleAlgos) {
      Dataset warm_dataset = workload.dataset();
      warm_dataset.cache = &cache;
      const SkylineResult warm =
          RunSkylineQuery(algorithm, warm_dataset, spec);
      workload.ResetBuffers();
      const SkylineResult cold =
          RunSkylineQuery(algorithm, workload.dataset(), spec);
      if (!warm.status.ok() || !cold.status.ok()) {
        ++oracle_failures;
        continue;
      }
      bool same = warm.skyline.size() == cold.skyline.size();
      for (std::size_t j = 0; same && j < warm.skyline.size(); ++j) {
        same = warm.skyline[j].object == cold.skyline[j].object &&
               warm.skyline[j].vector == cold.skyline[j].vector;
      }
      if (!same) ++oracle_mismatches;
    }
  }
  {
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "%zu mismatches, %zu failures over 18 runs",
                  oracle_mismatches, oracle_failures);
    gate(oracle_mismatches == 0 && oracle_failures == 0,
         "warm post-churn == cold oracle", detail);
  }

  // Bounded growth: net object inserts may grow both stores (R-tree,
  // B+-tree, attribute rows), but aborted ops and deletes must return
  // their pages. Allow a handful of pages per net insert plus a flat
  // slack for amortized tree growth.
  const std::size_t live_end = (graph_disk->PageCount() -
                                graph_disk->FreeCount()) +
                               (index_disk->PageCount() -
                                index_disk->FreeCount());
  const std::uint64_t net_inserted = inserted > deleted
                                         ? inserted - deleted
                                         : 0;
  const std::size_t live_limit =
      live_start + 64 + 6 * static_cast<std::size_t>(net_inserted);
  {
    char detail[128];
    std::snprintf(detail, sizeof(detail),
                  "live pages %zu -> %zu (net +%" PRIu64
                  " objects, limit %zu)",
                  live_start, live_end, net_inserted, live_limit);
    gate(live_end <= live_limit, "storage growth bounded by net inserts",
         detail);
  }

  std::printf("\nserver totals: received %" PRIu64 " rejected %" PRIu64
              " shed %" PRIu64 " completed %" PRIu64 " truncated %" PRIu64
              " failed %" PRIu64 ", final data_epoch %" PRIu64 "\n",
              admission.received(), admission.rejected(), admission.shed(),
              admission.completed(), admission.truncated(),
              admission.failed(),
              workload.dataset().graph_pager->data_epoch());

  if (!env.out.empty()) {
    std::string json = "{\n  \"bench\": \"churn\",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"git_sha\": \"%s\",\n  \"scale\": %.3f,\n"
                  "  \"workers\": %zu,\n  \"mutate_every\": %zu,\n"
                  "  \"hardware_concurrency\": %u,\n  \"phases\": [\n",
                  std::string(build.git_sha).c_str(), env.scale,
                  env.workers, env.mutate_every,
                  std::thread::hardware_concurrency());
    json += buf;
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const PhaseReport& p = phases[i];
      char line[384];
      std::snprintf(
          line, sizeof(line),
          "    {\"phase\": \"%s\", \"clients\": %zu, \"achieved_qps\": "
          "%.1f, \"query_ok\": %" PRIu64 ", \"truncated\": %" PRIu64
          ", \"shed\": %" PRIu64 ", \"errors\": %" PRIu64
          ", \"mutations_ok\": %" PRIu64 ", \"mutations_failed\": %" PRIu64
          ", \"max_epoch\": %" PRIu64 "}%s\n",
          p.name.c_str(), p.clients, p.achieved_qps, p.query_ok,
          p.truncated, p.shed, p.errors, p.mutations_ok,
          p.mutations_failed, p.max_epoch,
          i + 1 < phases.size() ? "," : "");
      json += line;
    }
    json += "  ],\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"received\": %" PRIu64 ", \"completed\": %" PRIu64
                  ", \"failed\": %" PRIu64 ",\n  \"live_pages_start\": %zu,"
                  " \"live_pages_end\": %zu,\n  \"final_data_epoch\": %"
                  PRIu64 ",\n  \"gates_failed\": %zu\n}\n",
                  admission.received(), admission.completed(),
                  admission.failed(), live_start, live_end,
                  workload.dataset().graph_pager->data_epoch(), violations);
    json += buf;
    if (!WriteFile(env.out, json)) {
      std::fprintf(stderr, "cannot write %s\n", env.out.c_str());
      return 1;
    }
  }

  if (violations > 0) {
    std::fprintf(stderr, "\nbench_churn: %zu gate(s) FAILED\n", violations);
    return 1;
  }
  std::printf("\nbench_churn: all gates passed\n");
  return 0;
}
