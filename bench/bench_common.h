// Shared harness for the figure-reproduction benchmark binaries.
//
// Every binary prints the same series the corresponding paper figure
// plots, averaged over several randomized query sets with cold buffers
// (Section 6.1: results are "the average of ten tests"). Two environment
// variables trade fidelity for wall time:
//   MSQ_BENCH_SCALE  scales the CA/AU/NA node/edge counts (default 0.2;
//                    1.0 = the paper's exact dataset sizes)
//   MSQ_BENCH_RUNS   query sets averaged per point (default 3; paper: 10)
//   MSQ_BENCH_METRICS_OUT  when set to a path, every individual run's
//                    QueryStats is appended there as one JSON line (the
//                    printed tables stay aggregates)
#ifndef MSQ_BENCH_BENCH_COMMON_H_
#define MSQ_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_support/metrics.h"
#include "bench_support/table.h"
#include "obs/build_info.h"
#include "core/ce.h"
#include "core/edc.h"
#include "core/lbc.h"
#include "core/naive.h"
#include "gen/workloads.h"

namespace msq::bench {

struct BenchEnv {
  double scale = 0.2;
  std::size_t runs = 3;
};

inline BenchEnv GetBenchEnv() {
  BenchEnv env;
  if (const char* s = std::getenv("MSQ_BENCH_SCALE")) {
    env.scale = std::atof(s);
    if (env.scale <= 0.0) env.scale = 0.2;
  }
  if (const char* s = std::getenv("MSQ_BENCH_RUNS")) {
    const long runs = std::atol(s);
    if (runs > 0) env.runs = static_cast<std::size_t>(runs);
  }
  return env;
}

// The algorithms the paper's figures compare. EDC runs with the completion
// pass (the library default): the published algorithm's candidate window
// is incomplete (DESIGN.md §4b), and benchmarking the exact variant keeps
// all three series answering the same query. MSQ_BENCH_EDC_FAITHFUL=1
// switches to the published variant; its candidate sets come out smaller
// than LBC's precisely because of the gap.
enum class FigureAlgo { kCe, kEdc, kLbc };

inline const char* FigureAlgoName(FigureAlgo algo) {
  switch (algo) {
    case FigureAlgo::kCe:
      return "CE";
    case FigureAlgo::kEdc:
      return "EDC";
    case FigureAlgo::kLbc:
      return "LBC";
  }
  return "";
}

inline SkylineResult RunFigureAlgo(FigureAlgo algo, const Dataset& dataset,
                                   const SkylineQuerySpec& spec) {
  switch (algo) {
    case FigureAlgo::kCe:
      return RunCe(dataset, spec);
    case FigureAlgo::kEdc: {
      const bool faithful = std::getenv("MSQ_BENCH_EDC_FAITHFUL") != nullptr;
      return RunEdc(dataset, spec, EdcOptions{.incremental = false,
                                              .paper_faithful = faithful});
    }
    case FigureAlgo::kLbc:
      return RunLbc(dataset, spec);
  }
  return {};
}

// Per-run JSONL sink, opened once from MSQ_BENCH_METRICS_OUT (append mode
// so several bench binaries can share one log). Null when unset. The first
// line each binary appends is its build-info stamp, so every run block in
// a shared log states what produced it.
inline std::FILE* MetricsOut() {
  static std::FILE* file = [] {
    const char* path = std::getenv("MSQ_BENCH_METRICS_OUT");
    std::FILE* f = path == nullptr ? nullptr : std::fopen(path, "a");
    if (f != nullptr) {
      // BuildInfoJson() is "{...}"; splice a type tag into the object.
      std::fprintf(f, "{\"type\":\"build_info\",%s\n",
                   obs::BuildInfoJson().c_str() + 1);
      std::fflush(f);
    }
    return f;
  }();
  return file;
}

// Runs `algo` over `runs` query sets of size `query_count` with cold
// buffers, averaging the stats. `label` tags the per-run JSONL records
// (run index appended); empty skips the export even when the sink is open.
inline StatsAccumulator RunAveraged(Workload& workload, FigureAlgo algo,
                                    std::size_t query_count,
                                    std::size_t runs,
                                    std::uint64_t seed_base = 1,
                                    const std::string& label = "") {
  StatsAccumulator acc;
  for (std::size_t r = 0; r < runs; ++r) {
    const auto spec = workload.SampleQuery(query_count, seed_base + r);
    workload.ResetBuffers();
    const auto result = RunFigureAlgo(algo, workload.dataset(), spec);
    acc.Add(result.stats);
    if (std::FILE* out = MetricsOut(); out != nullptr && !label.empty()) {
      const std::string line = QueryStatsJsonLine(
          label + ".run" + std::to_string(r), result.stats);
      std::fprintf(out, "%s\n", line.c_str());
      std::fflush(out);
    }
  }
  return acc;
}

// "mean+-sd" cell for the time tables, both values scaled (e.g. 1000 for
// ms) and printed with `precision` decimals.
inline std::string MeanSd(const Series& series, double scale,
                          int precision) {
  return TablePrinter::Fixed(series.mean() * scale, precision) + "+-" +
         TablePrinter::Fixed(series.stddev() * scale, precision);
}

inline void PrintHeader(const char* figure, const char* what,
                        const BenchEnv& env) {
  std::printf("=== %s: %s ===\n", figure, what);
  std::printf("(scale=%.2f of paper dataset sizes, %zu query sets per "
              "point; MSQ_BENCH_SCALE / MSQ_BENCH_RUNS override)\n\n",
              env.scale, env.runs);
}

}  // namespace msq::bench

#endif  // MSQ_BENCH_BENCH_COMMON_H_
