// Figure 4: candidate ratio |C|/|D| for CE, EDC, LBC
//   (a) vs |Q|            (NA, ω = 50%)
//   (b) vs object density ω (NA, |Q| = 4)
//   (c) vs network density  (CA/AU/NA, |Q| = 4, ω = 50%)
#include <memory>

#include "bench_common.h"

namespace msq::bench {
namespace {

constexpr FigureAlgo kAlgos[] = {FigureAlgo::kCe, FigureAlgo::kEdc,
                                 FigureAlgo::kLbc};

std::unique_ptr<Workload> BuildWorkload(NetworkClass cls, double scale,
                                        double density) {
  WorkloadConfig config;
  config.network = PaperNetworkConfig(cls, scale, /*seed=*/12);
  config.object_density = density;
  return std::make_unique<Workload>(config);
}

void Fig4a(const BenchEnv& env) {
  PrintHeader("Figure 4(a)", "candidate ratio |C|/|D| vs |Q| (NA, w=50%)",
              env);
  auto workload = BuildWorkload(NetworkClass::kNA, env.scale, 0.5);
  const double d = static_cast<double>(workload->objects().size());
  TablePrinter table({"|Q|", "CE", "EDC", "LBC"});
  for (const std::size_t q : {2, 4, 6, 8, 10, 12, 15}) {
    std::vector<std::string> row = {std::to_string(q)};
    for (const FigureAlgo algo : kAlgos) {
      const auto acc = RunAveraged(*workload, algo, q, env.runs);
      row.push_back(TablePrinter::Fixed(acc.mean_candidates() / d, 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

void Fig4b(const BenchEnv& env) {
  PrintHeader("Figure 4(b)", "candidate ratio |C|/|D| vs w (NA, |Q|=4)",
              env);
  TablePrinter table({"w(%)", "CE", "EDC", "LBC"});
  for (const double density : {0.05, 0.2, 0.5, 1.0, 2.0}) {
    auto workload = BuildWorkload(NetworkClass::kNA, env.scale, density);
    const double d = static_cast<double>(workload->objects().size());
    std::vector<std::string> row = {
        TablePrinter::Integer(density * 100.0)};
    for (const FigureAlgo algo : kAlgos) {
      const auto acc = RunAveraged(*workload, algo, 4, env.runs);
      row.push_back(TablePrinter::Fixed(acc.mean_candidates() / d, 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

void Fig4c(const BenchEnv& env) {
  PrintHeader("Figure 4(c)",
              "candidate ratio |C|/|D| vs network density (|Q|=4, w=50%)",
              env);
  TablePrinter table({"network", "delta", "CE", "EDC", "LBC"});
  for (const NetworkClass cls :
       {NetworkClass::kCA, NetworkClass::kAU, NetworkClass::kNA}) {
    auto workload = BuildWorkload(cls, env.scale, 0.5);
    const double d = static_cast<double>(workload->objects().size());
    std::vector<std::string> row = {
        NetworkClassName(cls),
        TablePrinter::Fixed(
            MeasureDetourRatio(workload->network(), 100, 5), 2)};
    for (const FigureAlgo algo : kAlgos) {
      const auto acc = RunAveraged(*workload, algo, 4, env.runs);
      row.push_back(TablePrinter::Fixed(acc.mean_candidates() / d, 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace msq::bench

int main() {
  const auto env = msq::bench::GetBenchEnv();
  msq::bench::Fig4a(env);
  msq::bench::Fig4b(env);
  msq::bench::Fig4c(env);
  return 0;
}
