// Figure 5: effect of network density (CA/AU/NA; |Q| = 4, ω = 50%)
//   (a) network disk pages accessed
//   (b) total response time
//   (c) initial response time
#include <memory>

#include "bench_common.h"

namespace msq::bench {
namespace {

constexpr FigureAlgo kAlgos[] = {FigureAlgo::kCe, FigureAlgo::kEdc,
                                 FigureAlgo::kLbc};

void Run(const BenchEnv& env) {
  PrintHeader("Figure 5",
              "disk pages / total time / initial time vs network density "
              "(|Q|=4, w=50%)",
              env);

  TablePrinter pages({"network", "CE", "EDC", "LBC"});
  TablePrinter total({"network", "CE", "EDC", "LBC"});
  TablePrinter initial({"network", "CE", "EDC", "LBC"});

  for (const NetworkClass cls :
       {NetworkClass::kCA, NetworkClass::kAU, NetworkClass::kNA}) {
    WorkloadConfig config;
    config.network = PaperNetworkConfig(cls, env.scale, /*seed=*/12);
    config.object_density = 0.5;
    Workload workload(config);

    std::vector<std::string> row_pages = {NetworkClassName(cls)};
    std::vector<std::string> row_total = {NetworkClassName(cls)};
    std::vector<std::string> row_initial = {NetworkClassName(cls)};
    for (const FigureAlgo algo : kAlgos) {
      const std::string label = std::string("fig5.") + FigureAlgoName(algo) +
                                "." + NetworkClassName(cls);
      const auto acc = RunAveraged(workload, algo, 4, env.runs, 1, label);
      row_pages.push_back(TablePrinter::Integer(acc.mean_network_pages()));
      row_total.push_back(MeanSd(acc.total_seconds(), 1000.0, 2));
      row_initial.push_back(MeanSd(acc.initial_seconds(), 1000.0, 3));
    }
    pages.AddRow(std::move(row_pages));
    total.AddRow(std::move(row_total));
    initial.AddRow(std::move(row_initial));
  }

  std::printf("-- (a) network disk pages accessed --\n");
  pages.Print();
  std::printf("\n-- (b) total response time (ms, mean+-sd) --\n");
  total.Print();
  std::printf("\n-- (c) initial response time (ms, mean+-sd) --\n");
  initial.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace msq::bench

int main() {
  msq::bench::Run(msq::bench::GetBenchEnv());
  return 0;
}
