// Figure 6(d)-(f): effect of object density ω on NA (|Q| = 4)
//   (d) network disk pages accessed
//   (e) total response time
//   (f) initial response time
#include <memory>

#include "bench_common.h"

namespace msq::bench {
namespace {

constexpr FigureAlgo kAlgos[] = {FigureAlgo::kCe, FigureAlgo::kEdc,
                                 FigureAlgo::kLbc};

void Run(const BenchEnv& env) {
  PrintHeader("Figure 6(d)-(f)",
              "disk pages / total time / initial time vs w (NA, |Q|=4)",
              env);

  TablePrinter pages({"w(%)", "CE", "EDC", "LBC"});
  TablePrinter total({"w(%)", "CE", "EDC", "LBC"});
  TablePrinter initial({"w(%)", "CE", "EDC", "LBC"});
  for (const double density : {0.05, 0.2, 0.5, 1.0, 2.0}) {
    WorkloadConfig config;
    config.network = PaperNetworkConfig(NetworkClass::kNA, env.scale, 12);
    config.object_density = density;
    Workload workload(config);

    std::vector<std::string> row_pages = {
        TablePrinter::Integer(density * 100.0)};
    std::vector<std::string> row_total = row_pages;
    std::vector<std::string> row_initial = row_pages;
    for (const FigureAlgo algo : kAlgos) {
      const std::string label = std::string("fig6d.") + FigureAlgoName(algo) +
                                ".w" + TablePrinter::Integer(density * 100.0);
      const auto acc = RunAveraged(workload, algo, 4, env.runs, 1, label);
      row_pages.push_back(TablePrinter::Integer(acc.mean_network_pages()));
      row_total.push_back(MeanSd(acc.total_seconds(), 1000.0, 2));
      row_initial.push_back(MeanSd(acc.initial_seconds(), 1000.0, 3));
    }
    pages.AddRow(std::move(row_pages));
    total.AddRow(std::move(row_total));
    initial.AddRow(std::move(row_initial));
  }

  std::printf("-- (d) network disk pages accessed --\n");
  pages.Print();
  std::printf("\n-- (e) total response time (ms, mean+-sd) --\n");
  total.Print();
  std::printf("\n-- (f) initial response time (ms, mean+-sd) --\n");
  initial.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace msq::bench

int main() {
  msq::bench::Run(msq::bench::GetBenchEnv());
  return 0;
}
