// Figure 6(a)-(c): effect of |Q| on NA (ω = 50%)
//   (a) network disk pages accessed
//   (b) total response time
//   (c) initial response time
#include "bench_common.h"

namespace msq::bench {
namespace {

constexpr FigureAlgo kAlgos[] = {FigureAlgo::kCe, FigureAlgo::kEdc,
                                 FigureAlgo::kLbc};

void Run(const BenchEnv& env) {
  PrintHeader("Figure 6(a)-(c)",
              "disk pages / total time / initial time vs |Q| (NA, w=50%)",
              env);

  WorkloadConfig config;
  config.network = PaperNetworkConfig(NetworkClass::kNA, env.scale, 12);
  config.object_density = 0.5;
  Workload workload(config);

  TablePrinter pages({"|Q|", "CE", "EDC", "LBC"});
  TablePrinter total({"|Q|", "CE", "EDC", "LBC"});
  TablePrinter initial({"|Q|", "CE", "EDC", "LBC"});
  for (const std::size_t q : {1, 2, 4, 6, 8, 10, 12, 15}) {
    std::vector<std::string> row_pages = {std::to_string(q)};
    std::vector<std::string> row_total = {std::to_string(q)};
    std::vector<std::string> row_initial = {std::to_string(q)};
    for (const FigureAlgo algo : kAlgos) {
      const std::string label = std::string("fig6a.") + FigureAlgoName(algo) +
                                ".q" + std::to_string(q);
      const auto acc = RunAveraged(workload, algo, q, env.runs, 1, label);
      row_pages.push_back(TablePrinter::Integer(acc.mean_network_pages()));
      row_total.push_back(MeanSd(acc.total_seconds(), 1000.0, 2));
      row_initial.push_back(MeanSd(acc.initial_seconds(), 1000.0, 3));
    }
    pages.AddRow(std::move(row_pages));
    total.AddRow(std::move(row_total));
    initial.AddRow(std::move(row_initial));
  }

  std::printf("-- (a) network disk pages accessed --\n");
  pages.Print();
  std::printf("\n-- (b) total response time (ms, mean+-sd) --\n");
  total.Print();
  std::printf("\n-- (c) initial response time (ms, mean+-sd) --\n");
  initial.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace msq::bench

int main() {
  msq::bench::Run(msq::bench::GetBenchEnv());
  return 0;
}
