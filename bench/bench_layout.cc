// Storage-layout ablation (DESIGN.md §15): cold I/O and latency of the
// seed layout (Morton-ordered row pages) vs Hilbert node relabeling vs
// Hilbert + CSR-compressed adjacency pages, plus intra-query source
// parallelism on the best layout, on the paper's CA network.
//
// Every point runs the same query set through CE with cold buffers per
// query and checks the skyline byte-for-byte against the seed layout's
// sequential results (which are themselves cross-checked against LBC), so
// a layout or parallelism bug can never masquerade as a speedup. The
// "pages" figure of merit is QueryStats::network_pages — buffer MISSES,
// the paper's "disk pages accessed" of Figures 5 and 6.
//
// Environment:
//   MSQ_BENCH_SCALE     scale of the CA dataset (default 1.0 = the
//                       paper's 3,044 nodes / 3,607 edges)
//   MSQ_LAYOUT_QUERIES  queries per point (default 20)
//   MSQ_LAYOUT_OUT      JSON output path (default BENCH_layout.json)
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_support/table.h"
#include "core/skyline_query.h"
#include "exec/task_pool.h"
#include "gen/workloads.h"
#include "obs/build_info.h"
#include "obs/histogram.h"

using namespace msq;

namespace {

constexpr std::size_t kSources = 4;
constexpr double kDensity = 0.5;
constexpr std::uint64_t kQuerySeedBase = 100;

struct LayoutEnv {
  double scale = 1.0;
  std::size_t queries = 20;
  std::string out = "BENCH_layout.json";
};

LayoutEnv GetLayoutEnv() {
  LayoutEnv env;
  if (const char* s = std::getenv("MSQ_BENCH_SCALE")) {
    env.scale = std::atof(s);
    if (env.scale <= 0.0) env.scale = 1.0;
  }
  if (const char* s = std::getenv("MSQ_LAYOUT_QUERIES")) {
    const long n = std::atol(s);
    if (n > 0) env.queries = static_cast<std::size_t>(n);
  }
  if (const char* s = std::getenv("MSQ_LAYOUT_OUT")) env.out = s;
  return env;
}

struct AblationPoint {
  std::string layout;
  bool parallel_sources = false;
  std::size_t source_pool_threads = 0;
  std::size_t graph_pages_total = 0;
  double pages_per_query = 0.0;      // cold buffer misses (the paper metric)
  double accesses_per_query = 0.0;   // every buffer lookup (hits + misses)
  double settled_per_query = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double page_reduction_vs_seed_pct = 0.0;
  // Mean per-query wall ratio sequential/parallel on the same layout; 1.0
  // for the sequential points.
  double source_parallel_speedup = 1.0;
  bool results_match_oracle = true;
};

bool SameSkyline(const SkylineResult& a, const SkylineResult& b) {
  if (!a.status.ok() || !b.status.ok()) return false;
  if (a.skyline.size() != b.skyline.size()) return false;
  for (std::size_t i = 0; i < a.skyline.size(); ++i) {
    if (a.skyline[i].object != b.skyline[i].object) return false;
    if (a.skyline[i].vector != b.skyline[i].vector) return false;
  }
  return true;
}

// Order-insensitive comparison for the cross-ALGORITHM anchor: CE and LBC
// emit the same skyline set in different orders.
bool SameSkylineSet(const SkylineResult& a, const SkylineResult& b) {
  if (!a.status.ok() || !b.status.ok()) return false;
  auto sorted = [](const SkylineResult& r) {
    std::vector<SkylineEntry> entries = r.skyline;
    std::sort(entries.begin(), entries.end(),
              [](const SkylineEntry& x, const SkylineEntry& y) {
                return x.object < y.object;
              });
    return entries;
  };
  const std::vector<SkylineEntry> sa = sorted(a);
  const std::vector<SkylineEntry> sb = sorted(b);
  if (sa.size() != sb.size()) return false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].object != sb[i].object || sa[i].vector != sb[i].vector) {
      return false;
    }
  }
  return true;
}

// Runs the query set cold (buffers reset per query) through CE and fills
// the I/O + latency columns of `point`. `runner` enables source
// parallelism; `oracle` is the seed layout's sequential results.
void MeasurePoint(Workload& workload,
                  const std::vector<SkylineQuerySpec>& specs,
                  const std::vector<SkylineResult>& oracle,
                  TaskRunner* runner, AblationPoint* point) {
  point->graph_pages_total = workload.dataset().graph_pager->page_count();
  std::uint64_t pages = 0;
  std::uint64_t accesses = 0;
  std::uint64_t settled = 0;
  double wall = 0.0;
  obs::Histogram latency_hist;
  for (std::size_t q = 0; q < specs.size(); ++q) {
    SkylineQuerySpec spec = specs[q];
    spec.runner = runner;
    workload.ResetBuffers();
    const SkylineResult result =
        RunSkylineQuery(Algorithm::kCe, workload.dataset(), spec);
    pages += result.stats.network_pages;
    accesses += result.stats.network_page_accesses;
    settled += result.stats.settled_nodes;
    wall += result.stats.total_seconds;
    latency_hist.Observe(static_cast<std::uint64_t>(
        std::llround(result.stats.total_seconds * 1e6)));
    point->results_match_oracle =
        point->results_match_oracle && SameSkyline(result, oracle[q]);
  }
  const double n = static_cast<double>(specs.size());
  point->pages_per_query = static_cast<double>(pages) / n;
  point->accesses_per_query = static_cast<double>(accesses) / n;
  point->settled_per_query = static_cast<double>(settled) / n;
  point->qps = wall > 0.0 ? n / wall : 0.0;
  const obs::Histogram::Snapshot latencies = latency_hist.TakeSnapshot();
  point->p50_ms = latencies.Quantile(0.50) / 1e3;
  point->p99_ms = latencies.Quantile(0.99) / 1e3;
}

void WriteJson(const LayoutEnv& env, const std::vector<AblationPoint>& points) {
  std::FILE* out = std::fopen(env.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", env.out.c_str());
    return;
  }
  const unsigned cores = std::thread::hardware_concurrency();
  std::fprintf(out, "{\n  \"bench\": \"layout_ablation\",\n");
  std::fprintf(out, "  \"build_info\": %s,\n", obs::BuildInfoJson().c_str());
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n", cores);
  std::fprintf(out, "  \"single_core_host\": %s,\n",
               cores <= 1 ? "true" : "false");
  std::fprintf(out, "  \"network\": \"CA\",\n  \"scale\": %g,\n", env.scale);
  std::fprintf(out, "  \"queries\": %zu,\n  \"sources_per_query\": %zu,\n",
               env.queries, kSources);
  std::fprintf(out,
               "  \"note\": \"pages = cold network buffer misses per query "
               "(the paper's disk-pages-accessed metric); every point's "
               "skyline checked byte-for-byte against the seed layout's "
               "sequential CE (itself cross-checked against LBC); "
               "source_parallel_speedup is meaningless on a single-core "
               "host and honestly reported as measured\",\n");
  std::fprintf(out, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const AblationPoint& p = points[i];
    std::fprintf(
        out,
        "    {\"layout\": \"%s\", \"parallel_sources\": %s, "
        "\"source_pool_threads\": %zu,\n"
        "     \"graph_pages_total\": %zu, \"pages_per_query\": %.2f, "
        "\"accesses_per_query\": %.2f, \"settled_per_query\": %.2f,\n"
        "     \"qps\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": %.3f,\n"
        "     \"page_reduction_vs_seed_pct\": %.2f, "
        "\"source_parallel_speedup\": %.3f, "
        "\"results_match_oracle\": %s}%s\n",
        p.layout.c_str(), p.parallel_sources ? "true" : "false",
        p.source_pool_threads, p.graph_pages_total, p.pages_per_query,
        p.accesses_per_query, p.settled_per_query, p.qps, p.p50_ms, p.p99_ms,
        p.page_reduction_vs_seed_pct, p.source_parallel_speedup,
        p.results_match_oracle ? "true" : "false",
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", env.out.c_str());
}

}  // namespace

int main() {
  const LayoutEnv env = GetLayoutEnv();
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("=== layout ablation: CA x %.2f, %zu queries, |Q|=%zu ===\n",
              env.scale, env.queries, kSources);
  if (cores <= 1) {
    std::printf(
        "WARNING: single-core host (hardware_concurrency=%u) — the "
        "parallel-sources point cannot show real speedup here; its "
        "ratio is reported as measured, not extrapolated.\n",
        cores);
  }

  auto make_workload = [&env](GraphLayout layout) {
    WorkloadConfig config;
    config.network = PaperNetworkConfig(NetworkClass::kCA, env.scale,
                                        /*seed=*/12);
    config.graph_layout = layout;
    config.object_density = kDensity;
    return std::make_unique<Workload>(config);
  };

  // One query set, sampled once: SampleQuery is edge-keyed, so the same
  // seeds give the same queries on every layout.
  auto seed_workload = make_workload(GraphLayout::kSeed);
  std::vector<SkylineQuerySpec> specs;
  specs.reserve(env.queries);
  for (std::size_t q = 0; q < env.queries; ++q) {
    specs.push_back(seed_workload->SampleQuery(kSources, kQuerySeedBase + q));
  }

  // Seed-layout sequential CE is the oracle; anchor it against LBC so the
  // oracle itself is not a single-algorithm artifact.
  std::vector<SkylineResult> oracle;
  oracle.reserve(specs.size());
  bool oracle_anchored = true;
  for (const SkylineQuerySpec& spec : specs) {
    seed_workload->ResetBuffers();
    oracle.push_back(
        RunSkylineQuery(Algorithm::kCe, seed_workload->dataset(), spec));
    seed_workload->ResetBuffers();
    const SkylineResult lbc =
        RunSkylineQuery(Algorithm::kLbc, seed_workload->dataset(), spec);
    oracle_anchored = oracle_anchored && SameSkylineSet(oracle.back(), lbc);
  }
  if (!oracle_anchored) {
    std::fprintf(stderr, "oracle anchoring FAILED: CE != LBC on seed\n");
    return 1;
  }

  std::vector<AblationPoint> points;
  const std::size_t pool_threads =
      cores > 1 ? std::min<std::size_t>(kSources, cores) : 1;
  struct Config {
    GraphLayout layout;
    bool parallel;
  };
  const Config configs[] = {{GraphLayout::kSeed, false},
                            {GraphLayout::kHilbert, false},
                            {GraphLayout::kHilbertCsr, false},
                            {GraphLayout::kHilbertCsr, true}};
  for (const Config& config : configs) {
    auto workload = config.layout == GraphLayout::kSeed
                        ? std::move(seed_workload)
                        : make_workload(config.layout);
    AblationPoint point;
    point.layout = GraphLayoutName(config.layout);
    point.parallel_sources = config.parallel;
    if (config.parallel) {
      point.source_pool_threads = pool_threads;
      TaskPool pool(pool_threads);
      MeasurePoint(*workload, specs, oracle, &pool, &point);
      // Per-query wall ratio against the sequential point on the SAME
      // layout — the honest intra-query parallelism figure.
      for (const AblationPoint& seq : points) {
        if (seq.layout == point.layout && !seq.parallel_sources) {
          point.source_parallel_speedup =
              point.qps > 0.0 ? point.qps / seq.qps : 0.0;
        }
      }
    } else {
      MeasurePoint(*workload, specs, oracle, nullptr, &point);
    }
    if (!points.empty()) {
      point.page_reduction_vs_seed_pct =
          100.0 * (1.0 - point.pages_per_query / points[0].pages_per_query);
    }
    points.push_back(std::move(point));
  }

  TablePrinter table({"layout", "par", "pages/q", "acc/q", "QPS", "p50(ms)",
                      "p99(ms)", "reduc%", "speedup", "match"});
  for (const AblationPoint& p : points) {
    table.AddRow({p.layout, p.parallel_sources ? "yes" : "no",
                  TablePrinter::Fixed(p.pages_per_query, 1),
                  TablePrinter::Fixed(p.accesses_per_query, 1),
                  TablePrinter::Fixed(p.qps, 1),
                  TablePrinter::Fixed(p.p50_ms, 3),
                  TablePrinter::Fixed(p.p99_ms, 3),
                  TablePrinter::Fixed(p.page_reduction_vs_seed_pct, 1),
                  TablePrinter::Fixed(p.source_parallel_speedup, 2),
                  p.results_match_oracle ? "yes" : "NO"});
  }
  table.Print();

  bool all_match = true;
  for (const AblationPoint& p : points) all_match = all_match && p.results_match_oracle;
  WriteJson(env, points);
  if (!all_match) {
    std::fprintf(stderr, "FAILED: a layout diverged from the oracle\n");
    return 1;
  }
  return 0;
}
