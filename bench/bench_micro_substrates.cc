// google-benchmark microbenchmarks for the substrates the query algorithms
// are built on: buffer pool, B+-tree probes, R-tree NN browsing, Dijkstra
// and A* expansion, and the Euclidean skyline browser.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "core/dominance.h"
#include "euclid/bbs.h"
#include "gen/network_gen.h"
#include "gen/object_gen.h"
#include "graph/astar.h"
#include "graph/dijkstra.h"
#include "graph/nn_stream.h"
#include "graph/spatial_mapping.h"
#include "index/bptree.h"
#include "index/rtree.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"

namespace msq {
namespace {

void BM_BufferFetchHit(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 16);
  const PageId page = disk.Allocate().value();
  buffer.Fetch(page);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buffer.Fetch(page));
  }
}
BENCHMARK(BM_BufferFetchHit);

void BM_BufferFetchMissEvict(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 4);
  PageId pages[8];
  for (auto& p : pages) p = disk.Allocate().value();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(buffer.Fetch(pages[i++ & 7]));
  }
}
BENCHMARK(BM_BufferFetchMissEvict);

void BM_BpTreeLookup(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 1024);
  BpTree tree(&buffer);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<BpTree::Item> items;
  for (std::size_t i = 0; i < n; ++i) {
    items.emplace_back(i * 2, BpTreeValue{});
  }
  tree.BulkLoad(items);
  Rng rng(1);
  BpTreeValue out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(rng.NextBounded(n) * 2, &out));
  }
}
BENCHMARK(BM_BpTreeLookup)->Arg(1000)->Arg(100000);

void BM_RTreeWindowQuery(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 4096);
  RTree tree(&buffer);
  Rng rng(2);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<RTreeEntry> items;
  for (std::uint32_t i = 0; i < n; ++i) {
    items.push_back(RTreeEntry{
        Mbr::FromPoint({rng.NextDouble(), rng.NextDouble()}), i});
  }
  tree.BulkLoad(std::move(items));
  std::vector<std::uint32_t> hits;
  for (auto _ : state) {
    hits.clear();
    tree.WindowQuery(Mbr{0.4, 0.4, 0.6, 0.6}, &hits);
    benchmark::DoNotOptimize(hits.size());
  }
}
BENCHMARK(BM_RTreeWindowQuery)->Arg(10000)->Arg(100000);

void BM_RTreeNnBrowse10(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 4096);
  RTree tree(&buffer);
  Rng rng(3);
  std::vector<RTreeEntry> items;
  for (std::uint32_t i = 0; i < 100000; ++i) {
    items.push_back(RTreeEntry{
        Mbr::FromPoint({rng.NextDouble(), rng.NextDouble()}), i});
  }
  tree.BulkLoad(std::move(items));
  for (auto _ : state) {
    RTreeNnBrowser browser(&tree, Point{0.5, 0.5});
    for (int i = 0; i < 10; ++i) {
      benchmark::DoNotOptimize(browser.Next());
    }
  }
}
BENCHMARK(BM_RTreeNnBrowse10);

struct GraphFixture {
  explicit GraphFixture(std::size_t nodes)
      : network(GenerateNetwork({.node_count = nodes,
                                 .edge_count = nodes * 13 / 10,
                                 .seed = 5})),
        buffer(&disk, kDefaultBufferFrames),
        pager(&network, &buffer) {}
  RoadNetwork network;
  InMemoryDiskManager disk;
  BufferManager buffer;
  GraphPager pager;
};

void BM_DijkstraFullSweep(benchmark::State& state) {
  GraphFixture f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    DijkstraSearch search(&f.pager, Location{0, 0.0});
    while (search.NextSettled().has_value()) {
    }
    benchmark::DoNotOptimize(search.settled_count());
  }
}
BENCHMARK(BM_DijkstraFullSweep)->Arg(3000)->Arg(20000);

void BM_AStarPointToPoint(benchmark::State& state) {
  GraphFixture f(static_cast<std::size_t>(state.range(0)));
  const EdgeId target_edge =
      static_cast<EdgeId>(f.network.edge_count() / 2);
  for (auto _ : state) {
    AStarSearch search(&f.pager, Location{0, 0.0});
    benchmark::DoNotOptimize(
        search.DistanceTo(Location{target_edge, 0.0}));
  }
}
BENCHMARK(BM_AStarPointToPoint)->Arg(3000)->Arg(20000);

void BM_NnStreamFirst10(benchmark::State& state) {
  GraphFixture f(10000);
  InMemoryDiskManager index_disk;
  BufferManager index_buffer(&index_disk, kDefaultBufferFrames);
  const auto objects = GenerateObjects(f.network, 5000, 9);
  SpatialMapping mapping(&f.network, &index_buffer, objects);
  for (auto _ : state) {
    NetworkNnStream stream(&f.pager, &mapping, Location{0, 0.0});
    for (int i = 0; i < 10; ++i) {
      benchmark::DoNotOptimize(stream.Next());
    }
  }
}
BENCHMARK(BM_NnStreamFirst10);

// The in-memory BNL skyline whose window comparisons use the min/max
// summary early exit. Arg(0) = vector count, Arg(1) = dimensions;
// correlated uniform components keep a realistically small skyline.
void BM_SkylineIndices(benchmark::State& state) {
  Rng rng(11);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t dims = static_cast<std::size_t>(state.range(1));
  std::vector<DistVector> vectors(n, DistVector(dims));
  for (auto& v : vectors) {
    for (auto& x : v) x = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SkylineIndices(vectors).size());
  }
}
BENCHMARK(BM_SkylineIndices)
    ->Args({1000, 3})
    ->Args({10000, 3})
    ->Args({10000, 6});

void BM_EuclideanSkylineBrowse(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferManager buffer(&disk, 4096);
  RTree tree(&buffer);
  Rng rng(7);
  std::vector<RTreeEntry> items;
  for (std::uint32_t i = 0; i < 50000; ++i) {
    items.push_back(RTreeEntry{
        Mbr::FromPoint({rng.NextDouble(), rng.NextDouble()}), i});
  }
  tree.BulkLoad(std::move(items));
  const std::vector<Point> queries = {{0.2, 0.2}, {0.8, 0.3}, {0.5, 0.9}};
  for (auto _ : state) {
    EuclideanSkylineBrowser browser(&tree, queries);
    std::size_t count = 0;
    for (auto item = browser.Next(); item.found; item = browser.Next()) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_EuclideanSkylineBrowse);

}  // namespace
}  // namespace msq

BENCHMARK_MAIN();
