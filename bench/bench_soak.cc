// Chaos/soak harness for the serving front door (src/serve/).
//
// Runs an in-process MsqServer over a fault-injected workload and drives
// it through real loopback TCP connections — so one process covers server,
// executor, storage, and client framing end to end, and a sanitizer build
// (ASan/TSan) sees every byte of it. The drive plan:
//
//   1. Calibrate: closed-loop valid traffic measures capacity QPS.
//   2. Phases at 1x / 2x / 4x of capacity: paced mixed traffic (CE/EDC/LBC
//      + occasional naive, a slice with tiny page budgets, every request
//      carrying a deadline) while a chaos thread interleaves malformed
//      frames, oversized frames, mid-request disconnects, and stalled
//      readers, with storage faults armed the whole time.
//   3. Graceful drain, then the gates:
//        - admission conservation is EXACT:
//            received == rejected + shed + completed + truncated + failed
//            admitted == completed + truncated + failed
//        - flight recorder total == admitted (each admitted request ran
//          exactly once, nothing lost, nothing double-run)
//        - answered <= received <= answered + abandoned (client ledger
//          brackets the server ledger; `abandoned` = full frames the chaos
//          clients sent and never read replies for)
//        - per-phase p99 of client-observed response time <= SLO — under
//          overload the server must stay *responsive* (sheds and truncated
//          prefixes return fast) even while it cannot be *complete*
//      Any violation exits nonzero; any crash is its own verdict.
//
// Usage:
//   bench_soak [--duration-s F]
//
// --duration-s sets the TOTAL loaded-soak wall time, split evenly across
// the three load phases (1x/2x/4x) — the long-soak entry point (e.g.
// --duration-s 600 for a ten-minute soak). Without it the per-phase
// default below keeps CI runs short.
//
// Environment:
//   MSQ_SOAK_SCALE       dataset scale          (default 0.05)
//   MSQ_SOAK_PHASE_S     seconds per load phase (default 3;
//                        --duration-s wins when both are given)
//   MSQ_SOAK_CLIENTS     paced client threads   (default 3)
//   MSQ_SOAK_WORKERS     executor workers       (default 2)
//   MSQ_SOAK_DEADLINE_MS per-request deadline   (default 200)
//   MSQ_SOAK_SLO_MS      p99 response-time gate (default 1500)
//   MSQ_SOAK_OUT         JSON report path (default BENCH_soak.json;
//                        empty string disables)
//   MSQ_SOAK_PROM_OUT    Prometheus snapshot dump after drain (optional)
//   MSQ_SOAK_WIDE_OUT    wide-event JSONL dump after drain (optional)
//   MSQ_SOAK_TRACE_OUT   retained-trace Chrome-JSON dump after drain
//   MSQ_SOAK_RSS_GROWTH_MAX  resource gate: max RSS ratio last/first
//                        phase (default 1.5; plus a 32 MB absolute slack)
//   MSQ_SOAK_FD_SLACK    resource gate: open fds after drain may exceed
//                        the pre-serve baseline by this many (default 16)
//   MSQ_SOAK_NO_CHAOS    set to disable the chaos thread (load-only runs)
//
// Each phase samples the process RSS (/proc/self/status VmRSS) and the
// open-fd count (/proc/self/fd) at phase end; the report embeds them and
// two gates bound growth: a leaky server fails the run, not a dashboard.
#include <dirent.h>
#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/skyline_query.h"
#include "exec/query_executor.h"
#include "gen/workloads.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "serve/json.h"
#include "serve/server.h"
#include "serve/socket.h"

namespace msq::bench {
namespace {

struct SoakEnv {
  double scale = 0.05;
  double phase_seconds = 3.0;
  std::size_t clients = 3;
  std::size_t workers = 2;
  double deadline_ms = 200.0;
  double slo_ms = 1500.0;
  std::string out = "BENCH_soak.json";
  std::string prom_out;
  std::string wide_out;
  std::string trace_out;
  double rss_growth_max = 1.5;
  std::size_t fd_slack = 16;
  bool chaos = true;
};

SoakEnv GetSoakEnv() {
  SoakEnv env;
  if (const char* s = std::getenv("MSQ_SOAK_SCALE")) {
    if (std::atof(s) > 0.0) env.scale = std::atof(s);
  }
  if (const char* s = std::getenv("MSQ_SOAK_PHASE_S")) {
    if (std::atof(s) > 0.0) env.phase_seconds = std::atof(s);
  }
  if (const char* s = std::getenv("MSQ_SOAK_CLIENTS")) {
    if (std::atol(s) > 0) env.clients = static_cast<std::size_t>(std::atol(s));
  }
  if (const char* s = std::getenv("MSQ_SOAK_WORKERS")) {
    if (std::atol(s) > 0) env.workers = static_cast<std::size_t>(std::atol(s));
  }
  if (const char* s = std::getenv("MSQ_SOAK_DEADLINE_MS")) {
    if (std::atof(s) > 0.0) env.deadline_ms = std::atof(s);
  }
  if (const char* s = std::getenv("MSQ_SOAK_SLO_MS")) {
    if (std::atof(s) > 0.0) env.slo_ms = std::atof(s);
  }
  if (const char* s = std::getenv("MSQ_SOAK_OUT")) env.out = s;
  if (const char* s = std::getenv("MSQ_SOAK_PROM_OUT")) env.prom_out = s;
  if (const char* s = std::getenv("MSQ_SOAK_WIDE_OUT")) env.wide_out = s;
  if (const char* s = std::getenv("MSQ_SOAK_TRACE_OUT")) env.trace_out = s;
  if (const char* s = std::getenv("MSQ_SOAK_RSS_GROWTH_MAX")) {
    if (std::atof(s) > 0.0) env.rss_growth_max = std::atof(s);
  }
  if (const char* s = std::getenv("MSQ_SOAK_FD_SLACK")) {
    if (std::atol(s) >= 0) env.fd_slack = static_cast<std::size_t>(std::atol(s));
  }
  if (std::getenv("MSQ_SOAK_NO_CHAOS") != nullptr) env.chaos = false;
  return env;
}

// Resident set in KiB from /proc/self/status (0 if unreadable — the gates
// then pass vacuously rather than fail on an exotic /proc).
std::size_t ReadRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10));
      break;
    }
  }
  std::fclose(f);
  return kb;
}

// Open descriptors from /proc/self/fd (".", "..", and the scan's own
// dirfd subtracted).
std::size_t CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::size_t n = 0;
  while (readdir(dir) != nullptr) ++n;
  closedir(dir);
  return n > 3 ? n - 3 : 0;
}

// Client-side ledger, shared across the paced clients of one phase.
struct ClientLedger {
  std::atomic<std::uint64_t> sent{0};       // full frames written
  std::atomic<std::uint64_t> ok{0};         // "status":"OK", not truncated
  std::atomic<std::uint64_t> truncated{0};  // OK but truncated
  std::atomic<std::uint64_t> shed{0};       // RESOURCE_EXHAUSTED/UNAVAILABLE
  std::atomic<std::uint64_t> errors{0};     // any other error response
  // Sent OK but the reply was lost with the connection; the server may or
  // may not have received the frame, so these join the accounting slack,
  // not the answered total.
  std::atomic<std::uint64_t> lost{0};
  std::atomic<std::uint64_t> reconnects{0};
  obs::Histogram latency_us;  // every answered request, any outcome
};

// Chaos-side ledger: `abandoned` counts FULL frames (terminated lines the
// write accepted) whose replies were deliberately never read — the only
// requests the server may have received that no client counted an answer
// for. Half frames and garbage that never formed a line can't increment
// the server's received counter, so they stay out of the bracket.
struct ChaosLedger {
  std::atomic<std::uint64_t> abandoned{0};
  std::atomic<std::uint64_t> malformed_sent{0};
  std::atomic<std::uint64_t> malformed_answered{0};
  std::atomic<std::uint64_t> oversize_sent{0};
  std::atomic<std::uint64_t> disconnects{0};
  std::atomic<std::uint64_t> stalls{0};
};

// Serializes a sampled query spec into the serve request schema.
std::string EncodeRequest(const SkylineQuerySpec& spec, const char* algo,
                          double deadline_ms, std::uint64_t page_budget) {
  std::string out = "{\"algo\":\"";
  out += algo;
  out += "\",\"sources\":[";
  for (std::size_t i = 0; i < spec.sources.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s{\"edge\":%u,\"offset\":%.17g}",
                  i > 0 ? "," : "", spec.sources[i].edge,
                  spec.sources[i].offset);
    out += buf;
  }
  out += "],\"limits\":{";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"deadline_ms\":%.17g", deadline_ms);
  out += buf;
  if (page_budget > 0) {
    std::snprintf(buf, sizeof(buf), ",\"page_budget\":%" PRIu64, page_budget);
    out += buf;
  }
  out += "}}";
  return out;
}

// Builds the request mix once; clients rotate through it. A slice carries
// tiny page budgets to exercise truncated-prefix responses even at 1x.
std::vector<std::string> BuildRequestPool(Workload& workload,
                                          const SoakEnv& env) {
  constexpr const char* kAlgos[] = {"lbc", "ce", "edc", "lbc", "lbc", "ce"};
  std::vector<std::string> pool;
  for (std::size_t i = 0; i < 24; ++i) {
    const SkylineQuerySpec spec =
        workload.SampleQuery(2 + i % 3, /*seed=*/400 + i);
    const std::uint64_t budget = i % 5 == 4 ? 8 : 0;  // tiny budget slice
    pool.push_back(EncodeRequest(spec, kAlgos[i % std::size(kAlgos)],
                                 env.deadline_ms, budget));
  }
  // One naive request (admission cost 8x) to push the cost watermark.
  pool.push_back(EncodeRequest(workload.SampleQuery(2, /*seed=*/499),
                               "naive", env.deadline_ms, 0));
  return pool;
}

// Classifies one response line into the client ledger.
void RecordResponse(const std::string& line, ClientLedger* ledger) {
  const StatusOr<serve::JsonValue> json = serve::ParseJson(line);
  if (!json.ok() || !json.value().is_object()) {
    ledger->errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (const serve::JsonValue* error = json.value().Find("error")) {
    const serve::JsonValue* code =
        error->is_object() ? error->Find("code") : nullptr;
    const std::string name =
        code != nullptr && code->is_string() ? code->AsString() : "";
    if (name == "RESOURCE_EXHAUSTED" || name == "UNAVAILABLE") {
      ledger->shed.fetch_add(1, std::memory_order_relaxed);
    } else {
      ledger->errors.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  const serve::JsonValue* truncated = json.value().Find("truncated");
  if (truncated != nullptr && truncated->is_bool() && truncated->AsBool()) {
    ledger->truncated.fetch_add(1, std::memory_order_relaxed);
  } else {
    ledger->ok.fetch_add(1, std::memory_order_relaxed);
  }
}

// One paced client: a persistent NDJSON connection sending requests on an
// open-loop schedule (closed-loop per request — sheds and truncations keep
// replies fast, so the schedule holds under overload) and reconnecting if
// the server drops the connection.
void PacedClient(std::uint16_t port, const std::vector<std::string>& pool,
                 double qps, double until, std::size_t client_index,
                 ClientLedger* ledger) {
  int fd = -1;
  std::size_t next = client_index;  // de-phase the clients in the pool
  const double interval = qps > 0.0 ? 1.0 / qps : 0.0;
  double due = MonotonicSeconds();
  while (true) {
    const double now = MonotonicSeconds();
    if (now >= until) break;
    if (now < due) {
      usleep(static_cast<useconds_t>((due - now) * 1e6));
      continue;
    }
    due += interval > 0.0 ? interval : 0.0;
    if (due < now - 0.25) due = now;  // don't bank unbounded backlog
    if (fd < 0) {
      StatusOr<int> conn = serve::ConnectTcp("127.0.0.1", port);
      if (!conn.ok()) {
        usleep(1000);
        continue;
      }
      fd = conn.value();
      (void)serve::SetSocketTimeouts(fd, /*recv_seconds=*/10.0,
                                     /*send_seconds=*/5.0);
    }
    const std::string& request = pool[next % pool.size()];
    next += 1;
    const double t0 = MonotonicSeconds();
    if (!serve::WriteAll(fd, request + "\n").ok()) {
      ::close(fd);
      fd = -1;
      ledger->reconnects.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    ledger->sent.fetch_add(1, std::memory_order_relaxed);
    serve::FrameReader reader(fd, 1u << 20);
    StatusOr<std::string> reply = reader.ReadLine();
    if (!reply.ok()) {
      ::close(fd);
      fd = -1;
      ledger->reconnects.fetch_add(1, std::memory_order_relaxed);
      ledger->lost.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    ledger->latency_us.Observe(
        static_cast<std::uint64_t>((MonotonicSeconds() - t0) * 1e6));
    RecordResponse(reply.value(), ledger);
  }
  if (fd >= 0) ::close(fd);
}

// The chaos thread: cycles through hostile behaviors against the same
// port the paced clients use. Every full frame it abandons is tallied so
// the final accounting bracket stays exact.
void ChaosClient(std::uint16_t port, const std::vector<std::string>& pool,
                 double until, ChaosLedger* ledger) {
  Rng rng(0xc4a05u);
  const std::string oversize(256u << 10, 'x');  // past max_request_bytes
  while (MonotonicSeconds() < until) {
    StatusOr<int> conn = serve::ConnectTcp("127.0.0.1", port);
    if (!conn.ok()) {
      usleep(2000);
      continue;
    }
    const int fd = conn.value();
    (void)serve::SetSocketTimeouts(fd, /*recv_seconds=*/5.0,
                                   /*send_seconds=*/5.0);
    switch (rng.NextBounded(4)) {
      case 0: {  // malformed frame; expect a structured error, conn lives
        const char* garbage;
        switch (rng.NextBounded(3)) {
          case 0: garbage = "{\"algo\":\"lbc\",\"sources\":[]}\n"; break;
          case 1: garbage = "{\"algo\":}{]] nope\n"; break;
          default: garbage = "\x01\x02\xff not json at all\n"; break;
        }
        ledger->malformed_sent.fetch_add(1, std::memory_order_relaxed);
        if (serve::WriteAll(fd, garbage, std::strlen(garbage)).ok()) {
          serve::FrameReader reader(fd, 1u << 20);
          if (reader.ReadLine().ok()) {
            ledger->malformed_answered.fetch_add(1,
                                                 std::memory_order_relaxed);
          }
        }
        break;
      }
      case 1: {  // oversized frame; server must reject, not buffer it all
        ledger->oversize_sent.fetch_add(1, std::memory_order_relaxed);
        (void)serve::WriteAll(fd, oversize);  // no newline; cap cuts it off
        serve::FrameReader reader(fd, 1u << 20);
        (void)reader.ReadLine();  // error reply or reset, both fine
        break;
      }
      case 2: {  // mid-request disconnect: half a frame, then vanish
        const std::string& request = pool[rng.NextBounded(pool.size())];
        ledger->disconnects.fetch_add(1, std::memory_order_relaxed);
        (void)serve::WriteAll(fd, request.data(), request.size() / 2);
        break;  // close without the newline — never becomes a frame
      }
      default: {  // stalled reader: full frames in, never reads replies
        const std::size_t frames = 1 + rng.NextBounded(3);
        for (std::size_t i = 0; i < frames; ++i) {
          const std::string& request = pool[rng.NextBounded(pool.size())];
          if (!serve::WriteAll(fd, request + "\n").ok()) break;
          ledger->abandoned.fetch_add(1, std::memory_order_relaxed);
        }
        ledger->stalls.fetch_add(1, std::memory_order_relaxed);
        usleep(static_cast<useconds_t>(rng.NextBounded(20)) * 1000);
        break;  // close with replies unread
      }
    }
    ::close(fd);
    usleep(static_cast<useconds_t>(1 + rng.NextBounded(5)) * 1000);
  }
}

struct PhaseReport {
  std::string name;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t truncated = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::uint64_t lost = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double shed_rate = 0.0;
  double truncation_rate = 0.0;
  std::size_t rss_kb = 0;
  std::size_t open_fds = 0;
};

PhaseReport RunPhase(const char* name, std::uint16_t port,
                     const std::vector<std::string>& pool, double qps,
                     double seconds, std::size_t clients,
                     ChaosLedger* chaos_ledger, bool chaos) {
  ClientLedger ledger;
  const double until = MonotonicSeconds() + seconds;
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < clients; ++i) {
    threads.emplace_back(PacedClient, port, std::cref(pool),
                         qps / static_cast<double>(clients), until, i,
                         &ledger);
  }
  std::thread chaos_thread;
  if (chaos) {
    chaos_thread =
        std::thread(ChaosClient, port, std::cref(pool), until, chaos_ledger);
  }
  for (std::thread& t : threads) t.join();
  if (chaos_thread.joinable()) chaos_thread.join();

  PhaseReport report;
  report.name = name;
  report.offered_qps = qps;
  report.sent = ledger.sent.load();
  report.ok = ledger.ok.load();
  report.truncated = ledger.truncated.load();
  report.shed = ledger.shed.load();
  report.errors = ledger.errors.load();
  report.lost = ledger.lost.load();
  report.achieved_qps = static_cast<double>(report.sent) / seconds;
  const obs::Histogram::Snapshot lat = ledger.latency_us.TakeSnapshot();
  report.p50_ms = lat.Quantile(0.5) / 1e3;
  report.p99_ms = lat.Quantile(0.99) / 1e3;
  const double answered = static_cast<double>(report.ok + report.truncated +
                                              report.shed + report.errors);
  if (answered > 0.0) {
    report.shed_rate = static_cast<double>(report.shed) / answered;
    report.truncation_rate =
        static_cast<double>(report.truncated) / answered;
  }
  report.rss_kb = ReadRssKb();
  report.open_fds = CountOpenFds();
  return report;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace
}  // namespace msq::bench

int main(int argc, char** argv) {
  using namespace msq;
  using namespace msq::bench;
  SoakEnv env = GetSoakEnv();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--duration-s") == 0 && i + 1 < argc) {
      const double total = std::atof(argv[++i]);
      if (total <= 0.0) {
        std::fprintf(stderr, "bench_soak: --duration-s must be > 0\n");
        return 2;
      }
      // Three loaded phases (1x/2x/4x) share the budget; calibration is
      // capped separately and stays short.
      env.phase_seconds = total / 3.0;
    } else {
      std::fprintf(stderr, "usage: %s [--duration-s F]\n", argv[0]);
      return 2;
    }
  }

  WorkloadConfig config;
  config.network = PaperNetworkConfig(NetworkClass::kCA, env.scale,
                                      /*seed=*/12);
  config.object_density = 0.5;
  FaultInjectionConfig inject;
  inject.seed = 77;
  inject.transient_read_rate = 0.01;   // retries absorb these
  inject.persistent_read_rate = 0.001; // these surface as failed requests
  config.fault_injection = inject;
  Workload workload(config);
  workload.graph_faults()->Arm();
  workload.index_faults()->Arm();

  // Tracing on for the whole soak: requests past the deadline count as
  // slow (100% tail-retained), plus 1-in-64 head sampling so the retained
  // set and the wide-event dump are non-empty even on an all-fast run.
  obs::TelemetryConfig telemetry_config;
  telemetry_config.slow_wall_seconds = env.deadline_ms / 1e3;
  telemetry_config.head_sample_every = 64;
  QueryExecutor executor(workload.dataset(), env.workers, telemetry_config);
  serve::ServerConfig server_config;
  // max_pending sits between the 1x concurrency (env.clients) and the 2x
  // concurrency (2 * env.clients): no shedding at 1x, real shedding at 2x
  // and 4x, whatever the calibrated capacity turns out to be.
  server_config.admission.max_pending = env.clients + 1;
  server_config.admission.max_pending_cost = 48.0;
  server_config.max_request_bytes = 64 * 1024;
  server_config.read_timeout_seconds = 6.0;
  server_config.write_timeout_seconds = 2.0;
  serve::MsqServer server(&executor, server_config);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "bench_soak: %s\n", started.ToString().c_str());
    return 1;
  }

  const obs::BuildInfo& build = obs::GetBuildInfo();
  std::printf("bench_soak: CA scale %.2f, %zu workers, %zu clients, "
              "deadline %.0f ms, chaos %s (build %s)\n",
              env.scale, env.workers, env.clients, env.deadline_ms,
              env.chaos ? "on" : "off", std::string(build.git_sha).c_str());

  const std::vector<std::string> pool = BuildRequestPool(workload, env);
  ChaosLedger chaos_ledger;

  // Resource baseline: after the listener and worker pool exist, before
  // any client traffic. Phase samples are compared against this.
  const std::size_t baseline_fds = CountOpenFds();

  // Calibration: unpaced closed-loop traffic, no chaos, measures capacity.
  const PhaseReport calibration =
      RunPhase("calibrate", server.port(), pool, /*qps=*/0.0,
               std::min(env.phase_seconds, 2.0), env.clients, &chaos_ledger,
               /*chaos=*/false);
  const double capacity = calibration.achieved_qps > 1.0
                              ? calibration.achieved_qps
                              : 1.0;
  std::printf("calibrated capacity: %.0f QPS\n\n", capacity);

  // Offered load scales by scaling the client-thread count with the
  // multiplier (per-thread pace stays the calibrated per-thread rate):
  // paced closed-loop threads cannot oversubscribe a server by pacing
  // alone, concurrency has to rise the way real client fleets do.
  constexpr double kMultipliers[] = {1.0, 2.0, 4.0};
  std::vector<PhaseReport> phases;
  for (const double multiplier : kMultipliers) {
    char name[16];
    std::snprintf(name, sizeof(name), "%.0fx", multiplier);
    const std::size_t threads =
        static_cast<std::size_t>(static_cast<double>(env.clients) *
                                 multiplier);
    phases.push_back(RunPhase(name, server.port(), pool,
                              capacity * multiplier, env.phase_seconds,
                              threads, &chaos_ledger, env.chaos));
  }

  server.Shutdown();

  std::printf("%-10s %10s %10s %8s %8s %8s %7s %6s %9s %9s %7s %7s\n",
              "phase", "offered", "achieved", "ok", "trunc", "shed",
              "errors", "lost", "p50(ms)", "p99(ms)", "shed%", "trunc%");
  for (const PhaseReport& p : phases) {
    std::printf("%-10s %10.0f %10.0f %8" PRIu64 " %8" PRIu64 " %8" PRIu64
                " %7" PRIu64 " %6" PRIu64 " %9.2f %9.2f %6.1f%% %6.1f%%\n",
                p.name.c_str(), p.offered_qps, p.achieved_qps, p.ok,
                p.truncated, p.shed, p.errors, p.lost, p.p50_ms, p.p99_ms,
                p.shed_rate * 100.0, p.truncation_rate * 100.0);
  }

  // --- The gates ---
  const serve::AdmissionController& admission = server.admission();
  std::size_t violations = 0;
  auto gate = [&](bool ok, const char* what, const std::string& detail) {
    std::printf("gate %-38s %s%s%s\n", what, ok ? "PASS" : "FAIL",
                detail.empty() ? "" : " — ", detail.c_str());
    if (!ok) ++violations;
  };

  const std::string conservation = admission.CheckConservation();
  gate(conservation.empty(), "admission conservation exact", conservation);

  const std::uint64_t flight_total =
      executor.telemetry().flight_recorder().total_recorded();
  {
    char detail[128];
    std::snprintf(detail, sizeof(detail),
                  "flight %" PRIu64 " vs admitted %" PRIu64, flight_total,
                  admission.admitted());
    gate(flight_total == admission.admitted(),
         "flight recorder == admitted", detail);
  }

  // Client ledger brackets the server ledger. `answered` includes the
  // calibration phase; malformed/oversize frames the chaos thread got
  // replies for are server-received too, so they join the lower bound.
  std::uint64_t answered = calibration.ok + calibration.truncated +
                           calibration.shed + calibration.errors;
  std::uint64_t valid_sent = calibration.sent;
  for (const PhaseReport& p : phases) {
    answered += p.ok + p.truncated + p.shed + p.errors;
    valid_sent += p.sent;
  }
  answered += chaos_ledger.malformed_answered.load();
  std::uint64_t lost = calibration.lost;
  for (const PhaseReport& p : phases) lost += p.lost;
  const std::uint64_t slack = chaos_ledger.abandoned.load() +
                              chaos_ledger.oversize_sent.load() +
                              (chaos_ledger.malformed_sent.load() -
                               chaos_ledger.malformed_answered.load()) +
                              lost;
  {
    char detail[160];
    std::snprintf(detail, sizeof(detail),
                  "answered %" PRIu64 " <= received %" PRIu64
                  " <= answered+slack %" PRIu64,
                  answered, admission.received(), answered + slack);
    gate(answered <= admission.received() &&
             admission.received() <= answered + slack,
         "client ledger brackets server ledger", detail);
  }

  for (const PhaseReport& p : phases) {
    char what[64];
    std::snprintf(what, sizeof(what), "p99 <= %.0f ms at %s", env.slo_ms,
                  p.name.c_str());
    char detail[64];
    std::snprintf(detail, sizeof(detail), "p99 %.2f ms", p.p99_ms);
    gate(p.p99_ms <= env.slo_ms, what, detail);
  }

  // Resource gates. RSS may grow with load (buffers, per-connection
  // state) but must stay within a ratio of the first loaded phase — a
  // per-request leak compounds across the 2x and 4x phases and blows
  // straight through it. The small absolute slack keeps tiny-scale runs
  // (a few MB of RSS) from failing on allocator noise. Fds are checked
  // after Shutdown: every connection is closed, so the count must return
  // to the pre-traffic baseline give or take the configured slack.
  {
    const std::size_t first_rss = calibration.rss_kb;
    const std::size_t last_rss = phases.empty() ? first_rss
                                                : phases.back().rss_kb;
    const double rss_limit_kb =
        static_cast<double>(first_rss) * env.rss_growth_max + 32.0 * 1024.0;
    char what[64];
    std::snprintf(what, sizeof(what), "rss growth <= %.2fx",
                  env.rss_growth_max);
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "rss %zu KB -> %zu KB (limit %.0f KB)", first_rss,
                  last_rss, rss_limit_kb);
    gate(first_rss == 0 ||
             static_cast<double>(last_rss) <= rss_limit_kb,
         what, detail);
  }
  const std::size_t final_fds = CountOpenFds();
  {
    char what[64];
    std::snprintf(what, sizeof(what), "open fds <= baseline + %zu",
                  env.fd_slack);
    char detail[96];
    std::snprintf(detail, sizeof(detail), "fds %zu -> %zu after drain",
                  baseline_fds, final_fds);
    gate(baseline_fds == 0 || final_fds <= baseline_fds + env.fd_slack,
         what, detail);
  }

  std::printf("\nserver totals: received %" PRIu64 " rejected %" PRIu64
              " shed %" PRIu64 " completed %" PRIu64 " truncated %" PRIu64
              " failed %" PRIu64 "\n",
              admission.received(), admission.rejected(), admission.shed(),
              admission.completed(), admission.truncated(),
              admission.failed());
  std::printf("chaos: %" PRIu64 " malformed (%" PRIu64 " answered), %" PRIu64
              " oversize, %" PRIu64 " half-frame disconnects, %" PRIu64
              " stalls, %" PRIu64 " frames abandoned\n",
              chaos_ledger.malformed_sent.load(),
              chaos_ledger.malformed_answered.load(),
              chaos_ledger.oversize_sent.load(),
              chaos_ledger.disconnects.load(), chaos_ledger.stalls.load(),
              chaos_ledger.abandoned.load());

  if (!env.out.empty()) {
    std::string json = "{\n  \"bench\": \"soak\",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"git_sha\": \"%s\",\n  \"scale\": %.3f,\n"
                  "  \"workers\": %zu,\n  \"deadline_ms\": %.0f,\n"
                  "  \"capacity_qps\": %.1f,\n  \"phases\": [\n",
                  std::string(build.git_sha).c_str(), env.scale,
                  env.workers, env.deadline_ms, capacity);
    json += buf;
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const PhaseReport& p = phases[i];
      char line[384];
      std::snprintf(
          line, sizeof(line),
          "    {\"phase\": \"%s\", \"offered_qps\": %.1f, "
          "\"achieved_qps\": %.1f, \"ok\": %" PRIu64 ", \"truncated\": %"
          PRIu64 ", \"shed\": %" PRIu64 ", \"errors\": %" PRIu64
          ", \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"shed_rate\": %.4f, "
          "\"truncation_rate\": %.4f, \"rss_kb\": %zu, \"open_fds\": %zu}"
          "%s\n",
          p.name.c_str(), p.offered_qps, p.achieved_qps, p.ok, p.truncated,
          p.shed, p.errors, p.p50_ms, p.p99_ms, p.shed_rate,
          p.truncation_rate, p.rss_kb, p.open_fds,
          i + 1 < phases.size() ? "," : "");
      json += line;
    }
    json += "  ],\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"baseline_rss_kb\": %zu, \"baseline_fds\": %zu, "
                  "\"final_fds\": %zu,\n",
                  calibration.rss_kb, baseline_fds, final_fds);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"received\": %" PRIu64 ", \"rejected\": %" PRIu64
                  ", \"shed\": %" PRIu64 ", \"completed\": %" PRIu64
                  ", \"truncated\": %" PRIu64 ", \"failed\": %" PRIu64
                  ",\n  \"gates_failed\": %zu\n}\n",
                  admission.received(), admission.rejected(),
                  admission.shed(), admission.completed(),
                  admission.truncated(), admission.failed(), violations);
    json += buf;
    if (!WriteFile(env.out, json)) {
      std::fprintf(stderr, "cannot write %s\n", env.out.c_str());
      return 1;
    }
  }
  if (!env.prom_out.empty()) {
    (void)WriteFile(env.prom_out,
                    obs::PrometheusText(*executor.telemetry().registry(),
                                        &executor.telemetry().exemplars()));
  }
  if (!env.wide_out.empty()) {
    (void)WriteFile(env.wide_out, server.wide_events().Jsonl());
  }
  if (!env.trace_out.empty()) {
    // Same shape msq_server --trace-out writes (and
    // tools/validate_telemetry.py checks): retained traces wrapping their
    // Chrome-trace event arrays.
    std::string out = "{\"traces\":[";
    bool first = true;
    for (const obs::RetainedTrace& trace :
         executor.telemetry().trace_store().Snapshot()) {
      if (!first) out += ",";
      first = false;
      out += "\n{\"trace_id\":\"" + trace.TraceIdHex() + "\",\"reason\":\"";
      out += obs::RetainReasonName(trace.reason);
      out += "\",\"events\":" + obs::RetainedTraceChromeJson(trace) + "}";
    }
    out += "\n]}\n";
    (void)WriteFile(env.trace_out, out);
  }

  if (violations > 0) {
    std::fprintf(stderr, "\nbench_soak: %zu gate(s) FAILED\n", violations);
    return 1;
  }
  std::printf("\nbench_soak: all gates passed\n");
  return 0;
}
