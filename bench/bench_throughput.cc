// Concurrent throughput benchmark: a fixed mixed CE/EDC/LBC batch on the
// Figure-5 (CA) and Figure-6 (NA) workloads, replayed through QueryExecutor
// at 1/2/4/8 workers. Reports QPS and per-query latency percentiles (from
// the log-bucketed obs::Histogram — the same substrate serving telemetry
// uses), checks every concurrent result byte-for-byte against the
// single-threaded run, and writes the numbers as JSON for the committed
// BENCH_throughput.json.
//
// Each worker count is measured three ways: cold with default always-on
// telemetry (the serving configuration), cold with telemetry disabled
// (the PR-4-equivalent baseline the <2% overhead budget is measured
// against; the two cold passes run as interleaved timed repetitions and
// each reports its min wall, so ambient-load drift cancels out of the
// comparison), and warm (executor-owned QueryCache populated by
// an untimed pass, then the same batch timed) — the warm columns quantify
// the cross-query cache's page-access reduction and QPS gain on repeated
// queries, with results still checked byte-for-byte against the oracle.
//
// Environment:
//   MSQ_BENCH_SCALE        dataset scale (bench_common.h; default 0.2)
//   MSQ_THROUGHPUT_BATCH   requests per batch (default 48)
//   MSQ_THROUGHPUT_OUT     JSON output path (default BENCH_throughput.json
//                          in the working directory; empty string disables)
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/skyline_query.h"
#include "exec/query_executor.h"
#include "gen/workloads.h"
#include "obs/build_info.h"
#include "obs/histogram.h"
#include "obs/telemetry.h"

namespace msq::bench {
namespace {

constexpr Algorithm kAlgorithms[] = {Algorithm::kCe, Algorithm::kEdc,
                                     Algorithm::kLbc};
constexpr std::size_t kWorkerCounts[] = {1, 2, 4, 8};
// Timed batch repetitions per cold mode; the best (min-wall) repetition is
// reported, damping one-off scheduler hiccups that would otherwise swamp
// the sub-2% telemetry-overhead comparison. kTimedReps is the floor —
// TimedBatches keeps repeating until the cumulative timed window reaches
// kMinTimedSeconds (or kMaxTimedReps), because a single CA batch runs in
// ~35 ms and a best-of-3 over windows that short is pure scheduler noise
// on a shared host; the min over ~20 reps converges to the cost floor on
// both sides of the telemetry-on/off comparison.
constexpr std::size_t kTimedReps = 3;
constexpr std::size_t kMaxTimedReps = 40;
constexpr double kMinTimedSeconds = 6.0;

struct Point {
  std::size_t workers = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double speedup = 1.0;
  bool matches_oracle = true;
  // Cold pass re-run with TelemetryConfig{enabled=false}: the PR-4
  // baseline the always-on overhead budget is measured against.
  double telemetry_off_wall_seconds = 0.0;
  double qps_telemetry_off = 0.0;
  double telemetry_overhead_pct = 0.0;
  // Warm-cache replay of the same batch through a cache-carrying executor.
  double warm_wall_seconds = 0.0;
  double warm_qps = 0.0;
  std::uint64_t cold_network_accesses = 0;
  std::uint64_t warm_network_accesses = 0;
  double warm_access_reduction_pct = 0.0;
  std::uint64_t warm_wavefront_hits = 0;
  std::uint64_t warm_memo_hits = 0;
  bool warm_matches_oracle = true;
};

struct WorkloadReport {
  std::string network;
  std::size_t query_count = 0;
  double density = 0.0;
  std::vector<Point> points;
};

// Untimed warm-up batches per executor before its timed batches start:
// spins up the worker threads, faults the hot pages in, and drains the
// allocator's cold start so the first timed batch is not the noisy one
// (it used to dominate p99).
constexpr std::size_t kWarmupBatches = 1;

// Warms both executors with kWarmupBatches untimed batches each, then
// alternates timed repetitions between them — at least `kTimedReps` pairs,
// continuing until each side's cumulative timed window reaches
// kMinTimedSeconds or kMaxTimedReps pairs have run. Returns each side's
// minimum timed wall seconds (the cost floor) through `wall_a`/`wall_b`;
// `results_a`/`results_b` receive each side's final repetition results.
void TimedBatchesPaired(QueryExecutor& a, QueryExecutor& b,
                        const std::vector<QueryRequest>& requests,
                        double* wall_a, double* wall_b,
                        std::vector<SkylineResult>* results_a,
                        std::vector<SkylineResult>* results_b) {
  for (std::size_t warm = 0; warm < kWarmupBatches; ++warm) {
    a.RunBatch(requests);
    b.RunBatch(requests);
  }
  double best_a = 0.0, best_b = 0.0;
  double total_a = 0.0, total_b = 0.0;
  for (std::size_t rep = 0; rep < kMaxTimedReps; ++rep) {
    // Alternate which side goes first within the pair so a position
    // effect (cache residue, decaying transients) cannot bias one side.
    QueryExecutor& first = (rep % 2 == 0) ? a : b;
    QueryExecutor& second = (rep % 2 == 0) ? b : a;
    double start = MonotonicSeconds();
    std::vector<SkylineResult> batch_first = first.RunBatch(requests);
    const double seconds_first = MonotonicSeconds() - start;
    start = MonotonicSeconds();
    std::vector<SkylineResult> batch_second = second.RunBatch(requests);
    const double seconds_second = MonotonicSeconds() - start;
    const double seconds_a = (rep % 2 == 0) ? seconds_first : seconds_second;
    const double seconds_b = (rep % 2 == 0) ? seconds_second : seconds_first;
    std::vector<SkylineResult>& batch_a =
        (rep % 2 == 0) ? batch_first : batch_second;
    std::vector<SkylineResult>& batch_b =
        (rep % 2 == 0) ? batch_second : batch_first;
    total_a += seconds_a;
    total_b += seconds_b;
    if (rep == 0 || seconds_a < best_a) best_a = seconds_a;
    if (rep == 0 || seconds_b < best_b) best_b = seconds_b;
    const bool enough = rep + 1 >= kTimedReps &&
                        total_a >= kMinTimedSeconds &&
                        total_b >= kMinTimedSeconds;
    if (enough || rep + 1 == kMaxTimedReps) {
      *results_a = std::move(batch_a);
      *results_b = std::move(batch_b);
      break;
    }
  }
  *wall_a = best_a;
  *wall_b = best_b;
}

bool SameSkyline(const SkylineResult& a, const SkylineResult& b) {
  if (!a.status.ok() || !b.status.ok()) return false;
  if (a.skyline.size() != b.skyline.size()) return false;
  for (std::size_t i = 0; i < a.skyline.size(); ++i) {
    if (a.skyline[i].object != b.skyline[i].object) return false;
    if (a.skyline[i].vector != b.skyline[i].vector) return false;
  }
  return true;
}

WorkloadReport RunOne(NetworkClass cls, const BenchEnv& env,
                      std::size_t batch) {
  WorkloadReport report;
  report.network = NetworkClassName(cls);
  report.query_count = 4;
  report.density = 0.5;

  WorkloadConfig config;
  config.network = PaperNetworkConfig(cls, env.scale, 12);
  config.object_density = report.density;
  Workload workload(config);

  std::vector<QueryRequest> requests;
  requests.reserve(batch);
  for (std::size_t i = 0; i < requests.capacity(); ++i) {
    QueryRequest request;
    request.algorithm = kAlgorithms[i % std::size(kAlgorithms)];
    request.spec =
        workload.SampleQuery(report.query_count, 100 + i / 3);
    requests.push_back(request);
  }

  // Single-threaded reference results, also warming the pools.
  std::vector<SkylineResult> oracle;
  oracle.reserve(requests.size());
  for (const QueryRequest& request : requests) {
    oracle.push_back(
        RunSkylineQuery(request.algorithm, workload.dataset(), request.spec));
  }

  TablePrinter table({"workers", "QPS", "p50(ms)", "p99(ms)", "wall(s)",
                      "speedup", "teleQPS", "tele%", "warmQPS", "netacc-",
                      "match"});
  for (const std::size_t workers : kWorkerCounts) {
    Point point;
    point.workers = workers;
    {
      // Cold, serving configuration (default always-on telemetry) against
      // the telemetry-off baseline, as a PAIRED comparison: both executors
      // are warmed, then timed repetitions alternate between them so slow
      // ambient-load drift on a shared host hits both sides equally
      // instead of biasing whichever pass ran first. The min wall of each
      // side is the reported cost floor; their QPS delta is the always-on
      // overhead the <2% budget in ISSUE/DESIGN refers to.
      QueryExecutor executor(workload.dataset(), workers);
      obs::TelemetryConfig off_config;
      off_config.enabled = false;
      QueryExecutor executor_off(workload.dataset(), workers, off_config);

      std::vector<SkylineResult> results;
      std::vector<SkylineResult> results_off;
      double wall = 0.0;
      TimedBatchesPaired(executor, executor_off, requests, &wall,
                         &point.telemetry_off_wall_seconds, &results,
                         &results_off);
      point.qps_telemetry_off = static_cast<double>(results_off.size()) /
                                point.telemetry_off_wall_seconds;

      point.wall_seconds = wall;
      point.qps = static_cast<double>(results.size()) / wall;
      // Per-query latency distribution through the same log-bucketed
      // histogram substrate the telemetry layer exports (obs/histogram.h):
      // quantile estimates are within one log2 bucket of the exact order
      // statistic, plenty for a ms-resolution table.
      obs::Histogram latency_hist;
      for (std::size_t i = 0; i < results.size(); ++i) {
        latency_hist.Observe(static_cast<std::uint64_t>(
            std::llround(results[i].stats.total_seconds * 1e6)));
        point.cold_network_accesses += results[i].stats.network_page_accesses;
        point.matches_oracle =
            point.matches_oracle && SameSkyline(results[i], oracle[i]);
      }
      const obs::Histogram::Snapshot latencies = latency_hist.TakeSnapshot();
      point.p50_ms = latencies.Quantile(0.50) / 1e3;
      point.p99_ms = latencies.Quantile(0.99) / 1e3;
      point.speedup = report.points.empty()
                          ? 1.0
                          : report.points.front().wall_seconds / wall;
    }
    point.telemetry_overhead_pct =
        100.0 * (1.0 - point.qps / point.qps_telemetry_off);
    {
      // Warm: same batch, executor-owned cache populated by an untimed
      // pass; the timed pass resumes wavefronts and memoized distances.
      QueryExecutor executor(workload.dataset(), workers,
                             QueryCacheConfig{});
      executor.RunBatch(requests);

      const double start = MonotonicSeconds();
      const std::vector<SkylineResult> results = executor.RunBatch(requests);
      point.warm_wall_seconds = MonotonicSeconds() - start;
      point.warm_qps =
          static_cast<double>(results.size()) / point.warm_wall_seconds;
      for (std::size_t i = 0; i < results.size(); ++i) {
        point.warm_network_accesses += results[i].stats.network_page_accesses;
        point.warm_wavefront_hits += results[i].stats.cache_wavefront_hits;
        point.warm_memo_hits += results[i].stats.cache_memo_hits;
        point.warm_matches_oracle =
            point.warm_matches_oracle && SameSkyline(results[i], oracle[i]);
      }
      point.warm_access_reduction_pct =
          point.cold_network_accesses == 0
              ? 0.0
              : 100.0 *
                    (1.0 - static_cast<double>(point.warm_network_accesses) /
                               static_cast<double>(
                                   point.cold_network_accesses));
    }
    report.points.push_back(point);

    table.AddRow({std::to_string(workers), TablePrinter::Fixed(point.qps, 1),
                  TablePrinter::Fixed(point.p50_ms, 2),
                  TablePrinter::Fixed(point.p99_ms, 2),
                  TablePrinter::Fixed(point.wall_seconds, 3),
                  TablePrinter::Fixed(point.speedup, 2),
                  TablePrinter::Fixed(point.qps_telemetry_off, 1),
                  TablePrinter::Fixed(point.telemetry_overhead_pct, 2),
                  TablePrinter::Fixed(point.warm_qps, 1),
                  TablePrinter::Fixed(point.warm_access_reduction_pct, 1),
                  point.matches_oracle && point.warm_matches_oracle ? "yes"
                                                                    : "NO"});
  }
  std::printf("-- %s (|Q|=%zu, w=%.0f%%, batch=%zu) --\n",
              report.network.c_str(), report.query_count,
              report.density * 100.0, requests.size());
  table.Print();
  std::printf("\n");
  return report;
}

void WriteJson(const std::vector<WorkloadReport>& reports,
               const BenchEnv& env, std::size_t batch, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"throughput\",\n");
  std::fprintf(out, "  \"build_info\": %s,\n",
               obs::BuildInfoJson().c_str());
  const unsigned cores = std::thread::hardware_concurrency();
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n", cores);
  std::fprintf(out, "  \"single_core_host\": %s,\n",
               cores <= 1 ? "true" : "false");
  std::fprintf(out, "  \"scale\": %g,\n  \"requests_per_batch\": %zu,\n",
               env.scale, batch);
  std::fprintf(out, "  \"warmup_batches\": %zu,\n  \"batches_timed\": %zu,\n",
               kWarmupBatches, kTimedReps);
  std::fprintf(out,
               "  \"note\": \"latency = per-query wall clock inside the "
               "worker (log-bucketed histogram quantiles); speedup relative "
               "to the 1-worker batch; qps vs qps_telemetry_off = always-on "
               "serving telemetry vs disabled, interleaved timed reps "
               "(>=%zu, until each side accumulates %.2fs timed), min wall "
               "each\",\n",
               kTimedReps, kMinTimedSeconds);
  std::fprintf(out, "  \"workloads\": [\n");
  for (std::size_t w = 0; w < reports.size(); ++w) {
    const WorkloadReport& report = reports[w];
    std::fprintf(out,
                 "    {\"network\": \"%s\", \"query_count\": %zu, "
                 "\"object_density\": %g, \"points\": [\n",
                 report.network.c_str(), report.query_count, report.density);
    for (std::size_t p = 0; p < report.points.size(); ++p) {
      const Point& point = report.points[p];
      std::fprintf(out,
                   "      {\"workers\": %zu, \"qps\": %.2f, \"p50_ms\": %.3f,"
                   " \"p99_ms\": %.3f, \"wall_seconds\": %.4f,"
                   " \"speedup_vs_1\": %.3f, \"results_match_oracle\": %s,"
                   " \"qps_telemetry_off\": %.2f,"
                   " \"telemetry_off_wall_seconds\": %.4f,"
                   " \"telemetry_overhead_pct\": %.2f,"
                   " \"warm_qps\": %.2f, \"warm_wall_seconds\": %.4f,"
                   " \"network_page_accesses_cold\": %llu,"
                   " \"network_page_accesses_warm\": %llu,"
                   " \"warm_access_reduction_pct\": %.1f,"
                   " \"warm_wavefront_hits\": %llu,"
                   " \"warm_memo_hits\": %llu,"
                   " \"warm_results_match_oracle\": %s}%s\n",
                   point.workers, point.qps, point.p50_ms, point.p99_ms,
                   point.wall_seconds, point.speedup,
                   point.matches_oracle ? "true" : "false",
                   point.qps_telemetry_off, point.telemetry_off_wall_seconds,
                   point.telemetry_overhead_pct, point.warm_qps,
                   point.warm_wall_seconds,
                   static_cast<unsigned long long>(point.cold_network_accesses),
                   static_cast<unsigned long long>(point.warm_network_accesses),
                   point.warm_access_reduction_pct,
                   static_cast<unsigned long long>(point.warm_wavefront_hits),
                   static_cast<unsigned long long>(point.warm_memo_hits),
                   point.warm_matches_oracle ? "true" : "false",
                   p + 1 < report.points.size() ? "," : "");
    }
    std::fprintf(out, "    ]}%s\n", w + 1 < reports.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

void Run(const BenchEnv& env) {
  std::size_t batch = 48;
  if (const char* s = std::getenv("MSQ_THROUGHPUT_BATCH")) {
    const long value = std::atol(s);
    if (value > 0) batch = static_cast<std::size_t>(value);
  }
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("=== Throughput: mixed CE/EDC/LBC batches via QueryExecutor "
              "===\n(scale=%.2f, batch=%zu, host cores=%u)\n\n",
              env.scale, batch, cores);
  if (cores <= 1) {
    std::fprintf(stderr,
                 "*** WARNING: hardware_concurrency() == %u — this host has "
                 "a single usable core. ***\n"
                 "*** Multi-worker points measure scheduling overhead, NOT "
                 "parallel speedup; treat the ***\n"
                 "*** speedup_vs_1 column as a no-regression check only. "
                 "Warm-vs-cold comparisons (QPS, ***\n"
                 "*** page-access reduction) remain valid — they do not "
                 "depend on core count.          ***\n\n",
                 cores);
  }

  std::vector<WorkloadReport> reports;
  reports.push_back(RunOne(NetworkClass::kCA, env, batch));
  reports.push_back(RunOne(NetworkClass::kNA, env, batch));

  const char* path = std::getenv("MSQ_THROUGHPUT_OUT");
  if (path == nullptr) path = "BENCH_throughput.json";
  if (path[0] != '\0') WriteJson(reports, env, batch, path);
}

}  // namespace
}  // namespace msq::bench

int main() {
  msq::bench::Run(msq::bench::GetBenchEnv());
  return 0;
}
