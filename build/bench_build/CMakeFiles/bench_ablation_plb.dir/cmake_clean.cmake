file(REMOVE_RECURSE
  "../bench/bench_ablation_plb"
  "../bench/bench_ablation_plb.pdb"
  "CMakeFiles/bench_ablation_plb.dir/bench_ablation_plb.cc.o"
  "CMakeFiles/bench_ablation_plb.dir/bench_ablation_plb.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_plb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
