# Empty dependencies file for bench_ablation_plb.
# This may be replaced when dependencies are built.
