file(REMOVE_RECURSE
  "../bench/bench_fig4_candidates"
  "../bench/bench_fig4_candidates.pdb"
  "CMakeFiles/bench_fig4_candidates.dir/bench_fig4_candidates.cc.o"
  "CMakeFiles/bench_fig4_candidates.dir/bench_fig4_candidates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
