# Empty dependencies file for bench_fig6_density.
# This may be replaced when dependencies are built.
