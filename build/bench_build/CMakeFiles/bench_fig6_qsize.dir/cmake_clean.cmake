file(REMOVE_RECURSE
  "../bench/bench_fig6_qsize"
  "../bench/bench_fig6_qsize.pdb"
  "CMakeFiles/bench_fig6_qsize.dir/bench_fig6_qsize.cc.o"
  "CMakeFiles/bench_fig6_qsize.dir/bench_fig6_qsize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_qsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
