# Empty dependencies file for bench_fig6_qsize.
# This may be replaced when dependencies are built.
