file(REMOVE_RECURSE
  "CMakeFiles/facility_siting.dir/facility_siting.cpp.o"
  "CMakeFiles/facility_siting.dir/facility_siting.cpp.o.d"
  "facility_siting"
  "facility_siting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facility_siting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
