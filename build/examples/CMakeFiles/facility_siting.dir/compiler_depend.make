# Empty compiler generated dependencies file for facility_siting.
# This may be replaced when dependencies are built.
