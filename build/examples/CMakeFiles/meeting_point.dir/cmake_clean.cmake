file(REMOVE_RECURSE
  "CMakeFiles/meeting_point.dir/meeting_point.cpp.o"
  "CMakeFiles/meeting_point.dir/meeting_point.cpp.o.d"
  "meeting_point"
  "meeting_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meeting_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
