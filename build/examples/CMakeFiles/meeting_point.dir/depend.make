# Empty dependencies file for meeting_point.
# This may be replaced when dependencies are built.
