
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_support/metrics.cc" "src/CMakeFiles/msq.dir/bench_support/metrics.cc.o" "gcc" "src/CMakeFiles/msq.dir/bench_support/metrics.cc.o.d"
  "/root/repo/src/bench_support/table.cc" "src/CMakeFiles/msq.dir/bench_support/table.cc.o" "gcc" "src/CMakeFiles/msq.dir/bench_support/table.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/msq.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/msq.dir/common/rng.cc.o.d"
  "/root/repo/src/core/aggregate_nn.cc" "src/CMakeFiles/msq.dir/core/aggregate_nn.cc.o" "gcc" "src/CMakeFiles/msq.dir/core/aggregate_nn.cc.o.d"
  "/root/repo/src/core/ce.cc" "src/CMakeFiles/msq.dir/core/ce.cc.o" "gcc" "src/CMakeFiles/msq.dir/core/ce.cc.o.d"
  "/root/repo/src/core/constrained.cc" "src/CMakeFiles/msq.dir/core/constrained.cc.o" "gcc" "src/CMakeFiles/msq.dir/core/constrained.cc.o.d"
  "/root/repo/src/core/dominance.cc" "src/CMakeFiles/msq.dir/core/dominance.cc.o" "gcc" "src/CMakeFiles/msq.dir/core/dominance.cc.o.d"
  "/root/repo/src/core/edc.cc" "src/CMakeFiles/msq.dir/core/edc.cc.o" "gcc" "src/CMakeFiles/msq.dir/core/edc.cc.o.d"
  "/root/repo/src/core/lbc.cc" "src/CMakeFiles/msq.dir/core/lbc.cc.o" "gcc" "src/CMakeFiles/msq.dir/core/lbc.cc.o.d"
  "/root/repo/src/core/naive.cc" "src/CMakeFiles/msq.dir/core/naive.cc.o" "gcc" "src/CMakeFiles/msq.dir/core/naive.cc.o.d"
  "/root/repo/src/core/network_queries.cc" "src/CMakeFiles/msq.dir/core/network_queries.cc.o" "gcc" "src/CMakeFiles/msq.dir/core/network_queries.cc.o.d"
  "/root/repo/src/core/query.cc" "src/CMakeFiles/msq.dir/core/query.cc.o" "gcc" "src/CMakeFiles/msq.dir/core/query.cc.o.d"
  "/root/repo/src/core/skyband.cc" "src/CMakeFiles/msq.dir/core/skyband.cc.o" "gcc" "src/CMakeFiles/msq.dir/core/skyband.cc.o.d"
  "/root/repo/src/core/skyline_query.cc" "src/CMakeFiles/msq.dir/core/skyline_query.cc.o" "gcc" "src/CMakeFiles/msq.dir/core/skyline_query.cc.o.d"
  "/root/repo/src/euclid/bbs.cc" "src/CMakeFiles/msq.dir/euclid/bbs.cc.o" "gcc" "src/CMakeFiles/msq.dir/euclid/bbs.cc.o.d"
  "/root/repo/src/euclid/bnl.cc" "src/CMakeFiles/msq.dir/euclid/bnl.cc.o" "gcc" "src/CMakeFiles/msq.dir/euclid/bnl.cc.o.d"
  "/root/repo/src/euclid/nn_partition.cc" "src/CMakeFiles/msq.dir/euclid/nn_partition.cc.o" "gcc" "src/CMakeFiles/msq.dir/euclid/nn_partition.cc.o.d"
  "/root/repo/src/euclid/sfs.cc" "src/CMakeFiles/msq.dir/euclid/sfs.cc.o" "gcc" "src/CMakeFiles/msq.dir/euclid/sfs.cc.o.d"
  "/root/repo/src/gen/dataset_io.cc" "src/CMakeFiles/msq.dir/gen/dataset_io.cc.o" "gcc" "src/CMakeFiles/msq.dir/gen/dataset_io.cc.o.d"
  "/root/repo/src/gen/network_gen.cc" "src/CMakeFiles/msq.dir/gen/network_gen.cc.o" "gcc" "src/CMakeFiles/msq.dir/gen/network_gen.cc.o.d"
  "/root/repo/src/gen/object_gen.cc" "src/CMakeFiles/msq.dir/gen/object_gen.cc.o" "gcc" "src/CMakeFiles/msq.dir/gen/object_gen.cc.o.d"
  "/root/repo/src/gen/query_gen.cc" "src/CMakeFiles/msq.dir/gen/query_gen.cc.o" "gcc" "src/CMakeFiles/msq.dir/gen/query_gen.cc.o.d"
  "/root/repo/src/gen/workloads.cc" "src/CMakeFiles/msq.dir/gen/workloads.cc.o" "gcc" "src/CMakeFiles/msq.dir/gen/workloads.cc.o.d"
  "/root/repo/src/geom/mbr.cc" "src/CMakeFiles/msq.dir/geom/mbr.cc.o" "gcc" "src/CMakeFiles/msq.dir/geom/mbr.cc.o.d"
  "/root/repo/src/geom/point.cc" "src/CMakeFiles/msq.dir/geom/point.cc.o" "gcc" "src/CMakeFiles/msq.dir/geom/point.cc.o.d"
  "/root/repo/src/geom/segment.cc" "src/CMakeFiles/msq.dir/geom/segment.cc.o" "gcc" "src/CMakeFiles/msq.dir/geom/segment.cc.o.d"
  "/root/repo/src/graph/astar.cc" "src/CMakeFiles/msq.dir/graph/astar.cc.o" "gcc" "src/CMakeFiles/msq.dir/graph/astar.cc.o.d"
  "/root/repo/src/graph/dijkstra.cc" "src/CMakeFiles/msq.dir/graph/dijkstra.cc.o" "gcc" "src/CMakeFiles/msq.dir/graph/dijkstra.cc.o.d"
  "/root/repo/src/graph/graph_pager.cc" "src/CMakeFiles/msq.dir/graph/graph_pager.cc.o" "gcc" "src/CMakeFiles/msq.dir/graph/graph_pager.cc.o.d"
  "/root/repo/src/graph/landmarks.cc" "src/CMakeFiles/msq.dir/graph/landmarks.cc.o" "gcc" "src/CMakeFiles/msq.dir/graph/landmarks.cc.o.d"
  "/root/repo/src/graph/nn_stream.cc" "src/CMakeFiles/msq.dir/graph/nn_stream.cc.o" "gcc" "src/CMakeFiles/msq.dir/graph/nn_stream.cc.o.d"
  "/root/repo/src/graph/road_network.cc" "src/CMakeFiles/msq.dir/graph/road_network.cc.o" "gcc" "src/CMakeFiles/msq.dir/graph/road_network.cc.o.d"
  "/root/repo/src/graph/simplify.cc" "src/CMakeFiles/msq.dir/graph/simplify.cc.o" "gcc" "src/CMakeFiles/msq.dir/graph/simplify.cc.o.d"
  "/root/repo/src/graph/spatial_mapping.cc" "src/CMakeFiles/msq.dir/graph/spatial_mapping.cc.o" "gcc" "src/CMakeFiles/msq.dir/graph/spatial_mapping.cc.o.d"
  "/root/repo/src/index/bptree.cc" "src/CMakeFiles/msq.dir/index/bptree.cc.o" "gcc" "src/CMakeFiles/msq.dir/index/bptree.cc.o.d"
  "/root/repo/src/index/rtree.cc" "src/CMakeFiles/msq.dir/index/rtree.cc.o" "gcc" "src/CMakeFiles/msq.dir/index/rtree.cc.o.d"
  "/root/repo/src/storage/buffer_manager.cc" "src/CMakeFiles/msq.dir/storage/buffer_manager.cc.o" "gcc" "src/CMakeFiles/msq.dir/storage/buffer_manager.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/msq.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/msq.dir/storage/disk_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
