
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bench_support/bench_support_test.cc" "tests/CMakeFiles/msq_tests.dir/bench_support/bench_support_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/bench_support/bench_support_test.cc.o.d"
  "/root/repo/tests/common/check_test.cc" "tests/CMakeFiles/msq_tests.dir/common/check_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/common/check_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/msq_tests.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/core/aggregate_nn_test.cc" "tests/CMakeFiles/msq_tests.dir/core/aggregate_nn_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/core/aggregate_nn_test.cc.o.d"
  "/root/repo/tests/core/ce_test.cc" "tests/CMakeFiles/msq_tests.dir/core/ce_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/core/ce_test.cc.o.d"
  "/root/repo/tests/core/cross_algorithm_test.cc" "tests/CMakeFiles/msq_tests.dir/core/cross_algorithm_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/core/cross_algorithm_test.cc.o.d"
  "/root/repo/tests/core/dominance_test.cc" "tests/CMakeFiles/msq_tests.dir/core/dominance_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/core/dominance_test.cc.o.d"
  "/root/repo/tests/core/edc_test.cc" "tests/CMakeFiles/msq_tests.dir/core/edc_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/core/edc_test.cc.o.d"
  "/root/repo/tests/core/lbc_test.cc" "tests/CMakeFiles/msq_tests.dir/core/lbc_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/core/lbc_test.cc.o.d"
  "/root/repo/tests/core/naive_test.cc" "tests/CMakeFiles/msq_tests.dir/core/naive_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/core/naive_test.cc.o.d"
  "/root/repo/tests/core/network_queries_test.cc" "tests/CMakeFiles/msq_tests.dir/core/network_queries_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/core/network_queries_test.cc.o.d"
  "/root/repo/tests/core/paper_examples_test.cc" "tests/CMakeFiles/msq_tests.dir/core/paper_examples_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/core/paper_examples_test.cc.o.d"
  "/root/repo/tests/core/progressive_test.cc" "tests/CMakeFiles/msq_tests.dir/core/progressive_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/core/progressive_test.cc.o.d"
  "/root/repo/tests/core/variants_test.cc" "tests/CMakeFiles/msq_tests.dir/core/variants_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/core/variants_test.cc.o.d"
  "/root/repo/tests/euclid/euclid_test.cc" "tests/CMakeFiles/msq_tests.dir/euclid/euclid_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/euclid/euclid_test.cc.o.d"
  "/root/repo/tests/euclid/nn_partition_test.cc" "tests/CMakeFiles/msq_tests.dir/euclid/nn_partition_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/euclid/nn_partition_test.cc.o.d"
  "/root/repo/tests/gen/dataset_io_test.cc" "tests/CMakeFiles/msq_tests.dir/gen/dataset_io_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/gen/dataset_io_test.cc.o.d"
  "/root/repo/tests/gen/gen_test.cc" "tests/CMakeFiles/msq_tests.dir/gen/gen_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/gen/gen_test.cc.o.d"
  "/root/repo/tests/geom/geom_test.cc" "tests/CMakeFiles/msq_tests.dir/geom/geom_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/geom/geom_test.cc.o.d"
  "/root/repo/tests/graph/astar_stress_test.cc" "tests/CMakeFiles/msq_tests.dir/graph/astar_stress_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/graph/astar_stress_test.cc.o.d"
  "/root/repo/tests/graph/astar_test.cc" "tests/CMakeFiles/msq_tests.dir/graph/astar_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/graph/astar_test.cc.o.d"
  "/root/repo/tests/graph/dijkstra_test.cc" "tests/CMakeFiles/msq_tests.dir/graph/dijkstra_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/graph/dijkstra_test.cc.o.d"
  "/root/repo/tests/graph/graph_pager_test.cc" "tests/CMakeFiles/msq_tests.dir/graph/graph_pager_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/graph/graph_pager_test.cc.o.d"
  "/root/repo/tests/graph/landmarks_test.cc" "tests/CMakeFiles/msq_tests.dir/graph/landmarks_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/graph/landmarks_test.cc.o.d"
  "/root/repo/tests/graph/nn_stream_test.cc" "tests/CMakeFiles/msq_tests.dir/graph/nn_stream_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/graph/nn_stream_test.cc.o.d"
  "/root/repo/tests/graph/road_network_test.cc" "tests/CMakeFiles/msq_tests.dir/graph/road_network_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/graph/road_network_test.cc.o.d"
  "/root/repo/tests/graph/simplify_test.cc" "tests/CMakeFiles/msq_tests.dir/graph/simplify_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/graph/simplify_test.cc.o.d"
  "/root/repo/tests/graph/spatial_mapping_test.cc" "tests/CMakeFiles/msq_tests.dir/graph/spatial_mapping_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/graph/spatial_mapping_test.cc.o.d"
  "/root/repo/tests/index/bptree_test.cc" "tests/CMakeFiles/msq_tests.dir/index/bptree_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/index/bptree_test.cc.o.d"
  "/root/repo/tests/index/rtree_stress_test.cc" "tests/CMakeFiles/msq_tests.dir/index/rtree_stress_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/index/rtree_stress_test.cc.o.d"
  "/root/repo/tests/index/rtree_test.cc" "tests/CMakeFiles/msq_tests.dir/index/rtree_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/index/rtree_test.cc.o.d"
  "/root/repo/tests/integration/determinism_test.cc" "tests/CMakeFiles/msq_tests.dir/integration/determinism_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/integration/determinism_test.cc.o.d"
  "/root/repo/tests/integration/file_backed_test.cc" "tests/CMakeFiles/msq_tests.dir/integration/file_backed_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/integration/file_backed_test.cc.o.d"
  "/root/repo/tests/integration/fuzz_test.cc" "tests/CMakeFiles/msq_tests.dir/integration/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/integration/fuzz_test.cc.o.d"
  "/root/repo/tests/integration/integration_test.cc" "tests/CMakeFiles/msq_tests.dir/integration/integration_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/integration/integration_test.cc.o.d"
  "/root/repo/tests/storage/buffer_stress_test.cc" "tests/CMakeFiles/msq_tests.dir/storage/buffer_stress_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/storage/buffer_stress_test.cc.o.d"
  "/root/repo/tests/storage/storage_test.cc" "tests/CMakeFiles/msq_tests.dir/storage/storage_test.cc.o" "gcc" "tests/CMakeFiles/msq_tests.dir/storage/storage_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/msq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
