# Empty dependencies file for msq_tests.
# This may be replaced when dependencies are built.
