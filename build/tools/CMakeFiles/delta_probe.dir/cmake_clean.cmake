file(REMOVE_RECURSE
  "CMakeFiles/delta_probe.dir/delta_probe.cc.o"
  "CMakeFiles/delta_probe.dir/delta_probe.cc.o.d"
  "delta_probe"
  "delta_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
