# Empty dependencies file for delta_probe.
# This may be replaced when dependencies are built.
