file(REMOVE_RECURSE
  "CMakeFiles/edc_debug.dir/edc_debug.cc.o"
  "CMakeFiles/edc_debug.dir/edc_debug.cc.o.d"
  "edc_debug"
  "edc_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edc_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
