# Empty compiler generated dependencies file for edc_debug.
# This may be replaced when dependencies are built.
