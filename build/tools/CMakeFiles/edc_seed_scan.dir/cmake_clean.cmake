file(REMOVE_RECURSE
  "CMakeFiles/edc_seed_scan.dir/edc_seed_scan.cc.o"
  "CMakeFiles/edc_seed_scan.dir/edc_seed_scan.cc.o.d"
  "edc_seed_scan"
  "edc_seed_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edc_seed_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
