# Empty compiler generated dependencies file for edc_seed_scan.
# This may be replaced when dependencies are built.
