# Empty compiler generated dependencies file for fuzz_repro.
# This may be replaced when dependencies are built.
