file(REMOVE_RECURSE
  "CMakeFiles/lbc_profile.dir/lbc_profile.cc.o"
  "CMakeFiles/lbc_profile.dir/lbc_profile.cc.o.d"
  "lbc_profile"
  "lbc_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbc_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
