# Empty compiler generated dependencies file for lbc_profile.
# This may be replaced when dependencies are built.
