// Facility siting: a logistics company must pick a depot location that is
// simultaneously close (by road) to its three regional warehouses. The
// skyline over candidate sites gives every Pareto-optimal choice; the
// example also contrasts the cost of all three query algorithms on the
// same instance — the comparison the paper's evaluation section runs at
// scale.
//
//   $ ./build/examples/facility_siting
#include <cstdio>

#include "core/skyline_query.h"
#include "gen/workloads.h"

int main() {
  using namespace msq;

  // A regional road network: sparse and winding (high detour ratio), the
  // regime where the choice of algorithm matters most.
  WorkloadConfig config;
  config.network = NetworkGenConfig{5000, 6200, /*seed=*/99, 0.5};
  config.object_density = 0.3;  // candidate depot sites
  Workload workload(config);

  const double delta = MeasureDetourRatio(workload.network(), 100, 1);
  std::printf("Network: %zu junctions, %zu roads, detour ratio delta=%.2f\n",
              workload.network().node_count(),
              workload.network().edge_count(), delta);

  const SkylineQuerySpec query = workload.SampleQuery(3, /*seed=*/11);
  std::printf("Candidate sites: %zu; warehouses: %zu\n\n",
              workload.objects().size(), query.sources.size());

  struct Row {
    Algorithm algorithm;
    const char* label;
  };
  const Row rows[] = {
      {Algorithm::kNaive, "naive (full sweep)"},
      {Algorithm::kCe, "CE   (collaborative expansion)"},
      {Algorithm::kEdc, "EDC  (Euclidean constraint)"},
      {Algorithm::kLbc, "LBC  (lower bound constraint)"},
  };

  std::printf("%-34s %8s %10s %10s %9s\n", "algorithm", "skyline",
              "candidates", "pages", "time(ms)");
  std::size_t skyline_size = 0;
  for (const Row& row : rows) {
    workload.ResetBuffers();
    const SkylineResult result =
        RunSkylineQuery(row.algorithm, workload.dataset(), query);
    skyline_size = result.skyline.size();
    std::printf("%-34s %8zu %10zu %10llu %9.2f\n", row.label,
                result.skyline.size(), result.stats.candidate_count,
                static_cast<unsigned long long>(result.stats.network_pages),
                result.stats.total_seconds * 1000.0);
  }

  std::printf("\nAll four algorithms return the same %zu Pareto-optimal "
              "depot sites; they differ only in how much of the road "
              "network they touch.\n",
              skyline_size);
  return 0;
}
