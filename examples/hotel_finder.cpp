// The paper's motivating query: "find hotels which are cheap and close to
// the University, the Botanic Garden and the China Town".
//
// Builds a synthetic city road network, scatters hotels with prices
// (static attribute), runs the multi-source skyline progressively with
// LBC, and shows how the price dimension changes the answer.
//
//   $ ./build/examples/hotel_finder
#include <cstdio>

#include "core/skyline_query.h"
#include "gen/workloads.h"

int main() {
  using namespace msq;

  // A mid-sized city: 2,000 junctions, fairly dense coverage.
  WorkloadConfig config;
  config.network = NetworkGenConfig{2000, 2900, /*seed=*/2026, 0.1};
  config.object_density = 0.1;  // ~290 hotels
  config.static_attr_dims = 1;  // nightly price, normalized to [0, 1)
  config.object_seed = 7;
  Workload workload(config);

  // Three points of interest, clustered downtown (a 10% region).
  const SkylineQuerySpec query = workload.SampleQuery(3, /*seed=*/4);
  std::printf("Hotels: %zu; query points: University, Botanic Garden, "
              "China Town\n\n",
              workload.objects().size());

  // Progressive reporting: results stream out as they are confirmed, the
  // property the paper measures as "initial response time".
  std::printf("Skyline hotels (km to each POI, price):\n");
  std::size_t rank = 0;
  const SkylineResult result = RunSkylineQuery(
      Algorithm::kLbc, workload.dataset(), query,
      [&](const SkylineEntry& entry) {
        std::printf("  #%zu  hotel %-4u  %.3f / %.3f / %.3f km   $%3.0f\n",
                    ++rank, entry.object, entry.vector[0], entry.vector[1],
                    entry.vector[2], entry.vector[3] * 300.0);
      });

  std::printf("\n%zu skyline hotels out of %zu candidates examined "
              "(%llu network pages read)\n",
              result.skyline.size(), result.stats.candidate_count,
              static_cast<unsigned long long>(result.stats.network_pages));

  // For contrast: ignoring price shrinks the skyline to the spatially
  // optimal hotels only.
  Workload spatial_only(
      [&] {
        WorkloadConfig c = config;
        c.static_attr_dims = 0;
        return c;
      }());
  const SkylineResult spatial = RunSkylineQuery(
      Algorithm::kLbc, spatial_only.dataset(), query);
  std::printf("\nWithout the price attribute the skyline has %zu hotels — "
              "price adds the cheap-but-far options.\n",
              spatial.skyline.size());
  return 0;
}
