// Meeting point: a group of friends at different locations wants a café.
// Contrasts the two query flavors the paper discusses:
//   * aggregate NN (one "best" answer under a chosen aggregate — total or
//     worst-case travel), and
//   * the multi-source skyline (every Pareto-optimal trade-off, no
//     aggregate chosen up front).
// Every aggregate-NN answer is always one of the skyline points.
//
//   $ ./build/examples/meeting_point
#include <algorithm>
#include <cstdio>

#include "core/aggregate_nn.h"
#include "core/skyline_query.h"
#include "gen/workloads.h"

int main() {
  using namespace msq;

  WorkloadConfig config;
  config.network = NetworkGenConfig{3000, 4200, /*seed=*/7, 0.1};
  config.object_density = 0.15;  // cafés
  Workload workload(config);

  const SkylineQuerySpec group = workload.SampleQuery(4, /*seed=*/21);
  std::printf("%zu cafés; %zu friends.\n\n", workload.objects().size(),
              group.sources.size());

  workload.ResetBuffers();  // cold cache for comparable cost counters
  const auto by_sum = RunAggregateNnIer(workload.dataset(), group,
                                        AggregateFn::kSum, 3);
  std::printf("Minimizing TOTAL travel (sum):\n");
  for (const auto& entry : by_sum.entries) {
    std::printf("  cafe %-5u total %.3f km\n", entry.object, entry.score);
  }

  workload.ResetBuffers();
  const auto by_max = RunAggregateNnIer(workload.dataset(), group,
                                        AggregateFn::kMax, 3);
  std::printf("\nMinimizing the WORST member's travel (max):\n");
  for (const auto& entry : by_max.entries) {
    std::printf("  cafe %-5u worst %.3f km\n", entry.object, entry.score);
  }

  workload.ResetBuffers();
  const auto skyline =
      RunSkylineQuery(Algorithm::kLbc, workload.dataset(), group);
  std::printf("\nSkyline (%zu Pareto-optimal cafés; any aggregate's "
              "winner is among them):\n",
              skyline.skyline.size());
  auto in_skyline = [&](ObjectId id) {
    return std::any_of(skyline.skyline.begin(), skyline.skyline.end(),
                       [&](const SkylineEntry& e) { return e.object == id; });
  };
  std::printf("  sum-winner in skyline: %s\n",
              in_skyline(by_sum.entries.front().object) ? "yes" : "NO");
  std::printf("  max-winner in skyline: %s\n",
              in_skyline(by_max.entries.front().object) ? "yes" : "NO");

  std::printf("\ncosts (network pages): aggregate-sum %llu, "
              "aggregate-max %llu, skyline %llu\n",
              static_cast<unsigned long long>(by_sum.stats.network_pages),
              static_cast<unsigned long long>(by_max.stats.network_pages),
              static_cast<unsigned long long>(skyline.stats.network_pages));
  return 0;
}
