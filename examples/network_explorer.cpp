// CLI workbench: load a road network from an edge-list file (or generate
// one), scatter objects, and run any of the skyline algorithms with
// configurable |Q| and object density. This is the drop-in path for real
// datasets (e.g. DCW extracts converted to the edge-list format described
// in README.md).
//
//   $ ./build/examples/network_explorer --algo lbc --queries 4 --density 0.5
//   $ ./build/examples/network_explorer --file mynetwork.txt --algo ce
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/skyline_query.h"
#include "gen/dataset_io.h"
#include "gen/workloads.h"

namespace {

void Usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --file PATH      load network from edge-list file (default:\n"
      "                   generate a synthetic one)\n"
      "  --nodes N        synthetic network node count (default 3000)\n"
      "  --edges M        synthetic network edge count (default 3900)\n"
      "  --algo NAME      naive | ce | edc | edc-inc | lbc | lbc-noplb\n"
      "                   (default lbc)\n"
      "  --queries N      number of query points (default 4)\n"
      "  --density W      object density |D|/|E| (default 0.5)\n"
      "  --seed S         workload seed (default 1)\n"
      "  --attrs K        static attribute dimensions (default 0)\n"
      "  --objects PATH   load object locations from file (see\n"
      "                   gen/dataset_io.h for the format)\n"
      "  --attr-file PATH load static attributes from file\n"
      "  --landmarks L    build an ALT index with L landmarks (default 0)\n"
      "  --alternate      rotate LBC's discovery source across all query\n"
      "                   points (LBC only)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msq;

  std::string file, objects_file, attrs_file;
  std::size_t nodes = 3000, edges = 3900, queries = 4, attrs = 0;
  std::size_t landmarks = 0;
  bool alternate = false;
  double density = 0.5;
  std::uint64_t seed = 1;
  Algorithm algorithm = Algorithm::kLbc;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--file") == 0) {
      file = need_value("--file");
    } else if (std::strcmp(argv[i], "--nodes") == 0) {
      nodes = std::strtoull(need_value("--nodes"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--edges") == 0) {
      edges = std::strtoull(need_value("--edges"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--algo") == 0) {
      const char* name = need_value("--algo");
      if (!ParseAlgorithm(name, &algorithm)) {
        std::fprintf(stderr, "unknown algorithm '%s' (valid: %s)\n", name,
                     AlgorithmNames().c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      queries = std::strtoull(need_value("--queries"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--density") == 0) {
      density = std::atof(need_value("--density"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--attrs") == 0) {
      attrs = std::strtoull(need_value("--attrs"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--objects") == 0) {
      objects_file = need_value("--objects");
    } else if (std::strcmp(argv[i], "--attr-file") == 0) {
      attrs_file = need_value("--attr-file");
    } else if (std::strcmp(argv[i], "--landmarks") == 0) {
      landmarks = std::strtoull(need_value("--landmarks"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--alternate") == 0) {
      alternate = true;
    } else {
      Usage(argv[0]);
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }

  WorkloadConfig config;
  config.network = NetworkGenConfig{nodes, edges, seed, 0.0};
  config.object_density = density;
  config.static_attr_dims = attrs;
  config.object_seed = seed * 1001;
  config.landmark_count = landmarks;

  std::unique_ptr<Workload> workload;
  if (!file.empty()) {
    std::string error;
    auto network = RoadNetwork::LoadFromEdgeListFile(file, &error);
    if (!network.has_value()) {
      std::fprintf(stderr, "failed to load network: %s\n", error.c_str());
      return 1;
    }
    if (network->clamped_edge_count() > 0) {
      std::fprintf(stderr,
                   "note: %zu edge lengths were below the endpoint "
                   "Euclidean distance and were clamped up\n",
                   network->clamped_edge_count());
    }
    if (!objects_file.empty()) {
      auto loaded_objects = LoadLocations(objects_file, *network, &error);
      if (!loaded_objects.has_value()) {
        std::fprintf(stderr, "failed to load objects: %s\n", error.c_str());
        return 1;
      }
      std::vector<DistVector> loaded_attrs;
      if (!attrs_file.empty()) {
        auto parsed = LoadAttributes(attrs_file, &error);
        if (!parsed.has_value() ||
            parsed->size() != loaded_objects->size()) {
          std::fprintf(stderr, "failed to load attributes: %s\n",
                       error.c_str());
          return 1;
        }
        loaded_attrs = std::move(*parsed);
      }
      workload = std::make_unique<Workload>(config, std::move(*network),
                                            std::move(*loaded_objects),
                                            std::move(loaded_attrs));
    } else {
      workload = std::make_unique<Workload>(config, std::move(*network));
    }
  } else {
    workload = std::make_unique<Workload>(config);
  }

  const auto spec = workload->SampleQuery(queries, seed + 17);
  std::printf("network: %zu nodes, %zu edges; objects: %zu; |Q|=%zu; "
              "algorithm: %s\n\n",
              workload->network().node_count(),
              workload->network().edge_count(),
              workload->objects().size(), spec.sources.size(),
              std::string(AlgorithmName(algorithm)).c_str());

  SkylineResult result;
  if (alternate && algorithm == Algorithm::kLbc) {
    result = RunLbc(workload->dataset(), spec,
                    LbcOptions{.alternate_sources = true});
  } else {
    result = RunSkylineQuery(algorithm, workload->dataset(), spec);
  }

  std::printf("skyline (%zu points):\n", result.skyline.size());
  for (const SkylineEntry& entry : result.skyline) {
    std::printf("  object %-6u [", entry.object);
    for (std::size_t d = 0; d < entry.vector.size(); ++d) {
      std::printf("%s%.4f", d ? ", " : "", entry.vector[d]);
    }
    std::printf("]\n");
  }
  std::printf("\ncandidates:      %zu\n", result.stats.candidate_count);
  std::printf("network pages:   %llu\n",
              static_cast<unsigned long long>(result.stats.network_pages));
  std::printf("index pages:     %llu\n",
              static_cast<unsigned long long>(result.stats.index_pages));
  std::printf("settled nodes:   %zu\n", result.stats.settled_nodes);
  std::printf("total time:      %.2f ms\n",
              result.stats.total_seconds * 1000.0);
  std::printf("initial result:  %.2f ms\n",
              result.stats.initial_seconds * 1000.0);
  return 0;
}
