// Quickstart: build a small road network by hand, place a few objects,
// run a 2-source skyline query with LBC, and print the answer.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/skyline_query.h"
#include "gen/workloads.h"

int main() {
  using namespace msq;

  // A 3x3 Manhattan-style grid of junctions in a 1 km x 1 km area.
  //   6 -- 7 -- 8
  //   |    |    |
  //   3 -- 4 -- 5
  //   |    |    |
  //   0 -- 1 -- 2
  RoadNetwork network;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      network.AddNode(Point{c * 0.5, r * 0.5});
    }
  }
  std::vector<EdgeId> horizontal, vertical;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      const NodeId id = static_cast<NodeId>(r * 3 + c);
      if (c < 2) horizontal.push_back(network.AddEdge(id, id + 1));
      if (r < 2) vertical.push_back(network.AddEdge(id, id + 3));
    }
  }
  network.Finalize();

  // Three restaurants, each at some offset along an edge.
  const std::vector<Location> restaurants = {
      {horizontal[0], 0.25},  // on the bottom-left road
      {horizontal[3], 0.10},  // middle row
      {vertical[5], 0.40},    // right column
  };

  // Assemble the query stack (paged storage, indexes, middle layer).
  WorkloadConfig config;
  Workload workload(config, std::move(network), restaurants);

  // Two friends at different corners want a restaurant close to both.
  SkylineQuerySpec query;
  query.sources = {
      {horizontal[0], 0.0},  // at junction 0 (bottom-left)
      {horizontal[5], 0.5},  // at junction 8 (top-right)
  };

  const SkylineResult result =
      RunSkylineQuery(Algorithm::kLbc, workload.dataset(), query);

  std::printf("Skyline restaurants (network km to each friend):\n");
  for (const SkylineEntry& entry : result.skyline) {
    std::printf("  restaurant %u: %.3f km / %.3f km\n", entry.object,
                entry.vector[0], entry.vector[1]);
  }
  std::printf("\ncost: %llu network disk pages, %zu candidates\n",
              static_cast<unsigned long long>(result.stats.network_pages),
              result.stats.candidate_count);
  return 0;
}
