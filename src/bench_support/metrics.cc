#include "bench_support/metrics.h"

#include <cmath>
#include <cstdio>

#include "obs/export.h"

namespace msq {

void Series::Add(double value) {
  ++count_;
  if (count_ == 1) {
    mean_ = min_ = max_ = value;
    return;
  }
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

double Series::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

void StatsAccumulator::Add(const QueryStats& stats) {
  candidates_.Add(static_cast<double>(stats.candidate_count));
  skyline_.Add(static_cast<double>(stats.skyline_size));
  network_pages_.Add(static_cast<double>(stats.network_pages));
  index_pages_.Add(static_cast<double>(stats.index_pages));
  settled_.Add(static_cast<double>(stats.settled_nodes));
  total_seconds_.Add(stats.total_seconds);
  initial_seconds_.Add(stats.initial_seconds);
}

std::string QueryStatsJsonLine(const std::string& label,
                               const QueryStats& stats) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"label\":\"%s\",\"candidates\":%zu,\"skyline\":%zu,"
      "\"network_pages\":%llu,\"network_page_accesses\":%llu,"
      "\"index_pages\":%llu,\"index_page_accesses\":%llu,"
      "\"settled_nodes\":%zu,\"total_seconds\":%.6f,"
      "\"initial_seconds\":%.6f}",
      obs::JsonEscape(label).c_str(), stats.candidate_count,
      stats.skyline_size,
      static_cast<unsigned long long>(stats.network_pages),
      static_cast<unsigned long long>(stats.network_page_accesses),
      static_cast<unsigned long long>(stats.index_pages),
      static_cast<unsigned long long>(stats.index_page_accesses),
      stats.settled_nodes, stats.total_seconds, stats.initial_seconds);
  return buf;
}

}  // namespace msq
