#include "bench_support/metrics.h"

namespace msq {

void StatsAccumulator::Add(const QueryStats& stats) {
  ++runs_;
  candidates_ += static_cast<double>(stats.candidate_count);
  skyline_ += static_cast<double>(stats.skyline_size);
  network_pages_ += static_cast<double>(stats.network_pages);
  index_pages_ += static_cast<double>(stats.index_pages);
  settled_ += static_cast<double>(stats.settled_nodes);
  total_seconds_ += stats.total_seconds;
  initial_seconds_ += stats.initial_seconds;
}

namespace {
double Mean(double sum, std::size_t n) {
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}
}  // namespace

double StatsAccumulator::mean_candidates() const {
  return Mean(candidates_, runs_);
}
double StatsAccumulator::mean_skyline() const { return Mean(skyline_, runs_); }
double StatsAccumulator::mean_network_pages() const {
  return Mean(network_pages_, runs_);
}
double StatsAccumulator::mean_index_pages() const {
  return Mean(index_pages_, runs_);
}
double StatsAccumulator::mean_settled() const { return Mean(settled_, runs_); }
double StatsAccumulator::mean_total_seconds() const {
  return Mean(total_seconds_, runs_);
}
double StatsAccumulator::mean_initial_seconds() const {
  return Mean(initial_seconds_, runs_);
}

}  // namespace msq
