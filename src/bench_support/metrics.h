// Aggregation of QueryStats across repeated runs — the paper reports "the
// average of ten tests" for every figure.
#ifndef MSQ_BENCH_SUPPORT_METRICS_H_
#define MSQ_BENCH_SUPPORT_METRICS_H_

#include <cstddef>
#include <string>

#include "core/query.h"

namespace msq {

// Running summary of one scalar measure: mean via Welford's algorithm (the
// sum-of-squares shortcut cancels catastrophically for tightly clustered
// timings), plus min/max extremes.
class Series {
 public:
  void Add(double value);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  // Sample standard deviation (n-1 denominator); 0 for fewer than two runs.
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double min_ = 0.0;
  double max_ = 0.0;
};

// Per-measure summaries of the per-query cost measures.
class StatsAccumulator {
 public:
  void Add(const QueryStats& stats);

  std::size_t runs() const { return total_seconds_.count(); }
  double mean_candidates() const { return candidates_.mean(); }
  double mean_skyline() const { return skyline_.mean(); }
  double mean_network_pages() const { return network_pages_.mean(); }
  double mean_index_pages() const { return index_pages_.mean(); }
  double mean_settled() const { return settled_.mean(); }
  double mean_total_seconds() const { return total_seconds_.mean(); }
  double mean_initial_seconds() const { return initial_seconds_.mean(); }

  const Series& candidates() const { return candidates_; }
  const Series& skyline() const { return skyline_; }
  const Series& network_pages() const { return network_pages_; }
  const Series& index_pages() const { return index_pages_; }
  const Series& settled() const { return settled_; }
  const Series& total_seconds() const { return total_seconds_; }
  const Series& initial_seconds() const { return initial_seconds_; }

 private:
  Series candidates_, skyline_, network_pages_, index_pages_, settled_,
      total_seconds_, initial_seconds_;
};

// One QueryStats as a single-line JSON object (stable key order), for
// machine-readable benchmark logs. `label` tags the emitting measurement
// (e.g. "fig5.CE.q4").
std::string QueryStatsJsonLine(const std::string& label,
                               const QueryStats& stats);

}  // namespace msq

#endif  // MSQ_BENCH_SUPPORT_METRICS_H_
