// Aggregation of QueryStats across repeated runs — the paper reports "the
// average of ten tests" for every figure.
#ifndef MSQ_BENCH_SUPPORT_METRICS_H_
#define MSQ_BENCH_SUPPORT_METRICS_H_

#include <cstddef>

#include "core/query.h"

namespace msq {

// Running means of the per-query cost measures.
class StatsAccumulator {
 public:
  void Add(const QueryStats& stats);

  std::size_t runs() const { return runs_; }
  double mean_candidates() const;
  double mean_skyline() const;
  double mean_network_pages() const;
  double mean_index_pages() const;
  double mean_settled() const;
  double mean_total_seconds() const;
  double mean_initial_seconds() const;

 private:
  std::size_t runs_ = 0;
  double candidates_ = 0, skyline_ = 0, network_pages_ = 0, index_pages_ = 0,
         settled_ = 0, total_seconds_ = 0, initial_seconds_ = 0;
};

}  // namespace msq

#endif  // MSQ_BENCH_SUPPORT_METRICS_H_
