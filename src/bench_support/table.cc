#include "bench_support/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace msq {

TablePrinter::TablePrinter(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out += row[i];
      if (i + 1 < row.size()) {
        out.append(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out += '\n';
  }
  return out;
}

void TablePrinter::Print() const {
  const std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
}

std::string TablePrinter::Fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Integer(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld",
                static_cast<long long>(std::llround(value)));
  return buf;
}

}  // namespace msq
