// Minimal fixed-width table printer for the figure-reproduction benches.
#ifndef MSQ_BENCH_SUPPORT_TABLE_H_
#define MSQ_BENCH_SUPPORT_TABLE_H_

#include <string>
#include <vector>

namespace msq {

// Collects rows of string cells and prints them with aligned columns.
// Example output:
//
//   |Q|   CE      EDC     LBC
//   2     0.180   0.150   0.050
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Renders to stdout with two-space column gaps.
  void Print() const;
  // Renders to a string (tests).
  std::string ToString() const;

  // Cell formatting helpers.
  static std::string Fixed(double value, int precision);
  static std::string Integer(double value);

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace msq

#endif  // MSQ_BENCH_SUPPORT_TABLE_H_
