#include "cache/query_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace msq {
namespace {

// Global cache.* metrics, cached once like the graph-layer counters.
struct CacheMetrics {
  obs::Counter* wavefront_hits;
  obs::Counter* wavefront_misses;
  obs::Counter* wavefront_inserts;
  obs::Counter* wavefront_evictions;
  obs::Counter* memo_hits;
  obs::Counter* memo_misses;
  obs::Counter* memo_inserts;
  obs::Counter* memo_evictions;
  obs::Counter* invalidations;
  obs::Gauge* bytes;
};

const CacheMetrics& Metrics() {
  static const CacheMetrics metrics = [] {
    obs::MetricsRegistry& reg = obs::GlobalMetrics();
    return CacheMetrics{
        reg.counter(obs::metric::kCacheWavefrontHits),
        reg.counter(obs::metric::kCacheWavefrontMisses),
        reg.counter(obs::metric::kCacheWavefrontInserts),
        reg.counter(obs::metric::kCacheWavefrontEvictions),
        reg.counter(obs::metric::kCacheMemoHits),
        reg.counter(obs::metric::kCacheMemoMisses),
        reg.counter(obs::metric::kCacheMemoInserts),
        reg.counter(obs::metric::kCacheMemoEvictions),
        reg.counter(obs::metric::kCacheInvalidations),
        reg.gauge(obs::metric::kCacheBytes),
    };
  }();
  return metrics;
}

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Rough per-entry bookkeeping overhead (list node + hash slot).
constexpr std::size_t kEntryOverhead = 64;

}  // namespace

Dist CheckpointRadius(const DijkstraSearch::Checkpoint& checkpoint) {
  // The frontier heap may hold stale entries (re-labeled or settled since
  // pushed), but every labeled-unsettled node also has a live entry whose
  // dist equals its label. The radius is therefore the minimum label over
  // unsettled frontier nodes.
  Dist radius = kInfDist;
  for (const DijkstraSearch::HeapItem& item : checkpoint.frontier) {
    if (checkpoint.settled[item.node]) continue;
    radius = std::min(radius, checkpoint.dist[item.node]);
  }
  return radius;
}

WavefrontProbe ProbeCheckpoint(const RoadNetwork& network,
                               const DijkstraSearch::Checkpoint& checkpoint,
                               Dist radius, Location source, Location target) {
  const RoadNetwork::Edge& e = network.EdgeAt(target.edge);
  const auto [tu, tv] = network.EndpointDistances(target);

  // Every source->target path either runs along the shared edge or enters
  // the target edge through an endpoint.
  Dist exact_candidate = kInfDist;
  if (target.edge == source.edge) {
    exact_candidate = std::abs(target.offset - source.offset);
  }
  // Least possible cost of any route through a not-yet-settled endpoint.
  Dist unsettled_floor = kInfDist;

  const NodeId nodes[2] = {e.u, e.v};
  const Dist offsets[2] = {tu, tv};
  for (int i = 0; i < 2; ++i) {
    if (checkpoint.settled[nodes[i]]) {
      exact_candidate =
          std::min(exact_candidate, checkpoint.dist[nodes[i]] + offsets[i]);
    } else {
      unsettled_floor = std::min(unsettled_floor, radius + offsets[i]);
    }
  }

  WavefrontProbe probe;
  // Exact when the best fully-settled route cannot be undercut by anything
  // still beyond the frontier (<= is safe: equality means the unsettled
  // route can at best tie).
  probe.exact = exact_candidate <= unsettled_floor;
  probe.bound = std::min(exact_candidate, unsettled_floor);
  return probe;
}

QueryCache::QueryCache(QueryCacheConfig config)
    : config_(config),
      shard_budget_(config.max_bytes /
                    std::max<std::size_t>(1, config.shard_count)) {
  MSQ_CHECK(config_.shard_count > 0);
  shards_.reserve(config_.shard_count);
  for (std::size_t i = 0; i < config_.shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::size_t QueryCache::KeyHash::operator()(const Key& key) const {
  std::uint64_t offset_bits;
  static_assert(sizeof(offset_bits) == sizeof(key.offset));
  std::memcpy(&offset_bits, &key.offset, sizeof(offset_bits));
  std::uint64_t h = SplitMix64(key.edge);
  h = SplitMix64(h ^ offset_bits);
  h = SplitMix64(h ^ key.object);
  return static_cast<std::size_t>(h);
}

QueryCache::Key QueryCache::Canonical(const Location& source,
                                      ObjectId object) {
  Key key;
  key.edge = source.edge;
  // Normalize -0.0 so the two zero representations share one cache line.
  key.offset = source.offset == 0.0 ? 0.0 : source.offset;
  key.object = object;
  return key;
}

QueryCache::Shard& QueryCache::ShardFor(const Key& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

void QueryCache::AccountBytesDelta(std::ptrdiff_t delta) {
  const std::size_t now =
      bytes_.fetch_add(static_cast<std::size_t>(delta),
                       std::memory_order_relaxed) +
      static_cast<std::size_t>(delta);
  Metrics().bytes->Update(static_cast<double>(now));
}

void QueryCache::Insert(const Key& key, Entry entry) {
  const bool is_wavefront = entry.snapshot != nullptr;
  if (entry.bytes > shard_budget_) {
    // Would evict an entire shard and still not fit; refuse and count it
    // as an eviction so the refusal is visible.
    evictions_.fetch_add(1, std::memory_order_relaxed);
    (is_wavefront ? Metrics().wavefront_evictions : Metrics().memo_evictions)
        ->Inc();
    return;
  }

  Shard& shard = ShardFor(key);
  std::ptrdiff_t delta = 0;
  std::uint64_t evicted_wavefronts = 0;
  std::uint64_t evicted_memos = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      delta -= static_cast<std::ptrdiff_t>(it->second->bytes);
      shard.bytes -= it->second->bytes;
      shard.lru.erase(it->second);
      shard.map.erase(it);
    }
    delta += static_cast<std::ptrdiff_t>(entry.bytes);
    shard.bytes += entry.bytes;
    shard.lru.push_front(std::move(entry));
    shard.map.emplace(key, shard.lru.begin());

    while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
      const Entry& victim = shard.lru.back();
      delta -= static_cast<std::ptrdiff_t>(victim.bytes);
      shard.bytes -= victim.bytes;
      if (victim.snapshot != nullptr) {
        ++evicted_wavefronts;
      } else {
        ++evicted_memos;
      }
      shard.map.erase(victim.key);
      shard.lru.pop_back();
    }
  }

  (is_wavefront ? wavefront_inserts_ : memo_inserts_)
      .fetch_add(1, std::memory_order_relaxed);
  (is_wavefront ? Metrics().wavefront_inserts : Metrics().memo_inserts)
      ->Inc();
  if (evicted_wavefronts + evicted_memos > 0) {
    evictions_.fetch_add(evicted_wavefronts + evicted_memos,
                         std::memory_order_relaxed);
    if (evicted_wavefronts > 0) {
      Metrics().wavefront_evictions->Inc(evicted_wavefronts);
    }
    if (evicted_memos > 0) Metrics().memo_evictions->Inc(evicted_memos);
  }
  if (delta != 0) AccountBytesDelta(delta);
}

QueryCache::WavefrontPtr QueryCache::FindWavefront(const Location& source,
                                                   std::uint64_t layout_epoch) {
  // Detail span (head-sampled queries only): shard lock + LRU touch.
  obs::Span probe_span = obs::DetailSpan("cache.wavefront_probe");
  const Key key = Canonical(source, kInvalidObject);
  Shard& shard = ShardFor(key);
  WavefrontPtr snapshot;
  bool dropped_stale = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      if (it->second->layout_epoch == layout_epoch) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        snapshot = it->second->snapshot;
      } else {
        // Stale layout: the snapshot's node numbering no longer matches
        // the pager. Miss, and drop the entry so it can't linger.
        shard.bytes -= it->second->bytes;
        AccountBytesDelta(-static_cast<std::ptrdiff_t>(it->second->bytes));
        shard.lru.erase(it->second);
        shard.map.erase(it);
        dropped_stale = true;
      }
    }
  }
  if (dropped_stale) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    Metrics().wavefront_evictions->Inc();
  }
  if (snapshot != nullptr) {
    wavefront_hits_.fetch_add(1, std::memory_order_relaxed);
    Metrics().wavefront_hits->Inc();
    ++obs::ThreadLocalCounters().cache_wavefront_hits;
  } else {
    wavefront_misses_.fetch_add(1, std::memory_order_relaxed);
    Metrics().wavefront_misses->Inc();
    ++obs::ThreadLocalCounters().cache_wavefront_misses;
  }
  return snapshot;
}

void QueryCache::StoreWavefront(const Location& source,
                                NetworkNnStream::Snapshot snapshot,
                                std::uint64_t layout_epoch) {
  Entry entry;
  entry.key = Canonical(source, kInvalidObject);
  entry.snapshot = std::make_shared<const NetworkNnStream::Snapshot>(
      std::move(snapshot));
  entry.bytes = entry.snapshot->bytes() + kEntryOverhead;
  entry.layout_epoch = layout_epoch;
  const Key key = entry.key;
  Insert(key, std::move(entry));
}

std::optional<Dist> QueryCache::FindDistance(const Location& source,
                                             ObjectId object,
                                             std::uint64_t layout_epoch) {
  obs::Span probe_span = obs::DetailSpan("cache.memo_probe");
  MSQ_CHECK(object != kInvalidObject);
  const Key key = Canonical(source, object);
  Shard& shard = ShardFor(key);
  std::optional<Dist> found;
  bool dropped_stale = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      if (it->second->layout_epoch == layout_epoch) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        found = it->second->dist;
      } else {
        shard.bytes -= it->second->bytes;
        AccountBytesDelta(-static_cast<std::ptrdiff_t>(it->second->bytes));
        shard.lru.erase(it->second);
        shard.map.erase(it);
        dropped_stale = true;
      }
    }
  }
  if (dropped_stale) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    Metrics().memo_evictions->Inc();
  }
  if (found.has_value()) {
    memo_hits_.fetch_add(1, std::memory_order_relaxed);
    Metrics().memo_hits->Inc();
    ++obs::ThreadLocalCounters().cache_memo_hits;
  } else {
    memo_misses_.fetch_add(1, std::memory_order_relaxed);
    Metrics().memo_misses->Inc();
    ++obs::ThreadLocalCounters().cache_memo_misses;
  }
  return found;
}

void QueryCache::StoreDistance(const Location& source, ObjectId object,
                               Dist dist, std::uint64_t layout_epoch) {
  MSQ_CHECK(object != kInvalidObject);
  Entry entry;
  entry.key = Canonical(source, object);
  entry.dist = dist;
  entry.bytes = sizeof(Entry) + kEntryOverhead;
  entry.layout_epoch = layout_epoch;
  const Key key = entry.key;
  Insert(key, std::move(entry));
}

void QueryCache::Invalidate() {
  std::ptrdiff_t delta = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    delta -= static_cast<std::ptrdiff_t>(shard->bytes);
    shard->bytes = 0;
    shard->map.clear();
    shard->lru.clear();
  }
  epoch_.fetch_add(1, std::memory_order_relaxed);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  Metrics().invalidations->Inc();
  if (delta != 0) AccountBytesDelta(delta);
}

QueryCache::Stats QueryCache::stats() const {
  Stats stats;
  stats.wavefront_hits = wavefront_hits_.load(std::memory_order_relaxed);
  stats.wavefront_misses = wavefront_misses_.load(std::memory_order_relaxed);
  stats.wavefront_inserts =
      wavefront_inserts_.load(std::memory_order_relaxed);
  stats.memo_hits = memo_hits_.load(std::memory_order_relaxed);
  stats.memo_misses = memo_misses_.load(std::memory_order_relaxed);
  stats.memo_inserts = memo_inserts_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  return stats;
}

std::size_t QueryCache::bytes() const {
  return bytes_.load(std::memory_order_relaxed);
}

}  // namespace msq
