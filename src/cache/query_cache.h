// Cross-query reuse layer (DESIGN.md §11).
//
// Two tiers, one byte budget:
//
//  * Wavefront snapshots — when a query finishes, the per-source
//    NetworkNnStream (CE's expansion engine) is checkpointed: settled
//    labels, frontier heap, per-object distance estimates. A later query
//    from the same source resumes the stream instead of re-expanding from
//    scratch. Snapshots are immutable and handed out as
//    shared_ptr<const Snapshot>, so a reader keeps its copy alive across
//    eviction or invalidation.
//
//  * Distance memo — exact (source Location, ObjectId) -> Dist pairs
//    harvested from settled searches (CE emissions, EDC/LBC probe
//    completions). Consulted before any expansion; a memo hit costs zero
//    page accesses.
//
// A partially expanded wavefront still helps queries it cannot answer
// exactly: ProbeCheckpoint derives an admissible network-distance lower
// bound from the settled labels and the frontier radius, tightening the
// Euclidean/landmark bounds LBC screens with.
//
// Concurrency: lock-striped like BufferManager — the key hash picks a
// shard, each shard serializes its map + LRU list under its own mutex.
// Eviction is LRU by bytes within each shard (budget / shard_count each).
// Invalidate() empties every shard and bumps the epoch; callers that
// swapped the dataset must call it before reusing the cache.
//
// Counting discipline: hits and misses are a DISTINCT access class,
// reported through cache.* metrics and ThreadCounters — never folded into
// buffer page accesses. QueryStats reconciliation (obs/trace.h) depends on
// this separation.
#ifndef MSQ_CACHE_QUERY_CACHE_H_
#define MSQ_CACHE_QUERY_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/nn_stream.h"
#include "graph/road_network.h"

namespace msq {

struct QueryCacheConfig {
  // Total byte budget across both tiers and all shards.
  std::size_t max_bytes = 64u << 20;
  // Lock stripes. Keys map to shards by hash; each shard owns
  // max_bytes / shard_count.
  std::size_t shard_count = 8;
};

// Lower bound on the distance from the checkpoint's source to every
// not-yet-settled node (the wavefront radius at checkpoint time).
// kInfDist when the frontier is exhausted — every reachable node settled.
// O(frontier); compute once per checkpoint and pass to ProbeCheckpoint.
Dist CheckpointRadius(const DijkstraSearch::Checkpoint& checkpoint);

struct WavefrontProbe {
  // Admissible lower bound on net_dist(source, target): never exceeds the
  // true distance, so it can tighten any lower-bound screen.
  Dist bound = 0;
  // True when `bound` IS the exact network distance (both target-edge
  // endpoints settled, or an exact candidate provably beats every path
  // through the unsettled frontier).
  bool exact = false;
};

// Probes a checkpointed wavefront for the distance from its source to
// `target`. `radius` must be CheckpointRadius(checkpoint). `source` must be
// the location the checkpoint was expanded from.
WavefrontProbe ProbeCheckpoint(const RoadNetwork& network,
                               const DijkstraSearch::Checkpoint& checkpoint,
                               Dist radius, Location source, Location target);

// Thread-safe, byte-budgeted, two-tier cross-query cache. One instance is
// shared by every worker of a QueryExecutor (Dataset::cache).
class QueryCache {
 public:
  using WavefrontPtr = std::shared_ptr<const NetworkNnStream::Snapshot>;

  explicit QueryCache(QueryCacheConfig config = QueryCacheConfig{});

  // Every entry is stamped with the GraphPager data epoch it was built
  // against (`layout_epoch` parameters below; see
  // GraphPager::data_epoch(), which starts at layout_epoch() and advances
  // past every committed mutation). A Find under a different epoch treats
  // the entry as a miss AND drops it. Wavefront snapshots hold node-indexed
  // state (settled bitmaps, frontier heaps), so resuming one against a
  // renumbered graph — or against a graph whose edge weights or resident
  // objects changed — would be silent corruption; its size even matches.
  // Distance memos are edge-keyed and would survive a pure relabel, but
  // they are stamped under the same rule: an epoch change marks "the world
  // the entry was computed in is gone", and one invalidation rule for both
  // tiers is the safe one. The default 0 keeps single-layout callers
  // (tests, direct use without a pager) on one consistent namespace.

  // --- Wavefront tier ---------------------------------------------------

  // Snapshot for `source`, or null on miss. Counts one wavefront hit or
  // miss (global metrics + calling thread's ThreadCounters).
  WavefrontPtr FindWavefront(const Location& source,
                             std::uint64_t layout_epoch = 0);

  // Stores (or replaces) the snapshot for `source`. A snapshot larger than
  // one shard's budget is rejected and counted as an eviction.
  void StoreWavefront(const Location& source,
                      NetworkNnStream::Snapshot snapshot,
                      std::uint64_t layout_epoch = 0);

  // --- Distance memo tier -----------------------------------------------

  // Exact network distance for (source, object) if memoized. Counts one
  // memo hit or miss.
  std::optional<Dist> FindDistance(const Location& source, ObjectId object,
                                   std::uint64_t layout_epoch = 0);

  // Memoizes an EXACT network distance. Callers must never store bounds.
  void StoreDistance(const Location& source, ObjectId object, Dist dist,
                     std::uint64_t layout_epoch = 0);

  // --- Lifecycle --------------------------------------------------------

  // Drops every entry in both tiers and advances the epoch. Required after
  // a dataset reload: cached distances are meaningless against a new graph.
  void Invalidate();

  struct Stats {
    std::uint64_t wavefront_hits = 0;
    std::uint64_t wavefront_misses = 0;
    std::uint64_t wavefront_inserts = 0;
    std::uint64_t memo_hits = 0;
    std::uint64_t memo_misses = 0;
    std::uint64_t memo_inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
  };
  // Instance-scoped totals (the cache.* global metrics aggregate across
  // instances; tests use this to stay isolated).
  Stats stats() const;

  // Current resident bytes across all shards.
  std::size_t bytes() const;

  // Generation count, advanced by Invalidate().
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  const QueryCacheConfig& config() const { return config_; }

 private:
  // One key namespace for both tiers: memo entries carry the object id,
  // wavefront entries use kInvalidObject. Offsets are compared bit-for-bit
  // after normalizing -0.0, the cache's source canonicalization.
  struct Key {
    EdgeId edge = 0;
    Dist offset = 0;
    ObjectId object = kInvalidObject;

    bool operator==(const Key& other) const {
      return edge == other.edge && offset == other.offset &&
             object == other.object;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };

  struct Entry {
    Key key;
    WavefrontPtr snapshot;  // null for memo entries
    Dist dist = 0;          // memo value
    std::size_t bytes = 0;
    std::uint64_t layout_epoch = 0;  // pager layout the entry was built on
  };

  // front = most recently used.
  using LruList = std::list<Entry>;

  struct Shard {
    std::mutex mu;
    LruList lru;
    std::unordered_map<Key, LruList::iterator, KeyHash> map;
    std::size_t bytes = 0;
  };

  static Key Canonical(const Location& source, ObjectId object);
  Shard& ShardFor(const Key& key);
  // Inserts/replaces under the shard lock, then evicts LRU entries until
  // the shard fits its budget slice.
  void Insert(const Key& key, Entry entry);
  void AccountBytesDelta(std::ptrdiff_t delta);

  const QueryCacheConfig config_;
  const std::size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::uint64_t> epoch_{0};

  std::atomic<std::uint64_t> wavefront_hits_{0};
  std::atomic<std::uint64_t> wavefront_misses_{0};
  std::atomic<std::uint64_t> wavefront_inserts_{0};
  std::atomic<std::uint64_t> memo_hits_{0};
  std::atomic<std::uint64_t> memo_misses_{0};
  std::atomic<std::uint64_t> memo_inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
};

}  // namespace msq

#endif  // MSQ_CACHE_QUERY_CACHE_H_
