// Lightweight invariant-checking macros.
//
// Internal invariant violations abort with a location message (the library
// is deterministic given its inputs, so an invariant failure is always a
// programming error, not an environmental one). Environmental failures —
// I/O errors, checksum mismatches, invalid user input, exhausted query
// budgets — report through common/status.h instead: Status/StatusOr at the
// storage layer, the StorageFault funnel inside deep read paths, and an
// error SkylineResult at the query entry points. Never use these macros on
// a condition the outside world can make false.
#ifndef MSQ_COMMON_CHECK_H_
#define MSQ_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Aborts with a message when `cond` is false. Enabled in all build types:
// the checked conditions are cheap relative to the shortest-path work they
// guard, and silent corruption of query results is worse than an abort.
#define MSQ_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MSQ_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Check with a printf-style explanation appended.
#define MSQ_CHECK_MSG(cond, ...)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MSQ_CHECK failed: %s at %s:%d: ", #cond,        \
                   __FILE__, __LINE__);                                     \
      std::fprintf(stderr, __VA_ARGS__);                                    \
      std::fprintf(stderr, "\n");                                           \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Debug-only check for hot loops.
#ifdef NDEBUG
#define MSQ_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define MSQ_DCHECK(cond) MSQ_CHECK(cond)
#endif

#endif  // MSQ_COMMON_CHECK_H_
