// Lightweight invariant-checking macros.
//
// The query-processing code paths never throw; internal invariant violations
// abort with a location message instead (the library is deterministic given
// its inputs, so an invariant failure is always a programming error, not an
// environmental one). Fallible operations (file loading, user input
// validation) report through return values, not through these macros.
#ifndef MSQ_COMMON_CHECK_H_
#define MSQ_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Aborts with a message when `cond` is false. Enabled in all build types:
// the checked conditions are cheap relative to the shortest-path work they
// guard, and silent corruption of query results is worse than an abort.
#define MSQ_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MSQ_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Check with a printf-style explanation appended.
#define MSQ_CHECK_MSG(cond, ...)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MSQ_CHECK failed: %s at %s:%d: ", #cond,        \
                   __FILE__, __LINE__);                                     \
      std::fprintf(stderr, __VA_ARGS__);                                    \
      std::fprintf(stderr, "\n");                                           \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Debug-only check for hot loops.
#ifdef NDEBUG
#define MSQ_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define MSQ_DCHECK(cond) MSQ_CHECK(cond)
#endif

#endif  // MSQ_COMMON_CHECK_H_
