// CRC-32C (Castagnoli) over byte buffers, used for page integrity trailers.
//
// Software slice-by-one implementation: page checksumming is a 4 KB pass per
// physical I/O, far below the cost of the I/O itself, so portability beats
// SSE4.2 intrinsics here.
#ifndef MSQ_COMMON_CRC32_H_
#define MSQ_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace msq {

// CRC of `size` bytes starting at `data`, seeded with `seed` (pass the
// previous CRC to checksum a buffer in chunks; 0 for a fresh computation).
std::uint32_t Crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

}  // namespace msq

#endif  // MSQ_COMMON_CRC32_H_
