#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace msq {
namespace {

// SplitMix64 step; used to expand the seed into xoshiro state.
std::uint64_t SplitMix64(std::uint64_t* x) {
  std::uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(&s);
}

std::uint64_t Rng::Next() {
  // xoshiro256** scrambler.
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  MSQ_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  MSQ_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range.
    return static_cast<std::int64_t>(Next());
  }
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextGaussian(double mean, double stddev) {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return mean + stddev * radius * std::cos(theta);
}

}  // namespace msq
