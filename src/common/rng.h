// Deterministic random number generator used by the workload generators.
//
// All experiments in the paper are averages over randomized workloads; a
// seeded, self-contained generator keeps every figure reproducible from the
// command line.
#ifndef MSQ_COMMON_RNG_H_
#define MSQ_COMMON_RNG_H_

#include <cstdint>

namespace msq {

// Small, fast SplitMix64/xoshiro-style generator. Deliberately not
// std::mt19937: the standard engines are not guaranteed to produce identical
// streams across library versions for the distribution adaptors, and the
// generators here must make benchmarks bit-reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Next raw 64-bit value.
  std::uint64_t Next();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  // Gaussian sample with the given mean and standard deviation
  // (Box-Muller; uses two uniform draws per pair of samples).
  double NextGaussian(double mean, double stddev);

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace msq

#endif  // MSQ_COMMON_RNG_H_
