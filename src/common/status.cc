#include "common/status.h"

#include <cerrno>
#include <cstring>

namespace msq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status IoErrorFromErrno(const std::string& context) {
  const int err = errno;
  std::string msg = context;
  msg += ": ";
  msg += std::strerror(err);
  msg += " (errno ";
  msg += std::to_string(err);
  msg += ")";
  return Status::IoError(std::move(msg));
}

}  // namespace msq
