// Error propagation for fallible operations (I/O, corrupt input, query
// limits).
//
// The storage layers (DiskManager, BufferManager) return Status/StatusOr
// directly. The paged structures (GraphPager, RTree, BpTree, SpatialMapping)
// expose Status-returning public read APIs; their recursive internals funnel
// failures through the StorageFault exception, which the query entry points
// (RunSkylineQuery and the per-algorithm Run* functions) catch and convert
// into an error SkylineResult. Invariant violations — programming errors,
// not environmental failures — still abort via common/check.h.
#ifndef MSQ_COMMON_STATUS_H_
#define MSQ_COMMON_STATUS_H_

#include <exception>
#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace msq {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,    // caller-supplied input is unusable
  kNotFound,           // a named resource does not exist
  kIoError,            // the operating system failed a read/write/open
  kCorruption,         // stored bytes fail checksum or structural validation
  kUnavailable,        // transient failure; retrying may succeed
  kResourceExhausted,  // a budget (e.g. page accesses) ran out
  kDeadlineExceeded,   // a wall-clock deadline passed
  kInternal,           // invariant-adjacent failure surfaced as an error
};

// Stable upper-case name ("IO_ERROR", ...) for logs and test assertions.
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  // Whether a retry of the failed operation may succeed.
  bool transient() const { return code_ == StatusCode::kUnavailable; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  // "CODE_NAME: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Appends errno context ("...: <strerror> (errno N)") to `context`.
Status IoErrorFromErrno(const std::string& context);

// Value-or-error return. Engaged exactly when status().ok().
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    MSQ_CHECK(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Aborts when not ok (programming error at the call site; fallible
  // callers must check ok() or use ValueOrThrow).
  T& value() & {
    MSQ_CHECK_MSG(ok(), "StatusOr::value on error: %s",
                  status_.ToString().c_str());
    return *value_;
  }
  const T& value() const& {
    MSQ_CHECK_MSG(ok(), "StatusOr::value on error: %s",
                  status_.ToString().c_str());
    return *value_;
  }
  // Move-out overload so move-only payloads (e.g. PageGuard) can be taken
  // straight from a returned temporary.
  T&& value() && {
    MSQ_CHECK_MSG(ok(), "StatusOr::value on error: %s",
                  status_.ToString().c_str());
    return *std::move(value_);
  }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Exception carrying a Status through deep read paths (tree recursions,
// wavefront loops) whose signatures stay value-oriented. Thrown only via
// OkOrThrow/ValueOrThrow; caught at Status-returning API boundaries and at
// the query entry points. Never escapes the library's public surface.
class StorageFault : public std::exception {
 public:
  explicit StorageFault(Status status)
      : status_(std::move(status)), what_(status_.ToString()) {}

  const Status& status() const { return status_; }
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  Status status_;
  std::string what_;
};

inline void OkOrThrow(const Status& status) {
  if (!status.ok()) throw StorageFault(status);
}

template <typename T>
T ValueOrThrow(StatusOr<T> status_or) {
  if (!status_or.ok()) throw StorageFault(status_or.status());
  return std::move(status_or.value());
}

}  // namespace msq

#endif  // MSQ_COMMON_STATUS_H_
