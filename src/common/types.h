// Core identifier and numeric types shared across the library.
#ifndef MSQ_COMMON_TYPES_H_
#define MSQ_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace msq {

// Identifier of a road-network node (junction). Dense, 0-based.
using NodeId = std::uint32_t;
// Identifier of a road-network edge (road segment). Dense, 0-based.
using EdgeId = std::uint32_t;
// Identifier of a data object in D. Dense, 0-based.
using ObjectId = std::uint32_t;
// Identifier of a disk page.
using PageId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();
inline constexpr ObjectId kInvalidObject =
    std::numeric_limits<ObjectId>::max();
inline constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();

// Network/Euclidean distances. `kInfDist` encodes "no path" (dN = infinity
// in the paper's Section 3).
using Dist = double;
inline constexpr Dist kInfDist = std::numeric_limits<Dist>::infinity();

}  // namespace msq

#endif  // MSQ_COMMON_TYPES_H_
