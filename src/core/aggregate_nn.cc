#include "core/aggregate_nn.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "common/check.h"
#include "core/naive.h"
#include "graph/astar.h"
#include "index/rtree.h"

namespace msq {
namespace {

// Keeps the best-k entries seen so far (max-heap on score).
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) {}

  void Offer(AggregateNnResult::Entry entry) {
    if (!std::isfinite(entry.score)) return;
    if (heap_.size() < k_) {
      heap_.push(std::move(entry));
      return;
    }
    if (entry.score < heap_.top().score) {
      heap_.pop();
      heap_.push(std::move(entry));
    }
  }

  // k-th best score so far (worst retained); kInfDist while under-full.
  Dist Threshold() const {
    return heap_.size() < k_ ? kInfDist : heap_.top().score;
  }

  std::vector<AggregateNnResult::Entry> Extract() {
    std::vector<AggregateNnResult::Entry> entries;
    entries.reserve(heap_.size());
    while (!heap_.empty()) {
      entries.push_back(heap_.top());
      heap_.pop();
    }
    std::reverse(entries.begin(), entries.end());
    return entries;
  }

 private:
  struct ByScore {
    bool operator()(const AggregateNnResult::Entry& a,
                    const AggregateNnResult::Entry& b) const {
      return a.score < b.score;
    }
  };
  std::size_t k_;
  std::priority_queue<AggregateNnResult::Entry,
                      std::vector<AggregateNnResult::Entry>, ByScore>
      heap_;
};

}  // namespace

Dist AggregateScore(AggregateFn fn, const DistVector& distances) {
  Dist score = 0.0;
  for (const Dist d : distances) {
    switch (fn) {
      case AggregateFn::kSum:
        score += d;
        break;
      case AggregateFn::kMax:
        score = std::max(score, d);
        break;
    }
  }
  return score;
}

AggregateNnResult RunAggregateNnNaive(const Dataset& dataset,
                                      const SkylineQuerySpec& spec,
                                      AggregateFn fn, std::size_t k) {
  // Extension algorithms keep the abort-on-invalid contract; only the
  // paper's main entry points degrade gracefully.
  MSQ_CHECK(ValidateQuery(dataset, spec).ok());
  StatsScope scope(dataset, spec.trace, "ann.naive");
  AggregateNnResult result;

  std::size_t settled = 0;
  const auto vectors = ComputeAllNetworkVectors(dataset, spec, &settled);
  TopK top_k(k);
  for (ObjectId id = 0; id < vectors.size(); ++id) {
    AggregateNnResult::Entry entry;
    entry.object = id;
    entry.distances = vectors[id];
    entry.score = AggregateScore(fn, vectors[id]);
    top_k.Offer(std::move(entry));
  }
  result.entries = top_k.Extract();
  result.stats.candidate_count = dataset.object_count();
  result.stats.settled_nodes = settled;
  scope.Finish(&result.stats);
  return result;
}

AggregateNnResult RunAggregateNnIer(const Dataset& dataset,
                                    const SkylineQuerySpec& spec,
                                    AggregateFn fn, std::size_t k) {
  // Extension algorithms keep the abort-on-invalid contract; only the
  // paper's main entry points degrade gracefully.
  MSQ_CHECK(ValidateQuery(dataset, spec).ok());
  StatsScope scope(dataset, spec.trace, "ann.ier");
  AggregateNnResult result;

  const std::size_t n = spec.sources.size();
  std::vector<Point> query_points;
  query_points.reserve(n);
  std::vector<std::unique_ptr<AStarSearch>> searches;
  for (const Location& source : spec.sources) {
    query_points.push_back(dataset.network->LocationPosition(source));
    searches.push_back(std::make_unique<AStarSearch>(
        dataset.graph_pager, source, dataset.landmarks));
  }

  // Best-first browse of the object R-tree by aggregate Euclidean
  // distance, a lower bound on the aggregate network distance.
  struct QueueItem {
    Dist bound;
    bool is_node;
    PageId page;
    ObjectId object;
    bool operator>(const QueueItem& other) const {
      return bound > other.bound;
    }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>
      queue;
  auto enqueue_node = [&](PageId page) {
    const RTreeNode node = dataset.object_rtree->ReadNode(page);
    for (const RTreeEntry& e : node.entries) {
      DistVector lb;
      lb.reserve(n);
      for (const Point& q : query_points) lb.push_back(e.mbr.MinDist(q));
      QueueItem item;
      item.bound = AggregateScore(fn, lb);
      item.is_node = !node.is_leaf;
      item.page = node.is_leaf ? kInvalidPage : e.id;
      item.object = node.is_leaf ? e.id : kInvalidObject;
      queue.push(item);
    }
  };
  enqueue_node(dataset.object_rtree->root_page());

  TopK top_k(k);
  while (!queue.empty()) {
    const QueueItem top = queue.top();
    queue.pop();
    // Termination: everything unfetched has aggregate Euclidean distance
    // >= top.bound, and aggregate network distance >= that.
    if (top.bound >= top_k.Threshold()) break;
    if (top.is_node) {
      enqueue_node(top.page);
      continue;
    }
    ++result.stats.candidate_count;
    AggregateNnResult::Entry entry;
    entry.object = top.object;
    entry.distances.reserve(n);
    const Location& loc = dataset.mapping->ObjectLocation(top.object);
    for (auto& search : searches) {
      entry.distances.push_back(search->DistanceTo(loc));
    }
    if (!AllFinite(entry.distances)) continue;
    entry.score = AggregateScore(fn, entry.distances);
    top_k.Offer(std::move(entry));
  }

  result.entries = top_k.Extract();
  std::size_t settled = 0;
  for (const auto& search : searches) settled += search->settled_count();
  result.stats.settled_nodes = settled;
  scope.Finish(&result.stats);
  return result;
}

}  // namespace msq
