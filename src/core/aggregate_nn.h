// Aggregate (group) nearest-neighbor queries in road networks.
//
// The problem the paper positions itself against (Section 2): "group NN
// [Papadias et al., ICDE 2004] and aggregate NN [Yiu, Mamoulis, Papadias,
// TKDE 2005] queries find the k objects with the minimum aggregated
// credit, such as the minimum total distance to a group of query points" —
// e.g. a meeting place minimizing everyone's travel. The skyline returns
// every Pareto-optimal trade-off; the aggregate NN collapses the vector to
// one score.
//
// Two algorithms:
//  * naive — full distance matrix, then top-k by score (oracle/baseline);
//  * IER (Incremental Euclidean Restriction, the strategy of [26] that
//    EDC step 1/2 borrows) — browse objects in ascending *aggregate
//    Euclidean* distance via the R-tree, resolve each candidate's
//    aggregate *network* distance with shared-label A*, and stop once the
//    k-th best network score is no worse than the Euclidean lower bound
//    of everything unfetched.
#ifndef MSQ_CORE_AGGREGATE_NN_H_
#define MSQ_CORE_AGGREGATE_NN_H_

#include <vector>

#include "core/query.h"

namespace msq {

enum class AggregateFn {
  kSum,  // total travel distance of the group
  kMax,  // worst member's travel distance
};

struct AggregateNnResult {
  struct Entry {
    ObjectId object = kInvalidObject;
    Dist score = kInfDist;      // aggregate network distance
    DistVector distances;       // per-query-point network distances
  };
  std::vector<Entry> entries;   // ascending score, at most k
  QueryStats stats;
};

// Exact top-k by full sweep.
AggregateNnResult RunAggregateNnNaive(const Dataset& dataset,
                                      const SkylineQuerySpec& spec,
                                      AggregateFn fn, std::size_t k);

// Exact top-k by Incremental Euclidean Restriction.
AggregateNnResult RunAggregateNnIer(const Dataset& dataset,
                                    const SkylineQuerySpec& spec,
                                    AggregateFn fn, std::size_t k);

// The aggregate of a distance vector under `fn`.
Dist AggregateScore(AggregateFn fn, const DistVector& distances);

}  // namespace msq

#endif  // MSQ_CORE_AGGREGATE_NN_H_
