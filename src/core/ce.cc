#include "core/ce.h"

#include <cmath>
#include <exception>
#include <memory>
#include <thread>

#include "cache/query_cache.h"
#include "common/check.h"
#include "graph/nn_stream.h"
#include "obs/metrics.h"

namespace msq {
namespace {

// Opens one NN stream per query point, resuming each from the cross-query
// cache when a wavefront snapshot for its source is present. `resumes`
// records the consulted snapshots (null on miss) so the close path can
// tell whether a stream actually grew.
std::vector<std::unique_ptr<NetworkNnStream>> OpenStreams(
    const Dataset& dataset, const SkylineQuerySpec& spec,
    std::vector<QueryCache::WavefrontPtr>* resumes) {
  std::vector<std::unique_ptr<NetworkNnStream>> streams;
  streams.reserve(spec.sources.size());
  resumes->clear();
  for (const Location& source : spec.sources) {
    QueryCache::WavefrontPtr resume;
    if (dataset.cache != nullptr) {
      resume = dataset.cache->FindWavefront(
          source, dataset.graph_pager->data_epoch());
    }
    streams.push_back(std::make_unique<NetworkNnStream>(
        dataset.graph_pager, dataset.mapping, source, resume.get()));
    resumes->push_back(std::move(resume));
  }
  return streams;
}

// Checkpoints every stream back into the cache. Streams that resumed a
// snapshot and never expanded past it are skipped — re-storing an
// identical snapshot would only churn bytes and LRU order (the find
// already refreshed recency).
void StoreStreams(
    const Dataset& dataset, const SkylineQuerySpec& spec,
    const std::vector<std::unique_ptr<NetworkNnStream>>& streams,
    const std::vector<QueryCache::WavefrontPtr>& resumes) {
  if (dataset.cache == nullptr) return;
  for (std::size_t q = 0; q < streams.size(); ++q) {
    if (resumes[q] != nullptr &&
        streams[q]->settled_count() == resumes[q]->search.settled_count) {
      continue;
    }
    dataset.cache->StoreWavefront(spec.sources[q], streams[q]->MakeSnapshot(),
                                  dataset.graph_pager->data_epoch());
  }
}

// Hands per-source emissions to the round-robin merge loop.
//
// Sequential mode (null runner) forwards Next() straight to the stream —
// byte-identical to the historical code path, page access order included.
//
// Parallel mode exploits that each source's emission sequence is a pure
// function of (source, object set, graph): whenever a buffer runs dry,
// every live source produces its next chunk of emissions as one TaskRunner
// task, and the merge loop then REPLAYS the buffered emissions in the
// exact round-robin order the sequential code consumes. The merged
// sequence — and everything derived from it, skyline included — is
// byte-identical to sequential execution; only the read-ahead differs, so
// page/settle counters can exceed a sequential run's (deterministically:
// chunk boundaries depend on consumption order, not thread scheduling).
//
// Accounting: a production task snapshots its thread's ThreadCounters
// around the work and the consuming thread absorbs the delta at the
// refill barrier, so the query's StatsScope/QueryGuard/TraceSession
// windows stay exact (deltas from tasks the consumer helped run inline
// are already in its block and are not re-absorbed). A StorageFault
// thrown inside a task is captured and rethrown on the consuming thread
// after the barrier, keeping the query-boundary failure model intact.
class EmissionFeed {
 public:
  EmissionFeed(std::vector<std::unique_ptr<NetworkNnStream>>* streams,
               TaskRunner* runner)
      : streams_(streams), runner_(runner), buffers_(streams->size()) {}

  // Next emission of source `qi` — exactly NetworkNnStream::Next()
  // semantics, with production possibly batched ahead.
  std::optional<NetworkNnStream::Visit> Next(std::size_t qi) {
    if (runner_ == nullptr) return (*streams_)[qi]->Next();
    Buffer& buf = buffers_[qi];
    if (buf.head == buf.items.size() && !buf.exhausted) Refill();
    if (buf.head == buf.items.size()) return std::nullopt;
    return buf.items[buf.head++];
  }

 private:
  struct Buffer {
    std::vector<NetworkNnStream::Visit> items;
    std::size_t head = 0;   // next emission to replay
    bool exhausted = false; // stream returned nullopt during production
  };

  // Emissions produced per source per refill. Large enough to amortize
  // the barrier, small enough to keep the read-ahead past a truncation
  // point modest.
  static constexpr std::size_t kChunk = 64;

  void Refill();

  std::vector<std::unique_ptr<NetworkNnStream>>* streams_;
  TaskRunner* runner_;
  std::vector<Buffer> buffers_;
};

void EmissionFeed::Refill() {
  // Top up every live source, not just the dry one: round-robin
  // consumption drains all buffers within one round of each other, so one
  // barrier refills them all and the next n*kChunk turns run barrier-free.
  struct Production {
    std::size_t source = 0;
    std::size_t want = 0;
    std::vector<NetworkNnStream::Visit> items;
    bool exhausted = false;
    obs::ThreadCounters delta;
    std::thread::id produced_on;
    std::exception_ptr error;
  };
  std::vector<Production> productions;
  for (std::size_t q = 0; q < buffers_.size(); ++q) {
    Buffer& buf = buffers_[q];
    if (buf.exhausted) continue;
    buf.items.erase(buf.items.begin(),
                    buf.items.begin() + static_cast<std::ptrdiff_t>(buf.head));
    buf.head = 0;
    if (buf.items.size() >= kChunk) continue;
    Production p;
    p.source = q;
    p.want = kChunk - buf.items.size();
    productions.push_back(std::move(p));
  }
  if (productions.empty()) return;

  std::vector<std::function<void()>> tasks;
  tasks.reserve(productions.size());
  for (Production& p : productions) {
    NetworkNnStream* stream = (*streams_)[p.source].get();
    tasks.push_back([&p, stream] {
      p.produced_on = std::this_thread::get_id();
      const obs::ThreadCounters before = obs::ThreadLocalCounters();
      try {
        p.items.reserve(p.want);
        for (std::size_t k = 0; k < p.want; ++k) {
          const auto visit = stream->Next();
          if (!visit.has_value()) {
            p.exhausted = true;
            break;
          }
          p.items.push_back(*visit);
        }
      } catch (...) {
        p.error = std::current_exception();
      }
      p.delta = obs::ThreadLocalCounters().Delta(before);
    });
  }
  runner_->RunAll(std::move(tasks));

  // Merge on the consuming thread: counters first (so even a faulting
  // refill leaves the query's accounting exact), then the emissions.
  const std::thread::id self = std::this_thread::get_id();
  std::exception_ptr error;
  for (Production& p : productions) {
    if (p.produced_on != self) obs::ThreadLocalCounters().Absorb(p.delta);
    Buffer& buf = buffers_[p.source];
    buf.items.insert(buf.items.end(), p.items.begin(), p.items.end());
    buf.exhausted = p.exhausted;
    if (p.error != nullptr && error == nullptr) error = p.error;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

// Per-object bookkeeping shared by both phases.
struct ObjectState {
  DistVector dist;            // network distances; kInfDist until visited
  std::uint32_t visit_count = 0;
  bool candidate = false;     // member of C
  bool determined = false;    // reported as skyline or pruned
};

// Whether skyline point `s` (complete vector, static attributes appended)
// provably dominates candidate `c` given c's partially known distances.
// For an unknown dimension i, dN(qi, c) >= s.dist[i] holds because query
// point qi's stream emits in ascending order and it has already emitted s.
// Returns true only when strict dominance is certain.
bool ProvablyDominates(const DistVector& s_vec, const ObjectState& c,
                       const DistVector& c_attrs, std::size_t n) {
  bool strict = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isfinite(c.dist[i])) {
      if (s_vec[i] > c.dist[i]) return false;
      if (s_vec[i] < c.dist[i]) strict = true;
    }
    // Unknown dimension: s_vec[i] <= dN(qi, c), never contradicts, never
    // certainly strict.
  }
  for (std::size_t j = 0; j < c_attrs.size(); ++j) {
    if (s_vec[n + j] > c_attrs[j]) return false;
    if (s_vec[n + j] < c_attrs[j]) strict = true;
  }
  return strict;
}

// Generalized CE for datasets with static attributes. The two-phase
// paper formulation is wrong there: its filtering phase stops at the first
// object visited by all query points and discards everything unvisited as
// dominated — but with attribute dimensions an unvisited (farther) object
// can still win on attributes. This variant keeps the collaborative
// round-robin expansion and instead prunes each object individually, using
// the streams' emission radii as distance lower bounds plus the statically
// known attributes.
SkylineResult RunCeGeneralized(const Dataset& dataset,
                               const SkylineQuerySpec& spec,
                               const ProgressiveCallback& on_skyline) {
  obs::TraceSession* const trace = spec.trace;
  StatsScope scope(dataset, trace, "ce");
  SkylineResult result;
  QueryGuard guard(dataset, spec.limits);
  const std::size_t n = spec.sources.size();
  const std::size_t m = dataset.object_count();

  std::vector<QueryCache::WavefrontPtr> resumes;
  std::vector<std::unique_ptr<NetworkNnStream>> streams =
      OpenStreams(dataset, spec, &resumes);
  // Radius each resumed wavefront had already reached: emissions at or
  // inside it were answered by the cached snapshot, not fresh expansion
  // (plan cache-tier attribution; only consulted when a plan is taken).
  std::vector<Dist> resume_radius(n, -1.0);
  if (spec.plan != nullptr) {
    for (std::size_t q = 0; q < n; ++q) {
      if (resumes[q] != nullptr) {
        resume_radius[q] = CheckpointRadius(resumes[q]->search);
      }
    }
  }
  EmissionFeed feed(&streams, spec.runner);
  std::vector<bool> exhausted(n, false);
  // Emission radius per stream: a lower bound on every unvisited object's
  // distance to that query point.
  std::vector<Dist> radius(n, 0.0);

  std::vector<ObjectState> state(m);
  for (ObjectState& s : state) s.dist.assign(n, kInfDist);
  std::vector<bool> visited_once(m, false);
  std::size_t undetermined = m;

  std::vector<DistVector> skyline_vectors;

  auto full_vector = [&](ObjectId id) {
    DistVector vec = state[id].dist;
    const DistVector attrs = dataset.StaticAttributesOf(id);
    vec.insert(vec.end(), attrs.begin(), attrs.end());
    return vec;
  };

  // Whether skyline vector `s` provably dominates object `id` given the
  // known distances, the per-stream radii, and the static attributes.
  auto provably_dominated = [&](const DistVector& s, ObjectId id) {
    const ObjectState& obj = state[id];
    const DistVector attrs = dataset.StaticAttributesOf(id);
    bool strict = false;
    for (std::size_t q = 0; q < n; ++q) {
      const Dist bound =
          std::isfinite(obj.dist[q]) ? obj.dist[q] : radius[q];
      if (s[q] > bound) return false;
      if (s[q] < bound) strict = true;
    }
    for (std::size_t j = 0; j < attrs.size(); ++j) {
      if (s[n + j] > attrs[j]) return false;
      if (s[n + j] < attrs[j]) strict = true;
    }
    return strict;
  };

  auto prune_scan = [&]() {
    obs::Span span(trace, "ce.prune");
    for (ObjectId id = 0; id < m; ++id) {
      if (state[id].determined) continue;
      for (const DistVector& s : skyline_vectors) {
        if (provably_dominated(s, id)) {
          state[id].determined = true;
          --undetermined;
          // Pruned on radius lower bounds before its vector was complete.
          CountBoundPruned();
          break;
        }
      }
    }
  };

  std::size_t turn = 0;
  std::size_t exhausted_count = 0;
  obs::Span expand_span(trace, "ce.expand");
  while (exhausted_count < n && undetermined > 0) {
    if (guard.Exceeded()) {
      // Progressive cut-off: everything already in result.skyline was
      // confirmed at emission, so the prefix stands.
      result.truncated = true;
      result.truncation_reason = guard.reason();
      break;
    }
    const std::size_t qi = turn % n;
    ++turn;
    if (exhausted[qi]) continue;
    const auto visit = feed.Next(qi);
    if (!visit.has_value()) {
      exhausted[qi] = true;
      ++exhausted_count;
      continue;
    }
    radius[qi] = visit->distance;
    if (spec.plan != nullptr) {
      if (visit->distance <= resume_radius[qi]) {
        spec.plan->RecordWavefrontExact();
      } else {
        spec.plan->RecordComputed();
      }
    }
    if (dataset.cache != nullptr) {
      // Emissions are exact network distances — harvest into the memo for
      // the point-to-point paths EDC/LBC would otherwise recompute.
      dataset.cache->StoreDistance(spec.sources[qi], visit->object,
                                   visit->distance,
                                   dataset.graph_pager->data_epoch());
    }
    ObjectState& obj = state[visit->object];
    if (!visited_once[visit->object]) {
      visited_once[visit->object] = true;
      ++result.stats.candidate_count;
    }
    if (obj.determined) continue;
    obj.dist[qi] = visit->distance;
    ++obj.visit_count;
    if (obj.visit_count == n) {
      obj.determined = true;
      --undetermined;
      // All n distances were resolved exactly: fully examined.
      CountBoundExamined();
      const DistVector vec = full_vector(visit->object);
      bool dominated = false;
      for (std::size_t si = 0; si < skyline_vectors.size(); ++si) {
        if (Dominates(skyline_vectors[si], vec)) {
          CountDominanceAvoided(skyline_vectors.size() - si - 1);
          dominated = true;
          break;
        }
      }
      if (!dominated) {
        scope.MarkInitial();
        SkylineEntry entry;
        entry.object = visit->object;
        entry.vector = vec;
        if (on_skyline) on_skyline(entry);
        result.skyline.push_back(entry);
        skyline_vectors.push_back(vec);
        prune_scan();
      }
    } else if ((turn & 63u) == 0) {
      // Radii grew; give unfinished objects a chance to be pruned so the
      // expansion can stop before full exhaustion.
      prune_scan();
    }
  }

  expand_span.Close();

  // Tie safety, as in the base variant.
  obs::Span finalize_span(trace, "ce.finalize");
  std::vector<SkylineEntry> filtered;
  for (const SkylineEntry& entry : result.skyline) {
    bool dominated = false;
    for (std::size_t oi = 0; oi < result.skyline.size(); ++oi) {
      const SkylineEntry& other = result.skyline[oi];
      if (other.object != entry.object &&
          Dominates(other.vector, entry.vector)) {
        CountDominanceAvoided(result.skyline.size() - oi - 1);
        dominated = true;
        break;
      }
    }
    if (!dominated) filtered.push_back(entry);
  }
  result.skyline = std::move(filtered);
  finalize_span.Close();

  result.stats.skyline_size = result.skyline.size();
  // Cost accounting counts only this run's expansion: a stream resumed
  // from a cached wavefront inherits the snapshot's settled set without
  // paying for it (the plan's per-source view reports the total extent).
  std::size_t settled = 0;
  for (const auto& stream : streams) settled += stream->fresh_settled_count();
  result.stats.settled_nodes = settled;
  if (spec.plan != nullptr) {
    for (std::size_t q = 0; q < n; ++q) {
      spec.plan->RecordSource(q, streams[q]->settled_count(), radius[q],
                              resumes[q] != nullptr);
    }
  }
  StoreStreams(dataset, spec, streams, resumes);
  scope.Finish(&result.stats);
  return result;
}

// The paper's two-phase (filtering + refinement) CE for purely
// distance-dimension queries.
SkylineResult RunCeFiltering(const Dataset& dataset,
                             const SkylineQuerySpec& spec,
                             const ProgressiveCallback& on_skyline) {
  obs::TraceSession* const trace = spec.trace;
  StatsScope scope(dataset, trace, "ce");
  SkylineResult result;
  QueryGuard guard(dataset, spec.limits);

  const std::size_t n = spec.sources.size();
  const std::size_t m = dataset.object_count();

  std::vector<QueryCache::WavefrontPtr> resumes;
  std::vector<std::unique_ptr<NetworkNnStream>> streams =
      OpenStreams(dataset, spec, &resumes);
  // See RunCeGeneralized: cached-wavefront radius per resumed stream for
  // plan cache-tier attribution.
  std::vector<Dist> resume_radius(n, -1.0);
  if (spec.plan != nullptr) {
    for (std::size_t q = 0; q < n; ++q) {
      if (resumes[q] != nullptr) {
        resume_radius[q] = CheckpointRadius(resumes[q]->search);
      }
    }
  }
  EmissionFeed feed(&streams, spec.runner);
  std::vector<bool> exhausted(n, false);

  std::vector<ObjectState> state(m);
  for (ObjectState& s : state) s.dist.assign(n, kInfDist);

  std::vector<DistVector> skyline_vectors;  // with attributes appended
  std::size_t candidates_open = 0;
  bool filtering = true;
  // Distance vector of the first skyline point (the object that ended the
  // filtering phase). Every object first encountered afterwards is
  // component-wise >= it, so such an object can only be skyline by tying
  // it exactly — the one tie case the paper's "simply discarded" rule
  // would lose.
  DistVector first_skyline_vec;

  // Builds the full comparison vector (distances + attributes) of `id`.
  auto full_vector = [&](ObjectId id) {
    DistVector vec = state[id].dist;
    const DistVector attrs = dataset.StaticAttributesOf(id);
    vec.insert(vec.end(), attrs.begin(), attrs.end());
    return vec;
  };

  // Handles an object whose distance vector just became complete: reports
  // it if undominated and prunes candidates it provably dominates.
  auto determine = [&](ObjectId id) {
    ObjectState& obj = state[id];
    MSQ_CHECK(obj.candidate && !obj.determined);
    obj.determined = true;
    --candidates_open;
    // Determination means every distance was resolved: fully examined.
    CountBoundExamined();
    const DistVector vec = full_vector(id);
    for (std::size_t si = 0; si < skyline_vectors.size(); ++si) {
      if (Dominates(skyline_vectors[si], vec)) {
        CountDominanceAvoided(skyline_vectors.size() - si - 1);
        return;  // dominated: silently pruned
      }
    }
    scope.MarkInitial();
    SkylineEntry entry;
    entry.object = id;
    entry.vector = vec;
    if (on_skyline) on_skyline(entry);
    result.skyline.push_back(entry);
    skyline_vectors.push_back(vec);

    // Prune candidates that the new skyline point provably dominates.
    for (ObjectId c = 0; c < m; ++c) {
      ObjectState& cand = state[c];
      if (!cand.candidate || cand.determined) continue;
      if (ProvablyDominates(vec, cand, dataset.StaticAttributesOf(c), n)) {
        cand.determined = true;
        --candidates_open;
        // Pruned on partial distances + emission-order lower bounds.
        CountBoundPruned();
      }
    }
  };

  // Round-robin expansion over the query points. The filtering phase span
  // flips to refinement when the first complete object ends it.
  std::size_t turn = 0;
  std::size_t exhausted_count = 0;
  std::vector<Dist> last_emit(n, -1.0);
  obs::Span phase_span(trace, "ce.filter");
  while (exhausted_count < n) {
    if (guard.Exceeded()) {
      // Progressive cut-off: emitted entries were confirmed, keep them.
      result.truncated = true;
      result.truncation_reason = guard.reason();
      break;
    }
    const std::size_t qi = turn % n;
    ++turn;
    if (exhausted[qi]) continue;

    const auto visit = feed.Next(qi);
    if (!visit.has_value()) {
      exhausted[qi] = true;
      ++exhausted_count;
      continue;
    }
    last_emit[qi] = visit->distance;
    if (spec.plan != nullptr) {
      if (visit->distance <= resume_radius[qi]) {
        spec.plan->RecordWavefrontExact();
      } else {
        spec.plan->RecordComputed();
      }
    }
    if (dataset.cache != nullptr) {
      // Exact emission distance — harvest into the cross-query memo.
      dataset.cache->StoreDistance(spec.sources[qi], visit->object,
                                   visit->distance,
                                   dataset.graph_pager->data_epoch());
    }

    ObjectState& obj = state[visit->object];
    if (filtering) {
      // Every object encountered during filtering becomes a candidate.
      if (!obj.candidate) {
        obj.candidate = true;
        ++candidates_open;
        ++result.stats.candidate_count;
      }
    } else if (!obj.candidate) {
      // Refinement phase: a new object is component-wise >= the first
      // skyline point, so unless this visit ties that point's distance it
      // is strictly dominated and discarded (the paper's rule); exact ties
      // stay live so co-located duplicates are not lost.
      if (visit->distance != first_skyline_vec[qi]) {
        if (!obj.determined) {
          // First discard of this object: pruned on the emission-order
          // lower bound without ever becoming a candidate.
          obj.determined = true;
          CountBoundPruned();
        }
        continue;
      }
      // Already discarded through another stream: the strict-dominance
      // proof stands, an exact tie elsewhere cannot undo it.
      if (obj.determined) continue;
      obj.candidate = true;
      ++candidates_open;
    } else if (obj.determined) {
      continue;
    }

    obj.dist[qi] = visit->distance;
    ++obj.visit_count;
    if (obj.visit_count == n) {
      if (filtering) {
        filtering = false;
        first_skyline_vec = obj.dist;
        phase_span.Close();
        phase_span = obs::Span(trace, "ce.refine");
      }
      determine(visit->object);
    }

    if (!filtering && candidates_open == 0) {
      // All candidates determined. Keep polling only while a stream could
      // still emit an exact tie of the first skyline point (a co-located
      // duplicate encountered after the filtering phase); once every
      // stream has moved strictly past that distance, nothing new can be
      // skyline.
      bool tie_possible = false;
      for (std::size_t q = 0; q < n; ++q) {
        if (!exhausted[q] && last_emit[q] <= first_skyline_vec[q]) {
          tie_possible = true;
          break;
        }
      }
      if (!tie_possible) break;
    }
  }

  // Streams exhausted with candidates still open: their vectors contain a
  // kInfDist component (unreachable from some query point), which the
  // library's skyline semantics exclude.

  phase_span.Close();

  // Tie safety: when two objects tie in some distance dimension, stream
  // emission order between them is arbitrary and a dominated object can
  // complete before its dominator. A final pairwise pass removes such
  // entries (a no-op in the generic, tie-free case).
  {
    obs::Span finalize_span(trace, "ce.finalize");
    std::vector<SkylineEntry> filtered;
    for (const SkylineEntry& entry : result.skyline) {
      bool dominated = false;
      for (const SkylineEntry& other : result.skyline) {
        if (other.object != entry.object &&
            Dominates(other.vector, entry.vector)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) filtered.push_back(entry);
    }
    result.skyline = std::move(filtered);
  }
  result.stats.skyline_size = result.skyline.size();
  // As in the generalized path: stats count only this run's settles, the
  // plan's per-source view reports the full wavefront extent.
  std::size_t settled = 0;
  for (const auto& stream : streams) settled += stream->fresh_settled_count();
  result.stats.settled_nodes = settled;
  if (spec.plan != nullptr) {
    for (std::size_t q = 0; q < n; ++q) {
      spec.plan->RecordSource(q, streams[q]->settled_count(),
                              std::max(last_emit[q], 0.0),
                              resumes[q] != nullptr);
    }
  }
  StoreStreams(dataset, spec, streams, resumes);
  scope.Finish(&result.stats);
  return result;
}

}  // namespace

SkylineResult RunCe(const Dataset& dataset, const SkylineQuerySpec& spec,
                    const ProgressiveCallback& on_skyline) {
  return RunQueryBody(dataset, spec, [&] {
    if (dataset.static_dims() > 0) {
      return RunCeGeneralized(dataset, spec, on_skyline);
    }
    return RunCeFiltering(dataset, spec, on_skyline);
  });
}

}  // namespace msq
