// CE — Collaborative Expansion (paper Section 4.1).
//
// One resumable Dijkstra wavefront per query point visits objects in
// ascending network distance; the wavefronts are expanded alternately
// (round-robin).
//
// Filtering phase: runs until some object has been visited by ALL query
// points — that object is the first skyline point, and every object visited
// so far forms the candidate set C (anything unvisited is dominated by it).
//
// Refinement phase: expansion continues; each time a candidate completes
// its distance vector (visited by all query points) it is compared against
// the reported skyline, reported if undominated, and used to prune
// provably-dominated candidates. Objects first encountered during
// refinement are discarded. Terminates when C is exhausted.
#ifndef MSQ_CORE_CE_H_
#define MSQ_CORE_CE_H_

#include "core/query.h"

namespace msq {

// Runs CE. `on_skyline` fires as each skyline point is confirmed
// (progressive reporting; used for initial-response measurements).
SkylineResult RunCe(const Dataset& dataset, const SkylineQuerySpec& spec,
                    const ProgressiveCallback& on_skyline = nullptr);

}  // namespace msq

#endif  // MSQ_CORE_CE_H_
