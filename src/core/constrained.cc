#include "core/constrained.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "common/check.h"
#include "core/naive.h"
#include "graph/astar.h"
#include "index/rtree.h"

namespace msq {

SkylineResult RunConstrainedSkylineNaive(const Dataset& dataset,
                                         const SkylineQuerySpec& spec,
                                         Dist radius) {
  // Extension algorithms keep the abort-on-invalid contract; only the
  // paper's main entry points degrade gracefully.
  MSQ_CHECK(ValidateQuery(dataset, spec).ok());
  MSQ_CHECK(radius >= 0.0);
  StatsScope scope(dataset, spec.trace, "constrained.naive");
  SkylineResult result;

  const std::size_t n = spec.sources.size();
  std::size_t settled = 0;
  std::vector<DistVector> vectors =
      ComputeAllNetworkVectors(dataset, spec, &settled);

  // Constraint first: collect the in-range objects.
  std::vector<ObjectId> in_range;
  std::vector<DistVector> range_vectors;
  for (ObjectId id = 0; id < vectors.size(); ++id) {
    bool ok = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (!(vectors[id][i] <= radius)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    DistVector vec = vectors[id];
    const DistVector attrs = dataset.StaticAttributesOf(id);
    vec.insert(vec.end(), attrs.begin(), attrs.end());
    in_range.push_back(id);
    range_vectors.push_back(std::move(vec));
  }

  for (const std::size_t idx : SkylineIndices(range_vectors)) {
    scope.MarkInitial();
    SkylineEntry entry;
    entry.object = in_range[idx];
    entry.vector = range_vectors[idx];
    result.skyline.push_back(std::move(entry));
  }
  result.stats.candidate_count = dataset.object_count();
  result.stats.skyline_size = result.skyline.size();
  result.stats.settled_nodes = settled;
  scope.Finish(&result.stats);
  return result;
}

SkylineResult RunConstrainedSkylineLbc(const Dataset& dataset,
                                       const SkylineQuerySpec& spec,
                                       Dist radius) {
  // Extension algorithms keep the abort-on-invalid contract; only the
  // paper's main entry points degrade gracefully.
  MSQ_CHECK(ValidateQuery(dataset, spec).ok());
  MSQ_CHECK(radius >= 0.0);
  StatsScope scope(dataset, spec.trace, "constrained.lbc");
  SkylineResult result;

  const std::size_t n = spec.sources.size();
  const std::size_t src = spec.lbc_source_index;
  const std::size_t attr_dims = dataset.static_dims();
  const DistVector min_attrs = dataset.MinStaticAttributes();

  std::vector<Point> query_points;
  query_points.reserve(n);
  for (const Location& source : spec.sources) {
    query_points.push_back(dataset.network->LocationPosition(source));
  }
  std::vector<std::unique_ptr<AStarSearch>> searches(n);
  auto search_for = [&](std::size_t qi) -> AStarSearch& {
    if (searches[qi] == nullptr) {
      searches[qi] = std::make_unique<AStarSearch>(
          dataset.graph_pager, spec.sources[qi], dataset.landmarks);
    }
    return *searches[qi];
  };

  std::vector<DistVector> skyline_vectors;

  // Prune a subtree when it is dominated by a reported point or provably
  // out of range: the Euclidean distance to any query point already
  // exceeding the radius implies the network distance does too.
  auto prune = [&](const RTreeEntry& entry, bool is_leaf) {
    DistVector lb;
    lb.reserve(n + attr_dims);
    for (std::size_t i = 0; i < n; ++i) {
      const Dist d = entry.mbr.MinDist(query_points[i]);
      if (d > radius) return true;  // whole subtree violates
      lb.push_back(d);
    }
    if (skyline_vectors.empty()) return false;
    if (attr_dims > 0) {
      if (is_leaf) {
        const DistVector attrs = dataset.StaticAttributesOf(entry.id);
        lb.insert(lb.end(), attrs.begin(), attrs.end());
      } else {
        lb.insert(lb.end(), min_attrs.begin(), min_attrs.end());
      }
    }
    for (const DistVector& s : skyline_vectors) {
      if (DominatesWithMargin(s, lb, kFpTieMargin)) return true;
    }
    return false;
  };
  RTreeNnBrowser browser(dataset.object_rtree, query_points[src], prune);

  struct SourceCandidate {
    Dist source_dist;
    ObjectId object;
    bool operator>(const SourceCandidate& other) const {
      return source_dist > other.source_dist;
    }
  };
  std::priority_queue<SourceCandidate, std::vector<SourceCandidate>,
                      std::greater<>>
      source_heap;
  bool browser_exhausted = false;

  auto next_network_nn = [&]() -> SourceCandidate {
    while (!browser_exhausted) {
      if (!source_heap.empty() &&
          source_heap.top().source_dist <= browser.PeekLowerBound()) {
        const SourceCandidate top = source_heap.top();
        source_heap.pop();
        return top;
      }
      const auto item = browser.Next();
      if (!item.found) {
        browser_exhausted = true;
        break;
      }
      ++result.stats.candidate_count;
      const Dist d_net = search_for(src).DistanceTo(
          dataset.mapping->ObjectLocation(item.id));
      // The source-dimension constraint applies immediately.
      if (std::isfinite(d_net) && d_net <= radius) {
        source_heap.push(SourceCandidate{d_net, item.id});
      }
    }
    if (!source_heap.empty()) {
      const SourceCandidate top = source_heap.top();
      source_heap.pop();
      return top;
    }
    return SourceCandidate{kInfDist, kInvalidObject};
  };

  // Screening: advance the minimum plb; a candidate dies when any bound
  // (a lower bound on the true distance) exceeds the radius, or when a
  // reported point provably dominates it.
  auto screen = [&](const SourceCandidate& cand) -> DistVector {
    const Location& loc = dataset.mapping->ObjectLocation(cand.object);
    const DistVector attrs = dataset.StaticAttributesOf(cand.object);
    const Point p_pos = dataset.mapping->ObjectPosition(cand.object);

    DistVector bound(n, 0.0);
    std::vector<bool> exact(n, false);
    bound[src] = cand.source_dist;
    exact[src] = true;
    std::vector<std::unique_ptr<AStarSearch::Probe>> probes(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (i == src) continue;
      bound[i] = EuclideanDistance(query_points[i], p_pos);
      if (dataset.landmarks != nullptr) {
        bound[i] = std::max(
            bound[i], dataset.landmarks->LowerBound(spec.sources[i], loc));
      }
    }

    for (;;) {
      for (std::size_t i = 0; i < n; ++i) {
        if (bound[i] > radius) return {};  // constraint violated
      }
      bool dominated = false;
      for (const DistVector& s : skyline_vectors) {
        bool leq = true;
        bool strict = false;
        for (std::size_t i = 0; i < n; ++i) {
          if (s[i] > bound[i]) {
            leq = false;
            break;
          }
          // Strictness only from exact dimensions (see lbc.cc: lower
          // bounds computed via a different FP path can exceed equal
          // network distances by an ulp).
          if (exact[i] && s[i] < bound[i]) strict = true;
        }
        if (leq) {
          for (std::size_t j = 0; j < attrs.size(); ++j) {
            if (s[n + j] > attrs[j]) {
              leq = false;
              break;
            }
            if (s[n + j] < attrs[j]) strict = true;
          }
        }
        if (leq && strict) {
          dominated = true;
          break;
        }
      }
      if (dominated) return {};

      std::size_t best_dim = n;
      Dist best_bound = kInfDist;
      for (std::size_t i = 0; i < n; ++i) {
        if (!exact[i] && bound[i] < best_bound) {
          best_bound = bound[i];
          best_dim = i;
        }
      }
      if (best_dim == n) break;

      if (probes[best_dim] == nullptr) {
        probes[best_dim] = std::make_unique<AStarSearch::Probe>(
            search_for(best_dim).NewProbe(loc));
      }
      AStarSearch::Probe& probe = *probes[best_dim];
      const Dist plb = probe.Advance();
      bound[best_dim] = std::max(bound[best_dim], plb);
      if (probe.done()) {
        bound[best_dim] = probe.distance();
        exact[best_dim] = true;
        if (!std::isfinite(bound[best_dim])) return {};
      }
    }

    DistVector vec = bound;
    vec.insert(vec.end(), attrs.begin(), attrs.end());
    return vec;
  };

  for (;;) {
    const SourceCandidate cand = next_network_nn();
    if (cand.object == kInvalidObject) break;
    DistVector vec = screen(cand);
    if (vec.empty()) continue;
    scope.MarkInitial();
    SkylineEntry entry;
    entry.object = cand.object;
    entry.vector = vec;
    result.skyline.push_back(entry);
    skyline_vectors.push_back(std::move(vec));
  }

  // Tie safety, as in RunLbc.
  std::vector<SkylineEntry> filtered;
  for (const SkylineEntry& entry : result.skyline) {
    bool dominated = false;
    for (const SkylineEntry& other : result.skyline) {
      if (other.object != entry.object &&
          Dominates(other.vector, entry.vector)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) filtered.push_back(entry);
  }
  result.skyline = std::move(filtered);

  result.stats.skyline_size = result.skyline.size();
  std::size_t settled = 0;
  for (const auto& search : searches) {
    if (search != nullptr) settled += search->settled_count();
  }
  result.stats.settled_nodes = settled;
  scope.Finish(&result.stats);
  return result;
}

}  // namespace msq
