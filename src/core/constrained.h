// Range-constrained multi-source skyline: the skyline over only those
// objects within network distance `radius` of EVERY query point.
//
// The natural location-based-services variant ("hotels at most 2 km from
// each of us, Pareto-optimal among those"). Since any dominator of an
// in-range object is component-wise closer and therefore in range itself,
// the result equals the in-range subset of the unconstrained skyline —
// but computing it directly is much cheaper: the radius caps the search
// region of every wavefront and plb probe.
//
// The LBC-style variant gets the constraint almost for free from the path
// distance lower bound: a candidate is discarded the moment any plb
// exceeds the radius, and R-tree subtrees farther (even in Euclidean
// distance) than the radius from some query point are never fetched.
#ifndef MSQ_CORE_CONSTRAINED_H_
#define MSQ_CORE_CONSTRAINED_H_

#include "core/query.h"

namespace msq {

// Exact constrained skyline by full sweep.
SkylineResult RunConstrainedSkylineNaive(const Dataset& dataset,
                                         const SkylineQuerySpec& spec,
                                         Dist radius);

// Exact constrained skyline by LBC-style incremental discovery with
// plb-based constraint screening.
SkylineResult RunConstrainedSkylineLbc(const Dataset& dataset,
                                       const SkylineQuerySpec& spec,
                                       Dist radius);

}  // namespace msq

#endif  // MSQ_CORE_CONSTRAINED_H_
