#include "core/dominance.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"

namespace msq {
namespace {

// Cached at load: Dominates is the innermost loop of every skyline filter,
// so the count costs one load + increment per call.
obs::Counter* const g_dominance_tests = obs::GlobalMetrics().counter(
    obs::metric::kDominanceTests);
obs::Counter* const g_dominance_avoided = obs::GlobalMetrics().counter(
    obs::metric::kDominanceAvoided);
obs::Counter* const g_bound_pruned = obs::GlobalMetrics().counter(
    obs::metric::kBoundPruned);
obs::Counter* const g_bound_examined = obs::GlobalMetrics().counter(
    obs::metric::kBoundExamined);
obs::Counter* const g_bound_samples = obs::GlobalMetrics().counter(
    obs::metric::kBoundSamples);
obs::Counter* const g_bound_pct_sum = obs::GlobalMetrics().counter(
    obs::metric::kBoundPctSum);
obs::Histogram* const g_bound_tightness = obs::GlobalMetrics().histogram(
    obs::metric::kBoundTightnessHist);

}  // namespace

namespace {

// Every test bumps the global counter and the calling thread's block so
// per-query attribution stays exact under the concurrent executor.
inline void CountDominanceTest() {
  g_dominance_tests->Inc();
  ++obs::ThreadLocalCounters().dominance_tests;
}

}  // namespace

void CountDominanceAvoided(std::uint64_t n) {
  if (n == 0) return;
  g_dominance_avoided->Inc(n);
  obs::ThreadLocalCounters().dominance_avoided += n;
}

void CountBoundPruned(std::uint64_t n) {
  if (n == 0) return;
  g_bound_pruned->Inc(n);
  obs::ThreadLocalCounters().bound_pruned += n;
}

void CountBoundExamined(std::uint64_t n) {
  if (n == 0) return;
  g_bound_examined->Inc(n);
  obs::ThreadLocalCounters().bound_examined += n;
}

unsigned RecordBoundTightness(Dist bound, Dist exact) {
  // A zero exact distance (object on the query point) is only reachable
  // with a zero bound; call that perfectly tight rather than dividing.
  double ratio = exact > 0.0 ? static_cast<double>(bound) / exact : 1.0;
  if (ratio < 0.0) ratio = 0.0;
  if (ratio > 1.0) ratio = 1.0;  // FP drift: a bound never exceeds exact
  const unsigned pct = static_cast<unsigned>(ratio * 100.0 + 0.5);
  g_bound_samples->Inc();
  g_bound_pct_sum->Inc(pct);
  g_bound_tightness->Observe(pct);
  obs::ThreadCounters& tc = obs::ThreadLocalCounters();
  ++tc.bound_samples;
  tc.bound_pct_sum += pct;
  return pct;
}

bool Dominates(const DistVector& a, const DistVector& b) {
  MSQ_CHECK(a.size() == b.size());
  CountDominanceTest();
  bool strict = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

bool DominatesOrEqual(const DistVector& a, const DistVector& b) {
  MSQ_CHECK(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

bool DominatesWithMargin(const DistVector& a, const DistVector& b,
                         double margin) {
  MSQ_CHECK(a.size() == b.size());
  CountDominanceTest();
  bool strict = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i] - margin) strict = true;
  }
  return strict;
}

bool AllFinite(const DistVector& v) {
  for (const Dist d : v) {
    if (!std::isfinite(d)) return false;
  }
  return true;
}

DistSummary Summarize(const DistVector& v) {
  DistSummary s;
  if (v.empty()) return s;
  s.min = v[0];
  s.max = v[0];
  for (std::size_t i = 1; i < v.size(); ++i) {
    s.min = std::min(s.min, v[i]);
    s.max = std::max(s.max, v[i]);
  }
  return s;
}

bool DominatesWithSummary(const DistVector& a, const DistSummary& sa,
                          const DistVector& b, const DistSummary& sb) {
  MSQ_CHECK(a.size() == b.size());
  // a <= b component-wise forces min(a) <= min(b) and max(a) <= max(b);
  // the contrapositive refutes dominance without touching the components.
  if (sa.min > sb.min || sa.max > sb.max) {
    CountDominanceTest();
    return false;
  }
  return Dominates(a, b);
}

std::vector<std::size_t> SkylineIndices(
    const std::vector<DistVector>& vectors) {
  std::vector<std::size_t> window;
  std::vector<DistSummary> window_summaries;  // parallel to `window`
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    if (!AllFinite(vectors[i])) continue;
    const DistSummary si = Summarize(vectors[i]);
    bool dominated = false;
    for (std::size_t w = 0; w < window.size();) {
      if (DominatesWithSummary(vectors[window[w]], window_summaries[w],
                               vectors[i], si)) {
        dominated = true;
        // Early exit: the rest of the window never gets compared against
        // this candidate.
        CountDominanceAvoided(window.size() - w - 1);
        break;
      }
      if (DominatesWithSummary(vectors[i], si, vectors[window[w]],
                               window_summaries[w])) {
        window[w] = window.back();
        window.pop_back();
        window_summaries[w] = window_summaries.back();
        window_summaries.pop_back();
        continue;
      }
      ++w;
    }
    if (!dominated) {
      window.push_back(i);
      window_summaries.push_back(si);
    }
  }
  std::sort(window.begin(), window.end());
  return window;
}

}  // namespace msq
