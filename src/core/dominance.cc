#include "core/dominance.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"

namespace msq {
namespace {

// Cached at load: Dominates is the innermost loop of every skyline filter,
// so the count costs one load + increment per call.
obs::Counter* const g_dominance_tests = obs::GlobalMetrics().counter(
    obs::metric::kDominanceTests);

}  // namespace

bool Dominates(const DistVector& a, const DistVector& b) {
  MSQ_CHECK(a.size() == b.size());
  g_dominance_tests->Inc();
  bool strict = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

bool DominatesOrEqual(const DistVector& a, const DistVector& b) {
  MSQ_CHECK(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

bool DominatesWithMargin(const DistVector& a, const DistVector& b,
                         double margin) {
  MSQ_CHECK(a.size() == b.size());
  g_dominance_tests->Inc();
  bool strict = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i] - margin) strict = true;
  }
  return strict;
}

bool AllFinite(const DistVector& v) {
  for (const Dist d : v) {
    if (!std::isfinite(d)) return false;
  }
  return true;
}

std::vector<std::size_t> SkylineIndices(
    const std::vector<DistVector>& vectors) {
  std::vector<std::size_t> window;
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    if (!AllFinite(vectors[i])) continue;
    bool dominated = false;
    for (std::size_t w = 0; w < window.size();) {
      if (Dominates(vectors[window[w]], vectors[i])) {
        dominated = true;
        break;
      }
      if (Dominates(vectors[i], vectors[window[w]])) {
        window[w] = window.back();
        window.pop_back();
        continue;
      }
      ++w;
    }
    if (!dominated) window.push_back(i);
  }
  std::sort(window.begin(), window.end());
  return window;
}

}  // namespace msq
