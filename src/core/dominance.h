// Dominance tests and in-memory skyline computation over distance vectors.
//
// All optimization is minimization: vector `a` dominates `b` when a <= b in
// every dimension and a < b in at least one. Vectors mix network distances
// to the query points with optional static attributes (paper Section 4.3:
// non-spatial attributes "can be treated as normal attributes which have
// pre-computed 'network distances'").
#ifndef MSQ_CORE_DOMINANCE_H_
#define MSQ_CORE_DOMINANCE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace msq {

// Attribute/distance vector of one object.
using DistVector = std::vector<Dist>;

// Whether `a` dominates `b` (strictly better somewhere, nowhere worse).
// Both vectors must have the same size.
bool Dominates(const DistVector& a, const DistVector& b);

// Whether `a` is component-wise <= `b`.
bool DominatesOrEqual(const DistVector& a, const DistVector& b);

// Safety margin for dominance tests that compare values computed through
// different floating-point paths (e.g. a Euclidean lower bound — a sqrt —
// against a network distance — a sum of offsets): two mathematically equal
// values can differ by ulps, and a phantom "strictly better" dimension
// must not prune an exact tie. Networks are normalized into the unit
// square, so an absolute margin dwarfing accumulated rounding error while
// staying far below any genuine distance difference is appropriate.
inline constexpr double kFpTieMargin = 1e-9;

// Dominance with the strict dimension required to win by more than
// `margin`: a <= b everywhere and a[i] < b[i] - margin somewhere. Used by
// the R-tree prune predicates, whose `b` is an optimistic bound computed
// through a different FP path than `a`.
bool DominatesWithMargin(const DistVector& a, const DistVector& b,
                         double margin);

// Whether every component is finite (the library's skyline semantics
// exclude objects unreachable from any query point).
bool AllFinite(const DistVector& v);

// Component range of one vector, computed once per candidate so repeated
// dominance tests against it can skip their component loops.
struct DistSummary {
  Dist min = 0.0;
  Dist max = 0.0;
};
DistSummary Summarize(const DistVector& v);

// Dominates(a, b) given precomputed summaries. If a dominates b then
// min(a) <= min(b) and max(a) <= max(b), so either inequality failing — in
// particular the candidate's min exceeding the incumbent's max — refutes
// dominance in O(1) and the component loop is skipped. Counts as one
// dominance test either way, so QueryStats/trace reconciliation is
// unaffected by which path resolves it.
bool DominatesWithSummary(const DistVector& a, const DistSummary& sa,
                          const DistVector& b, const DistSummary& sb);

// Pruning-power accounting (DESIGN.md §17). Each helper bumps the global
// registry counter and the calling thread's obs::ThreadCounters block, the
// same double-write CountDominanceTest uses, so per-query deltas stay
// exact under the concurrent executor.
//
// `CountDominanceAvoided(n)` records `n` pairwise tests made unnecessary —
// the rest of a window skipped after an early dominance exit, or an
// incumbent window a bound-pruned object never met.
void CountDominanceAvoided(std::uint64_t n);
// Partition of candidate objects: eliminated by a plb/Euclid/ALT lower
// bound alone vs. carried to exact network distances.
void CountBoundPruned(std::uint64_t n = 1);
void CountBoundExamined(std::uint64_t n = 1);
// Records one bound-tightness observation at an exact-completion site:
// the lower bound the search held for this distance vs. the exact network
// distance it resolved to. Returns the ratio as an integer percent in
// [0, 100] (100 = the bound was exact) so callers can also feed a
// per-plan histogram; bumps the sample/percent-sum counters and the
// global `bound_tightness` histogram.
unsigned RecordBoundTightness(Dist bound, Dist exact);

// Block-nested-loops skyline of `vectors`: returns the indices (into
// `vectors`) of the undominated entries, in input order. Entries with a
// non-finite component are excluded. Window comparisons go through
// DominatesWithSummary, pruning most full component scans.
std::vector<std::size_t> SkylineIndices(
    const std::vector<DistVector>& vectors);

}  // namespace msq

#endif  // MSQ_CORE_DOMINANCE_H_
