#include "core/edc.h"

#include <cmath>
#include <memory>
#include <unordered_map>

#include "cache/query_cache.h"
#include "common/check.h"
#include "euclid/bbs.h"
#include "graph/astar.h"

namespace msq {
namespace {

// Shared machinery of the batch and incremental EDC variants.
class EdcRunner {
 public:
  EdcRunner(const Dataset& dataset, const SkylineQuerySpec& spec)
      : dataset_(dataset), spec_(spec) {
    for (const Location& source : spec.sources) {
      query_points_.push_back(dataset.network->LocationPosition(source));
      searches_.push_back(std::make_unique<AStarSearch>(
          dataset.graph_pager, source, dataset.landmarks));
      // Cached wavefront for this source (typically left behind by a CE
      // run): exact distances for targets inside its settled region
      // without any A* expansion.
      CachedWavefront wavefront;
      if (dataset.cache != nullptr) {
        wavefront.snapshot = dataset.cache->FindWavefront(
            source, dataset.graph_pager->data_epoch());
        if (wavefront.snapshot != nullptr) {
          wavefront.radius = CheckpointRadius(wavefront.snapshot->search);
        }
      }
      wavefronts_.push_back(std::move(wavefront));
    }
    min_attrs_ = dataset.MinStaticAttributes();
  }

  std::size_t n() const { return spec_.sources.size(); }
  std::size_t attr_dims() const { return min_attrs_.size(); }

  // Exact network distance from source `i` to object `id` at `loc`:
  // distance memo first, then an exact cached-wavefront probe, and only
  // then the A* search.
  Dist SourceDistance(std::size_t i, ObjectId id, const Location& loc) {
    QueryCache* const cache = dataset_.cache;
    if (cache != nullptr) {
      if (const std::optional<Dist> memo =
              cache->FindDistance(spec_.sources[i], id,
                                  dataset_.graph_pager->data_epoch())) {
        if (spec_.plan != nullptr) spec_.plan->RecordMemoHit();
        return *memo;
      }
      const CachedWavefront& wavefront = wavefronts_[i];
      if (wavefront.snapshot != nullptr) {
        const WavefrontProbe probe =
            ProbeCheckpoint(*dataset_.network, wavefront.snapshot->search,
                            wavefront.radius, spec_.sources[i], loc);
        if (probe.exact) {
          cache->StoreDistance(spec_.sources[i], id, probe.bound,
                               dataset_.graph_pager->data_epoch());
          if (spec_.plan != nullptr) spec_.plan->RecordWavefrontExact();
          return probe.bound;
        }
      }
    }
    // Lower bound EDC's Euclid-constraint reasoning had for this pair
    // before paying for the exact computation — sampled as bound tightness
    // once A* resolves the true distance.
    Dist lower = EuclideanDistance(query_points_[i],
                                   dataset_.mapping->ObjectPosition(id));
    if (dataset_.landmarks != nullptr) {
      lower = std::max(lower,
                       dataset_.landmarks->LowerBound(spec_.sources[i], loc));
    }
    const Dist dist = searches_[i]->DistanceTo(loc);
    if (spec_.plan != nullptr) spec_.plan->RecordComputed();
    if (std::isfinite(dist)) {
      const unsigned pct = RecordBoundTightness(lower, dist);
      if (spec_.plan != nullptr) spec_.plan->RecordTightness(pct);
    }
    if (cache != nullptr) {
      cache->StoreDistance(spec_.sources[i], id, dist,
                           dataset_.graph_pager->data_epoch());
    }
    return dist;
  }

  // Full comparison vector: exact network distances (A*, labels shared
  // across all calls) followed by static attributes. Cached per object.
  const DistVector& NetworkVector(ObjectId id) {
    auto it = network_vectors_.find(id);
    if (it != network_vectors_.end()) return it->second;
    // First full resolution of this object's vector: fully examined.
    CountBoundExamined();
    DistVector vec;
    vec.reserve(n() + attr_dims());
    const Location& loc = dataset_.mapping->ObjectLocation(id);
    for (std::size_t i = 0; i < searches_.size(); ++i) {
      vec.push_back(SourceDistance(i, id, loc));
    }
    const DistVector attrs = dataset_.StaticAttributesOf(id);
    vec.insert(vec.end(), attrs.begin(), attrs.end());
    return network_vectors_.emplace(id, std::move(vec)).first->second;
  }

  bool HasNetworkVector(ObjectId id) const {
    return network_vectors_.count(id) != 0;
  }

  // Step 3's window fetch: every object o with dE(o, qi) <= window[i] for
  // all query dims and attrs(o) <= window's attr dims — i.e. the objects
  // that could dominate the shifted point `window`. Appends object ids not
  // already in `candidates` and marks them.
  void FetchWindow(const DistVector& window,
                   std::vector<ObjectId>* order,
                   std::unordered_map<ObjectId, bool>* candidates) {
    std::vector<PageId> stack = {dataset_.object_rtree->root_page()};
    while (!stack.empty()) {
      const PageId page = stack.back();
      stack.pop_back();
      const RTreeNode node = dataset_.object_rtree->ReadNode(page);
      for (const RTreeEntry& e : node.entries) {
        // Subtree/object qualifies only if its optimistic vector fits
        // inside the hypercube.
        bool inside = true;
        for (std::size_t i = 0; i < n(); ++i) {
          if (e.mbr.MinDist(query_points_[i]) > window[i]) {
            inside = false;
            break;
          }
        }
        if (inside && attr_dims() > 0) {
          const DistVector lb = node.is_leaf
                                    ? dataset_.StaticAttributesOf(e.id)
                                    : min_attrs_;
          for (std::size_t j = 0; j < attr_dims(); ++j) {
            if (lb[j] > window[n() + j]) {
              inside = false;
              break;
            }
          }
        }
        if (!inside) continue;
        if (node.is_leaf) {
          if (candidates->emplace(e.id, true).second) {
            order->push_back(e.id);
          }
        } else {
          stack.push_back(e.id);
        }
      }
    }
  }

  // Whether point `o` (exact Euclidean distances + attrs) lies inside the
  // hypercube of `window`.
  bool InsideWindow(const DistVector& exact, const DistVector& window) const {
    MSQ_CHECK(exact.size() == window.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      if (exact[i] > window[i]) return false;
    }
    return true;
  }

  // Euclidean vector (distances + attrs) of an entry MBR treated as fully
  // contained: uses MaxDist so true only when the whole entry is inside.
  bool EntirelyInsideSomeWindow(const RTreeEntry& entry, bool is_leaf,
                                const std::vector<DistVector>& windows) const {
    for (const DistVector& w : windows) {
      bool inside = true;
      for (std::size_t i = 0; i < n(); ++i) {
        const Dist far = is_leaf ? entry.mbr.MinDist(query_points_[i])
                                 : entry.mbr.MaxDist(query_points_[i]);
        if (far > w[i]) {
          inside = false;
          break;
        }
      }
      if (!inside) continue;
      if (attr_dims() > 0) {
        // Attributes of an internal entry are unbounded above; only leaf
        // entries can be attribute-checked.
        if (!is_leaf) continue;
        const DistVector attrs = dataset_.StaticAttributesOf(entry.id);
        for (std::size_t j = 0; j < attr_dims(); ++j) {
          if (attrs[j] > w[n() + j]) {
            inside = false;
            break;
          }
        }
        if (!inside) continue;
      }
      return true;
    }
    return false;
  }

  // Completion pass (EdcOptions::paper_faithful == false): fetches every
  // object whose optimistic Euclidean vector (+ attribute lower bounds) is
  // not dominated by any vector in `skyline_estimate`. Any object outside
  // that region is provably network-dominated by a skyline-estimate member
  // (s <= dE(o) <= dN(o) component-wise with a strict dimension), so
  // fetching the region to a fixpoint makes EDC exact. Returns how many
  // new candidates were added.
  std::size_t FetchUndominatedRegion(
      const std::vector<DistVector>& skyline_estimate,
      std::vector<ObjectId>* order,
      std::unordered_map<ObjectId, bool>* candidates) {
    std::size_t added = 0;
    std::vector<PageId> stack = {dataset_.object_rtree->root_page()};
    while (!stack.empty()) {
      const PageId page = stack.back();
      stack.pop_back();
      const RTreeNode node = dataset_.object_rtree->ReadNode(page);
      for (const RTreeEntry& e : node.entries) {
        DistVector lb;
        lb.reserve(n() + attr_dims());
        for (std::size_t i = 0; i < n(); ++i) {
          lb.push_back(e.mbr.MinDist(query_points_[i]));
        }
        if (attr_dims() > 0) {
          const DistVector attrs = node.is_leaf
                                       ? dataset_.StaticAttributesOf(e.id)
                                       : min_attrs_;
          lb.insert(lb.end(), attrs.begin(), attrs.end());
        }
        bool dominated = false;
        for (std::size_t si = 0; si < skyline_estimate.size(); ++si) {
          // Margin-strict: lb is a Euclidean bound compared against
          // network distances (see dominance.h).
          if (DominatesWithMargin(skyline_estimate[si], lb, kFpTieMargin)) {
            CountDominanceAvoided(skyline_estimate.size() - si - 1);
            dominated = true;
            break;
          }
        }
        if (dominated) continue;
        if (node.is_leaf) {
          if (candidates->emplace(e.id, true).second) {
            order->push_back(e.id);
            ++added;
          }
        } else {
          stack.push_back(e.id);
        }
      }
    }
    return added;
  }

  // Runs FetchUndominatedRegion to a fixpoint against the evolving
  // skyline-of-candidates estimate.
  void CompleteCandidates(std::vector<ObjectId>* order,
                          std::unordered_map<ObjectId, bool>* candidates) {
    for (;;) {
      std::vector<DistVector> vectors;
      vectors.reserve(order->size());
      for (const ObjectId id : *order) vectors.push_back(NetworkVector(id));
      const std::vector<std::size_t> sky = SkylineIndices(vectors);
      std::vector<DistVector> estimate;
      estimate.reserve(sky.size());
      for (const std::size_t idx : sky) estimate.push_back(vectors[idx]);
      if (FetchUndominatedRegion(estimate, order, candidates) == 0) break;
    }
  }

  std::size_t TotalSettled() const {
    std::size_t total = 0;
    for (const auto& search : searches_) total += search->settled_count();
    return total;
  }

  // Final wavefront progress of every source (ExecutionPlan). No-op
  // without a plan collector.
  void RecordSources() const {
    if (spec_.plan == nullptr) return;
    for (std::size_t i = 0; i < searches_.size(); ++i) {
      spec_.plan->RecordSource(i, searches_[i]->settled_count(),
                               searches_[i]->max_settled_distance(),
                               wavefronts_[i].snapshot != nullptr);
    }
  }

  struct CachedWavefront {
    QueryCache::WavefrontPtr snapshot;
    Dist radius = 0;
  };

  const Dataset& dataset_;
  const SkylineQuerySpec& spec_;
  std::vector<Point> query_points_;
  std::vector<std::unique_ptr<AStarSearch>> searches_;
  std::vector<CachedWavefront> wavefronts_;
  DistVector min_attrs_;
  std::unordered_map<ObjectId, DistVector> network_vectors_;
};

SkylineResult RunEdcBatch(const Dataset& dataset,
                          const SkylineQuerySpec& spec,
                          const EdcOptions& options,
                          const ProgressiveCallback& on_skyline) {
  obs::TraceSession* const trace = spec.trace;
  StatsScope scope(dataset, trace, "edc");
  SkylineResult result;
  QueryGuard guard(dataset, spec.limits);
  EdcRunner runner(dataset, spec);

  // Batch cut-off: nothing can be confirmed mid-run, so a tripped guard
  // yields an empty result flagged truncated.
  auto truncate = [&]() {
    result.skyline.clear();
    result.truncated = true;
    result.truncation_reason = guard.reason();
    result.stats.settled_nodes = runner.TotalSettled();
    runner.RecordSources();
    scope.Finish(&result.stats);
    return result;
  };

  // Step 1: all multi-source Euclidean skyline points.
  EuclideanSkylineBrowser::AttributeProvider attr_of = nullptr;
  if (dataset.static_dims() > 0) {
    attr_of = [&dataset](ObjectId id) {
      return dataset.StaticAttributesOf(id);
    };
  }
  EuclideanSkylineBrowser browser(dataset.object_rtree, runner.query_points_,
                                  nullptr, attr_of,
                                  dataset.MinStaticAttributes());
  std::vector<ObjectId> order;  // candidate ids in retrieval order
  std::unordered_map<ObjectId, bool> candidates;
  std::vector<ObjectId> euclid_skyline;
  {
    obs::Span span(trace, "edc.euclid_prune");
    for (auto item = browser.Next(); item.found; item = browser.Next()) {
      if (guard.Exceeded()) return truncate();
      if (candidates.emplace(item.object, true).second) {
        order.push_back(item.object);
      }
      euclid_skyline.push_back(item.object);
    }
  }

  // Step 2 + 3: shift each Euclidean skyline point to its network-distance
  // position and fetch the union-hypercube window.
  {
    obs::Span span(trace, "edc.window_fetch");
    for (const ObjectId id : euclid_skyline) {
      if (guard.Exceeded()) return truncate();
      const DistVector& shifted = runner.NetworkVector(id);
      runner.FetchWindow(shifted, &order, &candidates);
    }
  }

  // Completion pass (off in paper-faithful mode): grow C until it covers
  // the entire region undominated by the skyline estimate.
  if (!options.paper_faithful) {
    obs::Span span(trace, "edc.complete");
    runner.CompleteCandidates(&order, &candidates);
  }

  // Step 4 + 5: network distances for every candidate (A* labels from
  // step 2 are reused automatically), then pairwise comparison.
  obs::Span refine_span(trace, "edc.refine");
  std::vector<DistVector> vectors;
  vectors.reserve(order.size());
  for (const ObjectId id : order) {
    if (guard.Exceeded()) return truncate();
    vectors.push_back(runner.NetworkVector(id));
  }

  const std::vector<std::size_t> skyline = SkylineIndices(vectors);
  for (const std::size_t idx : skyline) {
    scope.MarkInitial();
    SkylineEntry entry;
    entry.object = order[idx];
    entry.vector = vectors[idx];
    if (on_skyline) on_skyline(entry);
    result.skyline.push_back(std::move(entry));
  }

  result.stats.candidate_count = order.size();
  result.stats.skyline_size = result.skyline.size();
  result.stats.settled_nodes = runner.TotalSettled();
  // Everything never fetched was excluded by the Euclid-constraint
  // region bounds without any network work.
  CountBoundPruned(dataset.object_count() - order.size());
  runner.RecordSources();
  scope.Finish(&result.stats);
  return result;
}

SkylineResult RunEdcIncremental(const Dataset& dataset,
                                const SkylineQuerySpec& spec,
                                const EdcOptions& options,
                                const ProgressiveCallback& on_skyline) {
  obs::TraceSession* const trace = spec.trace;
  StatsScope scope(dataset, trace, "edc");
  SkylineResult result;
  QueryGuard guard(dataset, spec.limits);
  EdcRunner runner(dataset, spec);

  // Windows (shifted vectors) already processed; entries wholly inside any
  // of them have been fetched and need not be re-browsed.
  std::vector<DistVector> processed_windows;

  EuclideanSkylineBrowser::AttributeProvider attr_of = nullptr;
  if (dataset.static_dims() > 0) {
    attr_of = [&dataset](ObjectId id) {
      return dataset.StaticAttributesOf(id);
    };
  }
  EuclideanSkylineBrowser browser(
      dataset.object_rtree, runner.query_points_,
      [&](const RTreeEntry& entry, bool is_leaf) {
        return runner.EntirelyInsideSomeWindow(entry, is_leaf,
                                               processed_windows);
      },
      attr_of, dataset.MinStaticAttributes());

  std::vector<ObjectId> order;
  std::unordered_map<ObjectId, bool> candidates;
  std::vector<std::uint8_t> determined(dataset.object_count(), 0);
  std::vector<DistVector> reported_vectors;

  // Reports every undetermined candidate that (a) lies inside a processed
  // window — so all of its potential dominators are already fetched — and
  // (b) is dominated by nothing fetched or reported.
  auto drain_determinable = [&]() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const ObjectId id : order) {
        if (determined[id]) continue;
        const DistVector& vec = runner.NetworkVector(id);
        bool covered = false;
        for (const DistVector& w : processed_windows) {
          if (runner.InsideWindow(vec, w)) {
            covered = true;
            break;
          }
        }
        if (!covered) continue;
        bool dominated = false;
        for (std::size_t si = 0; si < reported_vectors.size(); ++si) {
          if (Dominates(reported_vectors[si], vec)) {
            CountDominanceAvoided(reported_vectors.size() - si - 1);
            dominated = true;
            break;
          }
        }
        if (!dominated) {
          for (std::size_t oi = 0; oi < order.size(); ++oi) {
            const ObjectId other = order[oi];
            if (other != id &&
                Dominates(runner.NetworkVector(other), vec)) {
              CountDominanceAvoided(order.size() - oi - 1);
              dominated = true;
              break;
            }
          }
        }
        determined[id] = 1;
        changed = true;
        if (dominated) continue;
        scope.MarkInitial();
        SkylineEntry entry;
        entry.object = id;
        entry.vector = vec;
        if (on_skyline) on_skyline(entry);
        result.skyline.push_back(entry);
        reported_vectors.push_back(vec);
      }
    }
  };

  {
    obs::Span browse_span(trace, "edc.euclid_prune");
    for (auto item = browser.Next(); item.found; item = browser.Next()) {
      if (guard.Exceeded()) {
        // Progressive cut-off: entries reported by drain_determinable were
        // confirmed (all their potential dominators fetched), so the prefix
        // stands. The final drain below assumes an exhausted browser and
        // must be skipped.
        result.truncated = true;
        result.truncation_reason = guard.reason();
        break;
      }
      if (candidates.emplace(item.object, true).second) {
        order.push_back(item.object);
      }
      {
        obs::Span span(trace, "edc.window_fetch");
        const DistVector& shifted = runner.NetworkVector(item.object);
        runner.FetchWindow(shifted, &order, &candidates);
        processed_windows.push_back(shifted);
      }
      obs::Span span(trace, "edc.drain");
      drain_determinable();
    }
  }

  if (result.truncated) {
    result.stats.candidate_count = order.size();
    result.stats.skyline_size = result.skyline.size();
    result.stats.settled_nodes = runner.TotalSettled();
    runner.RecordSources();
    scope.Finish(&result.stats);
    return result;
  }

  // Completion pass (off in paper-faithful mode) before the final report:
  // late-fetched candidates can both add missed skyline points and expose
  // false positives among the undetermined remainder.
  if (!options.paper_faithful) {
    obs::Span span(trace, "edc.complete");
    runner.CompleteCandidates(&order, &candidates);
  }

  // Browser exhausted: remaining undetermined candidates are skyline unless
  // dominated by something fetched.
  obs::Span refine_span(trace, "edc.refine");
  for (const ObjectId id : order) {
    if (determined[id]) continue;
    const DistVector& vec = runner.NetworkVector(id);
    bool dominated = false;
    for (std::size_t si = 0; si < reported_vectors.size(); ++si) {
      if (Dominates(reported_vectors[si], vec)) {
        CountDominanceAvoided(reported_vectors.size() - si - 1);
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      for (std::size_t oi = 0; oi < order.size(); ++oi) {
        const ObjectId other = order[oi];
        if (other != id && Dominates(runner.NetworkVector(other), vec)) {
          CountDominanceAvoided(order.size() - oi - 1);
          dominated = true;
          break;
        }
      }
    }
    determined[id] = 1;
    if (dominated) continue;
    scope.MarkInitial();
    SkylineEntry entry;
    entry.object = id;
    entry.vector = vec;
    if (on_skyline) on_skyline(entry);
    result.skyline.push_back(entry);
    reported_vectors.push_back(vec);
  }

  result.stats.candidate_count = order.size();
  result.stats.skyline_size = result.skyline.size();
  result.stats.settled_nodes = runner.TotalSettled();
  // See RunEdcBatch: never-fetched objects were pruned by the
  // Euclid-constraint region bounds.
  CountBoundPruned(dataset.object_count() - order.size());
  runner.RecordSources();
  scope.Finish(&result.stats);
  return result;
}

}  // namespace

SkylineResult RunEdc(const Dataset& dataset, const SkylineQuerySpec& spec,
                     const EdcOptions& options,
                     const ProgressiveCallback& on_skyline) {
  return RunQueryBody(dataset, spec, [&] {
    return options.incremental
               ? RunEdcIncremental(dataset, spec, options, on_skyline)
               : RunEdcBatch(dataset, spec, options, on_skyline);
  });
}

}  // namespace msq
