// EDC — Euclidean Distance Constraint (paper Section 4.2).
//
// Exploits space duality: (1) compute the multi-source skyline in Euclidean
// space with an R-tree browser; (2) compute those points' network distances
// with A* (directional expansion, intermediate labels kept for reuse);
// (3) "shift" each Euclidean skyline point to its network-distance position
// and fetch, with an R-tree window query, every object inside the union of
// the origin-anchored hypercubes — only those can dominate the shifted
// points; (4) compute network distances for all fetched candidates, reusing
// the step-2 labels; (5) pairwise-compare candidates on their network
// vectors and report the skyline.
//
// Both the batch form (steps 1-5) and the paper's incremental variant
// (Euclidean skyline points consumed one at a time, network skyline points
// reported as soon as determined) are provided; RunEdc dispatches on
// EdcOptions::incremental.
#ifndef MSQ_CORE_EDC_H_
#define MSQ_CORE_EDC_H_

#include "core/query.h"

namespace msq {

struct EdcOptions {
  // Use the incremental variant (progressive reporting). The batch variant
  // reports everything after step 5, matching the paper's observation that
  // batch EDC has a poor initial response time.
  bool incremental = false;
  // Run exactly the published algorithm. The paper's candidate region —
  // the union of origin-anchored hypercubes of the *shifted Euclidean
  // skyline points* — provably captures every object that can DOMINATE a
  // shifted point, but not network skyline points that are merely
  // INCOMPARABLE to all of them. On high-detour (large δ) networks the
  // published EDC can therefore miss skyline points and report candidates
  // dominated only by unfetched objects (see DESIGN.md §5 and
  // tests/core/edc_test.cc: KnownLimitation*). With this flag false
  // (default) a completion pass repeatedly fetches every object whose
  // optimistic Euclidean vector is undominated by the current skyline
  // estimate, which restores exactness while preserving the algorithm's
  // structure. Benchmarks set it true to measure the published algorithm.
  bool paper_faithful = false;
};

SkylineResult RunEdc(const Dataset& dataset, const SkylineQuerySpec& spec,
                     const EdcOptions& options = {},
                     const ProgressiveCallback& on_skyline = nullptr);

}  // namespace msq

#endif  // MSQ_CORE_EDC_H_
