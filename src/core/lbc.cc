#include "core/lbc.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <queue>

#include "cache/query_cache.h"
#include "common/check.h"
#include "graph/astar.h"

namespace msq {
namespace {

// Candidate buffered in step 1.2 with its exact distance to the source.
struct SourceCandidate {
  Dist source_dist;
  ObjectId object;
  bool operator>(const SourceCandidate& other) const {
    return source_dist > other.source_dist;
  }
};

SkylineResult RunLbcBody(const Dataset& dataset, const SkylineQuerySpec& spec,
                         const LbcOptions& options,
                         const ProgressiveCallback& on_skyline) {
  obs::TraceSession* const trace = spec.trace;
  StatsScope scope(dataset, trace, "lbc");
  SkylineResult result;
  QueryGuard guard(dataset, spec.limits);

  const std::size_t n = spec.sources.size();
  const std::size_t attr_dims = dataset.static_dims();
  const DistVector min_attrs = dataset.MinStaticAttributes();

  std::vector<Point> query_points;
  query_points.reserve(n);
  for (const Location& source : spec.sources) {
    query_points.push_back(dataset.network->LocationPosition(source));
  }

  // One reusable A* search per query point (labels shared across all
  // probes from that query point). Non-source searches are created lazily:
  // with one query point LBC touches the network only from the source.
  std::vector<std::unique_ptr<AStarSearch>> searches(n);
  auto search_for = [&](std::size_t qi) -> AStarSearch& {
    if (searches[qi] == nullptr) {
      searches[qi] = std::make_unique<AStarSearch>(
          dataset.graph_pager, spec.sources[qi], dataset.landmarks);
    }
    return *searches[qi];
  };

  // Cached wavefronts per source (typically left behind by CE runs over
  // the same query points): exact distances inside the settled region,
  // admissible lower bounds beyond it.
  std::vector<QueryCache::WavefrontPtr> wavefronts(n);
  std::vector<Dist> wavefront_radius(n, 0.0);
  if (dataset.cache != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      wavefronts[i] = dataset.cache->FindWavefront(
          spec.sources[i], dataset.graph_pager->data_epoch());
      if (wavefronts[i] != nullptr) {
        wavefront_radius[i] = CheckpointRadius(wavefronts[i]->search);
      }
    }
  }

  // Exact cached distance from source `qi` to `id`, if the memo or an
  // exact wavefront probe can supply one without touching the graph.
  auto exact_cached = [&](std::size_t qi, ObjectId id,
                          const Location& loc) -> std::optional<Dist> {
    QueryCache* const cache = dataset.cache;
    if (cache == nullptr) return std::nullopt;
    if (const std::optional<Dist> memo =
            cache->FindDistance(spec.sources[qi], id,
                                dataset.graph_pager->data_epoch())) {
      if (spec.plan != nullptr) spec.plan->RecordMemoHit();
      return memo;
    }
    if (wavefronts[qi] != nullptr) {
      const WavefrontProbe probe =
          ProbeCheckpoint(*dataset.network, wavefronts[qi]->search,
                          wavefront_radius[qi], spec.sources[qi], loc);
      if (probe.exact) {
        cache->StoreDistance(spec.sources[qi], id, probe.bound,
                             dataset.graph_pager->data_epoch());
        if (spec.plan != nullptr) spec.plan->RecordWavefrontExact();
        return probe.bound;
      }
    }
    return std::nullopt;
  };

  // Exact network distance from source `qi` to `id`: cache first, A* only
  // on a full miss (harvesting the result back into the memo).
  auto source_distance = [&](std::size_t qi, ObjectId id,
                             const Location& loc) -> Dist {
    if (const std::optional<Dist> cached = exact_cached(qi, id, loc)) {
      return *cached;
    }
    const Dist dist = search_for(qi).DistanceTo(loc);
    if (spec.plan != nullptr) spec.plan->RecordComputed();
    if (dataset.cache != nullptr) {
      dataset.cache->StoreDistance(spec.sources[qi], id, dist,
                                   dataset.graph_pager->data_epoch());
    }
    return dist;
  };

  // Reported skyline vectors (network distances + attributes).
  std::vector<DistVector> skyline_vectors;

  // Step 1.1's Euclidean NN browser with skyline-dominance pruning: an
  // entry is skipped when some s in S is at least as good as the entry's
  // optimistic vector in every dimension and strictly better somewhere.
  // (The ith attribute of the entry is its *Euclidean* distance to qi while
  // s carries *network* distances; dE <= dN makes the comparison sound.)
  auto prune = [&](const RTreeEntry& entry, bool is_leaf) {
    if (skyline_vectors.empty()) return false;
    DistVector lb;
    lb.reserve(n + attr_dims);
    for (std::size_t i = 0; i < n; ++i) {
      lb.push_back(entry.mbr.MinDist(query_points[i]));
    }
    if (attr_dims > 0) {
      if (is_leaf) {
        const DistVector attrs = dataset.StaticAttributesOf(entry.id);
        lb.insert(lb.end(), attrs.begin(), attrs.end());
      } else {
        lb.insert(lb.end(), min_attrs.begin(), min_attrs.end());
      }
    }
    for (std::size_t si = 0; si < skyline_vectors.size(); ++si) {
      if (DominatesWithMargin(skyline_vectors[si], lb, kFpTieMargin)) {
        // Early exit: the remaining skyline vectors were never tested.
        CountDominanceAvoided(skyline_vectors.size() - si - 1);
        return true;
      }
    }
    return false;
  };
  // Per-source discovery state. Single-source mode (the paper's primary
  // formulation) uses only spec.lbc_source_index; alternation (§4.3
  // extension) rotates through all of them.
  struct Discovery {
    std::size_t source_dim = 0;
    std::unique_ptr<RTreeNnBrowser> browser;
    // Candidates with exact source distance, pending network-NN ordering.
    std::priority_queue<SourceCandidate, std::vector<SourceCandidate>,
                        std::greater<>>
        heap;
    bool browser_exhausted = false;
  };
  std::vector<Discovery> discoveries;
  if (options.alternate_sources && n > 1) {
    discoveries.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      discoveries[i].source_dim = i;
      discoveries[i].browser = std::make_unique<RTreeNnBrowser>(
          dataset.object_rtree, query_points[i], prune);
    }
  } else {
    discoveries.resize(1);
    discoveries[0].source_dim = spec.lbc_source_index;
    discoveries[0].browser = std::make_unique<RTreeNnBrowser>(
        dataset.object_rtree, query_points[spec.lbc_source_index], prune);
  }

  // Each distinct object counts once toward |C| even when several sources
  // fetch it; an object screened through one source is resolved for all.
  std::vector<std::uint8_t> fetched(dataset.object_count(), 0);
  std::vector<std::uint8_t> resolved(dataset.object_count(), 0);

  // Step 1: the next network nearest neighbor of a discovery's source in
  // the not-yet-dominated region. Returns kInvalidObject when none remain.
  auto next_network_nn = [&](Discovery& d) -> SourceCandidate {
    for (;;) {
      while (!d.browser_exhausted) {
        // Step 1.2 stop rule: once some buffered candidate's network
        // distance does not exceed the Euclidean distance of everything
        // not yet fetched, that candidate precedes every unfetched object
        // (whose network distance >= its Euclidean distance >= the browser
        // bound). Checked before fetching so an already-determined network
        // NN never triggers extra candidate retrieval.
        if (!d.heap.empty() &&
            d.heap.top().source_dist <= d.browser->PeekLowerBound()) {
          break;
        }
        const auto item = d.browser->Next();
        if (!item.found) {
          d.browser_exhausted = true;
          break;
        }
        if (!fetched[item.id]) {
          fetched[item.id] = 1;
          ++result.stats.candidate_count;
        }
        if (resolved[item.id]) continue;  // another source settled it
        const Dist d_net = source_distance(
            d.source_dim, item.id, dataset.mapping->ObjectLocation(item.id));
        if (std::isfinite(d_net)) {
          d.heap.push(SourceCandidate{d_net, item.id});
        }
      }
      if (d.heap.empty()) return SourceCandidate{kInfDist, kInvalidObject};
      const SourceCandidate top = d.heap.top();
      d.heap.pop();
      if (resolved[top.object]) continue;  // resolved since buffering
      return top;
    }
  };

  // Step 2: screen candidate p with path distance lower bounds.
  // Returns p's full vector if it is a skyline point, empty if dominated.
  //
  // Domination bookkeeping is incremental: each potential dominator s in S
  // keeps a bitmask of the distance dimensions where s[i] <= bound[i]
  // already holds. Bounds only grow, so when a dimension advances only
  // that dimension's bit needs re-checking — O(|S|) per expansion instead
  // of O(|S| * n), which dominates at large |Q| where skylines are big.
  // Pruning-power classification (ExecutionPlan): an object rejected while
  // some distance dimension was still only a lower bound was pruned *by*
  // the bound; one whose every dimension was resolved exactly (skyline
  // point, dominated after full resolution, or excluded as unreachable)
  // was fully examined.
  auto all_exact = [](const std::vector<bool>& exact) {
    for (const bool e : exact) {
      if (!e) return false;
    }
    return true;
  };
  auto screen = [&](const SourceCandidate& cand,
                    std::size_t src) -> DistVector {
    const Location& loc = dataset.mapping->ObjectLocation(cand.object);
    const DistVector attrs = dataset.StaticAttributesOf(cand.object);

    // Current bounds per dimension; exact[i] says bound is the true value.
    DistVector bound(n, 0.0);
    std::vector<bool> exact(n, false);
    bound[src] = cand.source_dist;
    exact[src] = true;
    std::vector<std::unique_ptr<AStarSearch::Probe>> probes(n);
    const Point p_pos = dataset.mapping->ObjectPosition(cand.object);
    for (std::size_t i = 0; i < n; ++i) {
      if (i == src) continue;
      if (options.use_plb) {
        // Cache first: a memoized or wavefront-exact distance makes the
        // dimension exact with zero expansion; a partial wavefront still
        // contributes an admissible lower bound below.
        Dist wavefront_lb = 0.0;
        if (const std::optional<Dist> cached =
                exact_cached(i, cand.object, loc)) {
          bound[i] = *cached;
          exact[i] = true;
          if (!std::isfinite(bound[i])) {
            // Unreachable from some query point (the cold run would learn
            // this at probe completion): excluded by skyline semantics.
            CountBoundExamined();
            return {};
          }
          continue;
        }
        if (wavefronts[i] != nullptr) {
          wavefront_lb =
              ProbeCheckpoint(*dataset.network, wavefronts[i]->search,
                              wavefront_radius[i], spec.sources[i], loc)
                  .bound;
        }
        // Bounds start at the Euclidean distances (tightened by landmark
        // and cached-wavefront bounds when available); probes are created
        // (and network access paid) only if and when a dimension must
        // advance.
        bound[i] =
            std::max(wavefront_lb, EuclideanDistance(query_points[i], p_pos));
        if (dataset.landmarks != nullptr) {
          bound[i] = std::max(
              bound[i], dataset.landmarks->LowerBound(spec.sources[i], loc));
        }
      } else {
        // Ablation: full distances immediately, no early termination.
        bound[i] = source_distance(i, cand.object, loc);
        exact[i] = true;
      }
    }

    // Candidate dominators: s that are no worse on every static attribute
    // (others can never dominate p, whatever the distances turn out to be).
    struct Dominator {
      const DistVector* vec;
      std::uint64_t satisfied_mask = 0;  // dims with s[i] <= bound[i]
      std::uint32_t satisfied = 0;
      bool strict = false;
    };
    MSQ_CHECK(n <= 64);
    std::vector<Dominator> dominators;
    dominators.reserve(skyline_vectors.size());
    for (const DistVector& s : skyline_vectors) {
      bool attr_ok = true;
      bool attr_strict = false;
      for (std::size_t j = 0; j < attr_dims; ++j) {
        if (s[n + j] > attrs[j]) {
          attr_ok = false;
          break;
        }
        if (s[n + j] < attrs[j]) attr_strict = true;
      }
      if (!attr_ok) continue;
      Dominator d;
      d.vec = &s;
      d.strict = attr_strict;
      for (std::size_t i = 0; i < n; ++i) {
        if (s[i] <= bound[i]) {
          d.satisfied_mask |= std::uint64_t{1} << i;
          ++d.satisfied;
          // Strictness only from exact dimensions: a plb computed through
          // a different floating-point path (Euclidean sqrt vs network
          // offset sums) can exceed a mathematically equal distance by an
          // ulp and fabricate a strict dimension against an exact
          // duplicate. Exact dims compare network arithmetic to network
          // arithmetic. (The "<=" side errs toward keeping candidates
          // alive longer, never toward dropping them.)
          if (exact[i] && s[i] < bound[i]) d.strict = true;
        }
      }
      dominators.push_back(d);
    }
    // Initial bounds, before any probe expansion: the tightness a plb/ALT
    // bound achieved for a dimension is judged against these once the
    // probe completes with the exact distance.
    const DistVector initial_bound = bound;

    auto is_dominating = [&](const Dominator& d) {
      return d.satisfied == n && d.strict;
    };
    for (const Dominator& d : dominators) {
      if (is_dominating(d)) {
        if (all_exact(exact)) {
          CountBoundExamined();
        } else {
          CountBoundPruned();
        }
        return {};
      }
    }

    // Re-checks dominators against a grown bound in dimension `dim`.
    auto update_dim = [&](std::size_t dim) -> bool {
      const std::uint64_t bit = std::uint64_t{1} << dim;
      for (Dominator& d : dominators) {
        const Dist s_val = (*d.vec)[dim];
        if (s_val <= bound[dim]) {
          if ((d.satisfied_mask & bit) == 0) {
            d.satisfied_mask |= bit;
            ++d.satisfied;
          }
          // See the Dominator-init comment: strict only from exact dims.
          if (exact[dim] && s_val < bound[dim]) d.strict = true;
          if (is_dominating(d)) return true;
        }
      }
      return false;
    };

    for (;;) {
      // All dimensions exact and undominated: skyline point.
      std::size_t best_dim = n;
      Dist best_bound = kInfDist;
      for (std::size_t i = 0; i < n; ++i) {
        if (!exact[i] && bound[i] < best_bound) {
          best_bound = bound[i];
          best_dim = i;
        }
      }
      if (best_dim == n) break;

      // Advance the non-source dimension with the minimum current plb by
      // one expansion (Section 4.3: "choose a non-source query point q' to
      // expand to p if q's current path distance lower bound to p is the
      // minimum").
      if (probes[best_dim] == nullptr) {
        probes[best_dim] = std::make_unique<AStarSearch::Probe>(
            search_for(best_dim).NewProbe(loc));
      }
      AStarSearch::Probe& probe = *probes[best_dim];
      const Dist plb = probe.Advance();
      const Dist old_bound = bound[best_dim];
      bound[best_dim] = std::max(bound[best_dim], plb);
      if (probe.done()) {
        bound[best_dim] = probe.distance();
        exact[best_dim] = true;
        if (spec.plan != nullptr) spec.plan->RecordComputed();
        if (dataset.cache != nullptr) {
          // Probe completion yields an exact distance — harvest it (inf
          // included, so unreachability is also remembered).
          dataset.cache->StoreDistance(spec.sources[best_dim], cand.object,
                                       bound[best_dim],
                                       dataset.graph_pager->data_epoch());
        }
        if (!std::isfinite(bound[best_dim])) {
          // Unreachable from some query point: excluded by the library's
          // skyline semantics.
          CountBoundExamined();
          return {};
        }
        // Probe completion is the exact-resolution site: sample how tight
        // the initial plb was against the true network distance.
        const unsigned pct = RecordBoundTightness(initial_bound[best_dim],
                                                  bound[best_dim]);
        if (spec.plan != nullptr) spec.plan->RecordTightness(pct);
      }
      if (bound[best_dim] > old_bound && update_dim(best_dim)) {
        if (all_exact(exact)) {
          CountBoundExamined();
        } else {
          CountBoundPruned();
        }
        return {};  // dominated
      }
    }

    CountBoundExamined();
    DistVector vec = bound;
    vec.insert(vec.end(), attrs.begin(), attrs.end());
    return vec;
  };

  // Main loop: rotate across the discovery sources (a single iteration
  // vector in single-source mode) until every source is exhausted.
  std::size_t live = discoveries.size();
  std::vector<std::uint8_t> done(discoveries.size(), 0);
  std::size_t turn = 0;
  while (live > 0) {
    if (guard.Exceeded()) {
      // Progressive cut-off: reported entries were confirmed skyline points
      // at emission, so the prefix stands.
      result.truncated = true;
      result.truncation_reason = guard.reason();
      break;
    }
    const std::size_t di = turn % discoveries.size();
    ++turn;
    if (done[di]) continue;
    Discovery& discovery = discoveries[di];
    SourceCandidate cand;
    {
      obs::Span span(trace, "lbc.filter");
      cand = next_network_nn(discovery);
    }
    if (cand.object == kInvalidObject) {
      done[di] = 1;
      --live;
      continue;
    }
    resolved[cand.object] = 1;
    DistVector vec;
    {
      obs::Span span(trace, "lbc.confirm");
      vec = screen(cand, discovery.source_dim);
    }
    if (vec.empty()) continue;
    scope.MarkInitial();
    SkylineEntry entry;
    entry.object = cand.object;
    entry.vector = vec;
    if (on_skyline) on_skyline(entry);
    result.skyline.push_back(entry);
    skyline_vectors.push_back(std::move(vec));
  }

  // Tie safety (as in CE): with exactly equal source distances the pop
  // order between two candidates is arbitrary and a dominated one can be
  // reported before its dominator. No-op in the tie-free generic case.
  {
    obs::Span finalize_span(trace, "lbc.finalize");
    std::vector<SkylineEntry> filtered;
    for (const SkylineEntry& entry : result.skyline) {
      bool dominated = false;
      for (std::size_t oi = 0; oi < result.skyline.size(); ++oi) {
        const SkylineEntry& other = result.skyline[oi];
        if (other.object != entry.object &&
            Dominates(other.vector, entry.vector)) {
          CountDominanceAvoided(result.skyline.size() - oi - 1);
          dominated = true;
          break;
        }
      }
      if (!dominated) filtered.push_back(entry);
    }
    result.skyline = std::move(filtered);
  }

  result.stats.skyline_size = result.skyline.size();
  std::size_t settled = 0;
  for (const auto& search : searches) {
    if (search != nullptr) settled += search->settled_count();
  }
  result.stats.settled_nodes = settled;
  if (spec.plan != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      spec.plan->RecordSource(
          i, searches[i] != nullptr ? searches[i]->settled_count() : 0,
          searches[i] != nullptr ? searches[i]->max_settled_distance() : 0.0,
          wavefronts[i] != nullptr);
    }
  }
  scope.Finish(&result.stats);
  return result;
}

}  // namespace

SkylineResult RunLbc(const Dataset& dataset, const SkylineQuerySpec& spec,
                     const LbcOptions& options,
                     const ProgressiveCallback& on_skyline) {
  return RunQueryBody(dataset, spec, [&] {
    return RunLbcBody(dataset, spec, options, on_skyline);
  });
}

}  // namespace msq
