// LBC — Lower Bound Constraint (paper Section 4.3), the instance-optimal
// algorithm (Theorem 1).
//
// A single source query point q drives discovery: objects are fetched as
// incremental Euclidean NNs of q, skipping R-tree subtrees dominated by the
// known skyline set S (step 1.1); a fetched object's exact network distance
// to q is computed with A* and buffered in a candidate heap until its
// network distance provably precedes everything not yet fetched
// (step 1.2). Each network NN p is then screened against S using only
// *path distance lower bounds* to the non-source query points: starting
// from the Euclidean distances, the bound with the smallest value is
// advanced one A* expansion at a time, and p is discarded the moment some
// s in S is provably at least as good in every dimension (step 2). Only
// candidates that survive to full distance vectors are reported — so the
// network access spent on a dominated candidate is just enough to prove it
// dominated, which is what makes LBC instance optimal.
#ifndef MSQ_CORE_LBC_H_
#define MSQ_CORE_LBC_H_

#include "core/query.h"

namespace msq {

struct LbcOptions {
  // Disables the path-distance-lower-bound early termination: dominated
  // candidates then pay full network distance computations to every query
  // point, as EDC does. Exists for the ablation benchmark that isolates the
  // plb contribution (Section 5 / Figure 5 discussion).
  bool use_plb = true;
  // Rotate the discovery source among all query points instead of using
  // only SkylineQuerySpec::lbc_source_index — the paper's §4.3 extension
  // ("selecting network nearest neighbor points from multiple query points
  // alternatively"), which spreads early reported skyline points around
  // every query point instead of clustering them near one.
  bool alternate_sources = false;
};

SkylineResult RunLbc(const Dataset& dataset, const SkylineQuerySpec& spec,
                     const LbcOptions& options = {},
                     const ProgressiveCallback& on_skyline = nullptr);

}  // namespace msq

#endif  // MSQ_CORE_LBC_H_
