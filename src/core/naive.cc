#include "core/naive.h"

#include "graph/nn_stream.h"

namespace msq {

std::vector<DistVector> ComputeAllNetworkVectors(
    const Dataset& dataset, const SkylineQuerySpec& spec,
    std::size_t* settled_out, QueryGuard* guard, bool* truncated) {
  const std::size_t n = spec.sources.size();
  const std::size_t m = dataset.object_count();
  std::vector<DistVector> vectors(m, DistVector(n, kInfDist));
  std::size_t settled = 0;
  bool cut = false;
  for (std::size_t qi = 0; qi < n && !cut; ++qi) {
    // Drain a full NN stream: one Dijkstra sweep per query point reaches
    // every reachable object with its exact distance.
    NetworkNnStream stream(dataset.graph_pager, dataset.mapping,
                           spec.sources[qi]);
    Dist radius = 0.0;
    std::uint64_t emissions = 0;
    while (const auto visit = stream.Next()) {
      vectors[visit->object][qi] = visit->distance;
      radius = visit->distance;
      ++emissions;
      if (guard != nullptr && guard->Exceeded()) {
        cut = true;
        break;
      }
    }
    settled += stream.settled_count();
    if (spec.plan != nullptr) {
      // Naive computes every distance from scratch — all lookups land in
      // the "computed" tier and no bound ever prunes.
      spec.plan->RecordComputed(emissions);
      spec.plan->RecordSource(qi, stream.settled_count(), radius, false);
    }
  }
  if (settled_out != nullptr) *settled_out = settled;
  if (truncated != nullptr) *truncated = cut;
  return vectors;
}

namespace {

SkylineResult RunNaiveBody(const Dataset& dataset,
                           const SkylineQuerySpec& spec,
                           const ProgressiveCallback& on_skyline) {
  StatsScope scope(dataset, spec.trace, "naive");
  SkylineResult result;
  QueryGuard guard(dataset, spec.limits);

  std::size_t settled = 0;
  bool cut = false;
  std::vector<DistVector> vectors =
      ComputeAllNetworkVectors(dataset, spec, &settled, &guard, &cut);
  result.stats.settled_nodes = settled;
  if (cut) {
    // Batch algorithm: an incomplete distance matrix cannot confirm any
    // skyline point, so a truncated run returns an empty, flagged result.
    result.truncated = true;
    result.truncation_reason = guard.reason();
    scope.Finish(&result.stats);
    return result;
  }
  // Append static attributes before the skyline pass.
  if (dataset.static_dims() > 0) {
    for (ObjectId id = 0; id < vectors.size(); ++id) {
      const DistVector attrs = dataset.StaticAttributesOf(id);
      vectors[id].insert(vectors[id].end(), attrs.begin(), attrs.end());
    }
  }

  const std::vector<std::size_t> skyline = SkylineIndices(vectors);
  // Everything was a candidate: the naive algorithm inspects all of D —
  // every object fully examined, nothing pruned by a bound.
  CountBoundExamined(dataset.object_count());
  result.stats.candidate_count = dataset.object_count();
  bool first = true;
  for (const std::size_t idx : skyline) {
    // Tombstoned objects have all-infinite network vectors, which never
    // dominate anything but can survive the skyline pass when static
    // attributes are appended — skip them explicitly.
    if (!dataset.mapping->IsLive(static_cast<ObjectId>(idx))) continue;
    SkylineEntry entry;
    entry.object = static_cast<ObjectId>(idx);
    entry.vector = vectors[idx];
    if (first) {
      scope.MarkInitial();
      first = false;
    }
    if (on_skyline) on_skyline(entry);
    result.skyline.push_back(std::move(entry));
  }
  result.stats.skyline_size = result.skyline.size();
  scope.Finish(&result.stats);
  return result;
}

}  // namespace

SkylineResult RunNaive(const Dataset& dataset, const SkylineQuerySpec& spec,
                       const ProgressiveCallback& on_skyline) {
  return RunQueryBody(dataset, spec, [&] {
    return RunNaiveBody(dataset, spec, on_skyline);
  });
}

}  // namespace msq
