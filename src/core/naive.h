// Brute-force baseline/oracle: full network distance computation from every
// query point to every object, then an in-memory skyline pass. Exact by
// construction; the property tests compare CE/EDC/LBC against it, and the
// ablation benchmarks use it as the unoptimized reference.
#ifndef MSQ_CORE_NAIVE_H_
#define MSQ_CORE_NAIVE_H_

#include "core/query.h"

namespace msq {

// Runs the naive algorithm. `on_skyline` (optional) fires per reported
// point — for the naive algorithm everything is reported at the end, so its
// initial response time equals its total time, as the paper observes for
// batch algorithms.
SkylineResult RunNaive(const Dataset& dataset, const SkylineQuerySpec& spec,
                       const ProgressiveCallback& on_skyline = nullptr);

// Exposed for tests: the full |Q| x |D| network distance matrix, one
// DistVector (query-point distances only, no static attributes) per
// object. When `settled_out` is non-null it receives the total number of
// network nodes settled across the per-query-point sweeps. When `guard` is
// non-null the sweeps stop early once the guard trips; `*truncated` (when
// non-null) reports whether that happened — a truncated matrix is
// incomplete and must not feed a skyline pass.
std::vector<DistVector> ComputeAllNetworkVectors(
    const Dataset& dataset, const SkylineQuerySpec& spec,
    std::size_t* settled_out = nullptr, QueryGuard* guard = nullptr,
    bool* truncated = nullptr);

}  // namespace msq

#endif  // MSQ_CORE_NAIVE_H_
