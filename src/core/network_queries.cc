#include "core/network_queries.h"

#include "common/check.h"

namespace msq {

std::vector<NetworkMatch> NetworkKnn(const Dataset& dataset,
                                     const Location& source, std::size_t k) {
  MSQ_CHECK(dataset.network->IsValidLocation(source));
  NetworkNnStream stream(dataset.graph_pager, dataset.mapping, source);
  std::vector<NetworkMatch> matches;
  matches.reserve(k);
  while (matches.size() < k) {
    const auto visit = stream.Next();
    if (!visit.has_value()) break;
    matches.push_back(NetworkMatch{visit->object, visit->distance});
  }
  return matches;
}

std::vector<NetworkMatch> NetworkRange(const Dataset& dataset,
                                       const Location& source, Dist radius) {
  MSQ_CHECK(dataset.network->IsValidLocation(source));
  MSQ_CHECK(radius >= 0.0);
  NetworkNnStream stream(dataset.graph_pager, dataset.mapping, source);
  std::vector<NetworkMatch> matches;
  while (const auto visit = stream.Next()) {
    if (visit->distance > radius) break;  // stream is ascending
    matches.push_back(NetworkMatch{visit->object, visit->distance});
  }
  return matches;
}

}  // namespace msq
