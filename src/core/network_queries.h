// Single-source network proximity queries over a Dataset: k nearest
// neighbors and range search by shortest-path distance. Thin wrappers over
// the incremental NN stream, exposed because downstream users of a skyline
// library invariably need them (and the examples use them).
#ifndef MSQ_CORE_NETWORK_QUERIES_H_
#define MSQ_CORE_NETWORK_QUERIES_H_

#include <vector>

#include "core/query.h"
#include "graph/nn_stream.h"

namespace msq {

// An object with its exact network distance from the query location.
struct NetworkMatch {
  ObjectId object = kInvalidObject;
  Dist distance = kInfDist;
};

// The k objects nearest to `source` by network distance, nearest first.
// Fewer than k when the reachable object set is smaller.
std::vector<NetworkMatch> NetworkKnn(const Dataset& dataset,
                                     const Location& source, std::size_t k);

// Every object within network distance `radius` of `source`, nearest
// first (boundary inclusive).
std::vector<NetworkMatch> NetworkRange(const Dataset& dataset,
                                       const Location& source, Dist radius);

}  // namespace msq

#endif  // MSQ_CORE_NETWORK_QUERIES_H_
