#include "core/query.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace msq {

DistVector Dataset::StaticAttributesOf(ObjectId id) const {
  if (static_dims() == 0) return {};
  MSQ_CHECK(id < static_attributes->size());
  return (*static_attributes)[id];
}

DistVector Dataset::MinStaticAttributes() const {
  const std::size_t dims = static_dims();
  if (dims == 0) return {};
  DistVector mins((*static_attributes)[0]);
  for (const DistVector& v : *static_attributes) {
    MSQ_CHECK(v.size() == dims);
    for (std::size_t i = 0; i < dims; ++i) {
      mins[i] = std::min(mins[i], v[i]);
    }
  }
  return mins;
}

void ValidateQuery(const Dataset& dataset, const SkylineQuerySpec& spec) {
  MSQ_CHECK(dataset.network != nullptr && dataset.graph_pager != nullptr &&
            dataset.mapping != nullptr && dataset.object_rtree != nullptr);
  MSQ_CHECK_MSG(!spec.sources.empty(), "query needs at least one source");
  MSQ_CHECK(spec.lbc_source_index < spec.sources.size());
  for (const Location& source : spec.sources) {
    MSQ_CHECK_MSG(dataset.network->IsValidLocation(source),
                  "query source (edge %u, offset %f) invalid", source.edge,
                  source.offset);
  }
  if (dataset.static_attributes != nullptr &&
      !dataset.static_attributes->empty()) {
    MSQ_CHECK(dataset.static_attributes->size() == dataset.object_count());
  }
}

double MonotonicSeconds() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

StatsScope::StatsScope(const Dataset& dataset) : dataset_(dataset) {
  if (dataset.graph_buffer != nullptr) {
    graph_misses_0_ = dataset.graph_buffer->stats().misses;
    graph_accesses_0_ = dataset.graph_buffer->stats().accesses();
  }
  if (dataset.index_buffer != nullptr) {
    index_misses_0_ = dataset.index_buffer->stats().misses;
  }
  start_ = MonotonicSeconds();
}

void StatsScope::MarkInitial() {
  if (initial_ < 0.0) initial_ = MonotonicSeconds() - start_;
}

void StatsScope::Finish(QueryStats* stats) {
  stats->total_seconds = MonotonicSeconds() - start_;
  stats->initial_seconds = initial_ >= 0.0 ? initial_ : stats->total_seconds;
  if (dataset_.graph_buffer != nullptr) {
    stats->network_pages =
        dataset_.graph_buffer->stats().misses - graph_misses_0_;
    stats->network_page_accesses =
        dataset_.graph_buffer->stats().accesses() - graph_accesses_0_;
  }
  if (dataset_.index_buffer != nullptr) {
    stats->index_pages =
        dataset_.index_buffer->stats().misses - index_misses_0_;
  }
}

}  // namespace msq
