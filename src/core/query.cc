#include "core/query.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace msq {

DistVector Dataset::StaticAttributesOf(ObjectId id) const {
  if (static_dims() == 0) return {};
  MSQ_CHECK(id < static_attributes->size());
  return (*static_attributes)[id];
}

DistVector Dataset::MinStaticAttributes() const {
  const std::size_t dims = static_dims();
  if (dims == 0) return {};
  DistVector mins((*static_attributes)[0]);
  for (const DistVector& v : *static_attributes) {
    MSQ_CHECK(v.size() == dims);
    for (std::size_t i = 0; i < dims; ++i) {
      mins[i] = std::min(mins[i], v[i]);
    }
  }
  return mins;
}

Status ValidateQuery(const Dataset& dataset, const SkylineQuerySpec& spec) {
  // Missing dataset wiring is a programming error, not query input.
  MSQ_CHECK(dataset.network != nullptr && dataset.graph_pager != nullptr &&
            dataset.mapping != nullptr && dataset.object_rtree != nullptr);
  if (spec.sources.empty()) {
    return Status::InvalidArgument("query needs at least one source");
  }
  if (spec.lbc_source_index >= spec.sources.size()) {
    return Status::InvalidArgument(
        "lbc_source_index " + std::to_string(spec.lbc_source_index) +
        " out of range for " + std::to_string(spec.sources.size()) +
        " sources");
  }
  for (const Location& source : spec.sources) {
    if (!dataset.network->IsValidLocation(source)) {
      return Status::InvalidArgument(
          "query source (edge " + std::to_string(source.edge) + ", offset " +
          std::to_string(source.offset) + ") invalid");
    }
  }
  if (spec.limits.max_seconds < 0.0) {
    return Status::InvalidArgument("negative query deadline");
  }
  if (spec.limits.deadline_at < 0.0) {
    return Status::InvalidArgument("negative absolute deadline");
  }
  if (dataset.static_attributes != nullptr &&
      !dataset.static_attributes->empty()) {
    MSQ_CHECK(dataset.static_attributes->size() == dataset.object_count());
  }
  return Status();
}

namespace {

// `buffer`'s miss/access counts as seen by the calling thread. Pools
// attached to a query-stack role (Workload's two pools) are read from the
// thread-local counter block, which is exact per query even while other
// executor workers hammer the same pools; unattached pools (raw test
// setups) fall back to pool-wide totals, which are exact only when the
// pool is used from one thread — the historical behavior.
void ThreadBufferCounts(const BufferManager& buffer, std::uint64_t* misses,
                        std::uint64_t* accesses) {
  const obs::ThreadCounters& tc = obs::ThreadLocalCounters();
  switch (buffer.role()) {
    case BufferRole::kNetwork:
      *misses = tc.network_misses;
      *accesses = tc.network_accesses();
      return;
    case BufferRole::kIndex:
      *misses = tc.index_misses;
      *accesses = tc.index_accesses();
      return;
    case BufferRole::kNone:
      break;
  }
  const BufferStats stats = buffer.stats();
  *misses = stats.misses;
  *accesses = stats.accesses();
}

}  // namespace

QueryGuard::QueryGuard(const Dataset& dataset, const QueryLimits& limits)
    : dataset_(dataset), limits_(limits) {
  if (limits_.max_page_accesses > 0) accesses_0_ = PageAccesses();
  if (limits_.max_seconds > 0.0) start_ = MonotonicSeconds();
}

std::uint64_t QueryGuard::PageAccesses() const {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0, count = 0;
  if (dataset_.graph_buffer != nullptr) {
    ThreadBufferCounts(*dataset_.graph_buffer, &misses, &count);
    accesses += count;
  }
  if (dataset_.index_buffer != nullptr) {
    ThreadBufferCounts(*dataset_.index_buffer, &misses, &count);
    accesses += count;
  }
  return accesses;
}

bool QueryGuard::Exceeded() {
  if (reason_ != StatusCode::kOk) return true;
  if (limits_.max_page_accesses > 0 &&
      PageAccesses() - accesses_0_ > limits_.max_page_accesses) {
    reason_ = StatusCode::kResourceExhausted;
    return true;
  }
  if (limits_.max_seconds > 0.0 &&
      MonotonicSeconds() - start_ > limits_.max_seconds) {
    reason_ = StatusCode::kDeadlineExceeded;
    return true;
  }
  if (limits_.deadline_at > 0.0 &&
      MonotonicSeconds() >= limits_.deadline_at) {
    reason_ = StatusCode::kDeadlineExceeded;
    return true;
  }
  return false;
}

double MonotonicSeconds() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

StatsScope::StatsScope(const Dataset& dataset, obs::TraceSession* trace,
                       std::string_view root_name)
    : dataset_(dataset), current_session_(trace),
      root_span_(trace, root_name) {
  if (dataset.graph_buffer != nullptr) {
    ThreadBufferCounts(*dataset.graph_buffer, &graph_misses_0_,
                       &graph_accesses_0_);
  }
  if (dataset.index_buffer != nullptr) {
    ThreadBufferCounts(*dataset.index_buffer, &index_misses_0_,
                       &index_accesses_0_);
  }
  const obs::ThreadCounters& tc = obs::ThreadLocalCounters();
  cache_wf_hits_0_ = tc.cache_wavefront_hits;
  cache_wf_misses_0_ = tc.cache_wavefront_misses;
  cache_memo_hits_0_ = tc.cache_memo_hits;
  cache_memo_misses_0_ = tc.cache_memo_misses;
  dominance_tests_0_ = tc.dominance_tests;
  dominance_avoided_0_ = tc.dominance_avoided;
  bound_pruned_0_ = tc.bound_pruned;
  bound_examined_0_ = tc.bound_examined;
  bound_samples_0_ = tc.bound_samples;
  bound_pct_sum_0_ = tc.bound_pct_sum;
  start_ = MonotonicSeconds();
}

void StatsScope::MarkInitial() {
  if (initial_ < 0.0) initial_ = MonotonicSeconds() - start_;
}

void StatsScope::Finish(QueryStats* stats) {
  // Close the root span first: everything the stats window counted is then
  // attributed to some span, and nothing after this call can leak in.
  root_span_.Close();
  stats->total_seconds = MonotonicSeconds() - start_;
  stats->initial_seconds = initial_ >= 0.0 ? initial_ : stats->total_seconds;
  std::uint64_t misses = 0, accesses = 0;
  if (dataset_.graph_buffer != nullptr) {
    ThreadBufferCounts(*dataset_.graph_buffer, &misses, &accesses);
    stats->network_pages = misses - graph_misses_0_;
    stats->network_page_accesses = accesses - graph_accesses_0_;
    MSQ_CHECK(stats->network_page_accesses >= stats->network_pages);
  }
  if (dataset_.index_buffer != nullptr) {
    ThreadBufferCounts(*dataset_.index_buffer, &misses, &accesses);
    stats->index_pages = misses - index_misses_0_;
    stats->index_page_accesses = accesses - index_accesses_0_;
    MSQ_CHECK(stats->index_page_accesses >= stats->index_pages);
  }
  // Cache consultations are a separate access class (never part of the
  // page counters above); the same thread-local delta discipline keeps
  // them exact per query under a concurrent executor.
  const obs::ThreadCounters& tc = obs::ThreadLocalCounters();
  stats->cache_wavefront_hits = tc.cache_wavefront_hits - cache_wf_hits_0_;
  stats->cache_wavefront_misses =
      tc.cache_wavefront_misses - cache_wf_misses_0_;
  stats->cache_memo_hits = tc.cache_memo_hits - cache_memo_hits_0_;
  stats->cache_memo_misses = tc.cache_memo_misses - cache_memo_misses_0_;
  stats->dominance_tests = tc.dominance_tests - dominance_tests_0_;
  stats->dominance_tests_avoided =
      tc.dominance_avoided - dominance_avoided_0_;
  stats->bound_pruned = tc.bound_pruned - bound_pruned_0_;
  stats->bound_examined = tc.bound_examined - bound_examined_0_;
  stats->bound_tightness_samples = tc.bound_samples - bound_samples_0_;
  stats->bound_tightness_pct_sum = tc.bound_pct_sum - bound_pct_sum_0_;
}

}  // namespace msq
