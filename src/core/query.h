// Query, dataset-view, and result types shared by CE, EDC, LBC and the
// naive oracle.
#ifndef MSQ_CORE_QUERY_H_
#define MSQ_CORE_QUERY_H_

#include <functional>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/dominance.h"
#include "graph/graph_pager.h"
#include "graph/landmarks.h"
#include "graph/spatial_mapping.h"
#include "index/rtree.h"
#include "obs/plan.h"
#include "obs/trace.h"
#include "storage/buffer_manager.h"

namespace msq {

class QueryCache;

// Non-owning view over everything a skyline query runs against. The
// workload builder (gen/workloads.h) assembles and owns the underlying
// structures.
struct Dataset {
  const RoadNetwork* network = nullptr;
  // Paged adjacency access; its buffer manager's misses are the paper's
  // "network disk pages accessed".
  const GraphPager* graph_pager = nullptr;
  // Object -> edge middle layer (B+-tree behind `index_buffer`).
  const SpatialMapping* mapping = nullptr;
  // R-tree over object positions; entry ids are ObjectIds.
  const RTree* object_rtree = nullptr;
  // Buffer manager serving the network pages (for metrics snapshots).
  BufferManager* graph_buffer = nullptr;
  // Buffer manager serving index pages (R-trees + B+-tree).
  BufferManager* index_buffer = nullptr;
  // Optional static attributes, one vector per object, all the same size
  // (empty => no static attributes). Appended to network-distance vectors
  // for dominance.
  const std::vector<DistVector>* static_attributes = nullptr;
  // Optional ALT landmark index. When present, the A*-based algorithms
  // (EDC, LBC, aggregate NN) use max(Euclidean, landmark) lower bounds —
  // an extension outside the paper's no-precomputation algorithm class
  // (graph/landmarks.h).
  const LandmarkIndex* landmarks = nullptr;
  // Optional cross-query reuse cache (cache/query_cache.h), shared across
  // the queries of one executor. Null (the default) disables reuse — cold
  // behavior is byte-identical to a cacheless build.
  QueryCache* cache = nullptr;

  std::size_t object_count() const { return mapping->object_count(); }
  std::size_t static_dims() const {
    return (static_attributes == nullptr || static_attributes->empty())
               ? 0
               : static_attributes->front().size();
  }
  // The static attribute vector of `id` (empty when none).
  DistVector StaticAttributesOf(ObjectId id) const;
  // Component-wise minimum of all static attribute vectors (empty when
  // none); a valid lower bound for any object, used for subtree pruning.
  DistVector MinStaticAttributes() const;
};

// Resource guardrails for one query. Zero means "unlimited" — the default
// keeps benchmark behavior identical to the unguarded implementation.
struct QueryLimits {
  // Maximum buffer page accesses (graph + index) before the query is cut
  // off with kResourceExhausted.
  std::uint64_t max_page_accesses = 0;
  // Wall-clock deadline in seconds before the query is cut off with
  // kDeadlineExceeded. Relative to query start (not submission), so time
  // spent queued in an executor does not count against it.
  double max_seconds = 0.0;
  // Absolute deadline on the MonotonicSeconds() clock (0 = unset). Set by
  // the serving layer from the client deadline at admission, so queue wait
  // *does* count: a query that starts after the deadline passed returns an
  // immediate truncated-empty result (RunQueryBody short-circuits it
  // before the algorithm runs), and one that starts with little time left
  // is cut off that much sooner. Excluded from QuerySpecDigest — it is
  // per-run wall-clock state, not query identity.
  double deadline_at = 0.0;

  bool unlimited() const {
    return max_page_accesses == 0 && max_seconds == 0.0 &&
           deadline_at == 0.0;
  }
};

// Minimal fork-join execution interface for intra-query parallelism.
// Implementations (exec/task_pool.h) run the tasks of one RunAll call to
// completion — possibly concurrently, possibly inline on the calling
// thread — before returning, with a happens-before edge from every task
// body to the return. Tasks must be leaves: they must not call RunAll and
// must not block on each other.
class TaskRunner {
 public:
  virtual ~TaskRunner() = default;
  virtual void RunAll(std::vector<std::function<void()>> tasks) = 0;
};

// A multi-source skyline query: the query points plus options.
struct SkylineQuerySpec {
  std::vector<Location> sources;
  // LBC only: which source acts as the step-1 expansion origin.
  std::size_t lbc_source_index = 0;
  // Optional resource guardrails (see QueryLimits).
  QueryLimits limits;
  // Optional query-phase tracing (not owned). When set, the algorithms
  // record per-phase spans into it and the result carries a QueryProfile.
  // Null (the default) runs untraced at near-zero overhead.
  obs::TraceSession* trace = nullptr;
  // Optional intra-query parallelism (not owned). When set, CE produces
  // its per-source emission streams in parallel chunks on this runner and
  // replays them through the same deterministic round-robin merge, so the
  // skyline is byte-identical to the sequential run. The streams read
  // ahead of the merge, so the page/settle counters reflect
  // (deterministically) more work when the query cuts off early. Null
  // (the default) expands sequentially. Excluded from QuerySpecDigest —
  // execution strategy, not query identity.
  TaskRunner* runner = nullptr;
  // Optional execution-plan collection (not owned). When set, the
  // algorithms record per-source wavefront progress, distance-lookup tier
  // attribution, and bound-tightness samples into it; the executor (or
  // msq_profile) folds the collector plus QueryStats/QueryProfile into the
  // result's ExecutionPlan. Null (the default) collects nothing. Excluded
  // from QuerySpecDigest — observability, not query identity.
  obs::PlanCollector* plan = nullptr;
};

// One skyline answer entry. `vector` holds the network distances to each
// query point (in SkylineQuerySpec order) followed by the static
// attributes.
struct SkylineEntry {
  ObjectId object = kInvalidObject;
  DistVector vector;
};

// Per-query cost metrics, aligned with the paper's measurements.
//
// The `*_pages` fields count buffer MISSES — physical page reads, the
// paper's "disk pages accessed" of Figures 5 and 6. The `*_page_accesses`
// fields count every buffer lookup (hits + misses), so
// `*_page_accesses >= *_pages` always holds (asserted in
// StatsScope::Finish); the difference is the buffer pool's hit traffic.
struct QueryStats {
  std::size_t candidate_count = 0;     // |C| (Figure 4)
  std::size_t skyline_size = 0;
  std::uint64_t network_pages = 0;     // adjacency-page buffer misses
  std::uint64_t network_page_accesses = 0;  // adjacency hits + misses
  std::uint64_t index_pages = 0;       // index-page buffer misses
  std::uint64_t index_page_accesses = 0;    // index hits + misses
  std::size_t settled_nodes = 0;       // network node accesses (Section 5)
  double total_seconds = 0.0;          // Figures 5(b)/6(b)/6(e)
  double initial_seconds = 0.0;        // Figures 5(c)/6(c)/6(f)
  // Cross-query cache consultations (cache/query_cache.h) — an access
  // class of their own: a cache hit never touches a buffer pool and is
  // never counted in the page fields above.
  std::uint64_t cache_wavefront_hits = 0;
  std::uint64_t cache_wavefront_misses = 0;
  std::uint64_t cache_memo_hits = 0;
  std::uint64_t cache_memo_misses = 0;
  // Pruning-power accounting (DESIGN.md §17): thread-local counter deltas
  // over the query window, like the cache fields. `dominance_tests` is the
  // paper's canonical cost metric; `dominance_tests_avoided` counts
  // pairwise comparisons early exits and bound prunes made unnecessary.
  // `bound_pruned`/`bound_examined` partition candidates by whether a
  // lower bound eliminated them without exact distances.
  // `bound_tightness_samples`/`bound_tightness_pct_sum` summarize the
  // plb/dN ratios observed at exact-completion sites (mean tightness =
  // pct_sum / samples, in percent).
  std::uint64_t dominance_tests = 0;
  std::uint64_t dominance_tests_avoided = 0;
  std::uint64_t bound_pruned = 0;
  std::uint64_t bound_examined = 0;
  std::uint64_t bound_tightness_samples = 0;
  std::uint64_t bound_tightness_pct_sum = 0;
};

struct SkylineResult {
  std::vector<SkylineEntry> skyline;
  QueryStats stats;
  // Per-phase trace, present iff the spec carried a TraceSession. The sum
  // of the spans' self counters reconciles exactly with `stats` (the root
  // span covers the whole StatsScope window).
  std::optional<obs::QueryProfile> profile;
  // Structured execution plan, present when the caller asked for one
  // (QueryRequest::collect_plan, msq_profile, or a served request with
  // `explain: true`). Its counters reconcile exactly with `stats`
  // (obs/plan.h ReconcilePlan).
  std::optional<obs::ExecutionPlan> plan;
  // Overall outcome. !ok() means the query failed cleanly (bad input or a
  // storage fault survived retries); `skyline` is empty then.
  Status status;
  // True when a QueryLimits budget/deadline cut the query short. The
  // skyline then holds the confirmed prefix for progressive algorithms
  // (every entry is a true skyline point) and is empty for batch
  // algorithms, which cannot confirm anything mid-run.
  bool truncated = false;
  // kResourceExhausted or kDeadlineExceeded when truncated; kOk otherwise.
  StatusCode truncation_reason = StatusCode::kOk;
  // MonotonicSeconds() marks of when the query started and finished
  // executing on a QueryExecutor worker (0.0 for synchronous runs). The
  // serving layer derives true queue wait (accept -> execute start) and
  // the execute stage of the wide event from these instead of inferring
  // them from timing differences.
  double exec_started_at = 0.0;
  double exec_finished_at = 0.0;
  // Flight-recorder sequence assigned to this query's completion record
  // (0 for synchronous runs or disabled telemetry); lets a wide event
  // point back at the flight ring.
  std::uint64_t flight_sequence = 0;
};

// Progressive reporting hook: invoked as each skyline point is confirmed.
using ProgressiveCallback = std::function<void(const SkylineEntry&)>;

// Validates that the query spec is non-empty and every source location is
// valid on the dataset's network. Returns kInvalidArgument on violation —
// query inputs are external data, not programmer state. Missing dataset
// pointers still abort (wiring bug).
Status ValidateQuery(const Dataset& dataset, const SkylineQuerySpec& spec);

// Budget/deadline tracker for one query run. Algorithms poll Exceeded() at
// the top of their main loops; the first limit crossing latches a reason so
// the result can be flagged truncated consistently.
class QueryGuard {
 public:
  QueryGuard(const Dataset& dataset, const QueryLimits& limits);

  // True once the page budget or the deadline is crossed. Cheap when no
  // limit is set.
  bool Exceeded();

  // kOk until a limit is crossed, then kResourceExhausted or
  // kDeadlineExceeded (whichever latched first).
  StatusCode reason() const { return reason_; }

 private:
  std::uint64_t PageAccesses() const;

  const Dataset& dataset_;
  QueryLimits limits_;
  std::uint64_t accesses_0_ = 0;
  double start_ = 0.0;
  StatusCode reason_ = StatusCode::kOk;
};

// Monotonic wall-clock seconds (declared ahead of RunQueryBody, which
// polls it for the expired-at-start short-circuit).
double MonotonicSeconds();

// Shared query boundary: validates the spec, runs `body`, converts a
// StorageFault escaping it into an error result, and collects the trace
// profile when the spec carries a TraceSession. All Run* entry points
// funnel through this so "clean typed error, never a crash" holds uniformly.
template <typename Body>
SkylineResult RunQueryBody(const Dataset& dataset,
                           const SkylineQuerySpec& spec, Body&& body) {
  SkylineResult result;
  result.status = ValidateQuery(dataset, spec);
  if (!result.status.ok()) return result;
  // An absolute deadline that already passed (queue wait ate the whole
  // client budget) short-circuits to the well-defined truncated-empty
  // result without running the algorithm: no pages touched, no hang, same
  // shape a mid-run deadline cut produces for a batch algorithm.
  if (spec.limits.deadline_at > 0.0 &&
      MonotonicSeconds() >= spec.limits.deadline_at) {
    result.truncated = true;
    result.truncation_reason = StatusCode::kDeadlineExceeded;
    if (spec.trace != nullptr) result.profile = spec.trace->Take();
    return result;
  }
  try {
    result = std::forward<Body>(body)();
  } catch (const StorageFault& fault) {
    result.skyline.clear();
    result.status = fault.status();
  }
  // Take() force-closes whatever a fault unwind left open, so the error
  // path still yields a coherent (if truncated) profile.
  if (spec.trace != nullptr) result.profile = spec.trace->Take();
  return result;
}

// Stopwatch + buffer snapshot helper used by all algorithms to fill
// QueryStats uniformly. When a TraceSession is supplied it also opens the
// query's root span (named `root_name`) for the same window the stats
// cover, so span counter deltas reconcile exactly with QueryStats; the
// root closes in Finish, or at destruction if a fault unwinds the query.
class StatsScope {
 public:
  explicit StatsScope(const Dataset& dataset,
                      obs::TraceSession* trace = nullptr,
                      std::string_view root_name = "query");

  // Marks the moment the first skyline point was reported.
  void MarkInitial();
  // Finalizes timing/I-O counters into `*stats` and closes the root span.
  void Finish(QueryStats* stats);

 private:
  const Dataset& dataset_;
  // Registers the query's session as the thread-current one for the scope's
  // lifetime, so layers below the algorithm (buffer manager, query cache)
  // can attach detail spans via obs::DetailSpan without a plumbed pointer.
  obs::ScopedCurrentSession current_session_;
  obs::Span root_span_;
  std::uint64_t graph_misses_0_ = 0;
  std::uint64_t graph_accesses_0_ = 0;
  std::uint64_t index_misses_0_ = 0;
  std::uint64_t index_accesses_0_ = 0;
  std::uint64_t cache_wf_hits_0_ = 0;
  std::uint64_t cache_wf_misses_0_ = 0;
  std::uint64_t cache_memo_hits_0_ = 0;
  std::uint64_t cache_memo_misses_0_ = 0;
  std::uint64_t dominance_tests_0_ = 0;
  std::uint64_t dominance_avoided_0_ = 0;
  std::uint64_t bound_pruned_0_ = 0;
  std::uint64_t bound_examined_0_ = 0;
  std::uint64_t bound_samples_0_ = 0;
  std::uint64_t bound_pct_sum_0_ = 0;
  double start_ = 0.0;
  double initial_ = -1.0;
};

}  // namespace msq

#endif  // MSQ_CORE_QUERY_H_
