#include "core/skyband.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "common/check.h"
#include "core/naive.h"
#include "graph/astar.h"
#include "index/rtree.h"

namespace msq {
namespace {

// Dominator count of `vec` within `others`, capped at `cap` (counting
// beyond the cap never changes band membership).
// `vec` is an optimistic bound computed through a different FP path than
// the resolved vectors, so strictness uses the tie margin (dominance.h).
std::size_t CountDominators(const DistVector& vec,
                            const std::vector<DistVector>& others,
                            std::size_t cap) {
  std::size_t count = 0;
  for (const DistVector& other : others) {
    if (DominatesWithMargin(other, vec, kFpTieMargin)) {
      if (++count >= cap) break;
    }
  }
  return count;
}

}  // namespace

std::vector<std::pair<std::size_t, std::size_t>> SkybandIndices(
    const std::vector<DistVector>& vectors, std::size_t k) {
  MSQ_CHECK(k >= 1);
  std::vector<std::pair<std::size_t, std::size_t>> band;
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    if (!AllFinite(vectors[i])) continue;
    std::size_t count = 0;
    for (std::size_t j = 0; j < vectors.size() && count < k; ++j) {
      if (j != i && AllFinite(vectors[j]) &&
          Dominates(vectors[j], vectors[i])) {
        ++count;
      }
    }
    if (count < k) band.emplace_back(i, count);
  }
  return band;
}

SkybandResult RunSkybandNaive(const Dataset& dataset,
                              const SkylineQuerySpec& spec, std::size_t k) {
  // Extension algorithms keep the abort-on-invalid contract; only the
  // paper's main entry points degrade gracefully.
  MSQ_CHECK(ValidateQuery(dataset, spec).ok());
  MSQ_CHECK(k >= 1);
  StatsScope scope(dataset, spec.trace, "skyband.naive");
  SkybandResult result;

  std::size_t settled = 0;
  std::vector<DistVector> vectors =
      ComputeAllNetworkVectors(dataset, spec, &settled);
  if (dataset.static_dims() > 0) {
    for (ObjectId id = 0; id < vectors.size(); ++id) {
      const DistVector attrs = dataset.StaticAttributesOf(id);
      vectors[id].insert(vectors[id].end(), attrs.begin(), attrs.end());
    }
  }

  for (const auto& [idx, count] : SkybandIndices(vectors, k)) {
    SkybandResult::Entry entry;
    entry.object = static_cast<ObjectId>(idx);
    entry.vector = vectors[idx];
    entry.dominator_count = count;
    result.entries.push_back(std::move(entry));
  }
  std::sort(result.entries.begin(), result.entries.end(),
            [](const SkybandResult::Entry& a, const SkybandResult::Entry& b) {
              if (a.dominator_count != b.dominator_count) {
                return a.dominator_count < b.dominator_count;
              }
              return a.object < b.object;
            });
  result.stats.candidate_count = dataset.object_count();
  result.stats.skyline_size = result.entries.size();
  result.stats.settled_nodes = settled;
  scope.Finish(&result.stats);
  return result;
}

SkybandResult RunSkybandLbc(const Dataset& dataset,
                            const SkylineQuerySpec& spec, std::size_t k) {
  // Extension algorithms keep the abort-on-invalid contract; only the
  // paper's main entry points degrade gracefully.
  MSQ_CHECK(ValidateQuery(dataset, spec).ok());
  MSQ_CHECK(k >= 1);
  StatsScope scope(dataset, spec.trace, "skyband.lbc");
  SkybandResult result;

  const std::size_t n = spec.sources.size();
  const std::size_t src = spec.lbc_source_index;
  const std::size_t attr_dims = dataset.static_dims();
  const DistVector min_attrs = dataset.MinStaticAttributes();

  std::vector<Point> query_points;
  query_points.reserve(n);
  for (const Location& source : spec.sources) {
    query_points.push_back(dataset.network->LocationPosition(source));
  }
  std::vector<std::unique_ptr<AStarSearch>> searches(n);
  auto search_for = [&](std::size_t qi) -> AStarSearch& {
    if (searches[qi] == nullptr) {
      searches[qi] = std::make_unique<AStarSearch>(
          dataset.graph_pager, spec.sources[qi], dataset.landmarks);
    }
    return *searches[qi];
  };

  // Every candidate's full vector, in ascending source-distance
  // resolution order. Dominators of a candidate resolve before it (ties
  // repaired by the final recount), so counting within this set is exact
  // whenever the count stays below k (see skyband.h).
  std::vector<DistVector> resolved;

  // Region prune: a subtree may be skipped only when k resolved vectors
  // jointly dominate its optimistic vector.
  auto prune = [&](const RTreeEntry& entry, bool is_leaf) {
    if (resolved.size() < k) return false;
    DistVector lb;
    lb.reserve(n + attr_dims);
    for (std::size_t i = 0; i < n; ++i) {
      lb.push_back(entry.mbr.MinDist(query_points[i]));
    }
    if (attr_dims > 0) {
      if (is_leaf) {
        const DistVector attrs = dataset.StaticAttributesOf(entry.id);
        lb.insert(lb.end(), attrs.begin(), attrs.end());
      } else {
        lb.insert(lb.end(), min_attrs.begin(), min_attrs.end());
      }
    }
    return CountDominators(lb, resolved, k) >= k;
  };
  RTreeNnBrowser browser(dataset.object_rtree, query_points[src], prune);

  struct SourceCandidate {
    Dist source_dist;
    ObjectId object;
    bool operator>(const SourceCandidate& other) const {
      return source_dist > other.source_dist;
    }
  };
  std::priority_queue<SourceCandidate, std::vector<SourceCandidate>,
                      std::greater<>>
      source_heap;
  bool browser_exhausted = false;

  auto next_network_nn = [&]() -> SourceCandidate {
    while (!browser_exhausted) {
      if (!source_heap.empty() &&
          source_heap.top().source_dist <= browser.PeekLowerBound()) {
        const SourceCandidate top = source_heap.top();
        source_heap.pop();
        return top;
      }
      const auto item = browser.Next();
      if (!item.found) {
        browser_exhausted = true;
        break;
      }
      ++result.stats.candidate_count;
      const Dist d_net = search_for(src).DistanceTo(
          dataset.mapping->ObjectLocation(item.id));
      if (std::isfinite(d_net)) {
        source_heap.push(SourceCandidate{d_net, item.id});
      }
    }
    if (!source_heap.empty()) {
      const SourceCandidate top = source_heap.top();
      source_heap.pop();
      return top;
    }
    return SourceCandidate{kInfDist, kInvalidObject};
  };

  std::vector<SkybandResult::Entry> provisional;
  for (;;) {
    const SourceCandidate cand = next_network_nn();
    if (cand.object == kInvalidObject) break;
    const Location& loc = dataset.mapping->ObjectLocation(cand.object);

    DistVector vec(n, 0.0);
    vec[src] = cand.source_dist;
    bool reachable = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == src) continue;
      vec[i] = search_for(i).DistanceTo(loc);
      if (!std::isfinite(vec[i])) {
        reachable = false;
        break;
      }
    }
    if (!reachable) continue;
    const DistVector attrs = dataset.StaticAttributesOf(cand.object);
    vec.insert(vec.end(), attrs.begin(), attrs.end());

    SkybandResult::Entry entry;
    entry.object = cand.object;
    entry.vector = vec;
    provisional.push_back(std::move(entry));
    resolved.push_back(std::move(vec));
  }

  // Exact counts against the full resolved set (repairs tie ordering).
  for (SkybandResult::Entry& entry : provisional) {
    std::size_t count = 0;
    for (const DistVector& other : resolved) {
      if (Dominates(other, entry.vector)) ++count;
    }
    entry.dominator_count = count;
    if (count < k) result.entries.push_back(std::move(entry));
  }
  std::sort(result.entries.begin(), result.entries.end(),
            [](const SkybandResult::Entry& a, const SkybandResult::Entry& b) {
              if (a.dominator_count != b.dominator_count) {
                return a.dominator_count < b.dominator_count;
              }
              return a.object < b.object;
            });

  result.stats.skyline_size = result.entries.size();
  std::size_t settled = 0;
  for (const auto& search : searches) {
    if (search != nullptr) settled += search->settled_count();
  }
  result.stats.settled_nodes = settled;
  scope.Finish(&result.stats);
  return result;
}

}  // namespace msq
