// K-skyband queries: every object dominated by fewer than k others.
//
// The k-skyband generalizes the skyline (k = 1) and is the classic
// extension of the BBS machinery the paper builds on (Papadias et al.,
// SIGMOD 2003): a user who may discard up to k-1 options still finds a
// satisfactory object inside the k-skyband. Two implementations:
//  * naive — full network distance matrix, count dominators per object;
//  * LBC-style — discover candidates as incremental network NNs of a
//    source query point (ascending source distance means every potential
//    dominator of a candidate is resolved before it, ties aside) and stop
//    once the undominated... k-dominated region covers the rest. The
//    screening keeps a candidate until k distinct resolved objects
//    dominate it.
#ifndef MSQ_CORE_SKYBAND_H_
#define MSQ_CORE_SKYBAND_H_

#include "core/query.h"

namespace msq {

struct SkybandResult {
  // Entries dominated by fewer than k objects, with their dominator
  // counts, ascending by count then object id.
  struct Entry {
    ObjectId object = kInvalidObject;
    DistVector vector;
    std::size_t dominator_count = 0;
  };
  std::vector<Entry> entries;
  QueryStats stats;
};

// Exact k-skyband by full sweep. `k` >= 1; k = 1 is the skyline.
SkybandResult RunSkybandNaive(const Dataset& dataset,
                              const SkylineQuerySpec& spec, std::size_t k);

// Exact k-skyband by LBC-style incremental discovery. The R-tree region
// prune requires k points to jointly dominate a subtree before skipping
// it, so candidate sets grow with k.
SkybandResult RunSkybandLbc(const Dataset& dataset,
                            const SkylineQuerySpec& spec, std::size_t k);

// In-memory helper: indices of `vectors` dominated by fewer than k other
// vectors (non-finite vectors excluded), with counts.
std::vector<std::pair<std::size_t, std::size_t>> SkybandIndices(
    const std::vector<DistVector>& vectors, std::size_t k);

}  // namespace msq

#endif  // MSQ_CORE_SKYBAND_H_
