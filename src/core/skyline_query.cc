#include "core/skyline_query.h"

#include <cstdint>
#include <cstring>

#include "common/check.h"

namespace msq {

std::string_view AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kNaive:
      return "naive";
    case Algorithm::kCe:
      return "ce";
    case Algorithm::kEdc:
      return "edc";
    case Algorithm::kEdcIncremental:
      return "edc-inc";
    case Algorithm::kLbc:
      return "lbc";
    case Algorithm::kLbcNoPlb:
      return "lbc-noplb";
  }
  MSQ_CHECK(false);
  return "";
}

namespace {

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kNaive, Algorithm::kCe,  Algorithm::kEdc,
    Algorithm::kEdcIncremental, Algorithm::kLbc, Algorithm::kLbcNoPlb};

}  // namespace

bool ParseAlgorithm(std::string_view name, Algorithm* out) {
  for (const Algorithm a : kAllAlgorithms) {
    if (AlgorithmName(a) == name) {
      *out = a;
      return true;
    }
  }
  return false;
}

std::string AlgorithmNames() {
  std::string names;
  for (const Algorithm a : kAllAlgorithms) {
    if (!names.empty()) names += ", ";
    names += AlgorithmName(a);
  }
  return names;
}

SkylineResult RunSkylineQuery(Algorithm algorithm, const Dataset& dataset,
                              const SkylineQuerySpec& spec,
                              const ProgressiveCallback& on_skyline) {
  switch (algorithm) {
    case Algorithm::kNaive:
      return RunNaive(dataset, spec, on_skyline);
    case Algorithm::kCe:
      return RunCe(dataset, spec, on_skyline);
    case Algorithm::kEdc:
      return RunEdc(dataset, spec, EdcOptions{.incremental = false},
                    on_skyline);
    case Algorithm::kEdcIncremental:
      return RunEdc(dataset, spec, EdcOptions{.incremental = true},
                    on_skyline);
    case Algorithm::kLbc:
      return RunLbc(dataset, spec, LbcOptions{.use_plb = true}, on_skyline);
    case Algorithm::kLbcNoPlb:
      return RunLbc(dataset, spec, LbcOptions{.use_plb = false}, on_skyline);
  }
  MSQ_CHECK(false);
  return {};
}

namespace {

struct Fnv1a {
  std::uint64_t state = 14695981039346656037ull;

  void Mix(std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      state ^= (value >> (byte * 8)) & 0xff;
      state *= 1099511628211ull;
    }
  }
  void MixDouble(double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    Mix(bits);
  }
};

}  // namespace

std::uint64_t QuerySpecDigest(Algorithm algorithm,
                              const SkylineQuerySpec& spec) {
  Fnv1a hash;
  hash.Mix(static_cast<std::uint64_t>(algorithm));
  hash.Mix(spec.sources.size());
  for (const Location& source : spec.sources) {
    hash.Mix(source.edge);
    hash.MixDouble(source.offset);
  }
  hash.Mix(spec.lbc_source_index);
  hash.Mix(spec.limits.max_page_accesses);
  hash.MixDouble(spec.limits.max_seconds);
  return hash.state;
}

}  // namespace msq
