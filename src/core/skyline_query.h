// Unified entry point: pick an algorithm by enum and run it.
#ifndef MSQ_CORE_SKYLINE_QUERY_H_
#define MSQ_CORE_SKYLINE_QUERY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/ce.h"
#include "core/edc.h"
#include "core/lbc.h"
#include "core/naive.h"
#include "core/query.h"

namespace msq {

enum class Algorithm {
  kNaive,           // full distance matrix + BNL (oracle/baseline)
  kCe,              // Collaborative Expansion
  kEdc,             // Euclidean Distance Constraint, batch
  kEdcIncremental,  // EDC, progressive variant
  kLbc,             // Lower Bound Constraint (instance optimal)
  kLbcNoPlb,        // LBC ablation: plb early termination disabled
};

// Short stable name for tables and CLI flags ("naive", "ce", "edc",
// "edc-inc", "lbc", "lbc-noplb").
std::string_view AlgorithmName(Algorithm algorithm);

// Parses AlgorithmName output back; returns false on unknown name.
bool ParseAlgorithm(std::string_view name, Algorithm* out);

// All valid algorithm names, comma-separated ("naive, ce, ..."), for CLI
// error messages next to a failed ParseAlgorithm.
std::string AlgorithmNames();

// Runs `algorithm` against the dataset.
SkylineResult RunSkylineQuery(Algorithm algorithm, const Dataset& dataset,
                              const SkylineQuerySpec& spec,
                              const ProgressiveCallback& on_skyline =
                                  nullptr);

// Stable 64-bit digest of (algorithm, query spec) — the identity stamped
// on flight-recorder entries so the last-N-queries log can say *which*
// query a record describes without retaining the spec. FNV-1a over the
// algorithm, the sources (edge ids and offset bit patterns), the LBC
// origin index, and the limits; identical specs digest identically across
// runs and processes.
std::uint64_t QuerySpecDigest(Algorithm algorithm,
                              const SkylineQuerySpec& spec);

}  // namespace msq

#endif  // MSQ_CORE_SKYLINE_QUERY_H_
