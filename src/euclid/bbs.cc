#include "euclid/bbs.h"

#include <numeric>

#include "common/check.h"

namespace msq {

EuclideanSkylineBrowser::EuclideanSkylineBrowser(const RTree* tree,
                                                 std::vector<Point> queries,
                                                 PrunePredicate prune,
                                                 AttributeProvider attr_of,
                                                 DistVector min_attrs)
    : tree_(tree),
      queries_(std::move(queries)),
      prune_(std::move(prune)),
      attr_of_(std::move(attr_of)),
      min_attrs_(std::move(min_attrs)) {
  MSQ_CHECK(tree != nullptr);
  MSQ_CHECK(!queries_.empty());
  EnqueueNode(tree_->root_page());
}

DistVector EuclideanSkylineBrowser::LowerBoundVector(const RTreeEntry& entry,
                                                     bool is_leaf) const {
  DistVector lb;
  lb.reserve(queries_.size() + min_attrs_.size());
  for (const Point& q : queries_) lb.push_back(entry.mbr.MinDist(q));
  if (attr_of_) {
    if (is_leaf) {
      const DistVector attrs = attr_of_(entry.id);
      lb.insert(lb.end(), attrs.begin(), attrs.end());
    } else {
      lb.insert(lb.end(), min_attrs_.begin(), min_attrs_.end());
    }
  }
  return lb;
}

bool EuclideanSkylineBrowser::DominatedByReported(const DistVector& lb) const {
  for (const DistVector& s : reported_) {
    if (Dominates(s, lb)) return true;
  }
  return false;
}

void EuclideanSkylineBrowser::EnqueueNode(PageId page) {
  const RTreeNode node = tree_->ReadNode(page);
  for (const RTreeEntry& e : node.entries) {
    QueueItem item;
    item.lower_bound = LowerBoundVector(e, node.is_leaf);
    if (DominatedByReported(item.lower_bound)) continue;
    if (prune_ && prune_(e, node.is_leaf)) continue;
    item.mindist_sum = std::accumulate(item.lower_bound.begin(),
                                       item.lower_bound.end(), 0.0);
    item.is_node = !node.is_leaf;
    item.page = node.is_leaf ? kInvalidPage : e.id;
    item.entry = e;
    queue_.push(std::move(item));
  }
}

EuclideanSkylineBrowser::Item EuclideanSkylineBrowser::Next() {
  while (!queue_.empty()) {
    QueueItem top = queue_.top();
    queue_.pop();
    // Re-check against the (possibly grown) reported set and the caller's
    // pruning state.
    if (DominatedByReported(top.lower_bound)) continue;
    if (prune_ && prune_(top.entry, !top.is_node)) continue;
    if (top.is_node) {
      EnqueueNode(top.page);
      continue;
    }
    // Leaf entries store points, so the lower bound is the exact vector.
    Item item;
    item.found = true;
    item.object = top.entry.id;
    item.position = top.entry.mbr.Center();
    item.vector = std::move(top.lower_bound);
    reported_.push_back(item.vector);
    return item;
  }
  return Item{};
}

}  // namespace msq
