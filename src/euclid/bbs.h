// Branch-and-Bound-Skyline-style progressive multi-source Euclidean skyline
// over an R-tree (the extension of Papadias et al.'s BBS described in
// Section 4.2 of the paper).
//
// "Starting from the root of the R-tree, all accessed entries are kept in a
// heap ordered by their mindist", where mindist of an object is the SUM of
// its Euclidean distances to all query points and the mindist of an MBR is
// the sum of the per-query-point minimum distances. Leaf entries popped
// undominated are Euclidean skyline points, in ascending mindist order —
// which is what EDC's incremental variant consumes.
#ifndef MSQ_EUCLID_BBS_H_
#define MSQ_EUCLID_BBS_H_

#include <functional>
#include <queue>
#include <vector>

#include "core/dominance.h"
#include "geom/point.h"
#include "index/rtree.h"

namespace msq {

class EuclideanSkylineBrowser {
 public:
  // Optional external pruning on top of skyline dominance. EDC's
  // incremental variant prunes entries lying entirely inside regions whose
  // objects were already fetched.
  using PrunePredicate =
      std::function<bool(const RTreeEntry& entry, bool is_leaf_entry)>;

  // Optional static attributes: `attr_of` supplies the exact attribute
  // vector of a leaf object and `min_attrs` a component-wise lower bound
  // valid for every object (used for internal entries). When supplied, the
  // browser's vectors are distance dims followed by attribute dims and the
  // skyline is computed over the combined vector.
  using AttributeProvider = std::function<DistVector(ObjectId)>;

  EuclideanSkylineBrowser(const RTree* tree, std::vector<Point> queries,
                          PrunePredicate prune = nullptr,
                          AttributeProvider attr_of = nullptr,
                          DistVector min_attrs = {});

  struct Item {
    bool found = false;
    ObjectId object = kInvalidObject;
    Point position;
    // Exact Euclidean distances to the query points, followed by the static
    // attributes when an AttributeProvider was supplied.
    DistVector vector;
  };

  // Returns the next Euclidean skyline point (ascending sum of distances),
  // or found=false when exhausted.
  Item Next();

  // Distance vectors of the skyline points reported so far.
  const std::vector<DistVector>& reported() const { return reported_; }

 private:
  struct QueueItem {
    Dist mindist_sum;
    bool is_node;
    PageId page;
    RTreeEntry entry;
    DistVector lower_bound;
  };
  struct QueueCmp {
    bool operator()(const QueueItem& a, const QueueItem& b) const {
      return a.mindist_sum > b.mindist_sum;
    }
  };

  // Lower-bound vector of an entry (exact for leaf points).
  DistVector LowerBoundVector(const RTreeEntry& entry, bool is_leaf) const;
  bool DominatedByReported(const DistVector& lb) const;
  void EnqueueNode(PageId page);

  const RTree* tree_;
  std::vector<Point> queries_;
  PrunePredicate prune_;
  AttributeProvider attr_of_;
  DistVector min_attrs_;
  std::priority_queue<QueueItem, std::vector<QueueItem>, QueueCmp> queue_;
  std::vector<DistVector> reported_;
};

}  // namespace msq

#endif  // MSQ_EUCLID_BBS_H_
