#include "euclid/bnl.h"

namespace msq {

DistVector EuclideanVector(const Point& point,
                           const std::vector<Point>& queries) {
  DistVector vec;
  vec.reserve(queries.size());
  for (const Point& q : queries) {
    vec.push_back(EuclideanDistance(point, q));
  }
  return vec;
}

std::vector<std::size_t> BnlEuclideanSkyline(
    const std::vector<Point>& points, const std::vector<Point>& queries) {
  std::vector<DistVector> vectors;
  vectors.reserve(points.size());
  for (const Point& p : points) {
    vectors.push_back(EuclideanVector(p, queries));
  }
  return SkylineIndices(vectors);
}

}  // namespace msq
