// Block-nested-loops multi-source Euclidean skyline (Borzsonyi et al.,
// ICDE 2001) over materialized points — the simplest reference algorithm
// used in tests and as EDC's final pairwise comparison (step 5).
#ifndef MSQ_EUCLID_BNL_H_
#define MSQ_EUCLID_BNL_H_

#include <vector>

#include "core/dominance.h"
#include "geom/point.h"

namespace msq {

// dE of `point` to every query point, in order.
DistVector EuclideanVector(const Point& point,
                           const std::vector<Point>& queries);

// Multi-source Euclidean skyline over `points`: returns indices of the
// undominated points with respect to their Euclidean distance vectors to
// `queries`, ascending.
std::vector<std::size_t> BnlEuclideanSkyline(
    const std::vector<Point>& points, const std::vector<Point>& queries);

}  // namespace msq

#endif  // MSQ_EUCLID_BNL_H_
