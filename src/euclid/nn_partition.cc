#include "euclid/nn_partition.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <set>

#include "common/check.h"
#include "euclid/bnl.h"

namespace msq {
namespace {

// A to-do region: per-dimension exclusive upper bounds (kInfDist = open).
using Region = DistVector;

bool InsideRegion(const DistVector& vec, const Region& region) {
  for (std::size_t i = 0; i < vec.size(); ++i) {
    if (!(vec[i] < region[i])) return false;
  }
  return true;
}

}  // namespace

std::vector<std::size_t> NnPartitionSkyline(
    const std::vector<DistVector>& vectors, NnPartitionStats* stats) {
  NnPartitionStats local;
  std::vector<std::size_t> skyline;
  if (vectors.empty()) {
    if (stats != nullptr) *stats = local;
    return skyline;
  }
  const std::size_t dims = vectors.front().size();
  MSQ_CHECK(dims >= 1);

  std::vector<bool> reported(vectors.size(), false);
  std::deque<Region> todo;
  // Splits in different dimension orders produce identical regions
  // (the blowup behind the paper's "one object may be processed several
  // times" remark); exact-duplicate regions are dropped at enqueue time.
  std::set<Region> seen_regions;
  todo.push_back(Region(dims, kInfDist));
  seen_regions.insert(todo.front());

  while (!todo.empty()) {
    const Region region = todo.front();
    todo.pop_front();
    ++local.regions_processed;

    // NN (minimum sum) within the region.
    ++local.nn_probes;
    std::size_t best = vectors.size();
    Dist best_score = kInfDist;
    for (std::size_t i = 0; i < vectors.size(); ++i) {
      MSQ_CHECK(vectors[i].size() == dims);
      if (!AllFinite(vectors[i])) continue;
      if (!InsideRegion(vectors[i], region)) continue;
      const Dist score = std::accumulate(vectors[i].begin(),
                                         vectors[i].end(), 0.0);
      if (score < best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == vectors.size()) continue;  // empty region

    // The region NN is a skyline point; different to-do regions can find
    // the same one (the duplicated work the paper points out).
    if (reported[best]) {
      ++local.duplicate_reports;
    } else {
      reported[best] = true;
      skyline.push_back(best);
    }

    // Split: one sub-region per dimension, bounded by the NN's value.
    for (std::size_t d = 0; d < dims; ++d) {
      Region sub = region;
      sub[d] = std::min(sub[d], vectors[best][d]);
      if (seen_regions.insert(sub).second) {
        todo.push_back(std::move(sub));
      }
    }
  }

  // Exclusive region bounds drop exact duplicates of reported vectors;
  // re-admit them for tie semantics consistent with SkylineIndices.
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    if (reported[i] || !AllFinite(vectors[i])) continue;
    for (const std::size_t s : skyline) {
      if (vectors[s] == vectors[i]) {
        reported[i] = true;
        skyline.push_back(i);
        break;
      }
    }
  }

  std::sort(skyline.begin(), skyline.end());
  if (stats != nullptr) *stats = local;
  return skyline;
}

std::vector<std::size_t> NnPartitionEuclideanSkyline(
    const std::vector<Point>& points, const std::vector<Point>& queries,
    NnPartitionStats* stats) {
  std::vector<DistVector> vectors;
  vectors.reserve(points.size());
  for (const Point& p : points) {
    vectors.push_back(EuclideanVector(p, queries));
  }
  return NnPartitionSkyline(vectors, stats);
}

}  // namespace msq
