// Nearest-neighbor-partition skyline (Kossmann, Ramsak, Rost — VLDB 2002),
// the progressive algorithm the paper's Section 2 describes and that BBS
// [21] was designed to improve on: "the 1st nearest neighbor to the query
// point is always a skyline point. When a skyline point is found, the data
// space is split at that point into one dominated subspace and several
// independent non-determined subspaces ... the 1st NN in each to-do list
// is a new skyline point and the subspace is recursively split".
//
// Reference-quality implementation (linear NN scans, no index): used as a
// third Euclidean-skyline oracle and to demonstrate the duplicated-work
// behaviour the paper criticizes ("one object may be processed several
// times ... duplicate skyline points may be reported from different to-do
// lists") — the stats expose how many NN probes and duplicate reports
// occurred.
#ifndef MSQ_EUCLID_NN_PARTITION_H_
#define MSQ_EUCLID_NN_PARTITION_H_

#include <vector>

#include "core/dominance.h"
#include "geom/point.h"

namespace msq {

struct NnPartitionStats {
  std::size_t nn_probes = 0;          // NN-in-region scans performed
  std::size_t duplicate_reports = 0;  // skyline points re-found in other
                                      // to-do regions (the paper's
                                      // criticism of this method)
  std::size_t regions_processed = 0;
};

// Skyline of `vectors` (minimization) via NN partitioning. Returns indices
// ascending. Entries with non-finite components are excluded. Duplicate
// vectors are all reported (consistent with SkylineIndices).
std::vector<std::size_t> NnPartitionSkyline(
    const std::vector<DistVector>& vectors,
    NnPartitionStats* stats = nullptr);

// Multi-source Euclidean convenience wrapper.
std::vector<std::size_t> NnPartitionEuclideanSkyline(
    const std::vector<Point>& points, const std::vector<Point>& queries,
    NnPartitionStats* stats = nullptr);

}  // namespace msq

#endif  // MSQ_EUCLID_NN_PARTITION_H_
