#include "euclid/sfs.h"

#include <algorithm>
#include <numeric>

#include "euclid/bnl.h"

namespace msq {

std::vector<std::size_t> SfsSkyline(const std::vector<DistVector>& vectors) {
  std::vector<std::size_t> order;
  order.reserve(vectors.size());
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    if (AllFinite(vectors[i])) order.push_back(i);
  }
  std::vector<Dist> score(vectors.size(), 0.0);
  for (const std::size_t i : order) {
    score[i] = std::accumulate(vectors[i].begin(), vectors[i].end(), 0.0);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return score[a] < score[b];
  });

  // In score order, an entry not dominated by any already-accepted skyline
  // entry is itself skyline: a dominator would have a strictly smaller
  // monotone score and would already have been accepted.
  std::vector<std::size_t> skyline;
  for (const std::size_t i : order) {
    bool dominated = false;
    for (const std::size_t s : skyline) {
      if (Dominates(vectors[s], vectors[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(i);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

std::vector<std::size_t> SfsEuclideanSkyline(
    const std::vector<Point>& points, const std::vector<Point>& queries) {
  std::vector<DistVector> vectors;
  vectors.reserve(points.size());
  for (const Point& p : points) {
    vectors.push_back(EuclideanVector(p, queries));
  }
  return SfsSkyline(vectors);
}

}  // namespace msq
