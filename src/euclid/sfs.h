// Sort-Filter-Skyline (Chomicki et al., ICDE 2003): pre-sort by a monotone
// score, then a single filtering pass. Progressive — once an entry passes
// the filter it is final. Related-work baseline and a second oracle for the
// Euclidean skyline tests.
#ifndef MSQ_EUCLID_SFS_H_
#define MSQ_EUCLID_SFS_H_

#include <vector>

#include "core/dominance.h"
#include "geom/point.h"

namespace msq {

// Multi-source Euclidean skyline over `points` via SFS, sorted by the sum
// of the distance vector (a monotone preference function). Returns indices
// ascending.
std::vector<std::size_t> SfsEuclideanSkyline(
    const std::vector<Point>& points, const std::vector<Point>& queries);

// Generic SFS over arbitrary minimization vectors (used for tests that mix
// distances with static attributes). Entries with non-finite components are
// excluded.
std::vector<std::size_t> SfsSkyline(const std::vector<DistVector>& vectors);

}  // namespace msq

#endif  // MSQ_EUCLID_SFS_H_
