#include "exec/query_executor.h"

#include <utility>

#include "common/check.h"
#include "obs/trace.h"

namespace msq {

QueryExecutor::QueryExecutor(Dataset dataset, std::size_t workers)
    : QueryExecutor(std::move(dataset), workers,
                    std::unique_ptr<QueryCache>()) {}

QueryExecutor::QueryExecutor(Dataset dataset, std::size_t workers,
                             const QueryCacheConfig& cache_config)
    : QueryExecutor(std::move(dataset), workers,
                    std::make_unique<QueryCache>(cache_config)) {}

QueryExecutor::QueryExecutor(Dataset dataset, std::size_t workers,
                             std::unique_ptr<QueryCache> cache)
    : cache_(std::move(cache)), dataset_([&] {
        // An owned cache overrides nothing: the caller either passes a
        // cacheless view or wires their own shared cache instead.
        if (cache_ != nullptr) {
          MSQ_CHECK(dataset.cache == nullptr);
          dataset.cache = cache_.get();
        }
        return dataset;
      }()) {
  MSQ_CHECK(workers >= 1);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryExecutor::~QueryExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<SkylineResult> QueryExecutor::Submit(QueryRequest request) {
  MSQ_CHECK(request.spec.trace == nullptr);
  Job job;
  job.request = std::move(request);
  std::future<SkylineResult> future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    MSQ_CHECK(!stopping_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return future;
}

std::vector<SkylineResult> QueryExecutor::RunBatch(
    std::vector<QueryRequest> requests) {
  std::vector<std::future<SkylineResult>> futures;
  futures.reserve(requests.size());
  for (QueryRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  std::vector<SkylineResult> results;
  results.reserve(futures.size());
  for (std::future<SkylineResult>& future : futures) {
    results.push_back(future.get());
  }
  return results;
}

std::size_t QueryExecutor::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void QueryExecutor::WorkerLoop() {
  // The worker's private trace session. It tracks the global registry, so
  // it snapshots this thread's ThreadCounters (obs/trace.h) — per-query
  // span deltas stay exact while other workers share the pools.
  obs::TraceSession trace;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    SkylineQuerySpec spec = std::move(job.request.spec);
    if (job.request.collect_profile) spec.trace = &trace;
    // RunSkylineQuery funnels every failure into the result's status, so
    // nothing throws across the promise. Anything unexpected still must not
    // kill the process via a promise left unset.
    try {
      job.promise.set_value(
          RunSkylineQuery(job.request.algorithm, dataset_, spec));
    } catch (...) {
      job.promise.set_exception(std::current_exception());
    }
  }
}

}  // namespace msq
