#include "exec/query_executor.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace msq {
namespace {

// Translates one completed query into the flight-recorder summary the
// telemetry layer consumes: result-level fields plus the worker thread's
// ThreadCounters deltas over the query window (exact — the query ran
// entirely on this thread).
obs::FlightRecord MakeFlightRecord(Algorithm algorithm,
                                   const SkylineQuerySpec& spec,
                                   const SkylineResult& result,
                                   const obs::TraceContext& ctx,
                                   const obs::ThreadCounters& before,
                                   const obs::ThreadCounters& after) {
  obs::FlightRecord record;
  record.spec_digest = QuerySpecDigest(algorithm, spec);
  record.trace_id_hi = ctx.trace_id_hi;
  record.trace_id_lo = ctx.trace_id_lo;
  record.algorithm = static_cast<std::uint32_t>(algorithm);
  record.status_code = static_cast<std::int32_t>(result.status.code());
  record.truncation =
      result.truncated
          ? static_cast<std::uint32_t>(result.truncation_reason)
          : 0;
  record.source_count = static_cast<std::uint32_t>(spec.sources.size());
  record.skyline_size = result.skyline.size();
  record.wall_seconds = result.stats.total_seconds;
  record.network_hits = after.network_hits - before.network_hits;
  record.network_misses = after.network_misses - before.network_misses;
  record.index_hits = after.index_hits - before.index_hits;
  record.index_misses = after.index_misses - before.index_misses;
  record.settled_nodes = after.settled_nodes - before.settled_nodes;
  record.dominance_tests = after.dominance_tests - before.dominance_tests;
  record.dominance_avoided =
      after.dominance_avoided - before.dominance_avoided;
  record.bound_samples = after.bound_samples - before.bound_samples;
  record.bound_pct_sum = after.bound_pct_sum - before.bound_pct_sum;
  record.cache_hits = (after.cache_wavefront_hits + after.cache_memo_hits) -
                      (before.cache_wavefront_hits + before.cache_memo_hits);
  record.cache_misses =
      (after.cache_wavefront_misses + after.cache_memo_misses) -
      (before.cache_wavefront_misses + before.cache_memo_misses);
  return record;
}

}  // namespace

QueryExecutor::QueryExecutor(Dataset dataset, std::size_t workers)
    : QueryExecutor(std::move(dataset), workers,
                    std::unique_ptr<QueryCache>(), obs::TelemetryConfig{}) {}

QueryExecutor::QueryExecutor(Dataset dataset, std::size_t workers,
                             const QueryCacheConfig& cache_config)
    : QueryExecutor(std::move(dataset), workers,
                    std::make_unique<QueryCache>(cache_config),
                    obs::TelemetryConfig{}) {}

QueryExecutor::QueryExecutor(Dataset dataset, std::size_t workers,
                             const obs::TelemetryConfig& telemetry_config)
    : QueryExecutor(std::move(dataset), workers,
                    std::unique_ptr<QueryCache>(), telemetry_config) {}

QueryExecutor::QueryExecutor(Dataset dataset, std::size_t workers,
                             const QueryCacheConfig& cache_config,
                             const obs::TelemetryConfig& telemetry_config)
    : QueryExecutor(std::move(dataset), workers,
                    std::make_unique<QueryCache>(cache_config),
                    telemetry_config) {}

QueryExecutor::QueryExecutor(Dataset dataset, std::size_t workers,
                             std::unique_ptr<QueryCache> cache,
                             const obs::TelemetryConfig& telemetry_config)
    : cache_(std::move(cache)), dataset_([&] {
        // An owned cache overrides nothing: the caller either passes a
        // cacheless view or wires their own shared cache instead.
        if (cache_ != nullptr) {
          MSQ_CHECK(dataset.cache == nullptr);
          dataset.cache = cache_.get();
        }
        return dataset;
      }()),
      telemetry_(std::make_unique<obs::ServingTelemetry>(telemetry_config)) {
  MSQ_CHECK(workers >= 1);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryExecutor::~QueryExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void QueryExecutor::EnableSourceParallelism(std::size_t threads) {
  // Before the first Submit: workers read the pointer without locking.
  MSQ_CHECK(source_pool_ == nullptr);
  MSQ_CHECK(pending() == 0);
  source_pool_ = std::make_unique<TaskPool>(threads);
}

std::future<SkylineResult> QueryExecutor::Submit(QueryRequest request) {
  MSQ_CHECK(request.spec.trace == nullptr);
  Job job;
  job.request = std::move(request);
  job.enqueued_at = MonotonicSeconds();
  std::future<SkylineResult> future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    MSQ_CHECK(!stopping_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return future;
}

std::future<Status> QueryExecutor::SubmitExclusive(
    std::function<Status()> fn) {
  MSQ_CHECK(fn != nullptr);
  ExclusiveJob job;
  job.fn = std::move(fn);
  std::future<Status> future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    MSQ_CHECK(!stopping_);
    exclusive_queue_.push_back(std::move(job));
  }
  // All workers: one will claim the barrier, the rest must re-evaluate
  // their dequeue predicate (normal dequeue is now barred).
  cv_.notify_all();
  return future;
}

std::vector<SkylineResult> QueryExecutor::RunBatch(
    std::vector<QueryRequest> requests) {
  std::vector<std::future<SkylineResult>> futures;
  futures.reserve(requests.size());
  for (QueryRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  std::vector<SkylineResult> results;
  results.reserve(futures.size());
  for (std::future<SkylineResult>& future : futures) {
    results.push_back(future.get());
  }
  return results;
}

std::size_t QueryExecutor::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void QueryExecutor::Quiesce() const {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return queue_.empty() && exclusive_queue_.empty() && active_ == 0;
  });
}

void QueryExecutor::WorkerLoop() {
  // The worker's private trace session. It tracks the global registry, so
  // it snapshots this thread's ThreadCounters (obs/trace.h) — per-query
  // span deltas stay exact while other workers share the pools.
  obs::TraceSession trace;
  // The worker's reusable plan collector: a query runs entirely on this
  // thread, so the collector needs no synchronization.
  obs::PlanCollector plan_collector;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        // Drained and stopping: exit. Otherwise nothing is claimable while
        // an exclusive job holds the barrier; with the barrier down, an
        // exclusive job outranks queued queries.
        if (stopping_ && queue_.empty() && exclusive_queue_.empty()) {
          return true;
        }
        if (exclusive_running_) return false;
        return !exclusive_queue_.empty() || !queue_.empty();
      });
      if (queue_.empty() && exclusive_queue_.empty()) {
        return;  // stopping_ and drained
      }
      if (!exclusive_queue_.empty()) {
        RunExclusive(lock);
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    SkylineQuerySpec spec = std::move(job.request.spec);
    if (spec.runner == nullptr) spec.runner = source_pool_.get();
    const bool telemetry_on = telemetry_->enabled();
    // With telemetry on every query runs traced: the coarse phase spans
    // land in the worker's bounded span buffer and either feed tail
    // retention at completion or are dropped on the spot. The caller only
    // sees a profile when it asked for one.
    if (job.request.collect_profile || telemetry_on) spec.trace = &trace;
    // Full plan collection (and the fold below) runs only when the caller
    // asked (explain / collect_plan): building an ExecutionPlan per query
    // costs real allocations, which fast queries would pay on every
    // completion. The always-on /explainz pruning rollup is fed from the
    // QueryStats scalars instead (PlanStore::Account, below).
    const bool plan_on = job.request.collect_plan;
    if (plan_on) {
      plan_collector.Reset();
      spec.plan = &plan_collector;
    }
    obs::TraceContext ctx = job.request.trace_context;
    if (telemetry_on && !ctx.valid()) {
      ctx = obs::TraceContext::Mint(telemetry_->HeadSample());
    }
    // Head-sampled requests get detail spans (per-miss storage reads,
    // cache probes); everything else stays on coarse phase spans.
    trace.set_detail(telemetry_on && ctx.sampled);
    // RunSkylineQuery funnels every failure into the result's status, so
    // nothing throws across the promise. Anything unexpected still must not
    // kill the process via a promise left unset.
    try {
      obs::ThreadCounters before;
      if (telemetry_on) before = obs::ThreadLocalCounters();
      const double exec_started_at = MonotonicSeconds();
      SkylineResult result =
          RunSkylineQuery(job.request.algorithm, dataset_, spec);
      result.exec_started_at = exec_started_at;
      result.exec_finished_at = MonotonicSeconds();
      // Fold the plan before the profile can be detached below: the phase
      // rollup comes from this run's span tree.
      std::optional<obs::ExecutionPlan> plan;
      if (plan_on) {
        plan = obs::BuildExecutionPlan(
            AlgorithmName(job.request.algorithm), result.stats,
            result.profile.has_value() ? &*result.profile : nullptr,
            &plan_collector, result.truncated);
        result.plan = *plan;
      }
      if (telemetry_on) {
        obs::FlightRecord record =
            MakeFlightRecord(job.request.algorithm, spec, result, ctx,
                             before, obs::ThreadLocalCounters());
        record.sequence = telemetry_->RecordQuery(
            AlgorithmName(job.request.algorithm), record);
        result.flight_sequence = record.sequence;
        // Hand the profile to tail sampling; detach it from the result
        // unless the caller requested it (a copy is only paid when the
        // query is both slow/sampled and profiled by the caller).
        obs::QueryProfile profile;
        if (result.profile.has_value()) {
          if (job.request.collect_profile) {
            profile = *result.profile;
          } else {
            profile = *std::move(result.profile);
            result.profile.reset();
          }
        }
        const double queue_seconds =
            job.enqueued_at > 0.0
                ? std::max(0.0, exec_started_at - job.enqueued_at)
                : 0.0;
        telemetry_->CompleteRequest(ctx, record, queue_seconds,
                                    AlgorithmName(job.request.algorithm),
                                    std::move(profile));
        // Every completion feeds the per-algorithm pruning rollup (scalar
        // adds); only explain-requested plans enter the /explainz ring.
        telemetry_->plans().Account(AlgorithmName(job.request.algorithm),
                                    result.stats);
        if (plan.has_value()) {
          obs::RetainedPlan retained;
          retained.sequence = record.sequence;
          retained.trace_id = ctx.valid() ? ctx.TraceIdHex() : std::string();
          retained.plan = *std::move(plan);
          telemetry_->plans().Retain(std::move(retained));
        }
      }
      job.promise.set_value(std::move(result));
    } catch (...) {
      job.promise.set_exception(std::current_exception());
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      // Unconditional on active_ == 0: besides Quiesce (which re-checks
      // the queues), a claimed exclusive job waits on this cv for the
      // in-flight queries to drain.
      if (active_ == 0) idle_cv_.notify_all();
    }
  }
}

void QueryExecutor::RunExclusive(std::unique_lock<std::mutex>& lock) {
  // Raise the barrier first: no worker dequeues anything (query or
  // exclusive) past this point, so active_ can only drain.
  exclusive_running_ = true;
  idle_cv_.wait(lock, [this] { return active_ == 0; });
  ExclusiveJob job = std::move(exclusive_queue_.front());
  exclusive_queue_.pop_front();
  ++active_;
  lock.unlock();
  // Sole active job: the mutation may allocate pages, rewrite records, and
  // resweep in-memory tables with no reader in flight.
  try {
    job.promise.set_value(job.fn());
  } catch (const StorageFault& fault) {
    job.promise.set_value(fault.status());
  } catch (...) {
    job.promise.set_exception(std::current_exception());
  }
  lock.lock();
  --active_;
  exclusive_running_ = false;
  if (active_ == 0) idle_cv_.notify_all();
  lock.unlock();
  // Barrier down: wake everyone for the queued queries (and any further
  // exclusive jobs).
  cv_.notify_all();
}

}  // namespace msq
