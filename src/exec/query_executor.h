// Concurrent skyline query execution over one shared dataset.
//
// QueryExecutor owns a fixed pool of worker threads that drain a queue of
// skyline query requests. All workers run against the same Dataset — the
// same paged road network, R-tree, B+-tree, and the two shared buffer
// pools — which the sharded, pinned BufferManager (storage/buffer_manager.h)
// makes safe. Everything mutable a query needs beyond the pools (wavefront
// search state, candidate sets, the TraceSession) is private to the worker
// running it, so queries never synchronize with each other above the
// storage layer.
//
// Per-query accounting stays exact under concurrency: a query executes
// entirely on one worker thread, and the per-thread counter substrate
// (obs::ThreadCounters) gives its StatsScope/QueryGuard/TraceSession
// windows a view only that thread advances. Results therefore carry the
// same QueryStats — and, when requested, the same exactly-reconciling
// QueryProfile — as a single-threaded run of the same query.
//
// Failure model is unchanged from the synchronous entry points: a request
// never throws across the queue; its SkylineResult carries a typed error
// status instead (core/query.h).
#ifndef MSQ_EXEC_QUERY_EXECUTOR_H_
#define MSQ_EXEC_QUERY_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cache/query_cache.h"
#include "common/status.h"
#include "core/query.h"
#include "core/skyline_query.h"
#include "exec/task_pool.h"
#include "obs/telemetry.h"

namespace msq {

// One unit of work for the executor.
struct QueryRequest {
  Algorithm algorithm = Algorithm::kCe;
  // The query to run. `spec.trace` must be null — the executor supplies
  // the worker's own session (a caller-held session would be shared across
  // threads).
  SkylineQuerySpec spec;
  // When true the result carries a QueryProfile recorded by the worker's
  // private TraceSession. With telemetry enabled every query is traced
  // regardless (the profile feeds tail sampling); this flag only controls
  // whether the caller gets a copy on the result.
  bool collect_profile = false;
  // When true the result carries an ExecutionPlan (the EXPLAIN view): the
  // per-phase/pruning/cache breakdown built from this run's stats, profile,
  // and plan collector. With telemetry enabled plans are collected and
  // retained for /explainz regardless; this flag only controls whether the
  // caller's result includes a copy.
  bool collect_plan = false;
  // Request trace identity (obs/request_context.h). Invalid (the default)
  // makes the executor mint one at dispatch, with the head-sampling coin
  // deciding `sampled`. A sampled context additionally enables detail
  // spans (storage page reads, cache probes) for this query.
  obs::TraceContext trace_context;
};

// Fixed-size worker pool running skyline queries concurrently against one
// shared dataset. Thread-safe: any thread may Submit; RunBatch may be
// called from several threads at once (their results don't interleave).
// Destruction drains nothing — it finishes jobs already queued, then joins.
class QueryExecutor {
 public:
  // `dataset` is a non-owning view, copied in (so a Workload::dataset()
  // temporary is fine); the structures it points into must outlive the
  // executor. `workers` must be >= 1. Queries reuse nothing across each
  // other unless the dataset view already carries a QueryCache. Serving
  // telemetry (obs/telemetry.h) runs with default config: every completion
  // feeds the per-algorithm histograms and the flight recorder;
  // slow-query auto-capture stays off until thresholds are configured.
  QueryExecutor(Dataset dataset, std::size_t workers);

  // Same, plus an executor-owned cross-query cache (cache/query_cache.h)
  // shared by all workers: the dataset view handed to every query carries
  // it, so wavefronts and exact distances flow between queries.
  QueryExecutor(Dataset dataset, std::size_t workers,
                const QueryCacheConfig& cache_config);

  // Explicit telemetry config: histogram registry override, flight-ring
  // size, slow-query thresholds, or enabled=false for a bare executor.
  QueryExecutor(Dataset dataset, std::size_t workers,
                const obs::TelemetryConfig& telemetry_config);
  QueryExecutor(Dataset dataset, std::size_t workers,
                const QueryCacheConfig& cache_config,
                const obs::TelemetryConfig& telemetry_config);

  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  // Enqueues one query; the future resolves to its result. Never blocks on
  // query execution.
  std::future<SkylineResult> Submit(QueryRequest request);

  // Enqueues the whole batch and waits for completion. Results are in
  // request order regardless of which worker finished when.
  std::vector<SkylineResult> RunBatch(std::vector<QueryRequest> requests);

  // Enqueues `fn` as an exclusive write job. The worker that claims it
  // first waits for every in-flight query to finish, then runs `fn` as the
  // only active job in the pool; queries queued behind it (and further
  // exclusive jobs) resume once it returns. This is the barrier the
  // dynamic-world mutations (gen/workloads.h) run under: they allocate and
  // rewrite pages that concurrent readers would otherwise race. Nothing
  // throws across the queue — a StorageFault from `fn` resolves the future
  // to its status.
  std::future<Status> SubmitExclusive(std::function<Status()> fn);

  std::size_t worker_count() const { return workers_.size(); }

  // Queued-but-unstarted jobs (diagnostics; racy by nature).
  std::size_t pending() const;

  // Blocks until no queued or in-flight work remains. Telemetry reads
  // (flight recorder, slow log, trace store, histograms) are stable
  // afterwards, provided no other thread is still submitting.
  void Quiesce() const;

  // Turns on intra-query source parallelism: a shared TaskPool of
  // `threads` helpers that every CE query dispatched by this executor
  // expands its per-source wavefronts on (core/query.h TaskRunner;
  // results stay byte-identical to sequential runs). Off by default — the
  // historical one-thread-per-query execution. Call before the first
  // Submit; requests whose spec already carries a runner keep it.
  void EnableSourceParallelism(std::size_t threads);

  // The shared intra-query pool, or null until EnableSourceParallelism.
  TaskPool* source_pool() const { return source_pool_.get(); }

  // The dataset view every query runs against (serving diagnostics read
  // the buffer pools through it).
  const Dataset& dataset() const { return dataset_; }

  // The executor-owned cross-query cache, or null when constructed without
  // one. Callers use it for stats and for Invalidate() on dataset reload.
  QueryCache* cache() const { return cache_.get(); }

  // The executor-owned serving-telemetry layer (always constructed; a
  // disabled config makes it inert). Flight records, slow-query profiles,
  // and the histogram registry hang off it.
  obs::ServingTelemetry& telemetry() const { return *telemetry_; }

 private:
  struct Job {
    QueryRequest request;
    std::promise<SkylineResult> promise;
    // MonotonicSeconds() at Submit; execute start minus this is the
    // queue-wait stage of the request's trace.
    double enqueued_at = 0.0;
  };

  struct ExclusiveJob {
    std::function<Status()> fn;
    std::promise<Status> promise;
  };

  QueryExecutor(Dataset dataset, std::size_t workers,
                std::unique_ptr<QueryCache> cache,
                const obs::TelemetryConfig& telemetry_config);

  void WorkerLoop();

  // Claims the front exclusive job. Entered with `lock` held and the
  // barrier down; drains in-flight queries, runs the job unlocked as the
  // only active one, then lowers the barrier. Returns with `lock`
  // released.
  void RunExclusive(std::unique_lock<std::mutex>& lock);

  // Declared before dataset_: the dataset view is rewired to point at the
  // owned cache during construction.
  std::unique_ptr<QueryCache> cache_;
  // Shared intra-query helper pool (EnableSourceParallelism). Destroyed
  // after the workers join, so in-flight queries never outlive it.
  std::unique_ptr<TaskPool> source_pool_;
  const Dataset dataset_;
  std::unique_ptr<obs::ServingTelemetry> telemetry_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Signalled each time a worker finishes a job (and its slow capture)
  // with nothing left queued or running; Quiesce waits on it.
  mutable std::condition_variable idle_cv_;
  std::deque<Job> queue_;
  std::deque<ExclusiveJob> exclusive_queue_;
  std::size_t active_ = 0;  // jobs dequeued but not fully finished
  // An exclusive job has been claimed and not yet finished; all other
  // dequeuing (query or exclusive) is barred until it clears.
  bool exclusive_running_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace msq

#endif  // MSQ_EXEC_QUERY_EXECUTOR_H_
