// Concurrent skyline query execution over one shared dataset.
//
// QueryExecutor owns a fixed pool of worker threads that drain a queue of
// skyline query requests. All workers run against the same Dataset — the
// same paged road network, R-tree, B+-tree, and the two shared buffer
// pools — which the sharded, pinned BufferManager (storage/buffer_manager.h)
// makes safe. Everything mutable a query needs beyond the pools (wavefront
// search state, candidate sets, the TraceSession) is private to the worker
// running it, so queries never synchronize with each other above the
// storage layer.
//
// Per-query accounting stays exact under concurrency: a query executes
// entirely on one worker thread, and the per-thread counter substrate
// (obs::ThreadCounters) gives its StatsScope/QueryGuard/TraceSession
// windows a view only that thread advances. Results therefore carry the
// same QueryStats — and, when requested, the same exactly-reconciling
// QueryProfile — as a single-threaded run of the same query.
//
// Failure model is unchanged from the synchronous entry points: a request
// never throws across the queue; its SkylineResult carries a typed error
// status instead (core/query.h).
#ifndef MSQ_EXEC_QUERY_EXECUTOR_H_
#define MSQ_EXEC_QUERY_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cache/query_cache.h"
#include "core/query.h"
#include "core/skyline_query.h"

namespace msq {

// One unit of work for the executor.
struct QueryRequest {
  Algorithm algorithm = Algorithm::kCe;
  // The query to run. `spec.trace` must be null — tracing is requested via
  // `collect_profile`, and the executor supplies the worker's own session
  // (a caller-held session would be shared across threads).
  SkylineQuerySpec spec;
  // When true the result carries a QueryProfile recorded by the worker's
  // private TraceSession.
  bool collect_profile = false;
};

// Fixed-size worker pool running skyline queries concurrently against one
// shared dataset. Thread-safe: any thread may Submit; RunBatch may be
// called from several threads at once (their results don't interleave).
// Destruction drains nothing — it finishes jobs already queued, then joins.
class QueryExecutor {
 public:
  // `dataset` is a non-owning view, copied in (so a Workload::dataset()
  // temporary is fine); the structures it points into must outlive the
  // executor. `workers` must be >= 1. Queries reuse nothing across each
  // other unless the dataset view already carries a QueryCache.
  QueryExecutor(Dataset dataset, std::size_t workers);

  // Same, plus an executor-owned cross-query cache (cache/query_cache.h)
  // shared by all workers: the dataset view handed to every query carries
  // it, so wavefronts and exact distances flow between queries.
  QueryExecutor(Dataset dataset, std::size_t workers,
                const QueryCacheConfig& cache_config);

  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  // Enqueues one query; the future resolves to its result. Never blocks on
  // query execution.
  std::future<SkylineResult> Submit(QueryRequest request);

  // Enqueues the whole batch and waits for completion. Results are in
  // request order regardless of which worker finished when.
  std::vector<SkylineResult> RunBatch(std::vector<QueryRequest> requests);

  std::size_t worker_count() const { return workers_.size(); }

  // Queued-but-unstarted jobs (diagnostics; racy by nature).
  std::size_t pending() const;

  // The executor-owned cross-query cache, or null when constructed without
  // one. Callers use it for stats and for Invalidate() on dataset reload.
  QueryCache* cache() const { return cache_.get(); }

 private:
  struct Job {
    QueryRequest request;
    std::promise<SkylineResult> promise;
  };

  QueryExecutor(Dataset dataset, std::size_t workers,
                std::unique_ptr<QueryCache> cache);

  void WorkerLoop();

  // Declared before dataset_: the dataset view is rewired to point at the
  // owned cache during construction.
  std::unique_ptr<QueryCache> cache_;
  const Dataset dataset_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace msq

#endif  // MSQ_EXEC_QUERY_EXECUTOR_H_
