#include "exec/task_pool.h"

#include <utility>

#include "common/check.h"

namespace msq {

TaskPool::TaskPool(std::size_t threads) {
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Destroying the pool with queued work would strand a RunAll caller;
    // the owner must not tear the pool down mid-query.
    MSQ_CHECK(queue_.empty());
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

bool TaskPool::RunOneTask(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) return false;
  Task task = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  task.fn();
  lock.lock();
  if (--task.batch->remaining == 0) task.batch->done_cv.notify_all();
  return true;
}

void TaskPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    RunOneTask(lock);
  }
}

void TaskPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  auto batch = std::make_shared<Batch>();
  batch->remaining = tasks.size();
  std::unique_lock<std::mutex> lock(mu_);
  MSQ_CHECK(!stopping_);
  for (std::function<void()>& fn : tasks) {
    queue_.push_back(Task{std::move(fn), batch});
  }
  if (!threads_.empty()) work_cv_.notify_all();
  // Help: run queued tasks (own batch or another caller's — leaves by
  // contract, so executing them here cannot block on this batch) until the
  // queue drains, then wait for pool workers to finish the stragglers.
  while (batch->remaining > 0) {
    if (!RunOneTask(lock)) {
      batch->done_cv.wait(lock, [&] { return batch->remaining == 0; });
    }
  }
}

}  // namespace msq
