// Fork-join worker pool behind the TaskRunner interface (core/query.h).
//
// RunAll enqueues its batch and then HELPS: the calling thread executes
// queued tasks alongside the pool workers until its own batch completes.
// Helping gives two properties the intra-query parallelism needs:
//
//  * A 1-thread host (or a 0-worker pool) still makes progress — the
//    caller just runs every task inline, so parallel-source CE degrades to
//    sequential execution instead of deadlocking.
//  * Concurrent RunAll calls (several executor workers parallelizing
//    their own queries over one shared pool) interleave at task
//    granularity; a caller may execute another batch's task while waiting,
//    which is safe because TaskRunner tasks are leaves by contract.
//
// Completion is tracked per batch under the pool mutex, which also gives
// the TaskRunner-required happens-before edge from every task body to the
// RunAll return.
#ifndef MSQ_EXEC_TASK_POOL_H_
#define MSQ_EXEC_TASK_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/query.h"

namespace msq {

class TaskPool : public TaskRunner {
 public:
  // Spawns `threads` pool workers. 0 is valid: RunAll then executes every
  // task on the calling thread (the degenerate sequential runner).
  explicit TaskPool(std::size_t threads);
  ~TaskPool() override;

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  void RunAll(std::vector<std::function<void()>> tasks) override;

  std::size_t thread_count() const { return threads_.size(); }

 private:
  // Completion state of one RunAll call; tasks hold a shared_ptr so a
  // batch outlives RunAll only until its last task finishes.
  struct Batch {
    std::size_t remaining = 0;
    std::condition_variable done_cv;
  };
  struct Task {
    std::function<void()> fn;
    std::shared_ptr<Batch> batch;
  };

  // Pops and runs one queued task (any batch). Returns false when the
  // queue is empty. `lock` must hold mu_ and is released around the task
  // body.
  bool RunOneTask(std::unique_lock<std::mutex>& lock);

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace msq

#endif  // MSQ_EXEC_TASK_POOL_H_
