#include "gen/dataset_io.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace msq {
namespace {

// A lying header must not drive allocation: never reserve more entries up
// front than this, regardless of the declared count. Real rows still grow
// the vector past it normally.
constexpr std::size_t kMaxHeaderReserve = 1u << 20;

// Shared line reader skipping blanks and '#' comments.
bool NextLine(std::FILE* file, char* buffer, std::size_t size) {
  while (std::fgets(buffer, static_cast<int>(size), file) != nullptr) {
    const char* s = buffer;
    while (*s == ' ' || *s == '\t') ++s;
    if (*s == '\n' || *s == '\0' || *s == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

bool SaveLocations(const std::string& path,
                   const std::vector<Location>& objects) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::fprintf(file, "%zu\n", objects.size());
  for (const Location& loc : objects) {
    std::fprintf(file, "%u %.17g\n", loc.edge, loc.offset);
  }
  std::fclose(file);
  return true;
}

std::optional<std::vector<Location>> LoadLocations(
    const std::string& path, const RoadNetwork& network,
    std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  auto fail = [&](const std::string& msg) -> std::optional<std::vector<Location>> {
    if (error != nullptr) *error = msg + " in " + path;
    std::fclose(file);
    return std::nullopt;
  };

  char line[256];
  std::size_t count = 0;
  if (!NextLine(file, line, sizeof(line)) ||
      std::sscanf(line, "%zu", &count) != 1) {
    return fail("malformed header (expected object count)");
  }
  std::vector<Location> objects;
  objects.reserve(std::min(count, kMaxHeaderReserve));
  for (std::size_t i = 0; i < count; ++i) {
    unsigned long edge;
    double offset;
    if (!NextLine(file, line, sizeof(line)) ||
        std::sscanf(line, "%lu %lf", &edge, &offset) != 2) {
      return fail("malformed object line");
    }
    const Location loc{static_cast<EdgeId>(edge), offset};
    if (!network.IsValidLocation(loc)) {
      return fail("object location outside the network");
    }
    objects.push_back(loc);
  }
  std::fclose(file);
  return objects;
}

bool SaveAttributes(const std::string& path,
                    const std::vector<DistVector>& attributes) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::size_t dims =
      attributes.empty() ? 0 : attributes.front().size();
  std::fprintf(file, "%zu %zu\n", attributes.size(), dims);
  for (const DistVector& vec : attributes) {
    if (vec.size() != dims) {
      std::fclose(file);
      return false;
    }
    for (std::size_t i = 0; i < vec.size(); ++i) {
      std::fprintf(file, "%s%.17g", i ? " " : "", vec[i]);
    }
    std::fprintf(file, "\n");
  }
  std::fclose(file);
  return true;
}

std::optional<std::vector<DistVector>> LoadAttributes(
    const std::string& path, std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  auto fail =
      [&](const std::string& msg) -> std::optional<std::vector<DistVector>> {
    if (error != nullptr) *error = msg + " in " + path;
    std::fclose(file);
    return std::nullopt;
  };

  char line[4096];
  std::size_t count = 0, dims = 0;
  if (!NextLine(file, line, sizeof(line)) ||
      std::sscanf(line, "%zu %zu", &count, &dims) != 2) {
    return fail("malformed header (expected 'count dims')");
  }
  std::vector<DistVector> attributes;
  attributes.reserve(std::min(count, kMaxHeaderReserve));
  for (std::size_t i = 0; i < count; ++i) {
    if (!NextLine(file, line, sizeof(line))) {
      return fail("missing attribute line");
    }
    DistVector vec;
    vec.reserve(std::min(dims, kMaxHeaderReserve));
    const char* cursor = line;
    for (std::size_t d = 0; d < dims; ++d) {
      char* end = nullptr;
      const double value = std::strtod(cursor, &end);
      if (end == cursor) return fail("malformed attribute value");
      vec.push_back(value);
      cursor = end;
    }
    attributes.push_back(std::move(vec));
  }
  std::fclose(file);
  return attributes;
}

}  // namespace msq
