// Plain-text persistence for object sets and static attributes, completing
// the external-data path: networks load via
// RoadNetwork::LoadFromEdgeListFile, objects/attributes via these.
//
// Object format:  one "edge_id offset" line per object, preceded by a
//                 count header; '#' comments and blank lines are ignored.
// Attribute format: header "count dims", then one line of `dims` values
//                 per object.
#ifndef MSQ_GEN_DATASET_IO_H_
#define MSQ_GEN_DATASET_IO_H_

#include <optional>
#include <string>
#include <vector>

#include "core/dominance.h"
#include "graph/road_network.h"

namespace msq {

// Writes `objects` to `path`. Returns false on I/O failure.
bool SaveLocations(const std::string& path,
                   const std::vector<Location>& objects);

// Reads an object file. Validates every location against `network`;
// returns std::nullopt with a message in *error on malformed input or
// invalid locations.
std::optional<std::vector<Location>> LoadLocations(
    const std::string& path, const RoadNetwork& network, std::string* error);

// Writes static attribute vectors (all the same dimensionality).
bool SaveAttributes(const std::string& path,
                    const std::vector<DistVector>& attributes);

// Reads an attribute file; all rows must have the header's dimensionality.
std::optional<std::vector<DistVector>> LoadAttributes(
    const std::string& path, std::string* error);

}  // namespace msq

#endif  // MSQ_GEN_DATASET_IO_H_
