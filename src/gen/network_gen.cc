#include "gen/network_gen.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace msq {
namespace {

// Uniform grid over the unit square for near-neighbor searches during
// generation.
class PointGrid {
 public:
  PointGrid(const std::vector<Point>* points, std::size_t expected)
      : points_(points),
        res_(std::max<std::size_t>(
            1, static_cast<std::size_t>(std::sqrt(
                   static_cast<double>(std::max<std::size_t>(expected, 1)))))),
        cells_(res_ * res_) {}

  void Insert(NodeId id) {
    cells_[CellOf((*points_)[id])].push_back(id);
  }

  // Nearest inserted node to `p`, excluding `exclude`; kInvalidNode when
  // the grid is empty.
  NodeId Nearest(const Point& p, NodeId exclude) const {
    const auto [cx, cy] = CellCoords(p);
    NodeId best = kInvalidNode;
    double best_sq = kInfDist;
    const double cell = 1.0 / static_cast<double>(res_);
    for (std::size_t ring = 0; ring < res_; ++ring) {
      // Once a candidate is closer than the ring's guaranteed minimum
      // separation, no farther ring can beat it.
      if (best != kInvalidNode) {
        const double ring_min = (static_cast<double>(ring) - 1.0) * cell;
        if (ring_min > 0.0 && ring_min * ring_min > best_sq) break;
      }
      bool any_cell = false;
      const std::ptrdiff_t r = static_cast<std::ptrdiff_t>(ring);
      for (std::ptrdiff_t dx = -r; dx <= r; ++dx) {
        for (std::ptrdiff_t dy = -r; dy <= r; ++dy) {
          if (std::max(std::abs(dx), std::abs(dy)) != r) continue;
          const std::ptrdiff_t x = static_cast<std::ptrdiff_t>(cx) + dx;
          const std::ptrdiff_t y = static_cast<std::ptrdiff_t>(cy) + dy;
          if (x < 0 || y < 0 || x >= static_cast<std::ptrdiff_t>(res_) ||
              y >= static_cast<std::ptrdiff_t>(res_)) {
            continue;
          }
          any_cell = true;
          for (const NodeId id : cells_[static_cast<std::size_t>(y) * res_ +
                                        static_cast<std::size_t>(x)]) {
            if (id == exclude) continue;
            const double d = SquaredDistance((*points_)[id], p);
            if (d < best_sq) {
              best_sq = d;
              best = id;
            }
          }
        }
      }
      if (!any_cell && best != kInvalidNode) break;
    }
    return best;
  }

  // Appends all inserted ids within `rings` grid rings of `p`'s cell.
  void Collect(const Point& p, std::size_t rings,
               std::vector<NodeId>* out) const {
    const auto [cx, cy] = CellCoords(p);
    const std::ptrdiff_t r = static_cast<std::ptrdiff_t>(rings);
    for (std::ptrdiff_t dx = -r; dx <= r; ++dx) {
      for (std::ptrdiff_t dy = -r; dy <= r; ++dy) {
        const std::ptrdiff_t x = static_cast<std::ptrdiff_t>(cx) + dx;
        const std::ptrdiff_t y = static_cast<std::ptrdiff_t>(cy) + dy;
        if (x < 0 || y < 0 || x >= static_cast<std::ptrdiff_t>(res_) ||
            y >= static_cast<std::ptrdiff_t>(res_)) {
          continue;
        }
        const auto& cell = cells_[static_cast<std::size_t>(y) * res_ +
                                  static_cast<std::size_t>(x)];
        out->insert(out->end(), cell.begin(), cell.end());
      }
    }
  }

 private:
  std::pair<std::size_t, std::size_t> CellCoords(const Point& p) const {
    const auto clampi = [&](double v) {
      return std::min(res_ - 1, static_cast<std::size_t>(std::max(
                                    0.0, v * static_cast<double>(res_))));
    };
    return {clampi(p.x), clampi(p.y)};
  }
  std::size_t CellOf(const Point& p) const {
    const auto [x, y] = CellCoords(p);
    return y * res_ + x;
  }

  const std::vector<Point>* points_;
  std::size_t res_;
  std::vector<std::vector<NodeId>> cells_;
};

std::uint64_t PairKey(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

// Union-find over node ids (path halving + union by size).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<NodeId>(i);
  }
  NodeId Find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(NodeId a, NodeId b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> size_;
};

}  // namespace

namespace {

// A generated edge before RoadNetwork assembly (so subdivision can split
// edges cheaply).
struct RawEdge {
  NodeId u, v;
  Dist length;
};

// Builds the junction skeleton: `n` junctions, `target_edge_count` edges,
// MST + evenly distributed RNG-first extras (see comments below).
std::pair<std::vector<Point>, std::vector<RawEdge>> GenerateJunctionNetwork(
    std::size_t n, std::size_t target_edge_count, double curvature,
    Rng& rng) {
  MSQ_CHECK(n >= 2);

  std::vector<Point> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(Point{rng.NextDouble(), rng.NextDouble()});
  }

  std::vector<RawEdge> raw_edges;

  auto edge_length = [&](NodeId u, NodeId v) {
    const Dist euclid = EuclideanDistance(points[u], points[v]);
    if (curvature <= 0.0) return euclid;
    return euclid * (1.0 + rng.NextDouble() * curvature);
  };

  // Candidate edges: near-neighbor pairs from the grid. Rings widen for
  // tiny networks so enough candidates exist.
  PointGrid all_grid(&points, n);
  for (NodeId i = 0; i < n; ++i) all_grid.Insert(i);
  struct Candidate {
    double dist_sq;
    NodeId u, v;
  };
  std::vector<Candidate> candidates;
  {
    std::unordered_set<std::uint64_t> seen;
    std::vector<NodeId> nearby;
    const std::size_t rings = n < 64 ? 3 : 2;
    for (NodeId u = 0; u < n; ++u) {
      nearby.clear();
      all_grid.Collect(points[u], rings, &nearby);
      for (const NodeId v : nearby) {
        if (v == u) continue;
        if (!seen.insert(PairKey(u, v)).second) continue;
        candidates.push_back(
            Candidate{SquaredDistance(points[u], points[v]), u, v});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.dist_sq < b.dist_sq;
              });
  }

  // Road networks hug the Euclidean metric locally. A Euclidean minimum
  // spanning tree (Kruskal over the near-neighbor candidates) plus the
  // shortest remaining candidate pairs reproduces that: sparse targets
  // stay tree-like (large detour ratio δ), dense targets approach δ -> 1.
  const std::size_t target_edges = std::max(target_edge_count, n - 1);
  std::unordered_set<std::uint64_t> used;
  used.reserve(target_edges * 2);
  UnionFind components(n);
  std::size_t component_count = n;
  std::vector<Candidate> extras;
  for (const Candidate& c : candidates) {
    if (components.Union(c.u, c.v)) {
      raw_edges.push_back(RawEdge{c.u, c.v, edge_length(c.u, c.v)});
      used.insert(PairKey(c.u, c.v));
      --component_count;
    } else {
      extras.push_back(c);
    }
  }

  // The near-neighbor graph is connected for uniform points in practice;
  // when it is not (clustered degenerate cases), stitch the remaining
  // components with exact nearest cross pairs.
  while (component_count > 1) {
    const NodeId root0 = components.Find(0);
    NodeId best_u = kInvalidNode, best_v = kInvalidNode;
    double best = kInfDist;
    for (NodeId u = 0; u < n; ++u) {
      if (components.Find(u) != root0) continue;
      for (NodeId v = 0; v < n; ++v) {
        if (components.Find(v) == root0) continue;
        const double d = SquaredDistance(points[u], points[v]);
        if (d < best) {
          best = d;
          best_u = u;
          best_v = v;
        }
      }
    }
    MSQ_CHECK(best_u != kInvalidNode);
    raw_edges.push_back(
        RawEdge{best_u, best_v, edge_length(best_u, best_v)});
    used.insert(PairKey(best_u, best_v));
    components.Union(best_u, best_v);
    --component_count;
  }

  // Distribute the remaining edges evenly across the area: per-node
  // nearest-neighbor rounds (every node links to its next-nearest unused
  // neighbor before any node gets a further one). Plain shortest-first
  // would clump extras in locally dense regions and leave sparse areas
  // tree-like, inflating δ far beyond real road networks. Edges passing
  // the relative-neighborhood criterion — no third point closer to both
  // endpoints than they are to each other — are added first: sparse road
  // skeletons resemble relative-neighborhood graphs, whose edges span
  // genuine gaps instead of forming redundant local triangles.
  if (raw_edges.size() < target_edges) {
    // Neighbor distances for the (approximate) RNG test.
    std::vector<std::vector<std::pair<double, NodeId>>> neighbors(n);
    for (const Candidate& c : candidates) {
      neighbors[c.u].emplace_back(c.dist_sq, c.v);
      neighbors[c.v].emplace_back(c.dist_sq, c.u);
    }
    auto passes_rng = [&](const Candidate& c) {
      for (const auto& [d_uw_sq, w] : neighbors[c.u]) {
        if (d_uw_sq >= c.dist_sq) continue;
        if (SquaredDistance(points[w], points[c.v]) < c.dist_sq) {
          return false;
        }
      }
      return true;
    };

    std::unordered_set<std::uint64_t> rng_pairs;
    std::vector<std::vector<Candidate>> per_node(n);
    for (const Candidate& c : extras) {
      if (passes_rng(c)) rng_pairs.insert(PairKey(c.u, c.v));
      per_node[c.u].push_back(c);
      per_node[c.v].push_back(c);
    }
    // Skeleton (RNG) edges before fill-in triangles; by length within each
    // class.
    for (auto& list : per_node) {
      std::sort(list.begin(), list.end(),
                [&](const Candidate& a, const Candidate& b) {
                  const bool ra = rng_pairs.count(PairKey(a.u, a.v)) > 0;
                  const bool rb = rng_pairs.count(PairKey(b.u, b.v)) > 0;
                  if (ra != rb) return ra;
                  return a.dist_sq < b.dist_sq;
                });
    }
    std::vector<std::size_t> cursor(n, 0);
    bool progressed = true;
    while (raw_edges.size() < target_edges && progressed) {
      progressed = false;
      for (NodeId u = 0; u < n && raw_edges.size() < target_edges; ++u) {
        while (cursor[u] < per_node[u].size()) {
          const Candidate& c = per_node[u][cursor[u]++];
          if (!used.insert(PairKey(c.u, c.v)).second) continue;
          raw_edges.push_back(RawEdge{c.u, c.v, edge_length(c.u, c.v)});
          progressed = true;
          break;
        }
      }
    }
  }

  return {std::move(points), std::move(raw_edges)};
}

}  // namespace

RoadNetwork GenerateNetwork(const NetworkGenConfig& config) {
  MSQ_CHECK(config.node_count >= 2);
  Rng rng(config.seed);

  // Decide the junction skeleton size. With subdivision enabled and more
  // edges than nodes requested, J junctions at the requested junction
  // edge/node ratio r satisfy J*(r-1) = |E|-|V| (subdivision adds one node
  // and one edge per split, keeping |E|-|V| invariant).
  std::size_t junctions = config.node_count;
  std::size_t skeleton_edges = config.edge_count;
  if (config.junction_edge_ratio > 1.0 &&
      config.edge_count > config.node_count) {
    const double extra =
        static_cast<double>(config.edge_count - config.node_count);
    const auto j = static_cast<std::size_t>(
        std::llround(extra / (config.junction_edge_ratio - 1.0)));
    junctions = std::clamp<std::size_t>(j, 2, config.node_count);
    skeleton_edges = junctions + (config.edge_count - config.node_count);
  }

  auto [points, raw_edges] = GenerateJunctionNetwork(
      junctions, skeleton_edges, config.curvature, rng);

  // Subdivide random edges with degree-2 shape nodes until the node target
  // is met (each split also adds an edge, restoring the edge target).
  while (points.size() < config.node_count && !raw_edges.empty()) {
    const std::size_t idx = rng.NextBounded(raw_edges.size());
    RawEdge& edge = raw_edges[idx];
    const double t = 0.25 + rng.NextDouble() * 0.5;
    const NodeId mid = static_cast<NodeId>(points.size());
    points.push_back(Lerp(points[edge.u], points[edge.v], t));
    const RawEdge second{mid, edge.v, edge.length * (1.0 - t)};
    edge.v = mid;
    edge.length *= t;
    raw_edges.push_back(second);
  }

  RoadNetwork network;
  for (const Point& p : points) network.AddNode(p);
  for (const RawEdge& edge : raw_edges) {
    network.AddEdge(edge.u, edge.v, edge.length);
  }
  network.Finalize();
  return network;
}

double MeasureDetourRatio(const RoadNetwork& network, std::size_t samples,
                          std::uint64_t seed) {
  MSQ_CHECK(network.finalized());
  MSQ_CHECK(network.node_count() >= 2);
  Rng rng(seed);
  double sum = 0.0;
  std::size_t counted = 0;

  // Plain in-memory Dijkstra (no paging: this is a generator diagnostic).
  std::vector<Dist> dist(network.node_count());
  for (std::size_t s = 0; s < samples; ++s) {
    const NodeId from =
        static_cast<NodeId>(rng.NextBounded(network.node_count()));
    const NodeId to =
        static_cast<NodeId>(rng.NextBounded(network.node_count()));
    if (from == to) continue;
    std::fill(dist.begin(), dist.end(), kInfDist);
    using Item = std::pair<Dist, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    dist[from] = 0.0;
    heap.emplace(0.0, from);
    while (!heap.empty()) {
      const auto [d, node] = heap.top();
      heap.pop();
      if (d > dist[node]) continue;
      if (node == to) break;
      for (const AdjacencyEntry& adj : network.Adjacent(node)) {
        const Dist nd = d + adj.length;
        if (nd < dist[adj.neighbor]) {
          dist[adj.neighbor] = nd;
          heap.emplace(nd, adj.neighbor);
        }
      }
    }
    if (!std::isfinite(dist[to])) continue;
    const Dist euclid =
        EuclideanDistance(network.NodePosition(from), network.NodePosition(to));
    if (euclid <= 1e-12) continue;
    sum += dist[to] / euclid;
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

std::uint64_t HilbertIndex(std::uint32_t order, std::uint32_t x,
                           std::uint32_t y) {
  MSQ_CHECK(order >= 1 && order <= 16);
  MSQ_CHECK(x < (1u << order) && y < (1u << order));
  // Standard bottom-up rotate-and-accumulate formulation (Hilbert 1891 via
  // the xy2d form): walk the quadrant levels from coarse to fine, rotating
  // the frame so the curve stays continuous.
  std::uint64_t index = 0;
  const std::uint32_t grid = 1u << order;
  for (std::uint32_t s = grid >> 1; s > 0; s >>= 1) {
    const std::uint32_t rx = (x & s) ? 1 : 0;
    const std::uint32_t ry = (y & s) ? 1 : 0;
    index += static_cast<std::uint64_t>(s) * s * ((3 * rx) ^ ry);
    // Rotate the quadrant (reflection spans the full grid).
    if (ry == 0) {
      if (rx == 1) {
        x = grid - 1 - x;
        y = grid - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return index;
}

std::vector<NodeId> HilbertNodeOrder(const RoadNetwork& network) {
  const std::size_t n = network.node_count();
  std::vector<NodeId> order(n);
  for (NodeId i = 0; i < n; ++i) order[i] = i;
  if (n == 0) return order;
  const Mbr box = network.BoundingBox();
  const double span_x = std::max(box.hi_x - box.lo_x, 1e-12);
  const double span_y = std::max(box.hi_y - box.lo_y, 1e-12);
  constexpr std::uint32_t kOrder = 16;
  constexpr double kMaxCell = (1u << kOrder) - 1;
  std::vector<std::uint64_t> key(n);
  for (NodeId i = 0; i < n; ++i) {
    const Point& p = network.NodePosition(i);
    const auto gx = static_cast<std::uint32_t>(
        std::min(kMaxCell, (p.x - box.lo_x) / span_x * kMaxCell));
    const auto gy = static_cast<std::uint32_t>(
        std::min(kMaxCell, (p.y - box.lo_y) / span_y * kMaxCell));
    key[i] = HilbertIndex(kOrder, gx, gy);
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (key[a] != key[b]) return key[a] < key[b];
    return a < b;  // co-located nodes: deterministic by id
  });
  return order;
}

RoadNetwork RelabelNodes(const RoadNetwork& network,
                         const std::vector<NodeId>& order) {
  MSQ_CHECK(order.size() == network.node_count());
  RoadNetwork out;
  std::vector<NodeId> inverse(order.size(), kInvalidNode);
  for (NodeId k = 0; k < order.size(); ++k) {
    MSQ_CHECK(order[k] < order.size() && inverse[order[k]] == kInvalidNode);
    inverse[order[k]] = k;
    out.AddNode(network.NodePosition(order[k]));
  }
  for (EdgeId e = 0; e < network.edge_count(); ++e) {
    const RoadNetwork::Edge& edge = network.EdgeAt(e);
    // Positions are copied verbatim, so AddEdge recomputes the identical
    // Euclidean floor and never re-clamps: lengths survive bit-exactly and
    // the new edge keeps id `e` with u/v orientation (hence offsets) intact.
    const EdgeId mapped =
        out.AddEdge(inverse[edge.u], inverse[edge.v], edge.length);
    MSQ_CHECK(mapped == e);
  }
  out.Finalize();
  return out;
}

}  // namespace msq
