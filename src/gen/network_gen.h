// Synthetic road-network generator.
//
// Substitutes for the Digital Chart of the World datasets the paper uses
// (CA / AU / NA; see DESIGN.md §3). The construction mimics road topology:
// |V| junction sites scattered in the unit square (the paper normalizes all
// networks into a 1 km x 1 km region), a geometric spanning tree for
// connectivity, then shortest-available extra edges up to the target |E|.
// The edge/node ratio controls network density and thereby δ = avg(dN/dE),
// the quantity Section 6.3 attributes the CA-vs-NA behaviour differences
// to: near-tree networks give large detours (high δ), dense networks δ→1.
#ifndef MSQ_GEN_NETWORK_GEN_H_
#define MSQ_GEN_NETWORK_GEN_H_

#include <cstdint>

#include "common/rng.h"
#include "graph/road_network.h"

namespace msq {

struct NetworkGenConfig {
  std::size_t node_count = 1000;
  // Target edge count; clamped to at least node_count - 1 (spanning tree)
  // and at most the number of distinct near-neighbor pairs available.
  std::size_t edge_count = 1200;
  std::uint64_t seed = 1;
  // Extra length factor: each edge's network length is its Euclidean
  // length times (1 + U[0, curvature]), emulating curved roads. 0 keeps
  // straight-line lengths.
  double curvature = 0.0;
  // Junction edge/node ratio of the underlying road skeleton. Real road
  // data (including the paper's DCW extracts) is dominated by degree-2
  // polyline shape points: the raw |E|/|V| ≈ 1.2 hides junction topology
  // with average degree 3-4. When > 1, the generator first builds a
  // skeleton of J = (|E|-|V|)/(ratio-1) junctions with J*ratio edges and
  // then subdivides edges with degree-2 nodes until the targets are met —
  // distance structure (and hence δ) comes from the skeleton. 0 disables
  // subdivision (every node is a junction).
  double junction_edge_ratio = 0.0;
};

// Generates a connected network per `config`. The result is finalized.
RoadNetwork GenerateNetwork(const NetworkGenConfig& config);

// Measured average detour ratio δ = dN/dE over `samples` random node pairs
// (reachable pairs only). Used by tests and the density benchmarks to
// confirm the CA/AU/NA density ordering.
double MeasureDetourRatio(const RoadNetwork& network, std::size_t samples,
                          std::uint64_t seed);

// --- locality-aware node relabeling (DESIGN.md §15) ----------------------
//
// A Dijkstra wavefront touches spatially adjacent nodes together, so paging
// cost is minimized when consecutive node ids are spatially close. The
// Hilbert curve preserves locality strictly better than the Morton (Z)
// order the pager historically sorted by: it has no diagonal jumps, so a
// wavefront's frontier spans fewer id ranges — and therefore fewer pages.

// Hilbert-curve index of cell (x, y) on the 2^order x 2^order grid.
// `order` <= 16; x, y < 2^order.
std::uint64_t HilbertIndex(std::uint32_t order, std::uint32_t x,
                           std::uint32_t y);

// Node ids of `network` sorted by the Hilbert index of their position on a
// 2^16 grid over the bounding box (ties by node id). order[k] is the node
// that should receive id k in a Hilbert-relabeled network.
std::vector<NodeId> HilbertNodeOrder(const RoadNetwork& network);

// Renumbers nodes so that new id k is `order[k]` of `network` (a
// permutation of all node ids). Edge ids, endpoint orientation, and edge
// lengths are preserved, so every Location (edge, offset) — objects,
// queries — remains valid unchanged and all network distances are
// identical. The result is finalized.
RoadNetwork RelabelNodes(const RoadNetwork& network,
                         const std::vector<NodeId>& order);

}  // namespace msq

#endif  // MSQ_GEN_NETWORK_GEN_H_
