#include "gen/object_gen.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace msq {

std::vector<Location> GenerateObjects(const RoadNetwork& network,
                                      std::size_t count, std::uint64_t seed) {
  MSQ_CHECK(network.edge_count() > 0 || count == 0);
  Rng rng(seed);
  std::vector<Location> objects;
  objects.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const EdgeId edge =
        static_cast<EdgeId>(rng.NextBounded(network.edge_count()));
    const Dist length = network.EdgeAt(edge).length;
    objects.push_back(Location{edge, rng.NextDouble() * length});
  }
  return objects;
}

std::vector<Location> GenerateObjectsWithDensity(const RoadNetwork& network,
                                                 double density,
                                                 std::uint64_t seed) {
  const auto count = static_cast<std::size_t>(
      std::llround(density * static_cast<double>(network.edge_count())));
  return GenerateObjects(network, count, seed);
}

std::vector<DistVector> GenerateStaticAttributes(std::size_t count,
                                                 std::size_t dims,
                                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<DistVector> attrs(count, DistVector(dims, 0.0));
  for (auto& vec : attrs) {
    for (auto& v : vec) v = rng.NextDouble();
  }
  return attrs;
}

}  // namespace msq
