// Data-object sampling, matching Section 6.1: "The data object set D
// consists of the points extracted uniformly from the edges ... Thus, a
// dense road network in an area means more objects in the area. The size
// of D is a percentage ω = |D|/|E| of the number of network edges."
#ifndef MSQ_GEN_OBJECT_GEN_H_
#define MSQ_GEN_OBJECT_GEN_H_

#include <cstdint>
#include <vector>

#include "core/dominance.h"
#include "graph/road_network.h"

namespace msq {

// Samples `count` objects uniformly over edges (edge chosen uniformly,
// offset uniform along the edge).
std::vector<Location> GenerateObjects(const RoadNetwork& network,
                                      std::size_t count, std::uint64_t seed);

// Convenience: count = round(density * |E|); density is the paper's ω.
std::vector<Location> GenerateObjectsWithDensity(const RoadNetwork& network,
                                                 double density,
                                                 std::uint64_t seed);

// Independent uniform [0,1) static attributes (`dims` per object), the
// "hotel price" style extension of Section 4.3.
std::vector<DistVector> GenerateStaticAttributes(std::size_t count,
                                                 std::size_t dims,
                                                 std::uint64_t seed);

}  // namespace msq

#endif  // MSQ_GEN_OBJECT_GEN_H_
