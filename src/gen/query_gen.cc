#include "gen/query_gen.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace msq {

std::vector<Location> GenerateQueries(const RoadNetwork& network,
                                      std::size_t count,
                                      double region_fraction,
                                      std::uint64_t seed) {
  MSQ_CHECK(network.edge_count() > 0);
  MSQ_CHECK(region_fraction > 0.0 && region_fraction <= 1.0);
  Rng rng(seed);

  const Mbr box = network.BoundingBox();
  const double span_x = std::max(box.hi_x - box.lo_x, 1e-12);
  const double span_y = std::max(box.hi_y - box.lo_y, 1e-12);
  const double side = std::sqrt(region_fraction);
  const double win_w = span_x * side;
  const double win_h = span_y * side;

  // Place the window so it stays inside the bounding box, then keep the
  // edges whose midpoint falls inside it.
  const double lo_x =
      box.lo_x + rng.NextDouble() * std::max(span_x - win_w, 0.0);
  const double lo_y =
      box.lo_y + rng.NextDouble() * std::max(span_y - win_h, 0.0);
  const Mbr window{lo_x, lo_y, lo_x + win_w, lo_y + win_h};

  std::vector<EdgeId> pool;
  for (EdgeId e = 0; e < network.edge_count(); ++e) {
    if (window.Contains(network.EdgeMbr(e).Center())) pool.push_back(e);
  }
  if (pool.empty()) {
    pool.resize(network.edge_count());
    for (EdgeId e = 0; e < network.edge_count(); ++e) pool[e] = e;
  }

  std::vector<Location> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const EdgeId edge = pool[rng.NextBounded(pool.size())];
    const Dist length = network.EdgeAt(edge).length;
    queries.push_back(Location{edge, rng.NextDouble() * length});
  }
  return queries;
}

}  // namespace msq
