// Query-point sampling, matching Section 6.1: "the query points ranging
// from 1 to 15 are selected within a relatively small region (10%) of the
// network such that the maximum search region will not go beyond the given
// network".
#ifndef MSQ_GEN_QUERY_GEN_H_
#define MSQ_GEN_QUERY_GEN_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"

namespace msq {

// Samples `count` query locations on edges whose midpoints fall inside a
// randomly placed square window covering `region_fraction` of the
// network's bounding box area. Falls back to network-wide sampling when the
// window contains no edges (degenerate networks).
std::vector<Location> GenerateQueries(const RoadNetwork& network,
                                      std::size_t count,
                                      double region_fraction,
                                      std::uint64_t seed);

}  // namespace msq

#endif  // MSQ_GEN_QUERY_GEN_H_
