#include "gen/workloads.h"

#include <cmath>

#include "common/check.h"

namespace msq {

std::string NetworkClassName(NetworkClass cls) {
  switch (cls) {
    case NetworkClass::kCA:
      return "CA";
    case NetworkClass::kAU:
      return "AU";
    case NetworkClass::kNA:
      return "NA";
    case NetworkClass::kCNT:
      return "CNT";
  }
  MSQ_CHECK(false);
  return "";
}

std::string GraphLayoutName(GraphLayout layout) {
  switch (layout) {
    case GraphLayout::kSeed:
      return "seed";
    case GraphLayout::kHilbert:
      return "hilbert";
    case GraphLayout::kHilbertCsr:
      return "hilbert_csr";
  }
  MSQ_CHECK(false);
  return "";
}

GraphPagerOptions PagerOptionsFor(GraphLayout layout) {
  switch (layout) {
    case GraphLayout::kSeed:
      return GraphPagerOptions{};
    case GraphLayout::kHilbert:
      return GraphPagerOptions{NodeOrdering::kAsIs, AdjacencyFormat::kRow};
    case GraphLayout::kHilbertCsr:
      return GraphPagerOptions{NodeOrdering::kAsIs, AdjacencyFormat::kCsr};
  }
  MSQ_CHECK(false);
  return GraphPagerOptions{};
}

NetworkGenConfig PaperNetworkConfig(NetworkClass cls, double scale,
                                    std::uint64_t seed) {
  MSQ_CHECK(scale > 0.0);
  NetworkGenConfig config;
  config.seed = seed;
  std::size_t nodes = 0, edges = 0;
  // Curvature and junction ratio realize the paper's density/detour
  // ordering (Section 6.3: δ decreases from CA to NA). The DCW extracts
  // are polylines — most nodes are degree-2 shape points — so the raw
  // |E|/|V| ≈ 1.2 hides the junction topology. NA's dense merged coverage
  // gets a well-connected junction skeleton (ratio 1.8, straight roads,
  // low δ); CA's sparse winding rural coverage keeps a near-tree skeleton
  // with curved roads (high δ). See DESIGN.md §3.
  switch (cls) {
    case NetworkClass::kCA:
      nodes = 3044;
      edges = 3607;
      config.curvature = 0.8;
      config.junction_edge_ratio = 0.0;
      break;
    case NetworkClass::kAU:
      nodes = 23269;
      edges = 30289;
      config.curvature = 0.2;
      config.junction_edge_ratio = 1.5;
      break;
    case NetworkClass::kNA:
      nodes = 86318;
      edges = 103042;
      config.curvature = 0.0;
      config.junction_edge_ratio = 1.8;
      break;
    case NetworkClass::kCNT:
      // Synthetic continental tier: NA's density profile at 5x its size
      // (so scale=2.0 — ContinentalNetworkConfig — is a 10x-NA network).
      nodes = 431590;
      edges = 515210;
      config.curvature = 0.0;
      config.junction_edge_ratio = 1.8;
      break;
  }
  config.node_count = std::max<std::size_t>(
      4, static_cast<std::size_t>(std::llround(scale * nodes)));
  config.edge_count = std::max(
      config.node_count,
      static_cast<std::size_t>(std::llround(scale * edges)));
  return config;
}

NetworkGenConfig ContinentalNetworkConfig(std::uint64_t seed) {
  return PaperNetworkConfig(NetworkClass::kCNT, 2.0, seed);
}

Workload::Workload(const WorkloadConfig& config)
    : network_(GenerateNetwork(config.network)) {
  BuildStack(config);
}

Workload::Workload(const WorkloadConfig& config, RoadNetwork network)
    : network_(std::move(network)) {
  MSQ_CHECK(network_.finalized());
  BuildStack(config);
}

Workload::Workload(const WorkloadConfig& config, RoadNetwork network,
                   std::vector<Location> objects,
                   std::vector<DistVector> attrs)
    : network_(std::move(network)) {
  MSQ_CHECK(network_.finalized());
  custom_objects_ = std::move(objects);
  use_custom_objects_ = true;
  custom_attrs_ = std::move(attrs);
  BuildStack(config);
}

void Workload::BuildStack(const WorkloadConfig& config) {
  graph_layout_ = config.graph_layout;
  if (graph_layout_ != GraphLayout::kSeed) {
    // Hilbert layouts renumber nodes before anything node-keyed is built.
    // Edge ids/orientation/lengths are preserved, so the edge R-tree,
    // middle layer, objects, and queries are identical across layouts.
    network_ = RelabelNodes(network_, HilbertNodeOrder(network_));
  }
  DiskManager* graph_disk = &graph_disk_;
  DiskManager* index_disk = &index_disk_;
  if (!config.storage_dir.empty()) {
    auto graph_open = FileDiskManager::Open(
        config.storage_dir + "/graph.pages", /*truncate=*/true);
    auto index_open = FileDiskManager::Open(
        config.storage_dir + "/index.pages", /*truncate=*/true);
    MSQ_CHECK_MSG(graph_open.ok() && index_open.ok(),
                  "cannot create page files under %s",
                  config.storage_dir.c_str());
    graph_file_disk_ = std::move(graph_open.value());
    index_file_disk_ = std::move(index_open.value());
    graph_disk = graph_file_disk_.get();
    index_disk = index_file_disk_.get();
  }
  if (config.fault_injection.has_value()) {
    FaultInjectionConfig index_cfg = *config.fault_injection;
    index_cfg.seed ^= 0x1d8afULL;
    graph_faults_ = std::make_unique<FaultInjectingDiskManager>(
        graph_disk, *config.fault_injection);
    index_faults_ =
        std::make_unique<FaultInjectingDiskManager>(index_disk, index_cfg);
    graph_disk = graph_faults_.get();
    index_disk = index_faults_.get();
  }
  graph_buffer_ = std::make_unique<BufferManager>(
      graph_disk, config.graph_buffer_frames, config.retry);
  index_buffer_ = std::make_unique<BufferManager>(
      index_disk, config.index_buffer_frames, config.retry);
  // Role-split registry mirroring: query-phase tracing reads these to
  // attribute network- vs index-page traffic to spans.
  graph_buffer_->AttachMetrics(&obs::GlobalMetrics(),
                               obs::metric::kNetworkBufferPrefix);
  index_buffer_->AttachMetrics(&obs::GlobalMetrics(),
                               obs::metric::kIndexBufferPrefix);
  graph_pager_ = std::make_unique<GraphPager>(&network_, graph_buffer_.get(),
                                              PagerOptionsFor(graph_layout_));

  // Edge R-tree (Section 6.1: "The edges are indexed by an R-tree on edge
  // MBRs"), bulk-loaded.
  edge_rtree_ = std::make_unique<RTree>(index_buffer_.get());
  {
    std::vector<RTreeEntry> entries;
    entries.reserve(network_.edge_count());
    for (EdgeId e = 0; e < network_.edge_count(); ++e) {
      entries.push_back(RTreeEntry{network_.EdgeMbr(e), e});
    }
    edge_rtree_->BulkLoad(std::move(entries));
  }

  if (use_custom_objects_) {
    objects_ = std::move(custom_objects_);
  } else {
    objects_ = GenerateObjectsWithDensity(network_, config.object_density,
                                          config.object_seed);
  }
  mapping_ = std::make_unique<SpatialMapping>(&network_, index_buffer_.get(),
                                              objects_);

  // Object R-tree over object positions.
  object_rtree_ = std::make_unique<RTree>(index_buffer_.get());
  {
    std::vector<RTreeEntry> entries;
    entries.reserve(objects_.size());
    for (ObjectId id = 0; id < objects_.size(); ++id) {
      entries.push_back(
          RTreeEntry{Mbr::FromPoint(mapping_->ObjectPosition(id)), id});
    }
    object_rtree_->BulkLoad(std::move(entries));
  }

  attr_seed_ = config.object_seed ^ 0x5eedf00dULL;
  if (!custom_attrs_.empty()) {
    MSQ_CHECK(custom_attrs_.size() == objects_.size());
    attrs_ = std::move(custom_attrs_);
    static_attr_dims_ = attrs_.front().size();
  } else if (config.static_attr_dims > 0) {
    static_attr_dims_ = config.static_attr_dims;
    attrs_ = GenerateStaticAttributes(objects_.size(),
                                      config.static_attr_dims, attr_seed_);
  }
  landmark_count_ = config.landmark_count;
  landmark_seed_ = config.network.seed ^ 0xa17aULL;
  if (landmark_count_ > 0) {
    landmarks_ = std::make_unique<LandmarkIndex>(&network_, landmark_count_,
                                                 landmark_seed_);
  }
  query_seed_mix_ = config.network.seed * 0x9e3779b97f4a7c15ULL;
  ResetBuffers();
}

Dataset Workload::dataset() {
  Dataset d;
  d.network = &network_;
  d.graph_pager = graph_pager_.get();
  d.mapping = mapping_.get();
  d.object_rtree = object_rtree_.get();
  d.graph_buffer = graph_buffer_.get();
  d.index_buffer = index_buffer_.get();
  d.static_attributes = attrs_.empty() ? nullptr : &attrs_;
  d.landmarks = landmarks_.get();
  return d;
}

SkylineQuerySpec Workload::SampleQuery(std::size_t count, std::uint64_t seed,
                                       double region_fraction) const {
  SkylineQuerySpec spec;
  spec.sources = GenerateQueries(network_, count, region_fraction,
                                 seed ^ query_seed_mix_);
  return spec;
}

void Workload::Relayout(GraphLayout layout) {
  if (layout != GraphLayout::kSeed) {
    network_ = RelabelNodes(network_, HilbertNodeOrder(network_));
  }
  graph_layout_ = layout;
  // Return the old pager's pages to the free list before building the new
  // one, so the rebuild reuses the slots instead of growing the backing
  // store (repeated relayouts stay bounded). Relayout runs with no queries
  // in flight, so no frame is pinned and Free cannot fail.
  for (const PageId page : graph_pager_->pages()) {
    MSQ_CHECK(graph_buffer_->FreePage(page).ok());
  }
  // A fresh pager draws a fresh layout_epoch (and starts its data_epoch
  // there), so epoch-stamped cache entries from the old layout become
  // unreachable.
  graph_pager_ = std::make_unique<GraphPager>(&network_, graph_buffer_.get(),
                                              PagerOptionsFor(layout));
  if (landmark_count_ > 0) {
    // Landmark distance tables are node-indexed; rebuild them against the
    // new numbering.
    landmarks_ = std::make_unique<LandmarkIndex>(&network_, landmark_count_,
                                                 landmark_seed_);
  }
  ResetBuffers();
}

StatusOr<Dist> Workload::UpdateEdgeWeight(EdgeId edge, Dist length) {
  MSQ_CHECK(edge < network_.edge_count());
  const Dist old_length = network_.EdgeAt(edge).length;
  // The network commit is infallible; everything after converges to the
  // new length even through storage errors.
  const Dist applied = network_.UpdateEdgeLength(edge, length);
  const double scale = old_length > 0.0 ? applied / old_length : 0.0;
  Status status = mapping_->RefreshEdgeObjects(edge, scale);
  if (!status.ok()) {
    // The location table is already rescaled; restore tree agreement from
    // it. A rebuild failure supersedes the refresh failure.
    if (const Status rebuilt = mapping_->RebuildIndex(); !rebuilt.ok()) {
      status = rebuilt;
    }
  }
  if (const Status refreshed = graph_pager_->RefreshEdge(edge);
      !refreshed.ok() && status.ok()) {
    status = refreshed;
  }
  if (landmarks_ != nullptr) landmarks_->Resweep();
  objects_ = mapping_->locations();
  // Bump even on failure: it only costs cache warmth, while a missed bump
  // after a partial change would serve stale results.
  graph_pager_->BumpDataEpoch();
  if (!status.ok()) return status;
  return applied;
}

StatusOr<ObjectId> Workload::InsertObject(const Location& loc) {
  if (!network_.IsValidLocation(loc)) {
    return Status::InvalidArgument("object location invalid");
  }
  Status status;
  ObjectId id = kInvalidObject;
  StatusOr<ObjectId> inserted = mapping_->InsertObject(loc);
  if (!inserted.ok()) {
    status = inserted.status();
    // A failed tree insert can leave the B+-tree mid-split; the location
    // table (which does not yet contain the object) is the recovery source.
    if (const Status rebuilt = mapping_->RebuildIndex(); !rebuilt.ok()) {
      status = rebuilt;
    }
  } else {
    id = *inserted;
    if (static_attr_dims_ > 0) {
      // One deterministic row per id, so reruns of the same churn schedule
      // generate identical attributes.
      attrs_.push_back(GenerateStaticAttributes(
                           1, static_attr_dims_,
                           attr_seed_ ^ (0x9e3779b97f4a7c15ULL * (id + 1)))
                           .front());
    }
    status = object_rtree_->InsertChecked(
        Mbr::FromPoint(mapping_->ObjectPosition(id)), id);
    if (!status.ok()) {
      // Undo the middle-layer registration; the id stays burned as a
      // tombstone (its attribute row, if any, is retained — per-object
      // arrays are sized by object_count()).
      if (StatusOr<bool> undone = mapping_->DeleteObject(id); !undone.ok()) {
        (void)mapping_->RebuildIndex();
      }
    }
  }
  objects_ = mapping_->locations();
  graph_pager_->BumpDataEpoch();
  if (!status.ok()) return status;
  return id;
}

StatusOr<bool> Workload::DeleteObject(ObjectId id) {
  if (id >= mapping_->object_count() || !mapping_->IsLive(id)) {
    // Clean no-op: nothing changed, keep the caches warm.
    return false;
  }
  const Mbr mbr = Mbr::FromPoint(mapping_->ObjectPosition(id));
  // R-tree first: its checked delete is atomic, and a later middle-layer
  // failure can undo it with an equally atomic insert. The reverse order
  // could leave a live R-tree entry pointing at a tombstoned location,
  // which crashes Euclidean browsers.
  Status status;
  StatusOr<bool> rtree_removed = object_rtree_->DeleteChecked(mbr, id);
  if (!rtree_removed.ok()) {
    status = rtree_removed.status();
  } else {
    MSQ_CHECK(*rtree_removed);
    StatusOr<bool> removed = mapping_->DeleteObject(id);
    if (!removed.ok()) {
      status = removed.status();
      // The object is still live in the location table; restore the tree
      // and the R-tree entry to match.
      (void)mapping_->RebuildIndex();
      (void)object_rtree_->InsertChecked(mbr, id);
    } else {
      MSQ_CHECK(*removed);
    }
  }
  objects_ = mapping_->locations();
  graph_pager_->BumpDataEpoch();
  if (!status.ok()) return status;
  return true;
}

void Workload::ResetBuffers() {
  // The stack is fault-free at this point (faults, if any, are armed by the
  // caller after construction), so a failed flush is a programming error.
  MSQ_CHECK(graph_buffer_->Clear().ok());
  graph_buffer_->ResetStats();
  MSQ_CHECK(index_buffer_->Clear().ok());
  index_buffer_->ResetStats();
  graph_buffer_->disk()->ResetCounters();
  index_buffer_->disk()->ResetCounters();
}

}  // namespace msq
