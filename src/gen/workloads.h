// Workload assembly: builds and owns a full experiment stack — network,
// paged storage, indexes, middle layer, objects, attributes — and hands
// out the non-owning Dataset view the algorithms run against. Includes the
// CA/AU/NA presets of Section 6.1.
#ifndef MSQ_GEN_WORKLOADS_H_
#define MSQ_GEN_WORKLOADS_H_

#include <memory>
#include <optional>
#include <string>

#include "core/query.h"
#include "gen/network_gen.h"
#include "graph/graph_pager.h"
#include "graph/landmarks.h"
#include "gen/object_gen.h"
#include "gen/query_gen.h"
#include "index/rtree.h"
#include "storage/buffer_manager.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"

namespace msq {

// The paper's three real networks, by density class, plus kCNT — a
// synthetic "continental" tier at 5x the NA counts (so the default
// continental benchmark point, scale=2.0, is a 10x-NA network) used to
// prove the storage layout holds beyond the paper's sizes.
enum class NetworkClass { kCA, kAU, kNA, kCNT };

// Name used in benchmark tables ("CA", "AU", "NA", "CNT").
std::string NetworkClassName(NetworkClass cls);

// Node/edge counts of the paper's dataset for `cls`, scaled by `scale`
// (scale=1.0 reproduces the published sizes: CA 3,044/3,607;
// AU 23,269/30,289; NA 86,318/103,042; CNT is synthetic at
// 431,590/515,210).
NetworkGenConfig PaperNetworkConfig(NetworkClass cls, double scale = 1.0,
                                    std::uint64_t seed = 1);

// The 10x-NA continental preset (kCNT at scale=2.0): 863,180 nodes /
// 1,030,420 edges of straight, well-connected roads.
NetworkGenConfig ContinentalNetworkConfig(std::uint64_t seed = 1);

// How the adjacency pages of the workload's graph are laid out.
//  kSeed       — insertion-order ids, Morton-sorted row pages (the
//                original format; the oracle every other layout must match)
//  kHilbert    — node ids relabeled in Hilbert-curve order at build time,
//                row pages packed in id order
//  kHilbertCsr — Hilbert relabel + CSR-compressed adjacency pages
// Relabeling only renumbers nodes: edge ids, orientation, and lengths are
// untouched, so objects and queries (edge-keyed Locations) and all results
// are identical across layouts.
enum class GraphLayout { kSeed, kHilbert, kHilbertCsr };

// Name used in benchmark tables ("seed", "hilbert", "hilbert_csr").
std::string GraphLayoutName(GraphLayout layout);

// Pager options realizing `layout`.
GraphPagerOptions PagerOptionsFor(GraphLayout layout);

struct WorkloadConfig {
  NetworkGenConfig network;
  // Storage layout for the adjacency pages (and the node numbering).
  GraphLayout graph_layout = GraphLayout::kSeed;
  // ω = |D|/|E| (the paper sweeps {5%, 20%, 50%, 100%, 200%}).
  double object_density = 0.5;
  // Number of static attribute dimensions appended to distance vectors.
  std::size_t static_attr_dims = 0;
  std::uint64_t object_seed = 7;
  // Build an ALT landmark index with this many landmarks (0 = none; the
  // paper's algorithm class uses no precomputed distances).
  std::size_t landmark_count = 0;
  // When non-empty, back the page stores with files in this directory
  // ("<dir>/graph.pages", "<dir>/index.pages") instead of memory — the
  // configuration for datasets larger than RAM and for persistence tests.
  // The directory must exist; existing page files are truncated.
  std::string storage_dir;
  std::size_t graph_buffer_frames = kDefaultBufferFrames;
  std::size_t index_buffer_frames = kDefaultBufferFrames;
  // When set, both page stores are wrapped in seeded
  // FaultInjectingDiskManager decorators (the index store derives its seed
  // from the configured one). Decorators start disarmed, so the stack build
  // stays fault-free; arm them through graph_faults()/index_faults().
  std::optional<FaultInjectionConfig> fault_injection;
  // Retry policy handed to both buffer managers.
  RetryPolicy retry;
};

// Owns every structure a Dataset points into.
class Workload {
 public:
  // Builds the full stack (generates the network unless `network` is
  // supplied pre-built).
  explicit Workload(const WorkloadConfig& config);
  Workload(const WorkloadConfig& config, RoadNetwork network);
  // Fully handcrafted stack: explicit object locations (and optionally
  // explicit static attributes, overriding config.static_attr_dims). Used
  // by the worked-example tests.
  Workload(const WorkloadConfig& config, RoadNetwork network,
           std::vector<Location> objects,
           std::vector<DistVector> attrs = {});

  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  // Non-owning view for the algorithms. Valid while the workload lives.
  Dataset dataset();

  // Samples a query spec: `count` query points inside a `region_fraction`
  // window (paper default 10%).
  SkylineQuerySpec SampleQuery(std::size_t count, std::uint64_t seed,
                               double region_fraction = 0.1) const;

  // Cold-cache reset: drops buffered pages and zeroes buffer statistics.
  // Benchmarks call this before each measured run.
  void ResetBuffers();

  // --- dynamic world ----------------------------------------------------
  //
  // The mutation orchestrators below run at build time or under the
  // executor's exclusive write barrier (QueryExecutor::SubmitExclusive),
  // never concurrently with queries. Every call — success or failure —
  // bumps the pager's data_epoch(), so cached wavefronts, distance memos,
  // and probe bounds from before the mutation are unreachable afterwards.
  // On a storage error the stack converges to a consistent world (the
  // in-memory tables are authoritative; the B+-tree is rebuilt from them)
  // and the error is surfaced for accounting.

  // Reassigns edge `edge`'s length end to end: network CSR mirrors, object
  // offsets (rescaled proportionally, so planar positions and both R-trees
  // are untouched), middle-layer endpoint distances, paged adjacency
  // records, and the landmark tables when present. Returns the applied
  // length (clamped up to the endpoint Euclidean distance).
  StatusOr<Dist> UpdateEdgeWeight(EdgeId edge, Dist length);

  // Adds an object at `loc` through the middle layer and object R-tree;
  // returns its fresh id. A static-attribute row is generated when the
  // workload carries static attributes.
  StatusOr<ObjectId> InsertObject(const Location& loc);

  // Tombstones object `id` (middle layer + object R-tree; the id stays
  // allocated). Returns whether it was live. A clean "not live" no-op does
  // not bump the data epoch.
  StatusOr<bool> DeleteObject(ObjectId id);

  // Rebuilds the graph pager under `layout`, relabeling node ids when the
  // layout calls for it (and rebuilding the node-keyed landmark index).
  // Objects, queries, and results are unaffected — but node ids and the
  // pager's layout_epoch() change, so callers must not hold NN streams or
  // Datasets across the call, and epoch-stamped cache entries become
  // unreachable (the invalidation property the regression tests pin down).
  void Relayout(GraphLayout layout);

  GraphLayout graph_layout() const { return graph_layout_; }

  const RoadNetwork& network() const { return network_; }
  const SpatialMapping& mapping() const { return *mapping_; }
  const RTree& object_rtree() const { return *object_rtree_; }
  const RTree& edge_rtree() const { return *edge_rtree_; }
  const std::vector<Location>& objects() const { return objects_; }
  const std::vector<DistVector>& static_attributes() const { return attrs_; }
  // Null unless WorkloadConfig::landmark_count > 0.
  const LandmarkIndex* landmarks() const { return landmarks_.get(); }
  BufferManager& graph_buffer() { return *graph_buffer_; }
  BufferManager& index_buffer() { return *index_buffer_; }
  // Null unless WorkloadConfig::fault_injection is set.
  FaultInjectingDiskManager* graph_faults() { return graph_faults_.get(); }
  FaultInjectingDiskManager* index_faults() { return index_faults_.get(); }

 private:
  void BuildStack(const WorkloadConfig& config);

  RoadNetwork network_;
  // Exactly one backend pair is active, selected by storage_dir.
  InMemoryDiskManager graph_disk_;
  InMemoryDiskManager index_disk_;
  std::unique_ptr<FileDiskManager> graph_file_disk_;
  std::unique_ptr<FileDiskManager> index_file_disk_;
  std::unique_ptr<FaultInjectingDiskManager> graph_faults_;
  std::unique_ptr<FaultInjectingDiskManager> index_faults_;
  std::unique_ptr<BufferManager> graph_buffer_;
  std::unique_ptr<BufferManager> index_buffer_;
  std::unique_ptr<GraphPager> graph_pager_;
  std::unique_ptr<RTree> edge_rtree_;
  std::vector<Location> objects_;
  std::unique_ptr<SpatialMapping> mapping_;
  std::unique_ptr<RTree> object_rtree_;
  std::unique_ptr<LandmarkIndex> landmarks_;
  std::vector<DistVector> attrs_;
  GraphLayout graph_layout_ = GraphLayout::kSeed;
  std::size_t static_attr_dims_ = 0;
  std::uint64_t attr_seed_ = 0;
  std::size_t landmark_count_ = 0;
  std::uint64_t landmark_seed_ = 0;
  std::uint64_t query_seed_mix_ = 0;
  bool use_custom_objects_ = false;
  std::vector<Location> custom_objects_;
  std::vector<DistVector> custom_attrs_;
};

}  // namespace msq

#endif  // MSQ_GEN_WORKLOADS_H_
