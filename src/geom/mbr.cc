#include "geom/mbr.h"

#include <algorithm>
#include <cmath>

namespace msq {

Mbr Mbr::Empty() { return Mbr{}; }

Mbr Mbr::FromPoint(const Point& p) { return Mbr{p.x, p.y, p.x, p.y}; }

Mbr Mbr::FromSegment(const Point& a, const Point& b) {
  return Mbr{std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
             std::max(a.y, b.y)};
}

bool Mbr::Contains(const Point& p) const {
  return p.x >= lo_x && p.x <= hi_x && p.y >= lo_y && p.y <= hi_y;
}

bool Mbr::Contains(const Mbr& other) const {
  if (other.IsEmpty()) return true;
  if (IsEmpty()) return false;
  return other.lo_x >= lo_x && other.hi_x <= hi_x && other.lo_y >= lo_y &&
         other.hi_y <= hi_y;
}

bool Mbr::Intersects(const Mbr& other) const {
  if (IsEmpty() || other.IsEmpty()) return false;
  return lo_x <= other.hi_x && other.lo_x <= hi_x && lo_y <= other.hi_y &&
         other.lo_y <= hi_y;
}

void Mbr::Extend(const Mbr& other) {
  if (other.IsEmpty()) return;
  if (IsEmpty()) {
    *this = other;
    return;
  }
  lo_x = std::min(lo_x, other.lo_x);
  lo_y = std::min(lo_y, other.lo_y);
  hi_x = std::max(hi_x, other.hi_x);
  hi_y = std::max(hi_y, other.hi_y);
}

void Mbr::Extend(const Point& p) { Extend(FromPoint(p)); }

double Mbr::Area() const {
  if (IsEmpty()) return 0.0;
  return (hi_x - lo_x) * (hi_y - lo_y);
}

double Mbr::Enlargement(const Mbr& other) const {
  Mbr merged = *this;
  merged.Extend(other);
  return merged.Area() - Area();
}

double Mbr::Margin() const {
  if (IsEmpty()) return 0.0;
  return (hi_x - lo_x) + (hi_y - lo_y);
}

Dist Mbr::MinDist(const Point& p) const {
  if (IsEmpty()) return kInfDist;
  const double dx = std::max({lo_x - p.x, 0.0, p.x - hi_x});
  const double dy = std::max({lo_y - p.y, 0.0, p.y - hi_y});
  return std::sqrt(dx * dx + dy * dy);
}

Dist Mbr::MaxDist(const Point& p) const {
  if (IsEmpty()) return kInfDist;
  const double dx = std::max(std::abs(p.x - lo_x), std::abs(p.x - hi_x));
  const double dy = std::max(std::abs(p.y - lo_y), std::abs(p.y - hi_y));
  return std::sqrt(dx * dx + dy * dy);
}

Point Mbr::Center() const {
  return Point{(lo_x + hi_x) * 0.5, (lo_y + hi_y) * 0.5};
}

}  // namespace msq
