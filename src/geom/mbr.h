// Axis-aligned minimum bounding rectangle, the unit of R-tree geometry.
#ifndef MSQ_GEOM_MBR_H_
#define MSQ_GEOM_MBR_H_

#include "common/types.h"
#include "geom/point.h"

namespace msq {

// An axis-aligned rectangle. An "empty" MBR (default-constructed) has
// lo > hi on both axes and behaves as the identity for Extend().
struct Mbr {
  double lo_x = 1.0;
  double lo_y = 1.0;
  double hi_x = -1.0;
  double hi_y = -1.0;

  // The empty rectangle, identity for Extend().
  static Mbr Empty();
  // The degenerate rectangle containing exactly `p`.
  static Mbr FromPoint(const Point& p);
  // The bounding box of segment ab.
  static Mbr FromSegment(const Point& a, const Point& b);

  bool IsEmpty() const { return lo_x > hi_x || lo_y > hi_y; }

  // Whether `p` lies inside (boundary inclusive).
  bool Contains(const Point& p) const;
  // Whether `other` is fully inside this rectangle.
  bool Contains(const Mbr& other) const;
  // Whether the two rectangles overlap (boundary touch counts).
  bool Intersects(const Mbr& other) const;

  // Grows this rectangle to cover `other` / `p`.
  void Extend(const Mbr& other);
  void Extend(const Point& p);

  // Area; 0 for empty or degenerate rectangles.
  double Area() const;
  // Area increase if this rectangle were extended to cover `other`.
  double Enlargement(const Mbr& other) const;
  // Half-perimeter (margin), used by split heuristics.
  double Margin() const;

  // Minimum Euclidean distance from `p` to any point of this rectangle
  // (0 when `p` is inside). This is the MINDIST of [Roussopoulos et al.],
  // the R-tree NN pruning bound used throughout Section 4 of the paper.
  Dist MinDist(const Point& p) const;
  // Maximum Euclidean distance from `p` to any point of this rectangle.
  Dist MaxDist(const Point& p) const;

  Point Center() const;

  friend bool operator==(const Mbr& a, const Mbr& b) {
    return a.lo_x == b.lo_x && a.lo_y == b.lo_y && a.hi_x == b.hi_x &&
           a.hi_y == b.hi_y;
  }
};

}  // namespace msq

#endif  // MSQ_GEOM_MBR_H_
