#include "geom/point.h"

#include <cmath>

namespace msq {

Dist EuclideanDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

Point Lerp(const Point& a, const Point& b, double t) {
  return Point{a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

}  // namespace msq
