// 2-D point in the plane the road network is embedded in.
#ifndef MSQ_GEOM_POINT_H_
#define MSQ_GEOM_POINT_H_

#include "common/types.h"

namespace msq {

// A point in the unit square the networks are normalized into (the paper
// unifies all datasets into a 1 km x 1 km region; coordinates are km).
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

// Euclidean distance dE(a, b).
Dist EuclideanDistance(const Point& a, const Point& b);

// Squared Euclidean distance (avoids the sqrt when only comparing).
double SquaredDistance(const Point& a, const Point& b);

// Linear interpolation: the point at parameter t in [0,1] along segment ab.
Point Lerp(const Point& a, const Point& b, double t);

}  // namespace msq

#endif  // MSQ_GEOM_POINT_H_
