#include "geom/segment.h"

#include <algorithm>
#include <cmath>

namespace msq {

Dist Segment::Length() const { return EuclideanDistance(a, b); }

Point Segment::AtOffset(Dist offset) const {
  const Dist len = Length();
  if (len <= 0.0) return a;
  const double t = std::clamp(offset / len, 0.0, 1.0);
  return Lerp(a, b, t);
}

Dist Segment::ClosestOffset(const Point& p) const {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len_sq = dx * dx + dy * dy;
  if (len_sq <= 0.0) return 0.0;
  const double t =
      std::clamp(((p.x - a.x) * dx + (p.y - a.y) * dy) / len_sq, 0.0, 1.0);
  return t * std::sqrt(len_sq);
}

Dist Segment::DistanceTo(const Point& p) const {
  return EuclideanDistance(p, AtOffset(ClosestOffset(p)));
}

}  // namespace msq
