// Line-segment geometry used when mapping objects onto polyline edges.
#ifndef MSQ_GEOM_SEGMENT_H_
#define MSQ_GEOM_SEGMENT_H_

#include "common/types.h"
#include "geom/point.h"

namespace msq {

// A straight road segment from `a` to `b`.
struct Segment {
  Point a;
  Point b;

  Dist Length() const;

  // The point at arc-length offset `offset` from `a` along the segment.
  // `offset` is clamped to [0, Length()].
  Point AtOffset(Dist offset) const;

  // Minimum Euclidean distance from `p` to the segment.
  Dist DistanceTo(const Point& p) const;

  // Arc-length offset (from `a`) of the point on the segment closest to `p`.
  Dist ClosestOffset(const Point& p) const;
};

}  // namespace msq

#endif  // MSQ_GEOM_SEGMENT_H_
