#include "graph/astar.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"

namespace msq {
namespace {

// Cached at load so the settle path pays one load + increment.
obs::Counter* const g_settled = obs::GlobalMetrics().counter(
    obs::metric::kSettledNodes);
obs::Gauge* const g_heap_peak = obs::GlobalMetrics().gauge(
    obs::metric::kHeapPeak);

}  // namespace

AStarSearch::AStarSearch(const GraphPager* pager, Location source,
                         const LandmarkIndex* landmarks)
    : pager_(pager), source_(source), landmarks_(landmarks) {
  MSQ_CHECK(pager != nullptr);
  const RoadNetwork& network = pager->network();
  MSQ_CHECK(network.IsValidLocation(source));
  dist_.assign(network.node_count(), kInfDist);
  settled_.assign(network.node_count(), 0);

  const RoadNetwork::Edge& e = network.EdgeAt(source.edge);
  const auto [du, dv] = network.EndpointDistances(source);
  Improve(e.u, du);
  Improve(e.v, dv);
}

void AStarSearch::Improve(NodeId node, Dist dist) {
  if (settled_[node] || dist >= dist_[node]) return;
  if (dist_[node] == kInfDist) labeled_nodes_.push_back(node);
  dist_[node] = dist;
  log_.push_back(LabelEvent{node, dist});
}

void AStarSearch::Settle(NodeId node, Dist dist) {
  MSQ_CHECK(!settled_[node]);
  settled_[node] = 1;
  ++settled_count_;
  max_settled_dist_ = std::max(max_settled_dist_, dist);
  g_settled->Inc();
  ++obs::ThreadLocalCounters().settled_nodes;
  OkOrThrow(pager_->AdjacencyOf(node, &scratch_adjacency_));
  for (const AdjacencyEntry& adj : scratch_adjacency_) {
    Improve(adj.neighbor, dist + adj.length);
  }
}

AStarSearch::Probe AStarSearch::NewProbe(const Location& target) {
  return Probe(this, target);
}

Dist AStarSearch::DistanceTo(const Location& target) {
  return NewProbe(target).Run();
}

AStarSearch::Probe::Probe(AStarSearch* parent, const Location& target)
    : parent_(parent), target_(target) {
  const RoadNetwork& network = parent->pager_->network();
  MSQ_CHECK(network.IsValidLocation(target));
  target_point_ = network.LocationPosition(target);
  const RoadNetwork::Edge& e = network.EdgeAt(target.edge);
  end_u_ = e.u;
  end_v_ = e.v;
  const auto [tu, tv] = network.EndpointDistances(target);
  target_du_ = tu;
  target_dv_ = tv;
  direct_ = (target.edge == parent->source_.edge)
                ? std::abs(target.offset - parent->source_.offset)
                : kInfDist;
  // The initial plb is the Euclidean distance between source and target
  // (Section 4.3: "the initial path distance lower bound is the Euclidean
  // distance between vs and vd").
  plb_ = EuclideanDistance(
      network.LocationPosition(parent->source_), target_point_);
  if (parent->landmarks_ != nullptr) {
    plb_ = std::max(plb_,
                    parent->landmarks_->LowerBound(parent->source_, target));
  }
  if (direct_ < kInfDist) plb_ = std::min(plb_, direct_);

  // The frontier heap is built lazily on the first Advance() that needs
  // it: when both target endpoints are already settled the distance is
  // known without touching the frontier at all, which makes probes into
  // already-explored territory O(1) — the common case for LBC's
  // probe-per-(candidate, query point) pattern.
}

void AStarSearch::Probe::Seed() {
  MSQ_CHECK(!seeded_);
  seeded_ = true;
  // Seed from the compact labeled-node list with current labels; the event
  // log only needs to be followed from this point on.
  log_cursor_ = parent_->log_.size();
  for (const NodeId node : parent_->labeled_nodes_) {
    if (parent_->settled_[node]) continue;
    const Dist d = parent_->dist_[node];
    heap_.push(HeapItem{d + Heuristic(node), d, node});
  }
}

Dist AStarSearch::Probe::Heuristic(NodeId node) const {
  const Point& p = parent_->pager_->network().NodePosition(node);
  // Remaining distance to the target point is at least the straight-line
  // distance (edge lengths are >= endpoint Euclidean distances).
  Dist bound = EuclideanDistance(p, target_point_);
  if (parent_->landmarks_ != nullptr) {
    bound = std::max(bound,
                     parent_->landmarks_->LowerBound(node, target_));
  }
  return bound;
}

Dist AStarSearch::Probe::CurrentBestTarget() const {
  Dist best = direct_;
  if (parent_->settled_[end_u_]) {
    best = std::min(best, parent_->dist_[end_u_] + target_du_);
  }
  if (parent_->settled_[end_v_]) {
    best = std::min(best, parent_->dist_[end_v_] + target_dv_);
  }
  return best;
}

void AStarSearch::Probe::Sync() {
  while (log_cursor_ < parent_->log_.size()) {
    const LabelEvent& event = parent_->log_[log_cursor_++];
    if (parent_->settled_[event.node]) continue;
    heap_.push(HeapItem{event.dist + Heuristic(event.node), event.dist,
                        event.node});
  }
}

void AStarSearch::Probe::Clean() {
  while (!heap_.empty()) {
    const HeapItem& top = heap_.top();
    if (parent_->settled_[top.node] || top.d > parent_->dist_[top.node]) {
      heap_.pop();
      continue;
    }
    return;
  }
}

Dist AStarSearch::Probe::Advance() {
  if (done_) return plb_;
  if (!seeded_) {
    // Exactness shortcut: with both endpoints settled, every path to the
    // target enters through a node with a final label, so the best known
    // complete path is the exact distance and the frontier is irrelevant.
    if (parent_->settled_[end_u_] && parent_->settled_[end_v_]) {
      done_ = true;
      distance_ = CurrentBestTarget();
      plb_ = distance_;
      return plb_;
    }
    Seed();
  }
  Sync();
  Clean();

  const Dist best_target = CurrentBestTarget();
  if (heap_.empty() || heap_.top().f >= best_target) {
    // No remaining frontier node can begin a shorter path: the best known
    // complete path is the shortest (kInfDist when no path exists).
    done_ = true;
    distance_ = best_target;
    plb_ = best_target;
    return plb_;
  }

  const HeapItem top = heap_.top();
  heap_.pop();
  parent_->Settle(top.node, top.d);
  Sync();
  Clean();
  // Per-expansion granularity keeps the gauge off the relaxation path.
  g_heap_peak->Update(static_cast<double>(heap_.size()));
  obs::ThreadLocalCounters().UpdateHeap(static_cast<double>(heap_.size()));

  const Dist new_best = CurrentBestTarget();
  const Dist frontier_bound = heap_.empty() ? kInfDist : heap_.top().f;
  if (frontier_bound >= new_best) {
    done_ = true;
    distance_ = new_best;
    plb_ = new_best;
  } else {
    // The frontier minimum is a valid lower bound on dN(source, target);
    // it is non-decreasing under a consistent heuristic.
    plb_ = std::max(plb_, std::min(frontier_bound, new_best));
  }
  return plb_;
}

Dist AStarSearch::Probe::Run() {
  while (!done_) Advance();
  return distance_;
}

Dist AStarSearch::Probe::distance() const {
  MSQ_CHECK(done_);
  return distance_;
}

}  // namespace msq
