// Resumable A* search with shared labels and path-distance-lower-bound
// (plb) probes.
//
// This implements two ideas the paper builds LBC and EDC on:
//
//  1. Label reuse across targets ([26], adopted in Section 3): one
//     AStarSearch per query point keeps every computed network distance
//     ("each query point keeps a hash table to store the intermediate nodes
//     visited, together with their network distances"), so successive
//     distance computations from the same query point resume rather than
//     restart.
//
//  2. The path distance lower bound of Section 4.3: while expanding toward
//     a target t, the smallest f = d(vs,v) + dE(v,t) over the frontier can
//     only grow, never exceeds dN(vs,t), and equals it at termination. A
//     Probe exposes one expansion step at a time so LBC can abandon a
//     dominated candidate after paying only as much network access as
//     needed to prove domination — the mechanism behind the
//     instance-optimality proof (Theorem 1).
//
// Multiple live probes of the same search cooperate: any probe's expansion
// settles nodes (exact labels) that every other probe reuses. Correctness
// of cross-probe settling holds because each probe re-synchronizes its
// frontier heap with the shared label log before every pop, so the popped
// node has the minimum f over the complete current frontier — the standard
// A* exactness argument then applies regardless of which target's heuristic
// ordered the pop.
#ifndef MSQ_GRAPH_ASTAR_H_
#define MSQ_GRAPH_ASTAR_H_

#include <memory>
#include <queue>
#include <vector>

#include "graph/graph_pager.h"
#include "graph/landmarks.h"
#include "graph/road_network.h"

namespace msq {

// Settling reads adjacency pages through the pager and throws StorageFault
// on I/O failure; run inside a query boundary (see common/status.h).
class AStarSearch {
 public:
  // Starts a reusable search from `source`. Neither the pager nor the
  // optional landmark index is owned. When `landmarks` is supplied, the
  // heuristic is max(Euclidean, ALT landmark bound) — still consistent,
  // but tighter on high-detour networks (see graph/landmarks.h for why
  // this steps outside the paper's Theorem 1 algorithm class).
  AStarSearch(const GraphPager* pager, Location source,
              const LandmarkIndex* landmarks = nullptr);

  AStarSearch(const AStarSearch&) = delete;
  AStarSearch& operator=(const AStarSearch&) = delete;

  // An incremental distance computation toward one target. Valid only
  // while its parent AStarSearch is alive. Multiple probes may be live and
  // interleaved arbitrarily.
  class Probe {
   public:
    // Performs at most one node expansion and returns the updated path
    // distance lower bound. Idempotent once done().
    Dist Advance();

    // Advances until the exact distance is known; returns it (kInfDist when
    // the target is unreachable).
    Dist Run();

    // Whether the exact network distance has been determined.
    bool done() const { return done_; }

    // Current path distance lower bound: plb <= dN(source, target), and
    // plb == dN(source, target) once done. Non-decreasing over time.
    Dist plb() const { return plb_; }

    // Exact distance; requires done().
    Dist distance() const;

   private:
    friend class AStarSearch;
    Probe(AStarSearch* parent, const Location& target);

    // Builds the initial frontier heap (deferred until first needed).
    void Seed();
    // Pulls label events from the shared log into the local heap.
    void Sync();
    // Drops stale/settled heap tops.
    void Clean();
    // Best known complete path: settled endpoint labels + the direct
    // along-edge path when source and target share an edge.
    Dist CurrentBestTarget() const;
    Dist Heuristic(NodeId node) const;

    struct HeapItem {
      Dist f;        // d + heuristic
      Dist d;        // label snapshot used to build this item
      NodeId node;
      bool operator>(const HeapItem& other) const { return f > other.f; }
    };

    AStarSearch* parent_;
    Location target_;
    Point target_point_;
    NodeId end_u_, end_v_;
    Dist target_du_, target_dv_;  // along-edge offsets of the target
    Dist direct_;                 // same-edge direct distance or kInfDist
    std::size_t log_cursor_ = 0;
    bool seeded_ = false;
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>>
        heap_;
    Dist plb_;
    bool done_ = false;
    Dist distance_ = kInfDist;
  };

  // Creates a probe toward `target`.
  Probe NewProbe(const Location& target);

  // Convenience: exact network distance to `target` (expands as needed;
  // all labels are retained for future probes).
  Dist DistanceTo(const Location& target);

  // Number of nodes settled so far across all probes (the paper's network
  // node access measure for A*-based search).
  std::size_t settled_count() const { return settled_count_; }

  // Largest exact distance settled so far — the radius the wavefront has
  // verifiably reached (0 when nothing was settled).
  Dist max_settled_distance() const { return max_settled_dist_; }

  const Location& source() const { return source_; }
  const GraphPager& pager() const { return *pager_; }

 private:
  friend class Probe;

  // One (node, label) event; the log is append-only so probes can cursor
  // through it.
  struct LabelEvent {
    NodeId node;
    Dist dist;
  };

  // Applies a label improvement and logs it.
  void Improve(NodeId node, Dist dist);
  // Settles `node` at exact distance `dist` and relaxes its neighbors.
  void Settle(NodeId node, Dist dist);

  const GraphPager* pager_;
  Location source_;
  const LandmarkIndex* landmarks_;
  std::vector<Dist> dist_;
  std::vector<std::uint8_t> settled_;
  std::vector<LabelEvent> log_;
  // Every node labeled so far, each exactly once (in first-labeling
  // order). New probes seed their heaps from this compact list with the
  // *current* labels instead of replaying the whole event log — keeping
  // probe creation linear in distinct labeled nodes, which matters for
  // LBC's probe-per-(candidate, query point) pattern.
  std::vector<NodeId> labeled_nodes_;
  std::size_t settled_count_ = 0;
  Dist max_settled_dist_ = 0.0;
  std::vector<AdjacencyEntry> scratch_adjacency_;
};

}  // namespace msq

#endif  // MSQ_GRAPH_ASTAR_H_
