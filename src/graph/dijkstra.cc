#include "graph/dijkstra.h"

#include <algorithm>
#include <functional>

#include "common/check.h"
#include "obs/metrics.h"

namespace msq {
namespace {

// Cached at load so the settle path pays one load + increment.
obs::Counter* const g_settled = obs::GlobalMetrics().counter(
    obs::metric::kSettledNodes);
obs::Gauge* const g_heap_peak = obs::GlobalMetrics().gauge(
    obs::metric::kHeapPeak);

}  // namespace

DijkstraSearch::DijkstraSearch(const GraphPager* pager, Location source)
    : pager_(pager), source_(source) {
  MSQ_CHECK(pager != nullptr);
  const RoadNetwork& network = pager->network();
  MSQ_CHECK(network.IsValidLocation(source));
  dist_.assign(network.node_count(), kInfDist);
  settled_.assign(network.node_count(), 0);

  // Seed the wavefront with the source edge's endpoints.
  const RoadNetwork::Edge& e = network.EdgeAt(source.edge);
  const auto [du, dv] = network.EndpointDistances(source);
  if (du < dist_[e.u]) {
    dist_[e.u] = du;
    HeapPush(HeapItem{du, e.u});
  }
  if (dv < dist_[e.v]) {
    dist_[e.v] = dv;
    HeapPush(HeapItem{dv, e.v});
  }
}

DijkstraSearch::DijkstraSearch(const GraphPager* pager, Location source,
                               const Checkpoint& checkpoint)
    : pager_(pager), source_(source) {
  MSQ_CHECK(pager != nullptr);
  const RoadNetwork& network = pager->network();
  MSQ_CHECK(network.IsValidLocation(source));
  MSQ_CHECK(checkpoint.dist.size() == network.node_count());
  MSQ_CHECK(checkpoint.settled.size() == network.node_count());
  dist_ = checkpoint.dist;
  settled_ = checkpoint.settled;
  heap_ = checkpoint.frontier;
  settled_count_ = checkpoint.settled_count;
  resumed_settled_count_ = checkpoint.settled_count;
}

DijkstraSearch::Checkpoint DijkstraSearch::MakeCheckpoint() const {
  Checkpoint checkpoint;
  checkpoint.dist = dist_;
  checkpoint.settled = settled_;
  checkpoint.frontier = heap_;
  checkpoint.settled_count = settled_count_;
  return checkpoint;
}

void DijkstraSearch::HeapPush(HeapItem item) {
  heap_.push_back(item);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

void DijkstraSearch::HeapPop() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
  heap_.pop_back();
}

void DijkstraSearch::CleanTop() {
  while (!heap_.empty()) {
    const HeapItem top = heap_.front();
    if (settled_[top.node] || top.dist > dist_[top.node]) {
      HeapPop();
      continue;
    }
    return;
  }
}

Dist DijkstraSearch::Radius() {
  CleanTop();
  return heap_.empty() ? kInfDist : heap_.front().dist;
}

Dist DijkstraSearch::Label(NodeId node) const {
  MSQ_CHECK(node < dist_.size());
  return dist_[node];
}

bool DijkstraSearch::IsSettled(NodeId node) const {
  MSQ_CHECK(node < settled_.size());
  return settled_[node] != 0;
}

void DijkstraSearch::Expand(NodeId node, Dist dist) {
  OkOrThrow(pager_->AdjacencyOf(node, &scratch_adjacency_));
  for (const AdjacencyEntry& adj : scratch_adjacency_) {
    if (settled_[adj.neighbor]) continue;
    const Dist candidate = dist + adj.length;
    if (candidate < dist_[adj.neighbor]) {
      dist_[adj.neighbor] = candidate;
      HeapPush(HeapItem{candidate, adj.neighbor});
    }
  }
}

std::optional<DijkstraSearch::Settled> DijkstraSearch::NextSettled() {
  CleanTop();
  if (heap_.empty()) return std::nullopt;
  const HeapItem top = heap_.front();
  HeapPop();
  settled_[top.node] = 1;
  ++settled_count_;
  g_settled->Inc();
  ++obs::ThreadLocalCounters().settled_nodes;
  Expand(top.node, top.dist);
  // Settle granularity keeps the gauge off the per-relaxation path; the
  // heap grows by at most one node degree between settles.
  g_heap_peak->Update(static_cast<double>(heap_.size()));
  obs::ThreadLocalCounters().UpdateHeap(static_cast<double>(heap_.size()));
  return Settled{top.node, top.dist};
}

Dist DijkstraSearch::DistanceTo(const Location& target) {
  const RoadNetwork& network = pager_->network();
  MSQ_CHECK(network.IsValidLocation(target));
  const RoadNetwork::Edge& e = network.EdgeAt(target.edge);
  const auto [tu, tv] = network.EndpointDistances(target);

  // Direct along-edge path when source and target share an edge.
  Dist best = kInfDist;
  if (target.edge == source_.edge) {
    best = std::abs(target.offset - source_.offset);
  }

  if (settled_[e.u]) best = std::min(best, dist_[e.u] + tu);
  if (settled_[e.v]) best = std::min(best, dist_[e.v] + tv);

  // Expand until every remaining node is farther than the best known path:
  // any later endpoint settlement would contribute >= Radius() >= best.
  while (Radius() < best) {
    const auto settled = NextSettled();
    if (!settled.has_value()) break;
    if (settled->node == e.u) best = std::min(best, settled->distance + tu);
    if (settled->node == e.v) best = std::min(best, settled->distance + tv);
  }
  return best;
}

}  // namespace msq
