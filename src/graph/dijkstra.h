// Resumable Dijkstra wavefront expansion from a network location.
//
// Section 3 of the paper: the wavefront is kept in a heap and can be
// expanded incrementally; "the frontier nodes on the wavefront are
// maintained such that the expansion can continue from a previous state".
// This incremental form is the engine of the CE algorithm, which alternates
// expansion among the query points.
#ifndef MSQ_GRAPH_DIJKSTRA_H_
#define MSQ_GRAPH_DIJKSTRA_H_

#include <optional>
#include <queue>
#include <vector>

#include "graph/graph_pager.h"
#include "graph/road_network.h"

namespace msq {

// Expansion reads adjacency pages through the pager and throws StorageFault
// on I/O failure; run inside a query boundary (see common/status.h).
class DijkstraSearch {
 public:
  // Starts a wavefront at `source`. The pager is not owned.
  DijkstraSearch(const GraphPager* pager, Location source);

  struct Settled {
    NodeId node;
    Dist distance;
  };

  // Settles and returns the next-nearest node, expanding the wavefront by
  // one step. std::nullopt when the reachable network is exhausted.
  std::optional<Settled> NextSettled();

  // Distance of the next node to settle: a lower bound on the distance of
  // every not-yet-settled node. kInfDist when exhausted.
  Dist Radius();

  // Current label of `node` (exact iff settled; kInfDist if unlabeled).
  Dist Label(NodeId node) const;
  bool IsSettled(NodeId node) const;

  // Exact network distance from the source to `target`, expanding as far
  // as needed. kInfDist when unreachable. Further incremental use of the
  // search remains valid afterwards.
  Dist DistanceTo(const Location& target);

  // Number of nodes settled so far (the paper's per-query network node
  // access measure for Dijkstra-based search).
  std::size_t settled_count() const { return settled_count_; }

  const Location& source() const { return source_; }

 private:
  struct HeapItem {
    Dist dist;
    NodeId node;
    bool operator>(const HeapItem& other) const {
      return dist > other.dist;
    }
  };

  // Relaxes `node`'s neighbors given its exact distance `dist`.
  void Expand(NodeId node, Dist dist);
  // Pops stale heap entries.
  void CleanTop();

  const GraphPager* pager_;
  Location source_;
  std::vector<Dist> dist_;
  std::vector<std::uint8_t> settled_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
  std::size_t settled_count_ = 0;
  std::vector<AdjacencyEntry> scratch_adjacency_;
};

}  // namespace msq

#endif  // MSQ_GRAPH_DIJKSTRA_H_
