// Resumable Dijkstra wavefront expansion from a network location.
//
// Section 3 of the paper: the wavefront is kept in a heap and can be
// expanded incrementally; "the frontier nodes on the wavefront are
// maintained such that the expansion can continue from a previous state".
// This incremental form is the engine of the CE algorithm, which alternates
// expansion among the query points.
//
// A search can be checkpointed (labels + frontier heap) and a later search
// from the same source resumed from the checkpoint — the substrate of the
// cross-query wavefront cache (cache/query_cache.h). Heap ordering breaks
// distance ties by node id, so settle order — and everything derived from
// it — is deterministic and identical between a cold run and a resumed one.
#ifndef MSQ_GRAPH_DIJKSTRA_H_
#define MSQ_GRAPH_DIJKSTRA_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/graph_pager.h"
#include "graph/road_network.h"

namespace msq {

// Expansion reads adjacency pages through the pager and throws StorageFault
// on I/O failure; run inside a query boundary (see common/status.h).
class DijkstraSearch {
 public:
  // One frontier heap entry. Ties in distance are broken by node id (lower
  // id settles first) so expansion order is deterministic regardless of
  // insertion history — required for byte-identical resumed searches.
  struct HeapItem {
    Dist dist;
    NodeId node;
    bool operator>(const HeapItem& other) const {
      if (dist != other.dist) return dist > other.dist;
      return node > other.node;
    }
  };

  // Checkpoint of a wavefront: labels, settled flags, and the frontier
  // heap, sufficient to resume expansion exactly where it stopped. Plain
  // data — immutable copies are shared across threads by the query cache.
  struct Checkpoint {
    std::vector<Dist> dist;
    std::vector<std::uint8_t> settled;
    std::vector<HeapItem> frontier;  // heap-ordered (std::make_heap layout)
    std::size_t settled_count = 0;

    // Approximate heap footprint, for cache byte budgeting.
    std::size_t bytes() const {
      return dist.capacity() * sizeof(Dist) +
             settled.capacity() * sizeof(std::uint8_t) +
             frontier.capacity() * sizeof(HeapItem) + sizeof(Checkpoint);
    }
  };

  // Starts a wavefront at `source`. The pager is not owned.
  DijkstraSearch(const GraphPager* pager, Location source);

  // Resumes from `checkpoint`, which must have been taken from a search
  // with the same source on the same network (asserted by size).
  DijkstraSearch(const GraphPager* pager, Location source,
                 const Checkpoint& checkpoint);

  struct Settled {
    NodeId node;
    Dist distance;
  };

  // Settles and returns the next-nearest node, expanding the wavefront by
  // one step. std::nullopt when the reachable network is exhausted.
  std::optional<Settled> NextSettled();

  // Distance of the next node to settle: a lower bound on the distance of
  // every not-yet-settled node. kInfDist when exhausted.
  Dist Radius();

  // Current label of `node` (exact iff settled; kInfDist if unlabeled).
  Dist Label(NodeId node) const;
  bool IsSettled(NodeId node) const;

  // Exact network distance from the source to `target`, expanding as far
  // as needed. kInfDist when unreachable. Further incremental use of the
  // search remains valid afterwards.
  Dist DistanceTo(const Location& target);

  // Copies the current wavefront state (labels + frontier) into a
  // checkpoint a later DijkstraSearch can resume from.
  Checkpoint MakeCheckpoint() const;

  // Number of nodes settled so far (the paper's per-query network node
  // access measure for Dijkstra-based search). For a resumed search this
  // includes the checkpoint's settles — the total wavefront extent.
  std::size_t settled_count() const { return settled_count_; }

  // Nodes settled by THIS search instance, excluding any inherited from a
  // resume checkpoint. This is the quantity that matches the per-thread
  // graph.settled_nodes counter (QueryStats cost accounting must use it:
  // a resumed query did not pay for the snapshot's expansion).
  std::size_t fresh_settled_count() const {
    return settled_count_ - resumed_settled_count_;
  }

  const Location& source() const { return source_; }

 private:
  // Relaxes `node`'s neighbors given its exact distance `dist`.
  void Expand(NodeId node, Dist dist);
  // Pops stale heap entries.
  void CleanTop();
  void HeapPush(HeapItem item);
  void HeapPop();

  const GraphPager* pager_;
  Location source_;
  std::vector<Dist> dist_;
  std::vector<std::uint8_t> settled_;
  // Min-heap via std::push_heap/pop_heap so the underlying vector is
  // directly checkpointable.
  std::vector<HeapItem> heap_;
  std::size_t settled_count_ = 0;
  std::size_t resumed_settled_count_ = 0;
  std::vector<AdjacencyEntry> scratch_adjacency_;
};

}  // namespace msq

#endif  // MSQ_GRAPH_DIJKSTRA_H_
