#include "graph/graph_pager.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>

#include "common/check.h"
#include "geom/point.h"
#include "obs/metrics.h"
#include "storage/page.h"

namespace msq {
namespace {

obs::Counter* const g_adjacency_reads = obs::GlobalMetrics().counter(
    obs::metric::kAdjacencyReads);

// Serialized row-format adjacency record: u32 degree, then per neighbor
// (u32 neighbor, u32 edge, double length).
constexpr std::size_t kRecordHeaderBytes = sizeof(std::uint32_t);
constexpr std::size_t kNeighborBytes =
    2 * sizeof(std::uint32_t) + sizeof(double);

std::size_t RowRecordBytes(std::size_t degree) {
  return kRecordHeaderBytes + degree * kNeighborBytes;
}

// Serializes `node`'s adjacency list in the fixed-size row format.
void EncodeRowRecord(const RoadNetwork& network, NodeId node,
                     std::vector<std::byte>* out) {
  const auto adj = network.Adjacent(node);
  out->resize(RowRecordBytes(adj.size()));
  std::byte* dst = out->data();
  const auto deg32 = static_cast<std::uint32_t>(adj.size());
  std::memcpy(dst, &deg32, sizeof(deg32));
  dst += sizeof(deg32);
  for (const AdjacencyEntry& entry : adj) {
    std::memcpy(dst, &entry.neighbor, sizeof(entry.neighbor));
    dst += sizeof(entry.neighbor);
    std::memcpy(dst, &entry.edge, sizeof(entry.edge));
    dst += sizeof(entry.edge);
    std::memcpy(dst, &entry.length, sizeof(entry.length));
    dst += sizeof(entry.length);
  }
}

// CSR pages open with a format-versioned header so a misdirected or
// stale page is rejected before any varint is trusted. (Row pages are the
// seed format and stay headerless for byte-compatibility.)
constexpr std::uint32_t kCsrMagic = 0x4351534d;  // "MSQC"
constexpr std::uint16_t kCsrVersion = 1;

struct CsrPageHeader {
  std::uint32_t magic = kCsrMagic;
  std::uint16_t version = kCsrVersion;
  std::uint16_t record_count = 0;
  std::uint32_t used_bytes = 0;  // includes this header
  std::uint32_t reserved = 0;
};
static_assert(sizeof(CsrPageHeader) == 16);
static_assert(std::is_trivially_copyable_v<CsrPageHeader>);

// Appends the CSR encoding of `node`'s adjacency list to `out`.
// Layout: varint degree, then per neighbor
//   varint (zigzag(neighbor_delta) << 1 | euclid_flag)
//   varint edge_delta          (first: absolute edge id; lists are
//                               ascending-by-edge-id from Finalize)
//   [8-byte raw double length]  only when euclid_flag == 0
// euclid_flag marks lengths that bit-equal the Euclidean distance of the
// endpoints (every unclamped straight edge), which the decoder recomputes
// instead of storing — with delta-coded ids this shrinks a degree-3
// straight-edge record from 52 bytes to ~8.
// `*elided_out` (optional) counts the elided lengths: the record can grow
// by at most 8 bytes per elided length under future edge-weight updates,
// which is how RefreshEdge sizes relocation slots.
void EncodeCsrRecord(const RoadNetwork& network, NodeId node,
                     std::vector<std::byte>* out,
                     std::size_t* elided_out = nullptr) {
  out->clear();
  if (elided_out != nullptr) *elided_out = 0;
  const auto adj = network.Adjacent(node);
  std::byte scratch[kMaxVarintBytes];
  auto put = [&](std::uint64_t v) {
    const std::size_t n = EncodeVarint(v, scratch);
    out->insert(out->end(), scratch, scratch + n);
  };
  put(adj.size());
  std::int64_t prev_neighbor = static_cast<std::int64_t>(node);
  std::uint64_t prev_edge = 0;
  bool first = true;
  for (const AdjacencyEntry& entry : adj) {
    const Dist euclid = EuclideanDistance(network.NodePosition(node),
                                          network.NodePosition(entry.neighbor));
    const bool euclid_length = entry.length == euclid;
    if (euclid_length && elided_out != nullptr) ++*elided_out;
    const std::int64_t delta =
        static_cast<std::int64_t>(entry.neighbor) - prev_neighbor;
    put((ZigZagEncode(delta) << 1) | (euclid_length ? 1 : 0));
    if (first) {
      put(entry.edge);
    } else {
      MSQ_CHECK(entry.edge > prev_edge);  // Finalize emits ascending ids
      put(entry.edge - prev_edge);
    }
    if (!euclid_length) {
      const std::byte* raw = reinterpret_cast<const std::byte*>(&entry.length);
      out->insert(out->end(), raw, raw + sizeof(double));
    }
    prev_neighbor = static_cast<std::int64_t>(entry.neighbor);
    prev_edge = entry.edge;
    first = false;
  }
}

// Interleaves the low 16 bits of x and y into a Morton (Z-order) key.
std::uint32_t MortonKey(std::uint16_t x, std::uint16_t y) {
  auto spread = [](std::uint32_t v) {
    v &= 0xffff;
    v = (v | (v << 8)) & 0x00ff00ff;
    v = (v | (v << 4)) & 0x0f0f0f0f;
    v = (v | (v << 2)) & 0x33333333;
    v = (v | (v << 1)) & 0x55555555;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

std::uint64_t NextLayoutEpoch() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

GraphPager::GraphPager(const RoadNetwork* network, BufferManager* buffer,
                       GraphPagerOptions options)
    : network_(network),
      buffer_(buffer),
      options_(options),
      layout_epoch_(NextLayoutEpoch()),
      data_epoch_(layout_epoch_) {
  MSQ_CHECK(network != nullptr && buffer != nullptr);
  MSQ_CHECK(network->finalized());
  BuildLayout();
}

void GraphPager::BumpDataEpoch() {
  data_epoch_.store(NextLayoutEpoch(), std::memory_order_release);
}

void GraphPager::BuildLayout() {
  const std::size_t n = network_->node_count();
  directory_.assign(n, Slot{});
  if (n == 0) return;

  std::vector<NodeId> order(n);
  for (NodeId i = 0; i < n; ++i) order[i] = i;
  if (options_.ordering == NodeOrdering::kMorton) {
    // Cluster nodes by Z-order of their coordinates so that spatially close
    // nodes — which a wavefront touches together — share pages.
    const Mbr box = network_->BoundingBox();
    const double span_x = std::max(box.hi_x - box.lo_x, 1e-12);
    const double span_y = std::max(box.hi_y - box.lo_y, 1e-12);
    std::vector<std::uint32_t> key(n);
    for (NodeId i = 0; i < n; ++i) {
      const Point& p = network_->NodePosition(i);
      const auto gx = static_cast<std::uint16_t>(
          std::min(65535.0, (p.x - box.lo_x) / span_x * 65535.0));
      const auto gy = static_cast<std::uint16_t>(
          std::min(65535.0, (p.y - box.lo_y) / span_y * 65535.0));
      key[i] = MortonKey(gx, gy);
    }
    std::sort(order.begin(), order.end(),
              [&](NodeId a, NodeId b) { return key[a] < key[b]; });
  }
  // kAsIs: pack in id order — the dataset builder already placed ids in
  // Hilbert order (RelabelNodes), which beats the Morton sort above.

  const bool csr = options_.format == AdjacencyFormat::kCsr;
  const std::size_t header_bytes = csr ? sizeof(CsrPageHeader) : 0;

  // Pack records first-fit in cluster order. A record never spans pages;
  // road-network degrees are small so records always fit one page. The
  // guard pins the page being filled so its image stays valid across the
  // loop; moving to the next page drops the previous pin.
  PageId current_page = kInvalidPage;
  PageGuard guard;
  std::size_t used = 0;
  CsrPageHeader header;
  std::vector<std::byte> record;
  for (const NodeId node : order) {
    record.clear();
    if (csr) {
      EncodeCsrRecord(*network_, node, &record);
    } else {
      EncodeRowRecord(*network_, node, &record);
    }
    const std::size_t bytes = record.size();
    MSQ_CHECK_MSG(header_bytes + bytes <= kPageSize,
                  "node degree %zu overflows a page",
                  network_->Adjacent(node).size());
    if (current_page == kInvalidPage || used + bytes > kPageSize) {
      guard = ValueOrThrow(buffer_->AllocatePage());
      current_page = guard.id();
      used = header_bytes;
      header = CsrPageHeader{};
      ++page_count_;
      pages_.push_back(current_page);
    }
    directory_[node] = Slot{current_page, static_cast<std::uint16_t>(used),
                            static_cast<std::uint16_t>(bytes)};
    std::memcpy(guard.page()->data.data() + used, record.data(), bytes);
    used += bytes;
    if (csr) {
      // Keep the header current after every append; the pin is the only
      // thing keeping this page image hot, and it moves on the next page.
      ++header.record_count;
      header.used_bytes = static_cast<std::uint32_t>(used);
      std::memcpy(guard.page()->data.data(), &header, sizeof(header));
    }
  }
  guard.Release();
  OkOrThrow(buffer_->FlushAll());
}

Status GraphPager::RefreshEdge(EdgeId edge) {
  MSQ_CHECK(edge < network_->edge_count());
  const RoadNetwork::Edge& e = network_->EdgeAt(edge);
  const bool csr = options_.format == AdjacencyFormat::kCsr;
  const std::size_t header_bytes = csr ? sizeof(CsrPageHeader) : 0;

  struct Placement {
    NodeId node = kInvalidNode;
    std::vector<std::byte> record;
    Slot slot;
    bool relocated = false;
    PageGuard guard;
  };
  Placement targets[2];
  targets[0].node = e.u;
  targets[1].node = e.v;

  // Stage against provisional spill state; members commit only once every
  // page is pinned, so a failure below leaves the layout untouched.
  PageId spill_page = spill_page_;
  std::size_t spill_used = spill_used_;
  std::vector<PageId> new_pages;

  try {
    for (Placement& t : targets) {
      std::size_t elided = 0;
      if (csr) {
        EncodeCsrRecord(*network_, t.node, &t.record, &elided);
      } else {
        EncodeRowRecord(*network_, t.node, &t.record);
      }
      const Slot current = directory_[t.node];
      if (t.record.size() <= current.cap) {
        t.slot = current;
        continue;
      }
      // Only CSR records change size: the row format is fixed per degree
      // and the topology never changes under a weight update.
      MSQ_CHECK(csr);
      // Reserve headroom for every still-elided length so later updates
      // touching this record rewrite in place instead of relocating again.
      const std::size_t cap = std::min(
          t.record.size() + sizeof(double) * elided, kPageSize - header_bytes);
      MSQ_CHECK(t.record.size() <= cap);
      if (spill_page == kInvalidPage || spill_used + cap > kPageSize) {
        PageGuard fresh = ValueOrThrow(buffer_->AllocatePage());
        spill_page = fresh.id();
        spill_used = header_bytes;
        new_pages.push_back(spill_page);
        // Stamp an empty header immediately so the page is format-tagged
        // even if it is evicted before the commit below.
        CsrPageHeader header;
        header.used_bytes = static_cast<std::uint32_t>(spill_used);
        std::memcpy(fresh.page()->data.data(), &header, sizeof(header));
      }
      t.slot = Slot{spill_page, static_cast<std::uint16_t>(spill_used),
                    static_cast<std::uint16_t>(cap)};
      t.relocated = true;
      spill_used += cap;
    }
    // Pin every target page for writing before the first byte moves.
    for (Placement& t : targets) {
      t.guard = ValueOrThrow(buffer_->Fetch(t.slot.page, /*mark_dirty=*/true));
    }
  } catch (const StorageFault& fault) {
    // Nothing was modified; return freshly allocated spill pages (now
    // unpinned) to the free list. A failed free only leaks a slot.
    for (const PageId page : new_pages) (void)buffer_->FreePage(page);
    return fault.status();
  }

  // Commit phase: pure memory writes into pinned dirty pages, no failures.
  // Writeback happens at eviction/flush like every other dirty page; until
  // then the pooled image is the authoritative copy.
  for (Placement& t : targets) {
    std::byte* base = t.guard.page()->data.data();
    std::memcpy(base + t.slot.offset, t.record.data(), t.record.size());
    if (csr) {
      CsrPageHeader header;
      std::memcpy(&header, base, sizeof(header));
      if (t.relocated) ++header.record_count;
      // Relocations extend the used region by their full reservation so
      // future in-place growth stays inside it; in-place rewrites keep it.
      header.used_bytes = std::max<std::uint32_t>(
          header.used_bytes,
          static_cast<std::uint32_t>(t.slot.offset) + t.slot.cap);
      std::memcpy(base, &header, sizeof(header));
    }
    directory_[t.node] = t.slot;
  }
  page_count_ += new_pages.size();
  for (const PageId page : new_pages) pages_.push_back(page);
  spill_page_ = spill_page;
  spill_used_ = spill_used;
  return Status();
}

Status GraphPager::AdjacencyOf(NodeId node,
                               std::vector<AdjacencyEntry>* out) const {
  out->clear();
  MSQ_CHECK(node < directory_.size());
  g_adjacency_reads->Inc();
  const Slot slot = directory_[node];
  MSQ_CHECK(slot.page != kInvalidPage);
  // The guard pins the page only for the duration of this copy-out.
  StatusOr<PageGuard> raw = buffer_->Fetch(slot.page);
  if (!raw.ok()) return raw.status();
  const Status decoded =
      options_.format == AdjacencyFormat::kCsr
          ? DecodeCsr(node, slot, *(*raw).page(), out)
          : DecodeRow(node, slot, *(*raw).page(), out);
  if (!decoded.ok()) out->clear();
  return decoded;
}

Status GraphPager::DecodeRow(NodeId node, Slot slot, const Page& page,
                             std::vector<AdjacencyEntry>* out) const {
  // Defensive decode: the page came from storage, so bound every field
  // against the in-memory network before trusting it. A page that passed
  // the checksum can still be logically stale or misdirected.
  const std::byte* src = page.data.data() + slot.offset;
  std::uint32_t degree;
  std::memcpy(&degree, src, sizeof(degree));
  src += sizeof(degree);
  const std::size_t bytes = RowRecordBytes(degree);
  if (slot.offset + bytes > kPageSize) {
    return Status::Corruption("adjacency record for node " +
                              std::to_string(node) + " overflows its page");
  }
  out->reserve(degree);
  for (std::uint32_t i = 0; i < degree; ++i) {
    AdjacencyEntry entry;
    std::memcpy(&entry.neighbor, src, sizeof(entry.neighbor));
    src += sizeof(entry.neighbor);
    std::memcpy(&entry.edge, src, sizeof(entry.edge));
    src += sizeof(entry.edge);
    std::memcpy(&entry.length, src, sizeof(entry.length));
    src += sizeof(entry.length);
    if (entry.neighbor >= network_->node_count() ||
        entry.edge >= network_->edge_count()) {
      return Status::Corruption("adjacency record for node " +
                                std::to_string(node) +
                                " references out-of-range neighbor/edge");
    }
    out->push_back(entry);
  }
  return Status();
}

Status GraphPager::DecodeCsr(NodeId node, Slot slot, const Page& page,
                             std::vector<AdjacencyEntry>* out) const {
  auto corrupt = [&](const char* what) {
    return Status::Corruption("CSR adjacency record for node " +
                              std::to_string(node) + ": " + what);
  };
  CsrPageHeader header;
  std::memcpy(&header, page.data.data(), sizeof(header));
  if (header.magic != kCsrMagic) return corrupt("bad page magic");
  if (header.version != kCsrVersion) return corrupt("unknown format version");
  if (header.used_bytes > kPageSize || header.used_bytes < sizeof(header)) {
    return corrupt("used_bytes out of range");
  }
  if (slot.offset < sizeof(header) || slot.offset >= header.used_bytes) {
    return corrupt("record offset outside used bytes");
  }
  const std::byte* src = page.data.data() + slot.offset;
  const std::byte* const end = page.data.data() + header.used_bytes;
  std::uint64_t degree;
  if (!DecodeVarint(&src, end, &degree)) return corrupt("truncated degree");
  if (degree > network_->node_count()) return corrupt("degree out of range");
  out->reserve(degree);
  std::int64_t prev_neighbor = static_cast<std::int64_t>(node);
  std::uint64_t prev_edge = 0;
  for (std::uint64_t i = 0; i < degree; ++i) {
    std::uint64_t packed;
    if (!DecodeVarint(&src, end, &packed)) return corrupt("truncated neighbor");
    const bool euclid_length = (packed & 1) != 0;
    const std::int64_t neighbor = prev_neighbor + ZigZagDecode(packed >> 1);
    if (neighbor < 0 ||
        neighbor >= static_cast<std::int64_t>(network_->node_count())) {
      return corrupt("neighbor id out of range");
    }
    std::uint64_t edge_word;
    if (!DecodeVarint(&src, end, &edge_word)) return corrupt("truncated edge");
    const std::uint64_t edge = i == 0 ? edge_word : prev_edge + edge_word;
    if (edge >= network_->edge_count()) return corrupt("edge id out of range");
    AdjacencyEntry entry;
    entry.neighbor = static_cast<NodeId>(neighbor);
    entry.edge = static_cast<EdgeId>(edge);
    if (euclid_length) {
      entry.length = EuclideanDistance(network_->NodePosition(node),
                                       network_->NodePosition(entry.neighbor));
    } else {
      if (src + sizeof(double) > end) return corrupt("truncated length");
      std::memcpy(&entry.length, src, sizeof(double));
      src += sizeof(double);
    }
    // The edge must actually connect this pair — cheap against the
    // in-memory network and catches any decoding drift outright.
    const auto& e = network_->EdgeAt(entry.edge);
    if (!((e.u == node && e.v == entry.neighbor) ||
          (e.v == node && e.u == entry.neighbor))) {
      return corrupt("edge does not connect node to neighbor");
    }
    prev_neighbor = neighbor;
    prev_edge = edge;
    out->push_back(entry);
  }
  return Status();
}

}  // namespace msq
