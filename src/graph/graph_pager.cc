#include "graph/graph_pager.h"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "common/check.h"
#include "obs/metrics.h"

namespace msq {
namespace {

obs::Counter* const g_adjacency_reads = obs::GlobalMetrics().counter(
    obs::metric::kAdjacencyReads);

// Serialized adjacency record: u32 degree, then per neighbor
// (u32 neighbor, u32 edge, double length).
constexpr std::size_t kRecordHeaderBytes = sizeof(std::uint32_t);
constexpr std::size_t kNeighborBytes =
    2 * sizeof(std::uint32_t) + sizeof(double);

std::size_t RecordBytes(std::size_t degree) {
  return kRecordHeaderBytes + degree * kNeighborBytes;
}

// Interleaves the low 16 bits of x and y into a Morton (Z-order) key.
std::uint32_t MortonKey(std::uint16_t x, std::uint16_t y) {
  auto spread = [](std::uint32_t v) {
    v &= 0xffff;
    v = (v | (v << 8)) & 0x00ff00ff;
    v = (v | (v << 4)) & 0x0f0f0f0f;
    v = (v | (v << 2)) & 0x33333333;
    v = (v | (v << 1)) & 0x55555555;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

}  // namespace

GraphPager::GraphPager(const RoadNetwork* network, BufferManager* buffer)
    : network_(network), buffer_(buffer) {
  MSQ_CHECK(network != nullptr && buffer != nullptr);
  MSQ_CHECK(network->finalized());
  BuildLayout();
}

void GraphPager::BuildLayout() {
  const std::size_t n = network_->node_count();
  directory_.assign(n, Slot{});
  if (n == 0) return;

  // Cluster nodes by Z-order of their coordinates so that spatially close
  // nodes — which a wavefront touches together — share pages.
  const Mbr box = network_->BoundingBox();
  const double span_x = std::max(box.hi_x - box.lo_x, 1e-12);
  const double span_y = std::max(box.hi_y - box.lo_y, 1e-12);
  std::vector<NodeId> order(n);
  for (NodeId i = 0; i < n; ++i) order[i] = i;
  std::vector<std::uint32_t> key(n);
  for (NodeId i = 0; i < n; ++i) {
    const Point& p = network_->NodePosition(i);
    const auto gx = static_cast<std::uint16_t>(
        std::min(65535.0, (p.x - box.lo_x) / span_x * 65535.0));
    const auto gy = static_cast<std::uint16_t>(
        std::min(65535.0, (p.y - box.lo_y) / span_y * 65535.0));
    key[i] = MortonKey(gx, gy);
  }
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return key[a] < key[b]; });

  // Pack records first-fit in cluster order. A record never spans pages;
  // road-network degrees are small so records always fit one page. The
  // guard pins the page being filled so its image stays valid across the
  // loop; moving to the next page drops the previous pin.
  PageId current_page = kInvalidPage;
  PageGuard guard;
  std::size_t used = 0;
  for (const NodeId node : order) {
    const std::size_t degree = network_->Adjacent(node).size();
    const std::size_t bytes = RecordBytes(degree);
    MSQ_CHECK_MSG(bytes <= kPageSize, "node degree %zu overflows a page",
                  degree);
    if (current_page == kInvalidPage || used + bytes > kPageSize) {
      guard = ValueOrThrow(buffer_->AllocatePage());
      current_page = guard.id();
      used = 0;
      ++page_count_;
    }
    directory_[node] = Slot{current_page, static_cast<std::uint16_t>(used)};
    std::byte* dst = guard.page()->data.data() + used;
    const auto adj = network_->Adjacent(node);
    const std::uint32_t deg32 = static_cast<std::uint32_t>(degree);
    std::memcpy(dst, &deg32, sizeof(deg32));
    dst += sizeof(deg32);
    for (const AdjacencyEntry& entry : adj) {
      std::memcpy(dst, &entry.neighbor, sizeof(entry.neighbor));
      dst += sizeof(entry.neighbor);
      std::memcpy(dst, &entry.edge, sizeof(entry.edge));
      dst += sizeof(entry.edge);
      std::memcpy(dst, &entry.length, sizeof(entry.length));
      dst += sizeof(entry.length);
    }
    used += bytes;
  }
  guard.Release();
  OkOrThrow(buffer_->FlushAll());
}

Status GraphPager::AdjacencyOf(NodeId node,
                               std::vector<AdjacencyEntry>* out) const {
  out->clear();
  MSQ_CHECK(node < directory_.size());
  g_adjacency_reads->Inc();
  const Slot slot = directory_[node];
  MSQ_CHECK(slot.page != kInvalidPage);
  // The guard pins the page only for the duration of this copy-out.
  StatusOr<PageGuard> raw = buffer_->Fetch(slot.page);
  if (!raw.ok()) return raw.status();
  // Defensive decode: the page came from storage, so bound every field
  // against the in-memory network before trusting it. A page that passed
  // the checksum can still be logically stale or misdirected.
  const std::byte* src = (*raw).page()->data.data() + slot.offset;
  std::uint32_t degree;
  std::memcpy(&degree, src, sizeof(degree));
  src += sizeof(degree);
  const std::size_t bytes = RecordBytes(degree);
  if (slot.offset + bytes > kPageSize) {
    return Status::Corruption("adjacency record for node " +
                              std::to_string(node) + " overflows its page");
  }
  out->reserve(degree);
  for (std::uint32_t i = 0; i < degree; ++i) {
    AdjacencyEntry entry;
    std::memcpy(&entry.neighbor, src, sizeof(entry.neighbor));
    src += sizeof(entry.neighbor);
    std::memcpy(&entry.edge, src, sizeof(entry.edge));
    src += sizeof(entry.edge);
    std::memcpy(&entry.length, src, sizeof(entry.length));
    src += sizeof(entry.length);
    if (entry.neighbor >= network_->node_count() ||
        entry.edge >= network_->edge_count()) {
      out->clear();
      return Status::Corruption("adjacency record for node " +
                                std::to_string(node) +
                                " references out-of-range neighbor/edge");
    }
    out->push_back(entry);
  }
  return Status();
}

}  // namespace msq
