// Disk layout + paged access path for road-network adjacency lists.
//
// Section 6.1 of the paper: "the adjacency lists of the network nodes are
// clustered on the disk to minimize the I/O cost during network distance
// computation". We order nodes along a grid-major (Z-like) space-filling
// ordering of their coordinates, pack adjacency records sequentially into
// 4 KB pages, and serve every adjacency access through a BufferManager —
// so the "network disk pages accessed" metric of Figures 5 and 6 is a real
// buffer-miss count.
//
// Node coordinates (needed for A*'s Euclidean heuristic) stay in memory,
// mirroring the common SNDB setup where the paged "environment data" is the
// adjacency structure; only adjacency access is charged I/O.
#ifndef MSQ_GRAPH_GRAPH_PAGER_H_
#define MSQ_GRAPH_GRAPH_PAGER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/road_network.h"
#include "storage/buffer_manager.h"

namespace msq {

// How adjacency records are assigned to pages. kMorton is the seed
// behavior: the pager sorts nodes by Morton (Z-order) key of their
// coordinates before packing. kAsIs packs in node-id order and trusts the
// dataset builder to have already relabeled node ids in a
// locality-preserving (Hilbert) order — see gen/network_gen.h.
enum class NodeOrdering {
  kMorton,
  kAsIs,
};

// On-page record encoding. kRow is the seed format (u32 degree, then
// fixed 16-byte neighbor triples). kCsr delta-encodes neighbor ids
// (zigzag varints against the node id, then the previous neighbor),
// delta-encodes edge ids (ascending within a list by construction), and
// elides lengths that bit-equal the endpoints' Euclidean distance — a
// CSR-style compressed row that fits 2-4x more nodes per page. Pages
// carry a format-versioned header; the out-of-band CRC page trailer of
// FileDiskManager applies to both formats unchanged.
enum class AdjacencyFormat {
  kRow,
  kCsr,
};

struct GraphPagerOptions {
  NodeOrdering ordering = NodeOrdering::kMorton;
  AdjacencyFormat format = AdjacencyFormat::kRow;
};

class GraphPager {
 public:
  // Lays out `network` (must be finalized) into pages of `buffer`'s disk
  // space. Neither pointer is owned; both must outlive the pager.
  // Layout happens at build time, before faults are armed, so construction
  // aborts on I/O failure rather than returning a status. Default options
  // reproduce the seed layout byte-for-byte.
  GraphPager(const RoadNetwork* network, BufferManager* buffer,
             GraphPagerOptions options = {});

  // Adjacency list of `node`, read through the buffer pool. Fails with the
  // buffer's read error, or kCorruption when the decoded record is
  // inconsistent with the network (degree overflowing the page, neighbor or
  // edge ids out of range). `*out` is cleared on failure.
  Status AdjacencyOf(NodeId node, std::vector<AdjacencyEntry>* out) const;

  const RoadNetwork& network() const { return *network_; }
  BufferManager* buffer() const { return buffer_; }
  const GraphPagerOptions& options() const { return options_; }

  // Number of pages occupied by the adjacency data.
  std::size_t page_count() const { return page_count_; }

  // Process-unique id of this pager's layout, drawn from a global counter
  // at construction. Anything that memoizes traversal state over the
  // paged graph (QueryCache wavefront snapshots, distance memos) stamps
  // entries with this epoch: rebuilding a pager — even over the same
  // network — yields a fresh epoch, so stale snapshots keyed to the old
  // node numbering can never be resumed.
  std::uint64_t layout_epoch() const { return layout_epoch_; }

  // Epoch of the *data* served through this pager. Starts equal to
  // layout_epoch() and advances past every committed mutation (edge-weight
  // update, object churn), drawing from the same process-global counter so
  // epochs never collide across pagers. Cached traversal state stamps
  // entries with this value instead of the layout epoch: a bump makes every
  // pre-mutation snapshot, distance memo, and probe bound unreachable.
  std::uint64_t data_epoch() const {
    return data_epoch_.load(std::memory_order_acquire);
  }

  // Advances data_epoch() to a fresh process-unique value. Called by the
  // mutation orchestrator after (attempting) a mutation; bumping on a
  // failed mutation is deliberate — it only costs cache warmth, while a
  // missed bump after a partial change would serve stale results.
  void BumpDataEpoch();

  // Re-encodes the adjacency records of `edge`'s two endpoints after the
  // network's edge length changed (RoadNetwork::UpdateEdgeLength). The
  // rewrite is all-or-nothing: every needed page is pinned (and any spill
  // page allocated) before the first byte moves, so a read fault or
  // allocation failure surfaces here with the layout untouched. A CSR
  // record that outgrew its build-time slot relocates to a pager-owned
  // spill page sized so later growth of the same record stays in place;
  // row records are fixed-size and always rewrite in place. Same
  // concurrency contract as every mutation: build time or the executor's
  // exclusive write barrier.
  Status RefreshEdge(EdgeId edge);

  // Every page this pager allocated (layout + spill), so the owner can
  // return them to the free list when the pager is rebuilt.
  const std::vector<PageId>& pages() const { return pages_; }

 private:
  struct Slot {
    PageId page = kInvalidPage;
    std::uint16_t offset = 0;  // byte offset of the record inside the page
    std::uint16_t cap = 0;     // bytes reserved for the record at `offset`
  };

  void BuildLayout();
  Status DecodeRow(NodeId node, Slot slot, const Page& page,
                   std::vector<AdjacencyEntry>* out) const;
  Status DecodeCsr(NodeId node, Slot slot, const Page& page,
                   std::vector<AdjacencyEntry>* out) const;

  const RoadNetwork* network_;
  BufferManager* buffer_;
  GraphPagerOptions options_;
  std::uint64_t layout_epoch_;
  std::atomic<std::uint64_t> data_epoch_;
  std::vector<Slot> directory_;  // per node
  std::size_t page_count_ = 0;
  std::vector<PageId> pages_;    // every page allocated by this pager

  // CSR spill area for records that outgrew their build-time slot:
  // the page currently being filled and its next free byte.
  PageId spill_page_ = kInvalidPage;
  std::size_t spill_used_ = 0;
};

}  // namespace msq

#endif  // MSQ_GRAPH_GRAPH_PAGER_H_
