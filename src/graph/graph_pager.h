// Disk layout + paged access path for road-network adjacency lists.
//
// Section 6.1 of the paper: "the adjacency lists of the network nodes are
// clustered on the disk to minimize the I/O cost during network distance
// computation". We order nodes along a grid-major (Z-like) space-filling
// ordering of their coordinates, pack adjacency records sequentially into
// 4 KB pages, and serve every adjacency access through a BufferManager —
// so the "network disk pages accessed" metric of Figures 5 and 6 is a real
// buffer-miss count.
//
// Node coordinates (needed for A*'s Euclidean heuristic) stay in memory,
// mirroring the common SNDB setup where the paged "environment data" is the
// adjacency structure; only adjacency access is charged I/O.
#ifndef MSQ_GRAPH_GRAPH_PAGER_H_
#define MSQ_GRAPH_GRAPH_PAGER_H_

#include <vector>

#include "common/status.h"
#include "graph/road_network.h"
#include "storage/buffer_manager.h"

namespace msq {

class GraphPager {
 public:
  // Lays out `network` (must be finalized) into pages of `buffer`'s disk
  // space. Neither pointer is owned; both must outlive the pager.
  // Layout happens at build time, before faults are armed, so construction
  // aborts on I/O failure rather than returning a status.
  GraphPager(const RoadNetwork* network, BufferManager* buffer);

  // Adjacency list of `node`, read through the buffer pool. Fails with the
  // buffer's read error, or kCorruption when the decoded record is
  // inconsistent with the network (degree overflowing the page, neighbor or
  // edge ids out of range). `*out` is cleared on failure.
  Status AdjacencyOf(NodeId node, std::vector<AdjacencyEntry>* out) const;

  const RoadNetwork& network() const { return *network_; }
  BufferManager* buffer() const { return buffer_; }

  // Number of pages occupied by the adjacency data.
  std::size_t page_count() const { return page_count_; }

 private:
  struct Slot {
    PageId page = kInvalidPage;
    std::uint16_t offset = 0;  // byte offset of the record inside the page
  };

  void BuildLayout();

  const RoadNetwork* network_;
  BufferManager* buffer_;
  std::vector<Slot> directory_;  // per node
  std::size_t page_count_ = 0;
};

}  // namespace msq

#endif  // MSQ_GRAPH_GRAPH_PAGER_H_
