#include "graph/landmarks.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"
#include "common/rng.h"

namespace msq {
namespace {

// Single-source distances on the in-memory adjacency.
std::vector<Dist> Sweep(const RoadNetwork& network, NodeId source) {
  std::vector<Dist> dist(network.node_count(), kInfDist);
  using Item = std::pair<Dist, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, node] = heap.top();
    heap.pop();
    if (d > dist[node]) continue;
    for (const AdjacencyEntry& adj : network.Adjacent(node)) {
      const Dist nd = d + adj.length;
      if (nd < dist[adj.neighbor]) {
        dist[adj.neighbor] = nd;
        heap.emplace(nd, adj.neighbor);
      }
    }
  }
  return dist;
}

}  // namespace

LandmarkIndex::LandmarkIndex(const RoadNetwork* network, std::size_t count,
                             std::uint64_t seed)
    : network_(network) {
  MSQ_CHECK(network != nullptr);
  MSQ_CHECK(network->finalized());
  MSQ_CHECK(network->node_count() > 0);
  count = std::min(count, network->node_count());

  // Farthest-point sampling: start from a random node, then repeatedly
  // take the node maximizing the distance to the chosen set (unreachable
  // nodes excluded — they would produce useless all-infinite columns).
  Rng rng(seed);
  NodeId current =
      static_cast<NodeId>(rng.NextBounded(network->node_count()));
  std::vector<Dist> to_set;  // min distance to any chosen landmark
  for (std::size_t i = 0; i < count; ++i) {
    landmarks_.push_back(current);
    distances_.push_back(Sweep(*network, current));
    const std::vector<Dist>& latest = distances_.back();
    if (i == 0) {
      to_set = latest;
    } else {
      for (NodeId v = 0; v < to_set.size(); ++v) {
        to_set[v] = std::min(to_set[v], latest[v]);
      }
    }
    // Pick the farthest reachable node as the next landmark.
    NodeId best = kInvalidNode;
    Dist best_dist = -1.0;
    for (NodeId v = 0; v < to_set.size(); ++v) {
      if (std::isfinite(to_set[v]) && to_set[v] > best_dist) {
        best_dist = to_set[v];
        best = v;
      }
    }
    if (best == kInvalidNode || best_dist <= 0.0) break;  // exhausted
    current = best;
  }
}

void LandmarkIndex::Resweep() {
  for (std::size_t i = 0; i < landmarks_.size(); ++i) {
    distances_[i] = Sweep(*network_, landmarks_[i]);
  }
}

Dist LandmarkIndex::LandmarkDistance(std::size_t i, NodeId node) const {
  MSQ_CHECK(i < distances_.size());
  MSQ_CHECK(node < distances_[i].size());
  return distances_[i][node];
}

Dist LandmarkIndex::LandmarkDistance(std::size_t i,
                                     const Location& loc) const {
  const RoadNetwork::Edge& e = network_->EdgeAt(loc.edge);
  const auto [du, dv] = network_->EndpointDistances(loc);
  return std::min(LandmarkDistance(i, e.u) + du,
                  LandmarkDistance(i, e.v) + dv);
}

Dist LandmarkIndex::LowerBound(NodeId node, const Location& target) const {
  Dist bound = 0.0;
  for (std::size_t i = 0; i < distances_.size(); ++i) {
    const Dist to_node = distances_[i][node];
    const Dist to_target = LandmarkDistance(i, target);
    if (!std::isfinite(to_node) || !std::isfinite(to_target)) continue;
    bound = std::max(bound, std::abs(to_node - to_target));
  }
  return bound;
}

Dist LandmarkIndex::LowerBound(const Location& a, const Location& b) const {
  Dist bound = 0.0;
  for (std::size_t i = 0; i < distances_.size(); ++i) {
    const Dist da = LandmarkDistance(i, a);
    const Dist db = LandmarkDistance(i, b);
    if (!std::isfinite(da) || !std::isfinite(db)) continue;
    bound = std::max(bound, std::abs(da - db));
  }
  return bound;
}

}  // namespace msq
