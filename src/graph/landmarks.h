// ALT (A*, Landmarks, Triangle inequality) lower bounds.
//
// The paper's plb uses the Euclidean distance as the lower bound that
// seeds and certifies A* — which is loose exactly where the evaluation
// shows EDC/LBC losing ground: high-detour (large δ) networks like the CA
// extract. Landmark bounds fix that: pre-compute exact network distances
// from a few well-spread landmark nodes; by the triangle inequality
//   dN(a, b) >= |dN(l, a) - dN(l, b)|
// for every landmark l, and the max over landmarks (further maxed with the
// Euclidean bound) is a consistent A* heuristic.
//
// This is an *extension* the paper's Theorem 1 deliberately excludes: its
// instance-optimality class contains only algorithms that use "no
// pre-computed distance information". The ablation benchmark
// (bench_ablation_heuristic) quantifies what that restriction costs.
#ifndef MSQ_GRAPH_LANDMARKS_H_
#define MSQ_GRAPH_LANDMARKS_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"

namespace msq {

class LandmarkIndex {
 public:
  // Builds an index with `count` landmarks chosen by farthest-point
  // sampling (the classic "avoid" style spread), each with a full
  // single-source distance array. Preprocessing runs on the in-memory
  // adjacency — it is offline work, not query I/O. `count` is clamped to
  // the node count; `seed` picks the sampling start.
  LandmarkIndex(const RoadNetwork* network, std::size_t count,
                std::uint64_t seed = 1);

  // Recomputes every landmark's distance array against the network's
  // current edge weights, keeping the landmark set. Pointer-stable — the
  // serving path re-sweeps in place after an edge-weight update because
  // Datasets hold raw pointers to this index.
  void Resweep();

  std::size_t landmark_count() const { return landmarks_.size(); }
  NodeId landmark(std::size_t i) const { return landmarks_[i]; }

  // Exact network distance from landmark `i` to `node` (kInfDist when
  // disconnected).
  Dist LandmarkDistance(std::size_t i, NodeId node) const;

  // Exact network distance from landmark `i` to a location on an edge.
  Dist LandmarkDistance(std::size_t i, const Location& loc) const;

  // max_l |d(l, node) - d(l, target)| — a lower bound on dN(node, target).
  // Zero when either side is unreachable from every landmark.
  Dist LowerBound(NodeId node, const Location& target) const;

  // Lower bound between two locations.
  Dist LowerBound(const Location& a, const Location& b) const;

 private:
  const RoadNetwork* network_;
  std::vector<NodeId> landmarks_;
  // distances_[i][v] = dN(landmarks_[i], v).
  std::vector<std::vector<Dist>> distances_;
};

}  // namespace msq

#endif  // MSQ_GRAPH_LANDMARKS_H_
