#include "graph/nn_stream.h"

#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"

namespace msq {
namespace {

obs::Gauge* const g_heap_peak = obs::GlobalMetrics().gauge(
    obs::metric::kHeapPeak);

}  // namespace

NetworkNnStream::NetworkNnStream(const GraphPager* pager,
                                 const SpatialMapping* mapping,
                                 Location source)
    : search_(pager, source), pager_(pager), mapping_(mapping) {
  MSQ_CHECK(mapping != nullptr);
  best_.assign(mapping->object_count(), kInfDist);
  emitted_.assign(mapping->object_count(), 0);

  // Objects sharing the source edge are reachable directly along it.
  OkOrThrow(mapping_->ObjectsOnEdge(source.edge, &scratch_objects_));
  for (const EdgeObject& obj : scratch_objects_) {
    Offer(obj.object, std::abs(obj.dist_u - source.offset));
  }
}

void NetworkNnStream::Offer(ObjectId object, Dist dist) {
  if (emitted_[object] || dist >= best_[object]) return;
  best_[object] = dist;
  heap_.push(HeapItem{dist, object});
}

void NetworkNnStream::ProbeEdge(EdgeId edge, NodeId node, Dist node_dist) {
  scratch_objects_.clear();
  OkOrThrow(mapping_->ObjectsOnEdge(edge, &scratch_objects_));
  if (scratch_objects_.empty()) return;
  const RoadNetwork::Edge& e = mapping_->network().EdgeAt(edge);
  const bool node_is_u = (e.u == node);
  MSQ_DCHECK(node_is_u || e.v == node);
  for (const EdgeObject& obj : scratch_objects_) {
    Offer(obj.object, node_dist + (node_is_u ? obj.dist_u : obj.dist_v));
  }
}

std::optional<NetworkNnStream::Visit> NetworkNnStream::Next() {
  for (;;) {
    // Drop stale heap entries.
    while (!heap_.empty()) {
      const HeapItem& top = heap_.top();
      if (emitted_[top.object] || top.dist > best_[top.object]) {
        heap_.pop();
        continue;
      }
      break;
    }

    // The top object's distance is final once it does not exceed the
    // wavefront radius: any unsettled endpoint has distance >= radius, so
    // no path through it can be shorter.
    if (!heap_.empty() && heap_.top().dist <= search_.Radius()) {
      const HeapItem top = heap_.top();
      heap_.pop();
      emitted_[top.object] = 1;
      // Emission granularity keeps the gauge off the per-offer path.
      g_heap_peak->Update(static_cast<double>(heap_.size()));
      obs::ThreadLocalCounters().UpdateHeap(static_cast<double>(heap_.size()));
      return Visit{top.object, top.dist};
    }

    const auto settled = search_.NextSettled();
    if (!settled.has_value()) {
      // Wavefront exhausted; everything still in the heap is final.
      if (heap_.empty()) return std::nullopt;
      continue;
    }
    // Probe every incident edge from this (now exact) endpoint.
    OkOrThrow(pager_->AdjacencyOf(settled->node, &scratch_adjacency_));
    for (const AdjacencyEntry& adj : scratch_adjacency_) {
      ProbeEdge(adj.edge, settled->node, settled->distance);
    }
  }
}

}  // namespace msq
