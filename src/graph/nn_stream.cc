#include "graph/nn_stream.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/check.h"
#include "obs/metrics.h"

namespace msq {
namespace {

obs::Gauge* const g_heap_peak = obs::GlobalMetrics().gauge(
    obs::metric::kHeapPeak);

}  // namespace

NetworkNnStream::NetworkNnStream(const GraphPager* pager,
                                 const SpatialMapping* mapping,
                                 Location source, const Snapshot* resume)
    : search_(resume != nullptr
                  ? DijkstraSearch(pager, source, resume->search)
                  : DijkstraSearch(pager, source)),
      pager_(pager),
      mapping_(mapping) {
  MSQ_CHECK(mapping != nullptr);
  emitted_.assign(mapping->object_count(), 0);

  if (resume != nullptr) {
    // Resume: the snapshot's per-object estimates already include every
    // offer made while its wavefront grew (source-edge objects included).
    // Re-seed the emission heap from them; expansion continues from the
    // checkpointed frontier only when the radius must grow.
    MSQ_CHECK(resume->object_best.size() == mapping->object_count());
    best_ = resume->object_best;
    heap_.reserve(best_.size());
    for (ObjectId id = 0; id < best_.size(); ++id) {
      if (std::isfinite(best_[id])) heap_.push_back(HeapItem{best_[id], id});
    }
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>());
    return;
  }

  best_.assign(mapping->object_count(), kInfDist);
  // Objects sharing the source edge are reachable directly along it.
  OkOrThrow(mapping_->ObjectsOnEdge(source.edge, &scratch_objects_));
  for (const EdgeObject& obj : scratch_objects_) {
    Offer(obj.object, std::abs(obj.dist_u - source.offset));
  }
}

NetworkNnStream::Snapshot NetworkNnStream::MakeSnapshot() const {
  Snapshot snapshot;
  snapshot.search = search_.MakeCheckpoint();
  snapshot.object_best = best_;
  return snapshot;
}

void NetworkNnStream::HeapPush(HeapItem item) {
  heap_.push_back(item);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

void NetworkNnStream::HeapPop() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
  heap_.pop_back();
}

void NetworkNnStream::Offer(ObjectId object, Dist dist) {
  if (emitted_[object] || dist >= best_[object]) return;
  best_[object] = dist;
  HeapPush(HeapItem{dist, object});
}

void NetworkNnStream::ProbeEdge(EdgeId edge, NodeId node, Dist node_dist) {
  scratch_objects_.clear();
  OkOrThrow(mapping_->ObjectsOnEdge(edge, &scratch_objects_));
  if (scratch_objects_.empty()) return;
  const RoadNetwork::Edge& e = mapping_->network().EdgeAt(edge);
  const bool node_is_u = (e.u == node);
  MSQ_DCHECK(node_is_u || e.v == node);
  for (const EdgeObject& obj : scratch_objects_) {
    Offer(obj.object, node_dist + (node_is_u ? obj.dist_u : obj.dist_v));
  }
}

std::optional<NetworkNnStream::Visit> NetworkNnStream::Next() {
  for (;;) {
    // Drop stale heap entries.
    while (!heap_.empty()) {
      const HeapItem& top = heap_.front();
      if (emitted_[top.object] || top.dist > best_[top.object]) {
        HeapPop();
        continue;
      }
      break;
    }

    // The top object's distance is final once it is strictly inside the
    // wavefront radius: any unsettled endpoint has distance >= radius, so
    // no path through it can be shorter. STRICT < matters: once radius
    // exceeds d, every node with label <= d has settled and therefore
    // every object at distance d has been offered — ties then emit in
    // ascending id, making the whole sequence lexicographic in (dist, id).
    // Emitting at equality (<=) would release an already-offered object
    // ahead of its not-yet-discovered distance twins, an order a resumed
    // stream (which seeds all known objects at once) cannot reproduce.
    if (!heap_.empty() && heap_.front().dist < search_.Radius()) {
      const HeapItem top = heap_.front();
      HeapPop();
      emitted_[top.object] = 1;
      // Emission granularity keeps the gauge off the per-offer path.
      g_heap_peak->Update(static_cast<double>(heap_.size()));
      obs::ThreadLocalCounters().UpdateHeap(static_cast<double>(heap_.size()));
      return Visit{top.object, top.dist};
    }

    const auto settled = search_.NextSettled();
    if (!settled.has_value()) {
      // Wavefront exhausted; everything still in the heap is final.
      if (heap_.empty()) return std::nullopt;
      continue;
    }
    // Probe every incident edge from this (now exact) endpoint.
    OkOrThrow(pager_->AdjacencyOf(settled->node, &scratch_adjacency_));
    for (const AdjacencyEntry& adj : scratch_adjacency_) {
      ProbeEdge(adj.edge, settled->node, settled->distance);
    }
  }
}

}  // namespace msq
