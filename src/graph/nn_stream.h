// Incremental network nearest-neighbor stream from one query point.
//
// CE (Section 4.1) visits the objects around each query point "in the
// ascending order according to their network distance to this query point".
// This stream couples a resumable Dijkstra wavefront with middle-layer
// probes: whenever a node settles, each incident edge is checked in the
// B+-tree middle layer for resident objects, whose distances become exact
// as soon as they drop below the wavefront radius.
//
// A finished (or truncated) stream can be snapshotted — Dijkstra checkpoint
// plus the per-object distance estimates — and a later stream from the same
// source resumed from the snapshot: already-discovered objects re-emit in
// ascending order without touching the graph, and the wavefront resumes
// expansion only when the emission radius must grow past the checkpoint.
// Emission ties are broken by object id, so a resumed stream emits exactly
// the sequence a cold stream would.
#ifndef MSQ_GRAPH_NN_STREAM_H_
#define MSQ_GRAPH_NN_STREAM_H_

#include <optional>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/spatial_mapping.h"

namespace msq {

// Construction and Next() read graph/middle-layer pages and throw
// StorageFault on I/O failure; run inside a query boundary (see
// common/status.h).
class NetworkNnStream {
 public:
  // Checkpoint of one stream: the wavefront plus the best-known distance
  // per object (exact for objects within the settled radius, an upper
  // bound beyond it). Plain data, shareable across threads as an immutable
  // copy. The consumed-emission state is deliberately NOT captured: a
  // resumed stream re-emits from distance zero.
  struct Snapshot {
    DijkstraSearch::Checkpoint search;
    std::vector<Dist> object_best;

    std::size_t bytes() const {
      return search.bytes() + object_best.capacity() * sizeof(Dist) +
             sizeof(Snapshot) - sizeof(DijkstraSearch::Checkpoint);
    }
  };

  // Streams objects of `mapping` by network distance from `source`.
  // Neither pointer is owned. When `resume` is non-null it must have been
  // snapshotted from a stream with the same source over the same network
  // and object set (asserted by size); the new stream copies it and the
  // snapshot may be freed afterwards.
  NetworkNnStream(const GraphPager* pager, const SpatialMapping* mapping,
                  Location source, const Snapshot* resume = nullptr);

  struct Visit {
    ObjectId object;
    Dist distance;  // exact network distance from the source
  };

  // Returns the next-nearest unvisited object, or std::nullopt when every
  // object reachable from the source has been visited. The full emission
  // sequence is lexicographic in (distance, object id): an object emits
  // only once the wavefront radius strictly exceeds its distance, at which
  // point all of its distance twins are guaranteed discovered too.
  std::optional<Visit> Next();

  // Nodes settled by the underlying wavefront so far (total extent —
  // includes a resumed snapshot's settles).
  std::size_t settled_count() const { return search_.settled_count(); }

  // Settles this stream instance paid for itself (excludes the resumed
  // snapshot's), matching the graph.settled_nodes counter window.
  std::size_t fresh_settled_count() const {
    return search_.fresh_settled_count();
  }

  // Snapshot of the current stream state for the cross-query cache.
  Snapshot MakeSnapshot() const;

  const DijkstraSearch& search() const { return search_; }

 private:
  struct HeapItem {
    Dist dist;
    ObjectId object;
    // Distance ties emit in ascending object id — deterministic across
    // cold and resumed streams regardless of heap insertion history.
    bool operator>(const HeapItem& other) const {
      if (dist != other.dist) return dist > other.dist;
      return object > other.object;
    }
  };

  // Offers a candidate distance for `object`.
  void Offer(ObjectId object, Dist dist);
  // Probes `edge` given that endpoint-side distance `node_dist` is exact
  // and the settled node is `node`.
  void ProbeEdge(EdgeId edge, NodeId node, Dist node_dist);
  void HeapPush(HeapItem item);
  void HeapPop();

  DijkstraSearch search_;
  const GraphPager* pager_;
  const SpatialMapping* mapping_;
  std::vector<Dist> best_;
  std::vector<std::uint8_t> emitted_;
  // Min-heap via std::push_heap/pop_heap (vector is directly rebuildable
  // from a snapshot).
  std::vector<HeapItem> heap_;
  std::vector<EdgeObject> scratch_objects_;
  std::vector<AdjacencyEntry> scratch_adjacency_;
};

}  // namespace msq

#endif  // MSQ_GRAPH_NN_STREAM_H_
