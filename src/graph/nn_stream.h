// Incremental network nearest-neighbor stream from one query point.
//
// CE (Section 4.1) visits the objects around each query point "in the
// ascending order according to their network distance to this query point".
// This stream couples a resumable Dijkstra wavefront with middle-layer
// probes: whenever a node settles, each incident edge is checked in the
// B+-tree middle layer for resident objects, whose distances become exact
// as soon as they drop below the wavefront radius.
#ifndef MSQ_GRAPH_NN_STREAM_H_
#define MSQ_GRAPH_NN_STREAM_H_

#include <optional>
#include <queue>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/spatial_mapping.h"

namespace msq {

// Construction and Next() read graph/middle-layer pages and throw
// StorageFault on I/O failure; run inside a query boundary (see
// common/status.h).
class NetworkNnStream {
 public:
  // Streams objects of `mapping` by network distance from `source`.
  // Neither pointer is owned.
  NetworkNnStream(const GraphPager* pager, const SpatialMapping* mapping,
                  Location source);

  struct Visit {
    ObjectId object;
    Dist distance;  // exact network distance from the source
  };

  // Returns the next-nearest unvisited object, or std::nullopt when every
  // object reachable from the source has been visited.
  std::optional<Visit> Next();

  // Nodes settled by the underlying wavefront so far.
  std::size_t settled_count() const { return search_.settled_count(); }

  const DijkstraSearch& search() const { return search_; }

 private:
  struct HeapItem {
    Dist dist;
    ObjectId object;
    bool operator>(const HeapItem& other) const {
      return dist > other.dist;
    }
  };

  // Offers a candidate distance for `object`.
  void Offer(ObjectId object, Dist dist);
  // Probes `edge` given that endpoint-side distance `node_dist` is exact
  // and the settled node is `node`.
  void ProbeEdge(EdgeId edge, NodeId node, Dist node_dist);

  DijkstraSearch search_;
  const GraphPager* pager_;
  const SpatialMapping* mapping_;
  std::vector<Dist> best_;
  std::vector<std::uint8_t> emitted_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>>
      heap_;
  std::vector<EdgeObject> scratch_objects_;
  std::vector<AdjacencyEntry> scratch_adjacency_;
};

}  // namespace msq

#endif  // MSQ_GRAPH_NN_STREAM_H_
