#include "graph/road_network.h"

#include <algorithm>
#include <cstdio>
#include <deque>

#include "common/check.h"

namespace msq {

NodeId RoadNetwork::AddNode(Point position) {
  MSQ_CHECK(!finalized_);
  nodes_.push_back(position);
  return static_cast<NodeId>(nodes_.size() - 1);
}

EdgeId RoadNetwork::AddEdge(NodeId u, NodeId v, Dist length) {
  MSQ_CHECK(!finalized_);
  MSQ_CHECK(u < nodes_.size() && v < nodes_.size());
  if (u == v) return kInvalidEdge;
  const Dist euclid = EuclideanDistance(nodes_[u], nodes_[v]);
  Dist final_length = length;
  if (final_length <= 0.0) {
    final_length = euclid;
  } else if (final_length < euclid) {
    final_length = euclid;
    ++clamped_edges_;
  }
  edges_.push_back(Edge{u, v, final_length});
  return static_cast<EdgeId>(edges_.size() - 1);
}

void RoadNetwork::Finalize() {
  if (finalized_) return;
  std::vector<std::uint32_t> degrees(nodes_.size() + 1, 0);
  for (const Edge& e : edges_) {
    ++degrees[e.u];
    ++degrees[e.v];
  }
  adj_offsets_.assign(nodes_.size() + 1, 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    adj_offsets_[i + 1] = adj_offsets_[i] + degrees[i];
  }
  adj_entries_.resize(adj_offsets_.back());
  std::vector<std::uint32_t> cursor(adj_offsets_.begin(),
                                    adj_offsets_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const Edge& e = edges_[id];
    adj_entries_[cursor[e.u]++] = AdjacencyEntry{e.v, id, e.length};
    adj_entries_[cursor[e.v]++] = AdjacencyEntry{e.u, id, e.length};
  }
  finalized_ = true;
}

Dist RoadNetwork::UpdateEdgeLength(EdgeId id, Dist length) {
  MSQ_CHECK(finalized_);
  MSQ_CHECK(id < edges_.size());
  Edge& e = edges_[id];
  const Dist euclid = EuclideanDistance(nodes_[e.u], nodes_[e.v]);
  Dist final_length = length;
  if (final_length <= 0.0) {
    final_length = euclid;
  } else if (final_length < euclid) {
    final_length = euclid;
    ++clamped_edges_;
  }
  e.length = final_length;
  for (const NodeId endpoint : {e.u, e.v}) {
    for (std::uint32_t i = adj_offsets_[endpoint];
         i < adj_offsets_[endpoint + 1]; ++i) {
      if (adj_entries_[i].edge == id) adj_entries_[i].length = final_length;
    }
  }
  return final_length;
}

const Point& RoadNetwork::NodePosition(NodeId id) const {
  MSQ_CHECK(id < nodes_.size());
  return nodes_[id];
}

const RoadNetwork::Edge& RoadNetwork::EdgeAt(EdgeId id) const {
  MSQ_CHECK(id < edges_.size());
  return edges_[id];
}

Segment RoadNetwork::EdgeSegment(EdgeId id) const {
  const Edge& e = EdgeAt(id);
  return Segment{nodes_[e.u], nodes_[e.v]};
}

Mbr RoadNetwork::EdgeMbr(EdgeId id) const {
  const Edge& e = EdgeAt(id);
  return Mbr::FromSegment(nodes_[e.u], nodes_[e.v]);
}

std::span<const AdjacencyEntry> RoadNetwork::Adjacent(NodeId node) const {
  MSQ_CHECK(finalized_);
  MSQ_CHECK(node < nodes_.size());
  return std::span<const AdjacencyEntry>(
      adj_entries_.data() + adj_offsets_[node],
      adj_offsets_[node + 1] - adj_offsets_[node]);
}

bool RoadNetwork::IsValidLocation(const Location& loc) const {
  if (loc.edge >= edges_.size()) return false;
  return loc.offset >= 0.0 && loc.offset <= edges_[loc.edge].length;
}

Point RoadNetwork::LocationPosition(const Location& loc) const {
  MSQ_CHECK(IsValidLocation(loc));
  const Edge& e = edges_[loc.edge];
  // Edges are rendered as straight segments; for clamped lengths the
  // parameterization scales linearly along the chord.
  if (e.length <= 0.0) return nodes_[e.u];
  return Lerp(nodes_[e.u], nodes_[e.v], loc.offset / e.length);
}

std::pair<Dist, Dist> RoadNetwork::EndpointDistances(
    const Location& loc) const {
  MSQ_CHECK(IsValidLocation(loc));
  const Edge& e = edges_[loc.edge];
  return {loc.offset, e.length - loc.offset};
}

Location RoadNetwork::SnapToEdge(EdgeId edge, const Point& p) const {
  const Edge& e = EdgeAt(edge);
  const Segment seg = EdgeSegment(edge);
  const Dist seg_len = seg.Length();
  Dist offset = 0.0;
  if (seg_len > 0.0) {
    // Scale the chord offset to the (possibly longer) network length.
    offset = seg.ClosestOffset(p) / seg_len * e.length;
  }
  return Location{edge, std::clamp(offset, 0.0, e.length)};
}

Mbr RoadNetwork::BoundingBox() const {
  Mbr box = Mbr::Empty();
  for (const Point& p : nodes_) box.Extend(p);
  return box;
}

std::pair<std::vector<std::uint32_t>, std::uint32_t>
RoadNetwork::ConnectedComponents() const {
  MSQ_CHECK(finalized_);
  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::vector<std::uint32_t> label(nodes_.size(), kUnvisited);
  std::uint32_t components = 0;
  std::deque<NodeId> queue;
  for (NodeId start = 0; start < nodes_.size(); ++start) {
    if (label[start] != kUnvisited) continue;
    const std::uint32_t comp = components++;
    label[start] = comp;
    queue.push_back(start);
    while (!queue.empty()) {
      const NodeId node = queue.front();
      queue.pop_front();
      for (const AdjacencyEntry& adj : Adjacent(node)) {
        if (label[adj.neighbor] == kUnvisited) {
          label[adj.neighbor] = comp;
          queue.push_back(adj.neighbor);
        }
      }
    }
  }
  return {std::move(label), components};
}

bool RoadNetwork::IsConnected() const {
  if (nodes_.empty()) return true;
  return ConnectedComponents().second == 1;
}

std::optional<RoadNetwork> RoadNetwork::LoadFromEdgeListFile(
    const std::string& path, std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  auto fail = [&](const std::string& msg) -> std::optional<RoadNetwork> {
    if (error != nullptr) *error = msg + " in " + path;
    std::fclose(file);
    return std::nullopt;
  };

  char line[256];
  auto next_line = [&]() -> bool {
    while (std::fgets(line, sizeof(line), file) != nullptr) {
      // Skip blank and comment lines.
      const char* s = line;
      while (*s == ' ' || *s == '\t') ++s;
      if (*s == '\n' || *s == '\0' || *s == '#') continue;
      return true;
    }
    return false;
  };

  std::size_t n = 0, m = 0;
  if (!next_line() || std::sscanf(line, "%zu %zu", &n, &m) != 2) {
    return fail("malformed header (expected 'N M')");
  }
  RoadNetwork network;
  for (std::size_t i = 0; i < n; ++i) {
    double x, y;
    if (!next_line() || std::sscanf(line, "%lf %lf", &x, &y) != 2) {
      return fail("malformed node line");
    }
    network.AddNode(Point{x, y});
  }
  for (std::size_t i = 0; i < m; ++i) {
    // Length is optional; a bare "u v" line uses the Euclidean length.
    unsigned long u, v;
    double length = 0.0;
    if (!next_line()) return fail("missing edge line");
    const int fields = std::sscanf(line, "%lu %lu %lf", &u, &v, &length);
    if (fields < 2) return fail("malformed edge line");
    if (fields == 2) length = 0.0;
    if (u >= n || v >= n) return fail("edge endpoint out of range");
    if (u == v) return fail("self-loop edge");
    network.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v), length);
  }
  std::fclose(file);
  network.Finalize();
  return network;
}

bool RoadNetwork::SaveToEdgeListFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::fprintf(file, "%zu %zu\n", nodes_.size(), edges_.size());
  for (const Point& p : nodes_) {
    std::fprintf(file, "%.17g %.17g\n", p.x, p.y);
  }
  for (const Edge& e : edges_) {
    std::fprintf(file, "%u %u %.17g\n", e.u, e.v, e.length);
  }
  std::fclose(file);
  return true;
}

}  // namespace msq
