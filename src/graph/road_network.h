// In-memory road network model: G = (V, E) with planar node coordinates.
//
// Section 3 of the paper: nodes are road junctions, (non-directional) edges
// are road segments; dN is shortest-path distance along edges, dE the
// Euclidean distance. Edge lengths must be >= the Euclidean distance
// between their endpoints so that dE is a valid lower bound for A* (the
// loader clamps violations and reports them).
#ifndef MSQ_GRAPH_ROAD_NETWORK_H_
#define MSQ_GRAPH_ROAD_NETWORK_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "geom/mbr.h"
#include "geom/point.h"
#include "geom/segment.h"

namespace msq {

// A position on the network: an edge plus an arc-length offset from the
// edge's `u` endpoint. Both query points and data objects are Locations —
// the paper places objects "on the edges".
struct Location {
  EdgeId edge = kInvalidEdge;
  Dist offset = 0.0;

  friend bool operator==(const Location& a, const Location& b) {
    return a.edge == b.edge && a.offset == b.offset;
  }
};

// One directed half of an undirected edge, as seen from a node's adjacency
// list.
struct AdjacencyEntry {
  NodeId neighbor = kInvalidNode;
  EdgeId edge = kInvalidEdge;
  Dist length = 0.0;
};

class RoadNetwork {
 public:
  struct Edge {
    NodeId u = kInvalidNode;
    NodeId v = kInvalidNode;
    Dist length = 0.0;
  };

  RoadNetwork() = default;

  // --- construction ---------------------------------------------------

  // Adds a node; returns its id (dense, in insertion order).
  NodeId AddNode(Point position);

  // Adds an undirected edge between existing nodes. `length` <= 0 means
  // "use the Euclidean distance". Self-loops are rejected (returns
  // kInvalidEdge). A length below the endpoint Euclidean distance is
  // clamped up to it (A* admissibility) and counted in
  // clamped_edge_count().
  EdgeId AddEdge(NodeId u, NodeId v, Dist length = 0.0);

  // Builds the CSR adjacency structure. Must be called after the last
  // AddNode/AddEdge and before any query. Idempotent.
  void Finalize();
  bool finalized() const { return finalized_; }

  // --- dynamic updates --------------------------------------------------

  // Reassigns edge `id`'s length (<= 0 means "use the Euclidean distance").
  // Lengths below the endpoint Euclidean distance are clamped up to it —
  // the same A* admissibility rule as AddEdge — and counted in
  // clamped_edge_count(). Both CSR adjacency mirrors are updated; requires
  // Finalize(). Returns the applied length. Derived state (paged layouts,
  // object offsets, landmark tables) belongs to the caller and must be
  // refreshed by the caller.
  Dist UpdateEdgeLength(EdgeId id, Dist length);

  // --- basic accessors --------------------------------------------------

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  std::size_t clamped_edge_count() const { return clamped_edges_; }

  const Point& NodePosition(NodeId id) const;
  const Edge& EdgeAt(EdgeId id) const;
  Segment EdgeSegment(EdgeId id) const;
  Mbr EdgeMbr(EdgeId id) const;

  // Adjacency list of `node` (requires Finalize()).
  std::span<const AdjacencyEntry> Adjacent(NodeId node) const;

  // --- locations --------------------------------------------------------

  // Whether `loc` names an existing edge with offset within [0, length].
  bool IsValidLocation(const Location& loc) const;

  // Planar coordinates of a network location.
  Point LocationPosition(const Location& loc) const;

  // Distances from the location to the edge's two endpoints:
  // (offset from u, length - offset).
  std::pair<Dist, Dist> EndpointDistances(const Location& loc) const;

  // The location on edge `edge` closest (in the plane) to point `p`.
  Location SnapToEdge(EdgeId edge, const Point& p) const;

  // Bounding box of all nodes.
  Mbr BoundingBox() const;

  // --- connectivity -----------------------------------------------------

  // Connected-component label per node (0-based), plus component count.
  std::pair<std::vector<std::uint32_t>, std::uint32_t> ConnectedComponents()
      const;
  bool IsConnected() const;

  // --- persistence --------------------------------------------------

  // Plain-text format: first line "N M"; then N lines "x y"; then M lines
  // "u v length" (length optional). Returns std::nullopt plus a message in
  // *error on malformed input. The result is finalized.
  static std::optional<RoadNetwork> LoadFromEdgeListFile(
      const std::string& path, std::string* error);
  bool SaveToEdgeListFile(const std::string& path) const;

 private:
  std::vector<Point> nodes_;
  std::vector<Edge> edges_;
  std::size_t clamped_edges_ = 0;

  // CSR adjacency, valid after Finalize().
  bool finalized_ = false;
  std::vector<std::uint32_t> adj_offsets_;
  std::vector<AdjacencyEntry> adj_entries_;
};

}  // namespace msq

#endif  // MSQ_GRAPH_ROAD_NETWORK_H_
