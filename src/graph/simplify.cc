#include "graph/simplify.h"

#include <algorithm>

#include "common/check.h"

namespace msq {
namespace {

// One walked chain: the junction endpoints, total length, and the interior
// degree-2 nodes in walk order.
struct Chain {
  NodeId from;
  NodeId to;
  Dist length = 0.0;
  std::vector<NodeId> interior;
  // Cumulative length up to (and including) each interior node.
  std::vector<Dist> interior_offset;
};

}  // namespace

SimplifyResult SimplifyDegree2Chains(const RoadNetwork& input) {
  MSQ_CHECK(input.finalized());
  const std::size_t node_count = input.node_count();

  std::vector<bool> is_junction(node_count, false);
  for (NodeId v = 0; v < node_count; ++v) {
    is_junction[v] = input.Adjacent(v).size() != 2;
  }

  std::vector<bool> edge_visited(input.edge_count(), false);

  // Walks a maximal chain starting at junction `from` through `first`,
  // marking its edges visited.
  auto walk = [&](NodeId from, const AdjacencyEntry& first) {
    Chain chain;
    chain.from = from;
    chain.length = first.length;
    edge_visited[first.edge] = true;
    EdgeId incoming = first.edge;
    NodeId current = first.neighbor;
    while (!is_junction[current]) {
      chain.interior.push_back(current);
      chain.interior_offset.push_back(chain.length);
      const auto adj = input.Adjacent(current);
      MSQ_CHECK(adj.size() == 2);
      const AdjacencyEntry& next =
          adj[0].edge == incoming ? adj[1] : adj[0];
      edge_visited[next.edge] = true;
      chain.length += next.length;
      incoming = next.edge;
      current = next.neighbor;
    }
    chain.to = current;
    return chain;
  };

  // Pure degree-2 cycles have no junction; anchor each at its lowest id.
  // (Detected by scanning for unvisitable edges: both endpoints degree 2.)
  {
    std::vector<bool> cycle_seen(node_count, false);
    for (NodeId v = 0; v < node_count; ++v) {
      if (is_junction[v] || cycle_seen[v]) continue;
      // Trace the cycle containing v.
      bool pure_cycle = true;
      NodeId current = v;
      EdgeId incoming = kInvalidEdge;
      std::vector<NodeId> members;
      do {
        members.push_back(current);
        cycle_seen[current] = true;
        const auto adj = input.Adjacent(current);
        const AdjacencyEntry& next =
            (incoming == kInvalidEdge || adj[0].edge != incoming) ? adj[0]
                                                                  : adj[1];
        incoming = next.edge;
        current = next.neighbor;
        if (is_junction[current]) {
          pure_cycle = false;
          break;
        }
      } while (current != v);
      if (pure_cycle) is_junction[v] = true;
    }
  }

  SimplifyResult result;
  result.node_map.assign(node_count, kInvalidNode);
  for (NodeId v = 0; v < node_count; ++v) {
    if (is_junction[v]) {
      result.node_map[v] = result.network.AddNode(input.NodePosition(v));
    }
  }

  for (NodeId v = 0; v < node_count; ++v) {
    if (!is_junction[v]) continue;
    for (const AdjacencyEntry& adj : input.Adjacent(v)) {
      if (edge_visited[adj.edge]) continue;
      const Chain chain = walk(v, adj);
      const NodeId from = result.node_map[chain.from];
      const NodeId to = result.node_map[chain.to];
      if (from != to) {
        result.network.AddEdge(from, to, chain.length);
        continue;
      }
      // A loop back to the same junction: keep one interior node so the
      // contraction produces two proper edges instead of a self-loop.
      MSQ_CHECK_MSG(!chain.interior.empty(),
                    "self-loop edge in input network");
      const std::size_t mid = chain.interior.size() / 2;
      const NodeId pivot_original = chain.interior[mid];
      NodeId& pivot = result.node_map[pivot_original];
      if (pivot == kInvalidNode) {
        pivot = result.network.AddNode(input.NodePosition(pivot_original));
      }
      const Dist first_part = chain.interior_offset[mid];
      result.network.AddEdge(from, pivot, first_part);
      result.network.AddEdge(pivot, to, chain.length - first_part);
    }
  }

  result.network.Finalize();
  return result;
}

}  // namespace msq
