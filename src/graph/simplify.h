// Topology simplification: contraction of degree-2 polyline chains.
//
// Real road datasets (including the DCW extracts the paper uses) are
// dominated by degree-2 shape points that carry geometry but no routing
// choices. Contracting every maximal chain of degree-2 nodes into a single
// edge whose length is the chain's total length preserves all
// junction-to-junction network distances while shrinking the graph — and
// therefore the wavefront work — substantially.
#ifndef MSQ_GRAPH_SIMPLIFY_H_
#define MSQ_GRAPH_SIMPLIFY_H_

#include <vector>

#include "graph/road_network.h"

namespace msq {

struct SimplifyResult {
  // The contracted network (finalized). Nodes are the junctions of the
  // input (degree != 2), in ascending original-id order; pure degree-2
  // cycles keep one anchor node each.
  RoadNetwork network;
  // For each original node: its id in the simplified network, or
  // kInvalidNode when it was contracted away.
  std::vector<NodeId> node_map;
};

// Contracts all maximal degree-2 chains. The input must be finalized.
SimplifyResult SimplifyDegree2Chains(const RoadNetwork& input);

}  // namespace msq

#endif  // MSQ_GRAPH_SIMPLIFY_H_
