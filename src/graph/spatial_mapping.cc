#include "graph/spatial_mapping.h"

#include <algorithm>

#include "common/check.h"

namespace msq {
namespace {

// B+-tree payload for one middle-layer record.
struct PackedEdgeObject {
  ObjectId object;
  double dist_u;
  double dist_v;
};

BpTree::Key MakeKey(EdgeId edge, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(edge) << 32) | seq;
}

}  // namespace

SpatialMapping::SpatialMapping(const RoadNetwork* network,
                               BufferManager* buffer,
                               const std::vector<Location>& objects)
    : network_(network), locations_(objects), index_(buffer) {
  MSQ_CHECK(network != nullptr);
  positions_.reserve(objects.size());
  for (const Location& loc : objects) {
    MSQ_CHECK_MSG(network->IsValidLocation(loc),
                  "object location (edge %u, offset %f) invalid", loc.edge,
                  loc.offset);
    positions_.push_back(network->LocationPosition(loc));
  }

  // Sort object ids by edge so keys are strictly increasing for BulkLoad.
  std::vector<ObjectId> order(objects.size());
  for (ObjectId i = 0; i < objects.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](ObjectId a, ObjectId b) {
    if (objects[a].edge != objects[b].edge) {
      return objects[a].edge < objects[b].edge;
    }
    return a < b;
  });

  std::vector<BpTree::Item> items;
  items.reserve(objects.size());
  EdgeId current_edge = kInvalidEdge;
  std::uint32_t seq = 0;
  for (const ObjectId id : order) {
    const Location& loc = objects[id];
    if (loc.edge != current_edge) {
      current_edge = loc.edge;
      seq = 0;
    }
    const auto [du, dv] = network->EndpointDistances(loc);
    items.emplace_back(MakeKey(loc.edge, seq++),
                       BpTreeValue::Pack(PackedEdgeObject{id, du, dv}));
  }
  index_.BulkLoad(items);
}

Status SpatialMapping::ObjectsOnEdge(EdgeId edge,
                                     std::vector<EdgeObject>* out) const {
  std::vector<BpTree::Item> items;
  if (Status status =
          index_.ScanRange(MakeKey(edge, 0), MakeKey(edge, 0xffffffffu),
                           &items);
      !status.ok()) {
    return status;
  }
  for (const BpTree::Item& item : items) {
    const auto record = item.second.Unpack<PackedEdgeObject>();
    if (record.object >= locations_.size()) {
      out->clear();
      return Status::Corruption("middle-layer record on edge " +
                                std::to_string(edge) +
                                " references unknown object " +
                                std::to_string(record.object));
    }
    out->push_back(EdgeObject{record.object, record.dist_u, record.dist_v});
  }
  return Status();
}

const Location& SpatialMapping::ObjectLocation(ObjectId id) const {
  MSQ_CHECK(id < locations_.size());
  return locations_[id];
}

Point SpatialMapping::ObjectPosition(ObjectId id) const {
  MSQ_CHECK(id < positions_.size());
  return positions_[id];
}

}  // namespace msq
