#include "graph/spatial_mapping.h"

#include <algorithm>

#include "common/check.h"

namespace msq {
namespace {

// B+-tree payload for one middle-layer record.
struct PackedEdgeObject {
  ObjectId object;
  double dist_u;
  double dist_v;
};

BpTree::Key MakeKey(EdgeId edge, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(edge) << 32) | seq;
}

}  // namespace

SpatialMapping::SpatialMapping(const RoadNetwork* network,
                               BufferManager* buffer,
                               const std::vector<Location>& objects)
    : network_(network),
      locations_(objects),
      live_count_(objects.size()),
      index_(buffer) {
  MSQ_CHECK(network != nullptr);
  positions_.reserve(objects.size());
  for (const Location& loc : objects) {
    MSQ_CHECK_MSG(network->IsValidLocation(loc),
                  "object location (edge %u, offset %f) invalid", loc.edge,
                  loc.offset);
    positions_.push_back(network->LocationPosition(loc));
  }

  // Sort object ids by edge so keys are strictly increasing for BulkLoad.
  std::vector<ObjectId> order(objects.size());
  for (ObjectId i = 0; i < objects.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](ObjectId a, ObjectId b) {
    if (objects[a].edge != objects[b].edge) {
      return objects[a].edge < objects[b].edge;
    }
    return a < b;
  });

  std::vector<BpTree::Item> items;
  items.reserve(objects.size());
  EdgeId current_edge = kInvalidEdge;
  std::uint32_t seq = 0;
  for (const ObjectId id : order) {
    const Location& loc = objects[id];
    if (loc.edge != current_edge) {
      current_edge = loc.edge;
      seq = 0;
    }
    const auto [du, dv] = network->EndpointDistances(loc);
    items.emplace_back(MakeKey(loc.edge, seq++),
                       BpTreeValue::Pack(PackedEdgeObject{id, du, dv}));
  }
  index_.BulkLoad(items);
}

Status SpatialMapping::ObjectsOnEdge(EdgeId edge,
                                     std::vector<EdgeObject>* out) const {
  std::vector<BpTree::Item> items;
  if (Status status =
          index_.ScanRange(MakeKey(edge, 0), MakeKey(edge, 0xffffffffu),
                           &items);
      !status.ok()) {
    return status;
  }
  for (const BpTree::Item& item : items) {
    const auto record = item.second.Unpack<PackedEdgeObject>();
    if (record.object >= locations_.size()) {
      out->clear();
      return Status::Corruption("middle-layer record on edge " +
                                std::to_string(edge) +
                                " references unknown object " +
                                std::to_string(record.object));
    }
    out->push_back(EdgeObject{record.object, record.dist_u, record.dist_v});
  }
  return Status();
}

bool SpatialMapping::IsLive(ObjectId id) const {
  return id < locations_.size() && locations_[id].edge != kInvalidEdge;
}

StatusOr<ObjectId> SpatialMapping::InsertObject(const Location& loc) {
  MSQ_CHECK(network_->IsValidLocation(loc));
  // Next sequence on this edge: one past the highest existing key's low
  // word, so the "duplicate keys stored adjacent" range stays dense and
  // keys are never reused within an edge while its objects live.
  std::vector<BpTree::Item> items;
  if (Status status = index_.ScanRange(
          MakeKey(loc.edge, 0), MakeKey(loc.edge, 0xffffffffu), &items);
      !status.ok()) {
    return status;
  }
  std::uint32_t seq = 0;
  if (!items.empty()) {
    seq = static_cast<std::uint32_t>(items.back().first & 0xffffffffu) + 1;
  }
  const ObjectId id = static_cast<ObjectId>(locations_.size());
  const auto [du, dv] = network_->EndpointDistances(loc);
  try {
    index_.Insert(MakeKey(loc.edge, seq),
                  BpTreeValue::Pack(PackedEdgeObject{id, du, dv}));
  } catch (const StorageFault& fault) {
    return fault.status();
  }
  // The id is allocated only after the tree accepted the record, so a
  // failed insert leaves no half-registered object.
  locations_.push_back(loc);
  positions_.push_back(network_->LocationPosition(loc));
  ++live_count_;
  return id;
}

StatusOr<bool> SpatialMapping::DeleteObject(ObjectId id) {
  if (!IsLive(id)) return false;
  const Location loc = locations_[id];
  std::vector<BpTree::Item> items;
  if (Status status = index_.ScanRange(
          MakeKey(loc.edge, 0), MakeKey(loc.edge, 0xffffffffu), &items);
      !status.ok()) {
    return status;
  }
  for (const BpTree::Item& item : items) {
    if (item.second.Unpack<PackedEdgeObject>().object != id) continue;
    StatusOr<bool> removed = index_.Delete(item.first);
    if (!removed.ok()) return removed.status();
    MSQ_CHECK(*removed);
    locations_[id] = Location{kInvalidEdge, 0.0};
    --live_count_;
    return true;
  }
  return Status::Corruption("object " + std::to_string(id) +
                            " is live but missing from the middle layer");
}

Status SpatialMapping::RefreshEdgeObjects(EdgeId edge, double scale) {
  const Dist new_length = network_->EdgeAt(edge).length;
  // Phase 1 — infallible: rescale the authoritative location table first,
  // so a storage failure below always recovers to the *new* world through
  // RebuildIndex() instead of leaving a half-scaled mix.
  for (Location& loc : locations_) {
    if (loc.edge != edge) continue;
    loc.offset = std::clamp(loc.offset * scale, 0.0, new_length);
  }
  // Phase 2 — fallible: rewrite the middle-layer records in place.
  std::vector<BpTree::Item> items;
  if (Status status = index_.ScanRange(MakeKey(edge, 0),
                                       MakeKey(edge, 0xffffffffu), &items);
      !status.ok()) {
    return status;
  }
  for (const BpTree::Item& item : items) {
    const auto record = item.second.Unpack<PackedEdgeObject>();
    if (record.object >= locations_.size()) {
      return Status::Corruption("middle-layer record on edge " +
                                std::to_string(edge) +
                                " references unknown object " +
                                std::to_string(record.object));
    }
    const Location& loc = locations_[record.object];
    PackedEdgeObject updated_record{record.object, loc.offset,
                                    new_length - loc.offset};
    StatusOr<bool> updated =
        index_.UpdateValue(item.first, BpTreeValue::Pack(updated_record));
    if (!updated.ok()) return updated.status();
    MSQ_CHECK(*updated);
  }
  return Status();
}

Status SpatialMapping::RebuildIndex() {
  std::vector<ObjectId> order;
  order.reserve(live_count_);
  for (ObjectId id = 0; id < locations_.size(); ++id) {
    if (IsLive(id)) order.push_back(id);
  }
  std::sort(order.begin(), order.end(), [&](ObjectId a, ObjectId b) {
    if (locations_[a].edge != locations_[b].edge) {
      return locations_[a].edge < locations_[b].edge;
    }
    return a < b;
  });
  std::vector<BpTree::Item> items;
  items.reserve(order.size());
  EdgeId current_edge = kInvalidEdge;
  std::uint32_t seq = 0;
  for (const ObjectId id : order) {
    const Location& loc = locations_[id];
    if (loc.edge != current_edge) {
      current_edge = loc.edge;
      seq = 0;
    }
    const auto [du, dv] = network_->EndpointDistances(loc);
    items.emplace_back(MakeKey(loc.edge, seq++),
                       BpTreeValue::Pack(PackedEdgeObject{id, du, dv}));
  }
  try {
    index_.BulkLoad(items);
  } catch (const StorageFault& fault) {
    return fault.status();
  }
  return Status();
}

const Location& SpatialMapping::ObjectLocation(ObjectId id) const {
  MSQ_CHECK(id < locations_.size());
  return locations_[id];
}

Point SpatialMapping::ObjectPosition(ObjectId id) const {
  MSQ_CHECK(id < positions_.size());
  return positions_[id];
}

}  // namespace msq
