// The object<->network "middle layer" of Section 3.
//
// "If an object p is on a network edge e between two adjacent nodes v, v',
// the distances d(v,p) and d(v',p) are pre-computed, and the id of e is
// stored in the middle layer with the id of p and the two pre-computed
// distances. This middle layer can be indexed using a B+-tree on edge ids"
// — used by the wavefront algorithms to check each visited edge for
// resident objects without online geometric mapping.
#ifndef MSQ_GRAPH_SPATIAL_MAPPING_H_
#define MSQ_GRAPH_SPATIAL_MAPPING_H_

#include <vector>

#include "common/status.h"
#include "graph/road_network.h"
#include "index/bptree.h"
#include "storage/buffer_manager.h"

namespace msq {

// One middle-layer record: an object resident on some edge with its
// pre-computed distances to the edge's endpoints.
struct EdgeObject {
  ObjectId object = kInvalidObject;
  Dist dist_u = 0.0;  // along-edge distance to the edge's u endpoint
  Dist dist_v = 0.0;  // along-edge distance to the edge's v endpoint
};

class SpatialMapping {
 public:
  // Builds the middle layer for `objects` (Location per object id, indexed
  // by position in the vector). Every location must be valid on `network`.
  // The B+-tree pages live in `buffer`'s disk space.
  SpatialMapping(const RoadNetwork* network, BufferManager* buffer,
                 const std::vector<Location>& objects);

  // Appends all objects resident on `edge` (B+-tree range probe; the probe
  // I/O is counted by the buffer manager). Fails with the underlying read
  // error, or kCorruption when a stored record references an unknown
  // object. `*out` is cleared on failure.
  Status ObjectsOnEdge(EdgeId edge, std::vector<EdgeObject>* out) const;

  std::size_t object_count() const { return locations_.size(); }
  const Location& ObjectLocation(ObjectId id) const;
  Point ObjectPosition(ObjectId id) const;
  const std::vector<Location>& locations() const { return locations_; }

  const RoadNetwork& network() const { return *network_; }

 private:
  const RoadNetwork* network_;
  std::vector<Location> locations_;
  std::vector<Point> positions_;
  BpTree index_;
};

}  // namespace msq

#endif  // MSQ_GRAPH_SPATIAL_MAPPING_H_
