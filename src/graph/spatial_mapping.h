// The object<->network "middle layer" of Section 3.
//
// "If an object p is on a network edge e between two adjacent nodes v, v',
// the distances d(v,p) and d(v',p) are pre-computed, and the id of e is
// stored in the middle layer with the id of p and the two pre-computed
// distances. This middle layer can be indexed using a B+-tree on edge ids"
// — used by the wavefront algorithms to check each visited edge for
// resident objects without online geometric mapping.
#ifndef MSQ_GRAPH_SPATIAL_MAPPING_H_
#define MSQ_GRAPH_SPATIAL_MAPPING_H_

#include <vector>

#include "common/status.h"
#include "graph/road_network.h"
#include "index/bptree.h"
#include "storage/buffer_manager.h"

namespace msq {

// One middle-layer record: an object resident on some edge with its
// pre-computed distances to the edge's endpoints.
struct EdgeObject {
  ObjectId object = kInvalidObject;
  Dist dist_u = 0.0;  // along-edge distance to the edge's u endpoint
  Dist dist_v = 0.0;  // along-edge distance to the edge's v endpoint
};

class SpatialMapping {
 public:
  // Builds the middle layer for `objects` (Location per object id, indexed
  // by position in the vector). Every location must be valid on `network`.
  // The B+-tree pages live in `buffer`'s disk space.
  SpatialMapping(const RoadNetwork* network, BufferManager* buffer,
                 const std::vector<Location>& objects);

  // Appends all objects resident on `edge` (B+-tree range probe; the probe
  // I/O is counted by the buffer manager). Fails with the underlying read
  // error, or kCorruption when a stored record references an unknown
  // object. `*out` is cleared on failure.
  Status ObjectsOnEdge(EdgeId edge, std::vector<EdgeObject>* out) const;

  // Total ids ever allocated, including tombstones — per-object arrays in
  // the algorithms are sized by this, so ids stay stable across churn.
  std::size_t object_count() const { return locations_.size(); }
  // Ids currently resident on the network (excludes tombstones).
  std::size_t live_object_count() const { return live_count_; }
  const Location& ObjectLocation(ObjectId id) const;
  Point ObjectPosition(ObjectId id) const;
  const std::vector<Location>& locations() const { return locations_; }

  const RoadNetwork& network() const { return *network_; }

  // --- dynamic churn ----------------------------------------------------
  //
  // All mutators run at build time or under the executor's exclusive write
  // barrier, never concurrently with readers. On a storage error the
  // in-memory location table stays authoritative; callers recover the
  // B+-tree with RebuildIndex().

  // Adds a new object at `loc` (must be a valid location) and returns its
  // id (always a fresh id, one past the previous object_count()).
  StatusOr<ObjectId> InsertObject(const Location& loc);

  // Tombstones `id`: removes its middle-layer record and parks its
  // location at kInvalidEdge so the id stays allocated (ids are never
  // reused). Returns whether the object existed and was live.
  StatusOr<bool> DeleteObject(ObjectId id);

  // Whether `id` names a live (non-tombstoned) object.
  bool IsLive(ObjectId id) const;

  // Rescales every object on `edge` after its length changed to
  // `scale` times the old length: offsets scale proportionally, so each
  // object keeps its planar position (LocationPosition parameterizes by
  // offset/length) and spatial indexes need no update. Endpoint distances
  // are recomputed against the network's current edge length, which must
  // already be updated.
  Status RefreshEdgeObjects(EdgeId edge, double scale);

  // Bulk-reloads the B+-tree from the live locations. Fault recovery: a
  // storage error mid-mutation can leave the tree behind the authoritative
  // location table, and this restores agreement. The old tree's pages are
  // orphaned — bounded, since recovery only runs after a fault.
  Status RebuildIndex();

 private:
  const RoadNetwork* network_;
  std::vector<Location> locations_;
  std::vector<Point> positions_;
  std::size_t live_count_ = 0;
  BpTree index_;
};

}  // namespace msq

#endif  // MSQ_GRAPH_SPATIAL_MAPPING_H_
