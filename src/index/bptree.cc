#include "index/bptree.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace msq {
namespace {

// Node header: 1-byte leaf flag + 4-byte count; leaves add a 4-byte next
// pointer.
constexpr std::size_t kHeaderBytes = 1 + 4;
constexpr std::size_t kLeafHeaderBytes = kHeaderBytes + 4;
constexpr std::size_t kLeafItemBytes = sizeof(std::uint64_t) + 24;

}  // namespace

std::size_t BpTree::LeafCapacity() {
  return (kPageSize - kLeafHeaderBytes) / kLeafItemBytes;
}

std::size_t BpTree::InternalCapacity() {
  // count keys (8B) + count+1 children (4B): 8c + 4(c+1) <= page - header.
  return (kPageSize - kHeaderBytes - 4) / 12;
}

BpTree::BpTree(BufferManager* buffer) : buffer_(buffer) {
  MSQ_CHECK(buffer != nullptr);
  root_ = NewLeaf(LeafNode{});
}

bool BpTree::IsLeafPage(PageId page) const {
  PageGuard guard = ValueOrThrow(buffer_->Fetch(page));
  PageReader reader(guard.page());
  return reader.Read<std::uint8_t>() != 0;
}

// Read/Write helpers hold the page pin only while (de)serializing — the
// node structs are copies, never views into the pool.
BpTree::LeafNode BpTree::ReadLeaf(PageId page) const {
  PageGuard guard = ValueOrThrow(buffer_->Fetch(page));
  PageReader reader(guard.page());
  const bool is_leaf = reader.Read<std::uint8_t>() != 0;
  // Node flags and counts come from storage, so treat violations as
  // corruption rather than programmer error.
  if (!is_leaf) {
    throw StorageFault(Status::Corruption(
        "b+-tree page " + std::to_string(page) + " is not a leaf"));
  }
  const std::uint32_t count = reader.Read<std::uint32_t>();
  if (count > LeafCapacity()) {
    throw StorageFault(Status::Corruption(
        "b+-tree leaf at page " + std::to_string(page) + " declares " +
        std::to_string(count) + " items"));
  }
  LeafNode node;
  node.next_leaf = reader.Read<std::uint32_t>();
  node.items.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    node.items[i].first = reader.Read<std::uint64_t>();
    node.items[i].second = reader.Read<BpTreeValue>();
  }
  return node;
}

BpTree::InternalNode BpTree::ReadInternal(PageId page) const {
  PageGuard guard = ValueOrThrow(buffer_->Fetch(page));
  PageReader reader(guard.page());
  const bool is_leaf = reader.Read<std::uint8_t>() != 0;
  if (is_leaf) {
    throw StorageFault(Status::Corruption(
        "b+-tree page " + std::to_string(page) + " is not internal"));
  }
  const std::uint32_t count = reader.Read<std::uint32_t>();
  if (count > InternalCapacity()) {
    throw StorageFault(Status::Corruption(
        "b+-tree internal node at page " + std::to_string(page) +
        " declares " + std::to_string(count) + " keys"));
  }
  InternalNode node;
  node.keys.resize(count);
  node.children.resize(count + 1);
  for (std::uint32_t i = 0; i < count; ++i) {
    node.keys[i] = reader.Read<std::uint64_t>();
  }
  for (std::uint32_t i = 0; i <= count; ++i) {
    node.children[i] = reader.Read<std::uint32_t>();
  }
  return node;
}

void BpTree::WriteLeaf(PageId page, const LeafNode& node) {
  MSQ_CHECK(node.items.size() <= LeafCapacity());
  PageGuard guard = ValueOrThrow(buffer_->Fetch(page, /*mark_dirty=*/true));
  PageWriter writer(guard.page());
  writer.Write<std::uint8_t>(1);
  writer.Write<std::uint32_t>(static_cast<std::uint32_t>(node.items.size()));
  writer.Write<std::uint32_t>(node.next_leaf);
  for (const Item& item : node.items) {
    writer.Write<std::uint64_t>(item.first);
    writer.Write<BpTreeValue>(item.second);
  }
}

void BpTree::WriteInternal(PageId page, const InternalNode& node) {
  MSQ_CHECK(node.keys.size() + 1 == node.children.size());
  MSQ_CHECK(node.keys.size() <= InternalCapacity());
  PageGuard guard = ValueOrThrow(buffer_->Fetch(page, /*mark_dirty=*/true));
  PageWriter writer(guard.page());
  writer.Write<std::uint8_t>(0);
  writer.Write<std::uint32_t>(static_cast<std::uint32_t>(node.keys.size()));
  for (const Key key : node.keys) writer.Write<std::uint64_t>(key);
  for (const PageId child : node.children) {
    writer.Write<std::uint32_t>(child);
  }
}

PageId BpTree::NewLeaf(const LeafNode& node) {
  const PageId page_id = ValueOrThrow(buffer_->AllocatePage()).id();
  WriteLeaf(page_id, node);
  return page_id;
}

PageId BpTree::NewInternal(const InternalNode& node) {
  const PageId page_id = ValueOrThrow(buffer_->AllocatePage()).id();
  WriteInternal(page_id, node);
  return page_id;
}

void BpTree::BulkLoad(const std::vector<Item>& items) {
  size_ = items.size();
  for (std::size_t i = 1; i < items.size(); ++i) {
    MSQ_CHECK_MSG(items[i - 1].first < items[i].first,
                  "BulkLoad requires strictly increasing keys");
  }
  if (items.empty()) {
    root_ = NewLeaf(LeafNode{});
    height_ = 1;
    return;
  }

  // Pack leaves left to right, remembering each leaf's smallest key.
  const std::size_t leaf_cap = LeafCapacity();
  std::vector<std::pair<Key, PageId>> level;  // (min key of subtree, page)
  {
    std::vector<LeafNode> leaves;
    for (std::size_t i = 0; i < items.size(); i += leaf_cap) {
      const std::size_t end = std::min(items.size(), i + leaf_cap);
      LeafNode leaf;
      leaf.items.assign(items.begin() + static_cast<std::ptrdiff_t>(i),
                        items.begin() + static_cast<std::ptrdiff_t>(end));
      leaves.push_back(std::move(leaf));
    }
    // Allocate pages first so next_leaf links can be set in one pass.
    std::vector<PageId> pages;
    pages.reserve(leaves.size());
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      pages.push_back(ValueOrThrow(buffer_->AllocatePage()).id());
    }
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      leaves[i].next_leaf =
          (i + 1 < leaves.size()) ? pages[i + 1] : kInvalidPage;
      WriteLeaf(pages[i], leaves[i]);
      level.emplace_back(leaves[i].items.front().first, pages[i]);
    }
  }
  height_ = 1;

  // Build internal levels until one node remains.
  const std::size_t internal_cap = InternalCapacity();
  while (level.size() > 1) {
    std::vector<std::pair<Key, PageId>> next;
    // Fan-in per node: capacity+1 children.
    const std::size_t fanout = internal_cap + 1;
    for (std::size_t i = 0; i < level.size(); i += fanout) {
      const std::size_t end = std::min(level.size(), i + fanout);
      InternalNode node;
      node.children.push_back(level[i].second);
      for (std::size_t j = i + 1; j < end; ++j) {
        node.keys.push_back(level[j].first);
        node.children.push_back(level[j].second);
      }
      next.emplace_back(level[i].first, NewInternal(node));
    }
    level = std::move(next);
    ++height_;
  }
  root_ = level.front().second;
}

PageId BpTree::FindLeaf(Key key) const {
  // lower_bound descent: a leaf split puts the separator at the right
  // sibling's front, but duplicates of it can remain in the LEFT sibling,
  // so the first subtree whose separator is >= key must be searched.
  // Readers compensate for landing one leaf early by following next_leaf.
  PageId page = root_;
  while (!IsLeafPage(page)) {
    const InternalNode node = ReadInternal(page);
    const auto it =
        std::lower_bound(node.keys.begin(), node.keys.end(), key);
    const std::size_t idx =
        static_cast<std::size_t>(it - node.keys.begin());
    page = node.children[idx];
  }
  return page;
}

bool BpTree::InsertRecursive(PageId page, std::uint32_t level_from_leaf,
                             Key key, const BpTreeValue& value, Key* up_key,
                             PageId* up_page) {
  if (level_from_leaf == 0) {
    LeafNode leaf = ReadLeaf(page);
    const auto it = std::upper_bound(
        leaf.items.begin(), leaf.items.end(), key,
        [](Key k, const Item& item) { return k < item.first; });
    leaf.items.insert(it, Item{key, value});
    if (leaf.items.size() <= LeafCapacity()) {
      WriteLeaf(page, leaf);
      return false;
    }
    // Split: right half moves to a new leaf.
    const std::size_t mid = leaf.items.size() / 2;
    LeafNode right;
    right.items.assign(leaf.items.begin() + static_cast<std::ptrdiff_t>(mid),
                       leaf.items.end());
    right.next_leaf = leaf.next_leaf;
    leaf.items.resize(mid);
    const PageId right_page = NewLeaf(right);
    leaf.next_leaf = right_page;
    WriteLeaf(page, leaf);
    *up_key = right.items.front().first;
    *up_page = right_page;
    return true;
  }

  InternalNode node = ReadInternal(page);
  const auto it = std::upper_bound(node.keys.begin(), node.keys.end(), key);
  const std::size_t idx = static_cast<std::size_t>(it - node.keys.begin());
  Key child_key;
  PageId child_page;
  const bool split = InsertRecursive(node.children[idx], level_from_leaf - 1,
                                     key, value, &child_key, &child_page);
  if (!split) return false;
  node.keys.insert(node.keys.begin() + static_cast<std::ptrdiff_t>(idx),
                   child_key);
  node.children.insert(
      node.children.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
      child_page);
  if (node.keys.size() <= InternalCapacity()) {
    WriteInternal(page, node);
    return false;
  }
  // Split internal: middle key moves up.
  const std::size_t mid = node.keys.size() / 2;
  InternalNode right;
  right.keys.assign(node.keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                    node.keys.end());
  right.children.assign(
      node.children.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
      node.children.end());
  *up_key = node.keys[mid];
  node.keys.resize(mid);
  node.children.resize(mid + 1);
  WriteInternal(page, node);
  *up_page = NewInternal(right);
  return true;
}

void BpTree::Insert(Key key, const BpTreeValue& value) {
  Key up_key;
  PageId up_page;
  const bool split =
      InsertRecursive(root_, height_ - 1, key, value, &up_key, &up_page);
  if (split) {
    InternalNode new_root;
    new_root.keys.push_back(up_key);
    new_root.children.push_back(root_);
    new_root.children.push_back(up_page);
    root_ = NewInternal(new_root);
    ++height_;
  }
  ++size_;
}

StatusOr<bool> BpTree::Lookup(Key key, BpTreeValue* value) const {
  try {
    // FindLeaf may land one leaf early (lower_bound descent); follow the
    // leaf chain until an item >= key decides the answer.
    PageId page = FindLeaf(key);
    while (page != kInvalidPage) {
      const LeafNode leaf = ReadLeaf(page);
      for (const Item& item : leaf.items) {
        if (item.first == key) {
          *value = item.second;
          return true;
        }
        if (item.first > key) return false;
      }
      page = leaf.next_leaf;
    }
    return false;
  } catch (const StorageFault& fault) {
    return fault.status();
  }
}

namespace {

// Minimum fill for non-root nodes; borrow-then-merge keeps every node at or
// above this. Bulk-loaded rightmost nodes may start below it — merges still
// fit because no node ever exceeds capacity.
std::size_t LeafMinFill() { return BpTree::LeafCapacity() / 2; }
std::size_t InternalMinFill() { return BpTree::InternalCapacity() / 2; }

}  // namespace

bool BpTree::DeleteInSubtree(PageId page, std::uint32_t level_from_leaf,
                             Key key, bool* underfull,
                             std::vector<PageId>* freed) {
  if (level_from_leaf == 0) {
    LeafNode leaf = ReadLeaf(page);
    const auto it = std::lower_bound(
        leaf.items.begin(), leaf.items.end(), key,
        [](const Item& item, Key k) { return item.first < k; });
    if (it == leaf.items.end() || it->first != key) {
      *underfull = false;
      return false;
    }
    leaf.items.erase(it);
    WriteLeaf(page, leaf);
    *underfull = leaf.items.size() < LeafMinFill();
    return true;
  }
  InternalNode node = ReadInternal(page);
  std::size_t idx = static_cast<std::size_t>(
      std::upper_bound(node.keys.begin(), node.keys.end(), key) -
      node.keys.begin());
  bool deleted = false;
  bool child_underfull = false;
  // upper_bound picks the rightmost candidate subtree. With duplicates a
  // copy equal to the separator can survive in the subtree to its left
  // after the right-side copies were deleted, so walk left across equal
  // separators until a subtree yields the key.
  for (;;) {
    deleted = DeleteInSubtree(node.children[idx], level_from_leaf - 1, key,
                              &child_underfull, freed);
    if (deleted || idx == 0 || node.keys[idx - 1] != key) break;
    --idx;
  }
  if (!deleted) {
    *underfull = false;
    return false;
  }
  if (child_underfull) {
    RebalanceChild(&node, idx, level_from_leaf - 1, freed);
  }
  WriteInternal(page, node);
  *underfull = node.keys.size() < InternalMinFill();
  return true;
}

void BpTree::RebalanceChild(InternalNode* parent, std::size_t child_index,
                            std::uint32_t child_level,
                            std::vector<PageId>* freed) {
  // Pair the underfull child with a sibling: the left one when it exists,
  // else the right one. `left_index` names the left node of the pair.
  const std::size_t left_index =
      child_index > 0 ? child_index - 1 : child_index;
  const std::size_t right_index = left_index + 1;
  MSQ_CHECK(right_index < parent->children.size());
  const PageId left_page = parent->children[left_index];
  const PageId right_page = parent->children[right_index];
  if (child_level == 0) {
    LeafNode left = ReadLeaf(left_page);
    LeafNode right = ReadLeaf(right_page);
    const bool right_is_short = child_index == right_index;
    if (right_is_short && left.items.size() > LeafMinFill()) {
      right.items.insert(right.items.begin(), left.items.back());
      left.items.pop_back();
    } else if (!right_is_short && right.items.size() > LeafMinFill()) {
      left.items.push_back(right.items.front());
      right.items.erase(right.items.begin());
    } else if (left.items.size() + right.items.size() <= LeafCapacity()) {
      // Merge right into left, preserving the leaf chain.
      left.items.insert(left.items.end(), right.items.begin(),
                        right.items.end());
      left.next_leaf = right.next_leaf;
      WriteLeaf(left_page, left);
      parent->keys.erase(parent->keys.begin() +
                         static_cast<std::ptrdiff_t>(left_index));
      parent->children.erase(parent->children.begin() +
                             static_cast<std::ptrdiff_t>(right_index));
      freed->push_back(right_page);
      return;
    }
    // Borrowed (or both siblings too full to merge — possible only with
    // bulk-loaded skew, where the short node is simply left short).
    WriteLeaf(left_page, left);
    WriteLeaf(right_page, right);
    if (!right.items.empty()) {
      parent->keys[left_index] = right.items.front().first;
    }
    return;
  }
  InternalNode left = ReadInternal(left_page);
  InternalNode right = ReadInternal(right_page);
  const bool right_is_short = child_index == right_index;
  if (right_is_short && left.keys.size() > InternalMinFill()) {
    // Rotate through the parent: separator comes down, left's last key up.
    right.keys.insert(right.keys.begin(), parent->keys[left_index]);
    right.children.insert(right.children.begin(), left.children.back());
    parent->keys[left_index] = left.keys.back();
    left.keys.pop_back();
    left.children.pop_back();
  } else if (!right_is_short && right.keys.size() > InternalMinFill()) {
    left.keys.push_back(parent->keys[left_index]);
    left.children.push_back(right.children.front());
    parent->keys[left_index] = right.keys.front();
    right.keys.erase(right.keys.begin());
    right.children.erase(right.children.begin());
  } else if (left.keys.size() + 1 + right.keys.size() <=
             InternalCapacity()) {
    left.keys.push_back(parent->keys[left_index]);
    left.keys.insert(left.keys.end(), right.keys.begin(), right.keys.end());
    left.children.insert(left.children.end(), right.children.begin(),
                         right.children.end());
    WriteInternal(left_page, left);
    parent->keys.erase(parent->keys.begin() +
                       static_cast<std::ptrdiff_t>(left_index));
    parent->children.erase(parent->children.begin() +
                           static_cast<std::ptrdiff_t>(right_index));
    freed->push_back(right_page);
    return;
  }
  WriteInternal(left_page, left);
  WriteInternal(right_page, right);
}

StatusOr<bool> BpTree::Delete(Key key) {
  try {
    bool underfull = false;
    std::vector<PageId> freed;
    const bool deleted =
        DeleteInSubtree(root_, height_ - 1, key, &underfull, &freed);
    if (deleted) {
      // Root collapse: an internal root left with a single child hands the
      // root role down a level.
      while (height_ > 1) {
        const InternalNode root = ReadInternal(root_);
        if (!root.keys.empty()) break;
        freed.push_back(root_);
        root_ = root.children.front();
        --height_;
      }
      --size_;
    }
    // Pages leave the tree before they leave the allocator: every parent
    // update above is already buffered, so recycling cannot be observed
    // through a live pointer.
    for (const PageId page : freed) OkOrThrow(buffer_->FreePage(page));
    return deleted;
  } catch (const StorageFault& fault) {
    return fault.status();
  }
}

StatusOr<bool> BpTree::UpdateValue(Key key, const BpTreeValue& value) {
  try {
    PageId page = FindLeaf(key);
    while (page != kInvalidPage) {
      LeafNode leaf = ReadLeaf(page);
      for (Item& item : leaf.items) {
        if (item.first == key) {
          item.second = value;
          WriteLeaf(page, leaf);
          return true;
        }
        if (item.first > key) return false;
      }
      page = leaf.next_leaf;
    }
    return false;
  } catch (const StorageFault& fault) {
    return fault.status();
  }
}

Status BpTree::ScanRange(Key lo, Key hi, std::vector<Item>* out) const {
  try {
    PageId page = FindLeaf(lo);
    while (page != kInvalidPage) {
      const LeafNode leaf = ReadLeaf(page);
      for (const Item& item : leaf.items) {
        if (item.first < lo) continue;
        if (item.first > hi) return Status();
        out->push_back(item);
      }
      page = leaf.next_leaf;
    }
  } catch (const StorageFault& fault) {
    return fault.status();
  }
  return Status();
}

}  // namespace msq
