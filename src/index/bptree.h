// Disk-paged B+-tree with 64-bit keys and small fixed-size payloads.
//
// The paper (Section 3) stores the object-to-network "middle layer" —
// edge id -> (object id, distance to each edge endpoint) — "indexed using a
// B+-tree on edge ids" so the wavefront can probe each visited edge for
// resident objects cheaply. Keys here are (edge id << 32 | sequence) so all
// objects of one edge form a contiguous key range.
#ifndef MSQ_INDEX_BPTREE_H_
#define MSQ_INDEX_BPTREE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/buffer_manager.h"

namespace msq {

// Opaque fixed-size payload. Callers pack/unpack trivially-copyable records.
struct BpTreeValue {
  std::array<std::byte, 24> bytes{};

  template <typename T>
  static BpTreeValue Pack(const T& record) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) <= sizeof(bytes));
    BpTreeValue v;
    std::memcpy(v.bytes.data(), &record, sizeof(T));
    return v;
  }

  template <typename T>
  T Unpack() const {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) <= sizeof(bytes));
    T record;
    std::memcpy(&record, bytes.data(), sizeof(T));
    return record;
  }
};

class BpTree {
 public:
  using Key = std::uint64_t;
  using Item = std::pair<Key, BpTreeValue>;

  static std::size_t LeafCapacity();
  static std::size_t InternalCapacity();

  // Creates an empty tree whose nodes live in `buffer`'s disk space.
  explicit BpTree(BufferManager* buffer);

  // Replaces the contents with a bottom-up build from `items`, which must be
  // sorted by key (strictly increasing). Build-time operation: throws
  // StorageFault on I/O failure.
  void BulkLoad(const std::vector<Item>& items);

  // Inserts one item. Duplicate keys are allowed; they are stored adjacent
  // and all returned by range scans. Throws StorageFault on I/O failure.
  void Insert(Key key, const BpTreeValue& value);

  // Removes one item with `key` (with duplicates, an arbitrary copy),
  // rebalancing underfull nodes by borrow-then-merge and returning merged
  // pages to the buffer's free list. Returns whether an item was removed;
  // fails with the underlying storage error. Same concurrency contract as
  // Insert: mutations run at build time or under the executor's exclusive
  // write barrier, never concurrently with readers.
  StatusOr<bool> Delete(Key key);

  // Overwrites the payload of the first item with `key` in place (no
  // structural change). Returns whether an item was found.
  StatusOr<bool> UpdateValue(Key key, const BpTreeValue& value);

  // Returns whether some item with `key` exists; fills `*value` with the
  // first one when found. Fails with the underlying read error or
  // kCorruption for a structurally invalid node.
  StatusOr<bool> Lookup(Key key, BpTreeValue* value) const;

  // Appends all items with lo <= key <= hi, in key order. `*out` may hold a
  // prefix of the answer on failure.
  Status ScanRange(Key lo, Key hi, std::vector<Item>* out) const;

  std::size_t size() const { return size_; }
  std::uint32_t height() const { return height_; }

 private:
  struct LeafNode {
    std::vector<Item> items;
    PageId next_leaf = kInvalidPage;
  };
  struct InternalNode {
    // children.size() == keys.size() + 1; subtree children[i] holds keys
    // < keys[i]; children.back() holds keys >= keys.back().
    std::vector<Key> keys;
    std::vector<PageId> children;
  };

  LeafNode ReadLeaf(PageId page) const;
  InternalNode ReadInternal(PageId page) const;
  bool IsLeafPage(PageId page) const;
  void WriteLeaf(PageId page, const LeafNode& node);
  void WriteInternal(PageId page, const InternalNode& node);
  PageId NewLeaf(const LeafNode& node);
  PageId NewInternal(const InternalNode& node);

  // Descends to the leftmost leaf that may contain `key`; duplicates equal
  // to a split separator can sit in the left sibling, so readers continue
  // across next_leaf links from here.
  PageId FindLeaf(Key key) const;

  // Recursive insert; on child split returns true and fills the separator
  // key + new right-sibling page.
  bool InsertRecursive(PageId page, std::uint32_t level_from_leaf, Key key,
                       const BpTreeValue& value, Key* up_key,
                       PageId* up_page);

  // Recursive delete of the first match in the subtree at `page`. Returns
  // whether an item was removed; *underfull reports whether this node fell
  // below its minimum fill, for the parent to rebalance. Merged-away pages
  // are appended to *freed (released by Delete after the parent's page is
  // durable, so a mid-rebalance fault never leaves a live parent pointing
  // at a recycled page).
  bool DeleteInSubtree(PageId page, std::uint32_t level_from_leaf, Key key,
                       bool* underfull, std::vector<PageId>* freed);

  // Borrow-then-merge rebalance of `parent`'s child at `child_index`
  // (`child_level` 0 = leaf). Mutates *parent in memory; the caller writes
  // it back.
  void RebalanceChild(InternalNode* parent, std::size_t child_index,
                      std::uint32_t child_level, std::vector<PageId>* freed);

  BufferManager* buffer_;
  PageId root_;
  std::uint32_t height_ = 1;
  std::size_t size_ = 0;
};

}  // namespace msq

#endif  // MSQ_INDEX_BPTREE_H_
