#include "index/rtree.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace msq {
namespace {

// Serialized sizes: 1-byte leaf flag + 4-byte count header; per entry four
// doubles and one id.
constexpr std::size_t kNodeHeaderBytes = 1 + 4;
constexpr std::size_t kEntryBytes = 4 * sizeof(double) + sizeof(std::uint32_t);

}  // namespace

Mbr RTreeNode::BoundingBox() const {
  Mbr box = Mbr::Empty();
  for (const RTreeEntry& e : entries) box.Extend(e.mbr);
  return box;
}

std::size_t RTree::MaxEntriesPerNode() {
  return (kPageSize - kNodeHeaderBytes) / kEntryBytes;
}

RTree::RTree(BufferManager* buffer) : buffer_(buffer) {
  MSQ_CHECK(buffer != nullptr);
  RTreeNode empty_leaf;
  root_ = WriteNewNode(empty_leaf);
}

RTreeNode RTree::ReadNode(PageId page) const {
  // The guard pins the page only while this copy-out deserializes it.
  PageGuard guard = ValueOrThrow(buffer_->Fetch(page));
  PageReader reader(guard.page());
  RTreeNode node;
  node.is_leaf = reader.Read<std::uint8_t>() != 0;
  const std::uint32_t count = reader.Read<std::uint32_t>();
  if (count > MaxEntriesPerNode()) {
    // Storage-born data: a count that cannot fit the page is corruption,
    // not a programming error.
    throw StorageFault(Status::Corruption(
        "r-tree node at page " + std::to_string(page) +
        " declares " + std::to_string(count) + " entries"));
  }
  node.entries.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RTreeEntry& e = node.entries[i];
    e.mbr.lo_x = reader.Read<double>();
    e.mbr.lo_y = reader.Read<double>();
    e.mbr.hi_x = reader.Read<double>();
    e.mbr.hi_y = reader.Read<double>();
    e.id = reader.Read<std::uint32_t>();
  }
  return node;
}

StatusOr<RTreeNode> RTree::TryReadNode(PageId page) const {
  try {
    return ReadNode(page);
  } catch (const StorageFault& fault) {
    return fault.status();
  }
}

void RTree::WriteNode(PageId page, const RTreeNode& node) {
  MSQ_CHECK(node.entries.size() <= MaxEntriesPerNode());
  PageGuard guard = ValueOrThrow(buffer_->Fetch(page, /*mark_dirty=*/true));
  PageWriter writer(guard.page());
  writer.Write<std::uint8_t>(node.is_leaf ? 1 : 0);
  writer.Write<std::uint32_t>(static_cast<std::uint32_t>(node.entries.size()));
  for (const RTreeEntry& e : node.entries) {
    writer.Write<double>(e.mbr.lo_x);
    writer.Write<double>(e.mbr.lo_y);
    writer.Write<double>(e.mbr.hi_x);
    writer.Write<double>(e.mbr.hi_y);
    writer.Write<std::uint32_t>(e.id);
  }
}

PageId RTree::WriteNewNode(const RTreeNode& node) {
  const PageId page_id = ValueOrThrow(buffer_->AllocatePage()).id();
  WriteNode(page_id, node);
  return page_id;
}

std::size_t RTree::ChooseSubtree(const RTreeNode& node, const Mbr& mbr) {
  MSQ_CHECK(!node.entries.empty());
  std::size_t best = 0;
  double best_enlargement = kInfDist;
  double best_area = kInfDist;
  for (std::size_t i = 0; i < node.entries.size(); ++i) {
    const double enlargement = node.entries[i].mbr.Enlargement(mbr);
    const double area = node.entries[i].mbr.Area();
    if (enlargement < best_enlargement ||
        (enlargement == best_enlargement && area < best_area)) {
      best = i;
      best_enlargement = enlargement;
      best_area = area;
    }
  }
  return best;
}

void RTree::QuadraticSplit(std::vector<RTreeEntry>* entries,
                           std::vector<RTreeEntry>* group_a,
                           std::vector<RTreeEntry>* group_b) {
  MSQ_CHECK(entries->size() >= 2);
  const std::size_t min_fill =
      std::max<std::size_t>(1, MaxEntriesPerNode() * 2 / 5);

  // PickSeeds: pair with the most "dead" area when merged.
  std::size_t seed_a = 0, seed_b = 1;
  double worst = -kInfDist;
  for (std::size_t i = 0; i < entries->size(); ++i) {
    for (std::size_t j = i + 1; j < entries->size(); ++j) {
      Mbr merged = (*entries)[i].mbr;
      merged.Extend((*entries)[j].mbr);
      const double waste =
          merged.Area() - (*entries)[i].mbr.Area() - (*entries)[j].mbr.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  group_a->clear();
  group_b->clear();
  group_a->push_back((*entries)[seed_a]);
  group_b->push_back((*entries)[seed_b]);
  Mbr box_a = (*entries)[seed_a].mbr;
  Mbr box_b = (*entries)[seed_b].mbr;

  std::vector<RTreeEntry> rest;
  for (std::size_t i = 0; i < entries->size(); ++i) {
    if (i != seed_a && i != seed_b) rest.push_back((*entries)[i]);
  }

  while (!rest.empty()) {
    // Force-assign when one group must take everything left to reach the
    // minimum fill.
    if (group_a->size() + rest.size() <= min_fill) {
      for (const RTreeEntry& e : rest) group_a->push_back(e);
      break;
    }
    if (group_b->size() + rest.size() <= min_fill) {
      for (const RTreeEntry& e : rest) group_b->push_back(e);
      break;
    }
    // PickNext: entry with the maximum preference difference.
    std::size_t pick = 0;
    double max_diff = -kInfDist;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      const double da = box_a.Enlargement(rest[i].mbr);
      const double db = box_b.Enlargement(rest[i].mbr);
      const double diff = std::abs(da - db);
      if (diff > max_diff) {
        max_diff = diff;
        pick = i;
      }
    }
    const RTreeEntry chosen = rest[pick];
    rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(pick));
    const double da = box_a.Enlargement(chosen.mbr);
    const double db = box_b.Enlargement(chosen.mbr);
    bool to_a;
    if (da != db) {
      to_a = da < db;
    } else if (box_a.Area() != box_b.Area()) {
      to_a = box_a.Area() < box_b.Area();
    } else {
      to_a = group_a->size() <= group_b->size();
    }
    if (to_a) {
      group_a->push_back(chosen);
      box_a.Extend(chosen.mbr);
    } else {
      group_b->push_back(chosen);
      box_b.Extend(chosen.mbr);
    }
  }
}

bool RTree::InsertRecursive(PageId page, std::uint32_t level_from_leaf,
                            std::uint32_t target_level,
                            const RTreeEntry& entry,
                            RTreeEntry* split_entry, Mbr* updated_mbr) {
  RTreeNode node = ReadNode(page);
  if (level_from_leaf == target_level) {
    MSQ_CHECK(target_level == 0 ? node.is_leaf : !node.is_leaf);
    node.entries.push_back(entry);
  } else {
    MSQ_CHECK(!node.is_leaf);
    const std::size_t child = ChooseSubtree(node, entry.mbr);
    RTreeEntry child_split;
    Mbr child_mbr;
    const bool split = InsertRecursive(node.entries[child].id,
                                       level_from_leaf - 1, target_level,
                                       entry, &child_split, &child_mbr);
    node.entries[child].mbr = child_mbr;
    if (split) node.entries.push_back(child_split);
  }

  if (node.entries.size() <= MaxEntriesPerNode()) {
    WriteNode(page, node);
    *updated_mbr = node.BoundingBox();
    return false;
  }

  std::vector<RTreeEntry> group_a, group_b;
  QuadraticSplit(&node.entries, &group_a, &group_b);
  RTreeNode sibling;
  sibling.is_leaf = node.is_leaf;
  sibling.entries = std::move(group_b);
  node.entries = std::move(group_a);
  WriteNode(page, node);
  const PageId sibling_page = WriteNewNode(sibling);
  *updated_mbr = node.BoundingBox();
  split_entry->mbr = sibling.BoundingBox();
  split_entry->id = sibling_page;
  return true;
}

void RTree::InsertAtLevel(const RTreeEntry& entry,
                          std::uint32_t target_level) {
  MSQ_CHECK(target_level < height_);
  RTreeEntry split;
  Mbr updated;
  const bool did_split = InsertRecursive(root_, height_ - 1, target_level,
                                         entry, &split, &updated);
  if (did_split) {
    RTreeNode new_root;
    new_root.is_leaf = false;
    new_root.entries.push_back(RTreeEntry{updated, root_});
    new_root.entries.push_back(split);
    root_ = WriteNewNode(new_root);
    ++height_;
  }
}

void RTree::Insert(const Mbr& mbr, std::uint32_t id) {
  InsertAtLevel(RTreeEntry{mbr, id}, 0);
  ++size_;
}

bool RTree::DeleteRecursive(PageId page, std::uint32_t level_from_leaf,
                            const Mbr& mbr, std::uint32_t id,
                            std::vector<Orphan>* orphans, bool* empty,
                            Mbr* updated_mbr) {
  RTreeNode node = ReadNode(page);
  const std::size_t min_fill =
      std::max<std::size_t>(1, MaxEntriesPerNode() * 2 / 5);
  *empty = false;
  bool found = false;

  if (node.is_leaf) {
    for (std::size_t i = 0; i < node.entries.size(); ++i) {
      if (node.entries[i].id == id && node.entries[i].mbr == mbr) {
        node.entries.erase(node.entries.begin() +
                           static_cast<std::ptrdiff_t>(i));
        found = true;
        break;
      }
    }
  } else {
    for (std::size_t i = 0; i < node.entries.size() && !found; ++i) {
      if (!node.entries[i].mbr.Contains(mbr)) continue;
      bool child_empty = false;
      Mbr child_mbr;
      found = DeleteRecursive(node.entries[i].id, level_from_leaf - 1, mbr,
                              id, orphans, &child_empty, &child_mbr);
      if (!found) continue;
      if (child_empty) {
        node.entries.erase(node.entries.begin() +
                           static_cast<std::ptrdiff_t>(i));
      } else {
        node.entries[i].mbr = child_mbr;
      }
    }
  }

  if (!found) {
    *updated_mbr = node.BoundingBox();
    return false;
  }

  // Condense: a non-root node that dropped below the minimum fill is
  // dissolved and its entries queued for reinsertion at their level.
  if (page != root_ && node.entries.size() < min_fill) {
    for (const RTreeEntry& e : node.entries) {
      orphans->push_back(Orphan{e, level_from_leaf});
    }
    *empty = true;
    // The page itself is abandoned (no free-space management; see the
    // BulkLoad note about page reuse).
    return true;
  }

  WriteNode(page, node);
  *updated_mbr = node.BoundingBox();
  return true;
}

bool RTree::Delete(const Mbr& mbr, std::uint32_t id) {
  std::vector<Orphan> orphans;
  bool empty = false;
  Mbr updated;
  const bool found =
      DeleteRecursive(root_, height_ - 1, mbr, id, &orphans, &empty, &updated);
  if (!found) return false;
  --size_;

  // Reinsert condensed entries, deepest level first so the tree height is
  // stable while higher-level orphans go back in.
  std::sort(orphans.begin(), orphans.end(),
            [](const Orphan& a, const Orphan& b) { return a.level < b.level; });
  for (const Orphan& orphan : orphans) {
    InsertAtLevel(orphan.entry, orphan.level);
  }

  // Shrink the root while it is an internal node with a single child.
  for (;;) {
    const RTreeNode root = ReadNode(root_);
    if (root.is_leaf || root.entries.size() != 1) break;
    root_ = root.entries[0].id;
    --height_;
  }
  return true;
}

PageId RTree::CowWriteNode(const RTreeNode& node, std::vector<PageId>* fresh) {
  const PageId page_id = ValueOrThrow(buffer_->AllocatePage()).id();
  fresh->push_back(page_id);
  WriteNode(page_id, node);
  return page_id;
}

PageId RTree::CowInsertRecursive(PageId page, std::uint32_t level_from_leaf,
                                 std::uint32_t target_level,
                                 const RTreeEntry& entry, bool* did_split,
                                 RTreeEntry* split_entry, Mbr* updated_mbr,
                                 std::vector<PageId>* fresh,
                                 std::vector<PageId>* replaced) {
  RTreeNode node = ReadNode(page);
  if (level_from_leaf == target_level) {
    MSQ_CHECK(target_level == 0 ? node.is_leaf : !node.is_leaf);
    node.entries.push_back(entry);
  } else {
    MSQ_CHECK(!node.is_leaf);
    const std::size_t child = ChooseSubtree(node, entry.mbr);
    bool child_split = false;
    RTreeEntry child_split_entry;
    Mbr child_mbr;
    const PageId new_child = CowInsertRecursive(
        node.entries[child].id, level_from_leaf - 1, target_level, entry,
        &child_split, &child_split_entry, &child_mbr, fresh, replaced);
    node.entries[child].id = new_child;
    node.entries[child].mbr = child_mbr;
    if (child_split) node.entries.push_back(child_split_entry);
  }
  // The original is dead once the mutation commits; until then it is the
  // live copy and is never written.
  replaced->push_back(page);

  if (node.entries.size() <= MaxEntriesPerNode()) {
    *did_split = false;
    *updated_mbr = node.BoundingBox();
    return CowWriteNode(node, fresh);
  }

  std::vector<RTreeEntry> group_a, group_b;
  QuadraticSplit(&node.entries, &group_a, &group_b);
  RTreeNode sibling;
  sibling.is_leaf = node.is_leaf;
  sibling.entries = std::move(group_b);
  node.entries = std::move(group_a);
  const PageId left_page = CowWriteNode(node, fresh);
  const PageId sibling_page = CowWriteNode(sibling, fresh);
  *did_split = true;
  *updated_mbr = node.BoundingBox();
  split_entry->mbr = sibling.BoundingBox();
  split_entry->id = sibling_page;
  return left_page;
}

void RTree::CowInsertAtLevel(const RTreeEntry& entry,
                             std::uint32_t target_level, PageId* root,
                             std::uint32_t* height,
                             std::vector<PageId>* fresh,
                             std::vector<PageId>* replaced) {
  MSQ_CHECK(target_level < *height);
  bool did_split = false;
  RTreeEntry split;
  Mbr updated;
  *root = CowInsertRecursive(*root, *height - 1, target_level, entry,
                             &did_split, &split, &updated, fresh, replaced);
  if (did_split) {
    RTreeNode grown;
    grown.is_leaf = false;
    grown.entries.push_back(RTreeEntry{updated, *root});
    grown.entries.push_back(split);
    *root = CowWriteNode(grown, fresh);
    ++*height;
  }
}

Status RTree::InsertChecked(const Mbr& mbr, std::uint32_t id) {
  std::vector<PageId> fresh;
  std::vector<PageId> replaced;
  PageId root = root_;
  std::uint32_t height = height_;
  try {
    CowInsertAtLevel(RTreeEntry{mbr, id}, 0, &root, &height, &fresh,
                     &replaced);
  } catch (const StorageFault& fault) {
    // The live tree never saw a write, so dropping the fresh pages restores
    // the exact pre-call state. A failed free merely leaks a slot, so the
    // rollback ignores its status.
    for (const PageId page : fresh) (void)buffer_->FreePage(page);
    return fault.status();
  }
  root_ = root;
  height_ = height;
  ++size_;
  for (const PageId page : replaced) (void)buffer_->FreePage(page);
  return Status();
}

bool RTree::CowDeleteRecursive(PageId page, std::uint32_t level_from_leaf,
                               const Mbr& mbr, std::uint32_t id,
                               std::vector<Orphan>* orphans, bool* empty,
                               Mbr* updated_mbr, PageId* new_page,
                               std::vector<PageId>* fresh,
                               std::vector<PageId>* replaced) {
  RTreeNode node = ReadNode(page);
  const std::size_t min_fill =
      std::max<std::size_t>(1, MaxEntriesPerNode() * 2 / 5);
  *empty = false;
  *new_page = page;
  bool found = false;

  if (node.is_leaf) {
    for (std::size_t i = 0; i < node.entries.size(); ++i) {
      if (node.entries[i].id == id && node.entries[i].mbr == mbr) {
        node.entries.erase(node.entries.begin() +
                           static_cast<std::ptrdiff_t>(i));
        found = true;
        break;
      }
    }
  } else {
    for (std::size_t i = 0; i < node.entries.size() && !found; ++i) {
      if (!node.entries[i].mbr.Contains(mbr)) continue;
      bool child_empty = false;
      Mbr child_mbr;
      PageId child_page = node.entries[i].id;
      found = CowDeleteRecursive(node.entries[i].id, level_from_leaf - 1,
                                 mbr, id, orphans, &child_empty, &child_mbr,
                                 &child_page, fresh, replaced);
      if (!found) continue;
      if (child_empty) {
        node.entries.erase(node.entries.begin() +
                           static_cast<std::ptrdiff_t>(i));
      } else {
        node.entries[i].id = child_page;
        node.entries[i].mbr = child_mbr;
      }
    }
  }

  if (!found) {
    *updated_mbr = node.BoundingBox();
    return false;
  }
  replaced->push_back(page);

  if (page != root_ && node.entries.size() < min_fill) {
    for (const RTreeEntry& e : node.entries) {
      orphans->push_back(Orphan{e, level_from_leaf});
    }
    *empty = true;
    return true;
  }

  *updated_mbr = node.BoundingBox();
  *new_page = CowWriteNode(node, fresh);
  return true;
}

StatusOr<bool> RTree::DeleteChecked(const Mbr& mbr, std::uint32_t id) {
  std::vector<PageId> fresh;
  std::vector<PageId> replaced;
  PageId root = root_;
  std::uint32_t height = height_;
  try {
    std::vector<Orphan> orphans;
    bool empty = false;
    Mbr updated;
    PageId new_root = root_;
    const bool found =
        CowDeleteRecursive(root_, height_ - 1, mbr, id, &orphans, &empty,
                           &updated, &new_root, &fresh, &replaced);
    if (!found) {
      // Pure read phase: nothing was allocated or replaced.
      MSQ_CHECK(fresh.empty() && replaced.empty());
      return false;
    }
    root = new_root;

    // Reinsert condensed entries against the provisional root, deepest
    // level first, exactly like the unchecked Delete.
    std::sort(orphans.begin(), orphans.end(),
              [](const Orphan& a, const Orphan& b) { return a.level < b.level; });
    for (const Orphan& orphan : orphans) {
      CowInsertAtLevel(orphan.entry, orphan.level, &root, &height, &fresh,
                       &replaced);
    }

    // Shrink the provisional root while it is a single-child internal node.
    // The abandoned page is dead once we commit, whether it was freshly
    // written this call or an original the delete path never touched.
    for (;;) {
      const RTreeNode top = ReadNode(root);
      if (top.is_leaf || top.entries.size() != 1) break;
      replaced.push_back(root);
      root = top.entries[0].id;
      --height;
    }
  } catch (const StorageFault& fault) {
    for (const PageId page : fresh) (void)buffer_->FreePage(page);
    return fault.status();
  }
  root_ = root;
  height_ = height;
  --size_;
  for (const PageId page : replaced) (void)buffer_->FreePage(page);
  return true;
}

Status RTree::KnnQuery(const Point& query, std::size_t k,
                       std::vector<std::uint32_t>* out) const {
  try {
    RTreeNnBrowser browser(this, query);
    for (std::size_t i = 0; i < k; ++i) {
      const auto result = browser.Next();
      if (!result.found) break;
      out->push_back(result.id);
    }
  } catch (const StorageFault& fault) {
    return fault.status();
  }
  return Status();
}

void RTree::BulkLoad(std::vector<RTreeEntry> items) {
  size_ = items.size();
  if (items.empty()) {
    RTreeNode empty_leaf;
    root_ = WriteNewNode(empty_leaf);
    height_ = 1;
    return;
  }

  const std::size_t cap = MaxEntriesPerNode();
  bool leaf_level = true;
  std::uint32_t levels = 0;

  // Repeatedly pack the current level with Sort-Tile-Recursive until a
  // single node remains.
  while (true) {
    ++levels;
    const std::size_t n = items.size();
    const std::size_t node_count = (n + cap - 1) / cap;
    if (node_count == 1) {
      RTreeNode root;
      root.is_leaf = leaf_level;
      root.entries = std::move(items);
      root_ = WriteNewNode(root);
      height_ = levels;
      return;
    }

    const std::size_t slab_count = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(node_count))));
    const std::size_t slab_size =
        ((node_count + slab_count - 1) / slab_count) * cap;

    std::sort(items.begin(), items.end(),
              [](const RTreeEntry& a, const RTreeEntry& b) {
                return a.mbr.Center().x < b.mbr.Center().x;
              });

    std::vector<RTreeEntry> next_level;
    for (std::size_t slab_start = 0; slab_start < n; slab_start += slab_size) {
      const std::size_t slab_end = std::min(n, slab_start + slab_size);
      std::sort(items.begin() + static_cast<std::ptrdiff_t>(slab_start),
                items.begin() + static_cast<std::ptrdiff_t>(slab_end),
                [](const RTreeEntry& a, const RTreeEntry& b) {
                  return a.mbr.Center().y < b.mbr.Center().y;
                });
      for (std::size_t i = slab_start; i < slab_end; i += cap) {
        const std::size_t end = std::min(slab_end, i + cap);
        RTreeNode node;
        node.is_leaf = leaf_level;
        node.entries.assign(
            items.begin() + static_cast<std::ptrdiff_t>(i),
            items.begin() + static_cast<std::ptrdiff_t>(end));
        const PageId page = WriteNewNode(node);
        next_level.push_back(RTreeEntry{node.BoundingBox(), page});
      }
    }
    items = std::move(next_level);
    leaf_level = false;
  }
}

Status RTree::WindowQuery(const Mbr& window,
                          std::vector<std::uint32_t>* out) const {
  std::vector<RTreeEntry> entries;
  if (Status status = WindowQueryEntries(window, &entries); !status.ok()) {
    return status;
  }
  for (const RTreeEntry& e : entries) out->push_back(e.id);
  return Status();
}

Status RTree::WindowQueryEntries(const Mbr& window,
                                 std::vector<RTreeEntry>* out) const {
  try {
    std::vector<PageId> stack = {root_};
    while (!stack.empty()) {
      const PageId page = stack.back();
      stack.pop_back();
      const RTreeNode node = ReadNode(page);
      for (const RTreeEntry& e : node.entries) {
        if (!e.mbr.Intersects(window)) continue;
        if (node.is_leaf) {
          out->push_back(e);
        } else {
          stack.push_back(e.id);
        }
      }
    }
  } catch (const StorageFault& fault) {
    return fault.status();
  }
  return Status();
}

Status RTree::ForEachEntry(
    const std::function<void(const RTreeEntry&)>& fn) const {
  try {
    std::vector<PageId> stack = {root_};
    while (!stack.empty()) {
      const PageId page = stack.back();
      stack.pop_back();
      const RTreeNode node = ReadNode(page);
      for (const RTreeEntry& e : node.entries) {
        if (node.is_leaf) {
          fn(e);
        } else {
          stack.push_back(e.id);
        }
      }
    }
  } catch (const StorageFault& fault) {
    return fault.status();
  }
  return Status();
}

RTreeNnBrowser::RTreeNnBrowser(const RTree* tree, Point query,
                               PrunePredicate prune)
    : tree_(tree), query_(query), prune_(std::move(prune)) {
  EnqueueNode(tree_->root_page());
}

void RTreeNnBrowser::EnqueueNode(PageId page) {
  const RTreeNode node = tree_->ReadNode(page);
  for (const RTreeEntry& e : node.entries) {
    if (prune_ && prune_(e, node.is_leaf)) continue;
    QueueItem item;
    item.dist = e.mbr.MinDist(query_);
    item.is_node = !node.is_leaf;
    item.page = node.is_leaf ? kInvalidPage : e.id;
    item.entry = e;
    queue_.push(item);
  }
}

RTreeNnBrowser::Result RTreeNnBrowser::Next() {
  while (!queue_.empty()) {
    const QueueItem top = queue_.top();
    queue_.pop();
    // Re-check the prune predicate at pop time: the caller's pruning state
    // (e.g. the set of known skyline points in LBC) may have grown since the
    // entry was enqueued.
    if (prune_ && prune_(top.entry, !top.is_node)) continue;
    if (top.is_node) {
      EnqueueNode(top.page);
      continue;
    }
    Result result;
    result.found = true;
    result.id = top.entry.id;
    result.location = top.entry.mbr.Center();
    result.distance = top.dist;
    return result;
  }
  return Result{};
}

Dist RTreeNnBrowser::PeekLowerBound() const {
  if (queue_.empty()) return kInfDist;
  return queue_.top().dist;
}

}  // namespace msq
