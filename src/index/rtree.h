// Disk-paged R-tree over 2-D rectangles/points.
//
// Used three ways in the reproduction, mirroring Section 6.1 of the paper:
//   * "The edges are indexed by an R-tree on edge MBRs" — object generation
//     and spatial location mapping traverse it;
//   * "The objects are also indexed by an R-tree" — EDC step 1/3 and LBC
//     step 1.1 run Euclidean skyline / NN / window queries over it;
//   * the Euclidean multi-source skyline browser (euclid/bbs) walks its
//     nodes directly with aggregate mindist keys.
//
// One node per 4 KB page; all node reads go through a BufferManager so
// index I/O is measured. Construction supports both one-at-a-time Guttman
// insertion (quadratic split) and STR bulk loading.
#ifndef MSQ_INDEX_RTREE_H_
#define MSQ_INDEX_RTREE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "geom/mbr.h"
#include "geom/point.h"
#include "storage/buffer_manager.h"

namespace msq {

// One slot of an R-tree node: a rectangle plus either a child page id
// (internal node) or a user object id (leaf node).
struct RTreeEntry {
  Mbr mbr;
  std::uint32_t id = 0;
};

// Decoded node image. Nodes are value-decoded out of the buffer pool so
// pool evictions cannot invalidate a traversal in progress.
struct RTreeNode {
  bool is_leaf = true;
  std::vector<RTreeEntry> entries;

  Mbr BoundingBox() const;
};

class RTree {
 public:
  // Maximum entries per node such that a node serializes into one page.
  static std::size_t MaxEntriesPerNode();

  // Creates an empty tree whose nodes live in `buffer`'s disk space. The
  // tree does not own the buffer manager.
  explicit RTree(BufferManager* buffer);

  // Inserts one rectangle (Guttman insert, quadratic split). The throwing
  // construction paths (Insert/Delete/BulkLoad) run at build time, before
  // faults are armed; runtime mutations go through the checked variants
  // below, which tolerate armed faults.
  void Insert(const Mbr& mbr, std::uint32_t id);

  // Removes the entry with this exact (mbr, id) pair (Guttman delete with
  // tree condensation and orphan reinsertion). Returns whether it existed.
  bool Delete(const Mbr& mbr, std::uint32_t id);

  // Fault-safe mutations for the dynamic-world path. The checked variants
  // are copy-on-write: every modified node is written to a freshly
  // allocated page and the in-memory root swings only after every write
  // succeeded, so an injected fault mid-split surfaces as a storage error
  // while the tree stays byte-identical to its pre-call state (the fresh
  // pages go back to the free list). On success the replaced pages are
  // freed. Mutations run at build time or under the executor's exclusive
  // write barrier, never concurrently with readers.
  Status InsertChecked(const Mbr& mbr, std::uint32_t id);

  // Checked Delete. Returns whether the entry existed; on error the tree is
  // unchanged and the entry (if present) is still present.
  StatusOr<bool> DeleteChecked(const Mbr& mbr, std::uint32_t id);

  // Appends the ids of the k nearest entries to `query` (by MBR MinDist;
  // exact distance for point entries), nearest first. Fewer than k when
  // the tree is smaller. Fails with the underlying read error; `*out`
  // may hold a prefix of the answer on failure.
  Status KnnQuery(const Point& query, std::size_t k,
                  std::vector<std::uint32_t>* out) const;

  // Replaces the tree contents with an STR bulk load of `items`.
  void BulkLoad(std::vector<RTreeEntry> items);

  // Appends the ids of all entries whose MBR intersects `window`.
  Status WindowQuery(const Mbr& window,
                     std::vector<std::uint32_t>* out) const;

  // Appends (id, mbr) of all entries whose MBR intersects `window`.
  Status WindowQueryEntries(const Mbr& window,
                            std::vector<RTreeEntry>* out) const;

  // Visits every leaf entry in an arbitrary order.
  Status ForEachEntry(
      const std::function<void(const RTreeEntry&)>& fn) const;

  std::size_t size() const { return size_; }
  std::uint32_t height() const { return height_; }
  PageId root_page() const { return root_; }

  // Reads and decodes the node stored at `page` (public so skyline
  // browsers can run their own best-first traversals). Throws StorageFault
  // on read failure or when the stored node is structurally invalid — deep
  // traversal loops funnel errors to the query boundary this way (see
  // common/status.h).
  RTreeNode ReadNode(PageId page) const;

  // Non-throwing variant of ReadNode for callers outside the funnel.
  StatusOr<RTreeNode> TryReadNode(PageId page) const;

 private:
  friend class RTreeNnBrowser;

  PageId WriteNewNode(const RTreeNode& node);
  void WriteNode(PageId page, const RTreeNode& node);

  // Recursive insert of an entry destined for nodes at `target_level`
  // (0 = leaf; reinsertion of condensed subtrees uses higher levels).
  // Returns true and fills `*split_entry` when the child at `page` split
  // and the caller must add the new sibling.
  bool InsertRecursive(PageId page, std::uint32_t level_from_leaf,
                       std::uint32_t target_level, const RTreeEntry& entry,
                       RTreeEntry* split_entry, Mbr* updated_mbr);

  // Inserts `entry` at `target_level`, handling root splits.
  void InsertAtLevel(const RTreeEntry& entry, std::uint32_t target_level);

  // An entry orphaned by tree condensation, remembered with the level it
  // must be reinserted at.
  struct Orphan {
    RTreeEntry entry;
    std::uint32_t level;
  };

  // Recursive delete. Returns true when the entry was found. Sets
  // `*empty` when the node at `page` dropped below the minimum fill and
  // its surviving entries were moved into `orphans`.
  bool DeleteRecursive(PageId page, std::uint32_t level_from_leaf,
                       const Mbr& mbr, std::uint32_t id,
                       std::vector<Orphan>* orphans, bool* empty,
                       Mbr* updated_mbr);

  // Copy-on-write page writer for the checked mutations: allocates the
  // page and records it in *fresh before writing, so a fault mid-write
  // still leaves the page on the rollback list.
  PageId CowWriteNode(const RTreeNode& node, std::vector<PageId>* fresh);

  // Copy-on-write InsertRecursive: rewrites the root-to-target path into
  // fresh pages and returns the fresh subtree root. Replaced originals are
  // recorded in *replaced; they stay untouched until the caller commits.
  PageId CowInsertRecursive(PageId page, std::uint32_t level_from_leaf,
                            std::uint32_t target_level,
                            const RTreeEntry& entry, bool* did_split,
                            RTreeEntry* split_entry, Mbr* updated_mbr,
                            std::vector<PageId>* fresh,
                            std::vector<PageId>* replaced);

  // Copy-on-write InsertAtLevel against a provisional *root / *height
  // (orphan reinsertion during DeleteChecked runs on the uncommitted tree).
  void CowInsertAtLevel(const RTreeEntry& entry, std::uint32_t target_level,
                        PageId* root, std::uint32_t* height,
                        std::vector<PageId>* fresh,
                        std::vector<PageId>* replaced);

  // Copy-on-write DeleteRecursive: surviving modified nodes are rewritten
  // to fresh pages (*new_page); dissolved and replaced originals land in
  // *replaced.
  bool CowDeleteRecursive(PageId page, std::uint32_t level_from_leaf,
                          const Mbr& mbr, std::uint32_t id,
                          std::vector<Orphan>* orphans, bool* empty,
                          Mbr* updated_mbr, PageId* new_page,
                          std::vector<PageId>* fresh,
                          std::vector<PageId>* replaced);

  // Quadratic split of an overflowing entry set into two groups.
  static void QuadraticSplit(std::vector<RTreeEntry>* entries,
                             std::vector<RTreeEntry>* group_a,
                             std::vector<RTreeEntry>* group_b);

  // Child index with minimal enlargement (area tie-break).
  static std::size_t ChooseSubtree(const RTreeNode& node, const Mbr& mbr);

  BufferManager* buffer_;
  PageId root_;
  std::uint32_t height_ = 1;  // levels including the leaf level
  std::size_t size_ = 0;
};

// Incremental best-first nearest-neighbor browser (Hjaltason & Samet
// "distance browsing"). Yields leaf entries in non-decreasing Euclidean
// distance from the query point. An optional prune predicate skips entries
// (and whole subtrees) — LBC step 1.1 passes "is this region dominated by a
// known network skyline point".
class RTreeNnBrowser {
 public:
  // Decides whether an entry (and, for internal entries, its whole subtree)
  // should be skipped. `is_leaf_entry` distinguishes data entries (id is an
  // object id, mbr degenerate) from subtree entries.
  using PrunePredicate =
      std::function<bool(const RTreeEntry& entry, bool is_leaf_entry)>;

  // `prune` may be empty. The predicate is evaluated both when an entry is
  // enqueued and again when it is dequeued, so callers whose pruning state
  // grows over time (e.g. LBC's skyline set) get retroactive pruning.
  RTreeNnBrowser(const RTree* tree, Point query,
                 PrunePredicate prune = nullptr);

  // Result of one browsing step.
  struct Result {
    bool found = false;        // false => browsing exhausted
    std::uint32_t id = 0;      // object id
    Point location;            // entry MBR center (== the point for points)
    Dist distance = kInfDist;  // Euclidean distance from the query point
  };

  // Returns the next-nearest not-pruned leaf entry. Throws StorageFault
  // when a node read fails; callers run inside a query boundary that
  // converts the throw to an error result.
  Result Next();

  // Distance key of the top of the search queue: a lower bound on every
  // distance still to be returned. kInfDist when exhausted.
  Dist PeekLowerBound() const;

 private:
  struct QueueItem {
    Dist dist;
    bool is_node;       // true: `page` is a node; false: leaf entry payload
    PageId page;        // valid when is_node
    RTreeEntry entry;   // valid when !is_node
  };
  struct QueueCmp {
    bool operator()(const QueueItem& a, const QueueItem& b) const {
      return a.dist > b.dist;
    }
  };

  void EnqueueNode(PageId page);

  const RTree* tree_;
  Point query_;
  PrunePredicate prune_;
  std::priority_queue<QueueItem, std::vector<QueueItem>, QueueCmp> queue_;
};

}  // namespace msq

#endif  // MSQ_INDEX_RTREE_H_
