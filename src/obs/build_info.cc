#include "obs/build_info.h"

#include "obs/export.h"

// The definitions come from set_source_files_properties in
// src/CMakeLists.txt; the fallbacks keep non-CMake builds compiling.
#ifndef MSQ_BUILD_GIT_SHA
#define MSQ_BUILD_GIT_SHA "unknown"
#endif
#ifndef MSQ_BUILD_COMPILER
#define MSQ_BUILD_COMPILER "unknown"
#endif
#ifndef MSQ_BUILD_FLAGS
#define MSQ_BUILD_FLAGS "unknown"
#endif
#ifndef MSQ_BUILD_TYPE
#define MSQ_BUILD_TYPE "unknown"
#endif

namespace msq::obs {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = {MSQ_BUILD_GIT_SHA, MSQ_BUILD_COMPILER,
                                 MSQ_BUILD_FLAGS, MSQ_BUILD_TYPE};
  return info;
}

std::string BuildInfoJson() {
  const BuildInfo& info = GetBuildInfo();
  std::string out = "{\"git_sha\":\"" + JsonEscape(info.git_sha) + "\"";
  out += ",\"compiler\":\"" + JsonEscape(info.compiler) + "\"";
  out += ",\"flags\":\"" + JsonEscape(info.flags) + "\"";
  out += ",\"build_type\":\"" + JsonEscape(info.build_type) + "\"}";
  return out;
}

}  // namespace msq::obs
