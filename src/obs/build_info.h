// Build provenance stamped into every telemetry export and BENCH_*.json:
// git revision, compiler, flags, and build type, captured at configure
// time by CMake and compiled into obs/build_info.cc only (so editing a
// source file never rebuilds the world). A benchmark number or metrics
// snapshot without this stamp cannot be compared to anything.
#ifndef MSQ_OBS_BUILD_INFO_H_
#define MSQ_OBS_BUILD_INFO_H_

#include <string>
#include <string_view>

namespace msq::obs {

struct BuildInfo {
  std::string_view git_sha;     // short revision, "unknown" outside git
  std::string_view compiler;    // id + version, e.g. "GNU 13.2.0"
  std::string_view flags;       // CXX flags incl. the sanitizer setting
  std::string_view build_type;  // CMAKE_BUILD_TYPE
};

const BuildInfo& GetBuildInfo();

// The stamp as one JSON object:
// {"git_sha":"...","compiler":"...","flags":"...","build_type":"..."}
std::string BuildInfoJson();

}  // namespace msq::obs

#endif  // MSQ_OBS_BUILD_INFO_H_
