#include "obs/export.h"

#include "obs/build_info.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

namespace msq::obs {
namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<std::size_t>(n));
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendF(&out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToChromeTrace(const QueryProfile& profile) {
  std::string out = "[";
  bool first = true;
  for (const SpanRecord& span : profile.spans) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"" + JsonEscape(span.name) + "\"";
    out += ",\"cat\":\"msq\",\"ph\":\"X\",\"pid\":1,\"tid\":1";
    AppendF(&out, ",\"ts\":%.3f", span.start_seconds * 1e6);
    AppendF(&out, ",\"dur\":%.3f", span.duration_seconds() * 1e6);
    out += ",\"args\":{";
    AppendF(&out, "\"network_hits\":%" PRIu64, span.self.network_hits);
    AppendF(&out, ",\"network_misses\":%" PRIu64, span.self.network_misses);
    AppendF(&out, ",\"index_hits\":%" PRIu64, span.self.index_hits);
    AppendF(&out, ",\"index_misses\":%" PRIu64, span.self.index_misses);
    AppendF(&out, ",\"settled_nodes\":%" PRIu64, span.self.settled_nodes);
    AppendF(&out, ",\"dominance_tests\":%" PRIu64, span.self.dominance_tests);
    AppendF(&out, ",\"cache_hits\":%" PRIu64,
            span.self.cache_wavefront_hits + span.self.cache_memo_hits);
    AppendF(&out, ",\"cache_misses\":%" PRIu64,
            span.self.cache_wavefront_misses + span.self.cache_memo_misses);
    AppendF(&out, ",\"heap_peak\":%.0f", span.heap_peak);
    out += "}}";
  }
  out += "\n]\n";
  return out;
}

std::string ProfileReport(const QueryProfile& profile) {
  // Aggregate spans by name, preserving first-open order.
  struct Agg {
    int order = 0;
    int depth = 0;
    std::size_t calls = 0;
    double wall = 0.0;
    double self_wall = 0.0;
    SpanCounters self;
    double heap_peak = 0.0;
  };
  std::map<std::string, Agg> by_name;
  int next_order = 0;
  for (const SpanRecord& span : profile.spans) {
    Agg& agg = by_name[span.name];
    if (agg.calls == 0) {
      agg.order = next_order++;
      agg.depth = span.depth;
    }
    ++agg.calls;
    agg.wall += span.duration_seconds();
    agg.self_wall += span.self_seconds();
    agg.self += span.self;
    if (span.heap_peak > agg.heap_peak) agg.heap_peak = span.heap_peak;
  }
  std::vector<const std::pair<const std::string, Agg>*> rows;
  rows.reserve(by_name.size());
  for (const auto& entry : by_name) rows.push_back(&entry);
  std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
    return a->second.order < b->second.order;
  });

  std::string out;
  AppendF(&out, "%-28s %7s %10s %10s %9s %9s %9s %9s %9s %9s %9s %9s\n",
          "span", "calls", "wall ms", "self ms", "net.miss", "net.hit",
          "idx.miss", "idx.hit", "settled", "dom.test", "c.hit", "c.miss");
  SpanCounters total;
  for (const auto* row : rows) {
    const Agg& agg = row->second;
    total += agg.self;
    std::string label(static_cast<std::size_t>(agg.depth) * 2, ' ');
    label += row->first;
    AppendF(&out,
            "%-28s %7zu %10.3f %10.3f %9" PRIu64 " %9" PRIu64 " %9" PRIu64
            " %9" PRIu64 " %9" PRIu64 " %9" PRIu64 " %9" PRIu64 " %9" PRIu64
            "\n",
            label.c_str(), agg.calls, agg.wall * 1e3, agg.self_wall * 1e3,
            agg.self.network_misses, agg.self.network_hits,
            agg.self.index_misses, agg.self.index_hits,
            agg.self.settled_nodes, agg.self.dominance_tests,
            agg.self.cache_wavefront_hits + agg.self.cache_memo_hits,
            agg.self.cache_wavefront_misses + agg.self.cache_memo_misses);
  }
  AppendF(&out,
          "%-28s %7s %10s %10s %9" PRIu64 " %9" PRIu64 " %9" PRIu64
          " %9" PRIu64 " %9" PRIu64 " %9" PRIu64 " %9" PRIu64 " %9" PRIu64
          "\n",
          "total (self sum)", "", "", "", total.network_misses,
          total.network_hits, total.index_misses, total.index_hits,
          total.settled_nodes, total.dominance_tests,
          total.cache_wavefront_hits + total.cache_memo_hits,
          total.cache_wavefront_misses + total.cache_memo_misses);
  if (profile.dropped_spans > 0) {
    AppendF(&out, "(%zu spans dropped at the session cap)\n",
            profile.dropped_spans);
  }
  // Derived layout-locality figure: physical network page reads per
  // settled node, per phase that settled anything. Lower is better — a
  // locality-aware page layout (Hilbert + CSR) packs a wavefront's
  // frontier into fewer pages, and this is where that shows up in a
  // single-query profile.
  out += "\npages_per_settled_node (network misses / settled nodes)\n";
  for (const auto* row : rows) {
    const Agg& agg = row->second;
    if (agg.self.settled_nodes == 0) continue;
    AppendF(&out, "%-28s %9.4f   (%" PRIu64 " pages / %" PRIu64
            " settled)\n",
            row->first.c_str(),
            PagesPerSettledNode(agg.self.network_misses,
                                agg.self.settled_nodes),
            agg.self.network_misses, agg.self.settled_nodes);
  }
  AppendF(&out, "%-28s %9.4f\n", "total",
          PagesPerSettledNode(total.network_misses, total.settled_nodes));
  return out;
}

double PagesPerSettledNode(std::uint64_t network_pages,
                           std::uint64_t settled_nodes) {
  if (settled_nodes == 0) return 0.0;
  return static_cast<double>(network_pages) /
         static_cast<double>(settled_nodes);
}

std::string MetricsJsonl(const MetricsRegistry& registry) {
  const BuildInfo& build = GetBuildInfo();
  std::string out = "{\"type\":\"build_info\",\"git_sha\":\"" +
                    JsonEscape(build.git_sha) + "\",\"compiler\":\"" +
                    JsonEscape(build.compiler) + "\",\"flags\":\"" +
                    JsonEscape(build.flags) + "\",\"build_type\":\"" +
                    JsonEscape(build.build_type) + "\"}\n";
  registry.ForEachCounter([&](const std::string& name, const Counter& c) {
    out += "{\"type\":\"counter\",\"name\":\"" + JsonEscape(name) + "\"";
    AppendF(&out, ",\"value\":%" PRIu64 "}\n", c.value());
  });
  registry.ForEachGauge([&](const std::string& name, const Gauge& g) {
    out += "{\"type\":\"gauge\",\"name\":\"" + JsonEscape(name) + "\"";
    AppendF(&out, ",\"value\":%.6g,\"peak\":%.6g}\n", g.value(), g.peak());
  });
  registry.ForEachHistogram(
      [&](const std::string& name, const Histogram& h) {
        const Histogram::Snapshot snapshot = h.TakeSnapshot();
        out += "{\"type\":\"histogram\",\"name\":\"" + JsonEscape(name) +
               "\"";
        AppendF(&out, ",\"count\":%" PRIu64 ",\"sum\":%" PRIu64,
                snapshot.count, snapshot.sum);
        out += ",\"buckets\":[";
        bool first = true;
        for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
          if (snapshot.buckets[i] == 0) continue;
          if (!first) out += ",";
          first = false;
          AppendF(&out, "[%" PRIu64 ",%" PRIu64 "]",
                  Histogram::BucketUpper(i), snapshot.buckets[i]);
        }
        out += "]}\n";
      });
  return out;
}

std::string PrometheusName(std::string_view name) {
  std::string out = "msq_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_';
    out += valid ? c : '_';
  }
  return out;
}

namespace {

// Prometheus label values escape only backslash, double-quote, and
// newline (unlike JSON, no \uXXXX forms).
std::string PromLabelEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

namespace {

// OpenMetrics-style exemplar suffix for one bucket line (empty when the
// store has none for this bucket). 0.0.4 scrapers treat it as a comment.
std::string ExemplarSuffix(const ExemplarStore* exemplars,
                           const std::string& name, std::size_t bucket) {
  if (exemplars == nullptr) return "";
  std::optional<ExemplarStore::Exemplar> exemplar =
      exemplars->Find(name, bucket);
  if (!exemplar.has_value()) return "";
  std::string out = " # {trace_id=\"" + PromLabelEscape(exemplar->trace_id) +
                    "\"} ";
  AppendF(&out, "%" PRIu64, exemplar->value);
  return out;
}

}  // namespace

std::string PrometheusText(const MetricsRegistry& registry) {
  return PrometheusText(registry, nullptr);
}

std::string PrometheusText(const MetricsRegistry& registry,
                           const ExemplarStore* exemplars) {
  const BuildInfo& build = GetBuildInfo();
  std::string out = "# TYPE msq_build_info gauge\n";
  out += "msq_build_info{git_sha=\"" + PromLabelEscape(build.git_sha) +
         "\",compiler=\"" + PromLabelEscape(build.compiler) +
         "\",flags=\"" + PromLabelEscape(build.flags) +
         "\",build_type=\"" + PromLabelEscape(build.build_type) +
         "\"} 1\n";
  registry.ForEachCounter([&](const std::string& name, const Counter& c) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    AppendF(&out, "%s %" PRIu64 "\n", prom.c_str(), c.value());
  });
  registry.ForEachGauge([&](const std::string& name, const Gauge& g) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    AppendF(&out, "%s %.6g\n", prom.c_str(), g.value());
    out += "# TYPE " + prom + "_peak gauge\n";
    AppendF(&out, "%s_peak %.6g\n", prom.c_str(), g.peak());
  });
  registry.ForEachHistogram(
      [&](const std::string& name, const Histogram& h) {
        const Histogram::Snapshot snapshot = h.TakeSnapshot();
        const std::string prom = PrometheusName(name);
        out += "# TYPE " + prom + " histogram\n";
        // Cumulative buckets up to the highest populated one (bucket 64
        // folds into +Inf: its finite upper bound exceeds what most
        // scrapers parse losslessly anyway).
        std::size_t top = 0;
        for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
          if (snapshot.buckets[i] != 0) top = i;
        }
        if (top >= 64) top = 63;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i <= top; ++i) {
          cumulative += snapshot.buckets[i];
          AppendF(&out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "%s\n",
                  prom.c_str(), Histogram::BucketUpper(i), cumulative,
                  ExemplarSuffix(exemplars, name, i).c_str());
        }
        AppendF(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "%s\n",
                prom.c_str(), snapshot.count,
                ExemplarSuffix(exemplars, name, 64).c_str());
        AppendF(&out, "%s_sum %" PRIu64 "\n", prom.c_str(), snapshot.sum);
        AppendF(&out, "%s_count %" PRIu64 "\n", prom.c_str(),
                snapshot.count);
      });
  return out;
}

}  // namespace msq::obs
