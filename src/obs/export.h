// Profile/metrics exporters: Chrome trace_event JSON, a human-readable
// per-phase report, and a JSONL dump of a metrics registry.
#ifndef MSQ_OBS_EXPORT_H_
#define MSQ_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_store.h"

namespace msq::obs {

// Escapes `s` for inclusion inside a JSON string literal (quotes,
// backslashes, control characters).
std::string JsonEscape(std::string_view s);

// Chrome trace_event format: a JSON array of complete ("ph":"X") events,
// one per span, with the span's self counters in "args". Loads directly in
// chrome://tracing / Perfetto.
std::string ToChromeTrace(const QueryProfile& profile);

// Human-readable per-phase table: spans aggregated by name with call
// counts, inclusive/self wall time, and self counter totals. The footer
// line sums the self columns — by construction it equals the root span's
// inclusive totals. A derived pages_per_settled_node section follows the
// table: one line per phase that settled nodes, showing how many physical
// network page reads each settled node cost (the storage-layout locality
// figure of merit — DESIGN.md §15).
std::string ProfileReport(const QueryProfile& profile);

// The one shared derivation behind every pages_per_settled_node figure
// (report, tools, benches): network page MISSES per settled node, 0 when
// nothing settled. Single definition so independent recomputations can be
// compared bit-for-bit in reconciliation checks.
double PagesPerSettledNode(std::uint64_t network_pages,
                           std::uint64_t settled_nodes);

// One JSON object per line: a build-info stamp, then every counter, gauge,
// and histogram in `registry` (histograms carry count/sum plus the
// non-empty log2 buckets as [upper_bound, count] pairs).
std::string MetricsJsonl(const MetricsRegistry& registry);

// Prometheus metric name for a registry name: `msq_` prefix, then every
// character outside [a-zA-Z0-9_] replaced with '_' (the §9 mangling rule:
// `buffer.network.hits` -> `msq_buffer_network_hits`,
// `exec.edc-inc.latency_us_hist` -> `msq_exec_edc_inc_latency_us_hist`).
std::string PrometheusName(std::string_view name);

// Prometheus text exposition (format 0.0.4) of the whole registry: a
// `msq_build_info` gauge carrying the build stamp as labels, counters,
// gauges (the peak as a separate `<name>_peak` family), and histograms as
// cumulative `<name>_bucket{le="..."}` series with `_sum` and `_count`.
//
// With a non-null ExemplarStore, bucket lines whose (histogram, bucket)
// has a retained-trace exemplar get an OpenMetrics-style suffix:
//   msq_..._bucket{le="1024"} 17 # {trace_id="<32 hex>"} 812
// Prometheus ignores everything after '#' in the 0.0.4 text format, so
// the exposition stays scrapeable by plain scrapers while exemplar-aware
// ones can link a p99 bucket to a /tracez trace.
std::string PrometheusText(const MetricsRegistry& registry,
                           const ExemplarStore* exemplars);
std::string PrometheusText(const MetricsRegistry& registry);

}  // namespace msq::obs

#endif  // MSQ_OBS_EXPORT_H_
