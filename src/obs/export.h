// Profile/metrics exporters: Chrome trace_event JSON, a human-readable
// per-phase report, and a JSONL dump of a metrics registry.
#ifndef MSQ_OBS_EXPORT_H_
#define MSQ_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace msq::obs {

// Escapes `s` for inclusion inside a JSON string literal (quotes,
// backslashes, control characters).
std::string JsonEscape(std::string_view s);

// Chrome trace_event format: a JSON array of complete ("ph":"X") events,
// one per span, with the span's self counters in "args". Loads directly in
// chrome://tracing / Perfetto.
std::string ToChromeTrace(const QueryProfile& profile);

// Human-readable per-phase table: spans aggregated by name with call
// counts, inclusive/self wall time, and self counter totals. The footer
// line sums the self columns — by construction it equals the root span's
// inclusive totals.
std::string ProfileReport(const QueryProfile& profile);

// One JSON object per line for every counter and gauge in `registry`.
std::string MetricsJsonl(const MetricsRegistry& registry);

}  // namespace msq::obs

#endif  // MSQ_OBS_EXPORT_H_
