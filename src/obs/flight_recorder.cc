#include "obs/flight_recorder.h"

#include <algorithm>

#include "common/check.h"

namespace msq::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity), slots_(new Slot[capacity]) {
  MSQ_CHECK(capacity >= 1);
}

std::uint64_t FlightRecorder::Record(const FlightRecord& record) {
  const std::uint64_t sequence =
      next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(sequence - 1) % capacity_];
  // Invalidate first so a concurrent Snapshot never pairs the old sequence
  // with a half-written payload.
  slot.committed.store(0, std::memory_order_release);
  slot.spec_digest.store(record.spec_digest, std::memory_order_relaxed);
  slot.trace_id_hi.store(record.trace_id_hi, std::memory_order_relaxed);
  slot.trace_id_lo.store(record.trace_id_lo, std::memory_order_relaxed);
  slot.algorithm.store(record.algorithm, std::memory_order_relaxed);
  slot.status_code.store(record.status_code, std::memory_order_relaxed);
  slot.truncation.store(record.truncation, std::memory_order_relaxed);
  slot.source_count.store(record.source_count, std::memory_order_relaxed);
  slot.skyline_size.store(record.skyline_size, std::memory_order_relaxed);
  slot.wall_seconds.store(record.wall_seconds, std::memory_order_relaxed);
  slot.network_hits.store(record.network_hits, std::memory_order_relaxed);
  slot.network_misses.store(record.network_misses,
                            std::memory_order_relaxed);
  slot.index_hits.store(record.index_hits, std::memory_order_relaxed);
  slot.index_misses.store(record.index_misses, std::memory_order_relaxed);
  slot.settled_nodes.store(record.settled_nodes, std::memory_order_relaxed);
  slot.dominance_tests.store(record.dominance_tests,
                             std::memory_order_relaxed);
  slot.dominance_avoided.store(record.dominance_avoided,
                               std::memory_order_relaxed);
  slot.bound_samples.store(record.bound_samples, std::memory_order_relaxed);
  slot.bound_pct_sum.store(record.bound_pct_sum, std::memory_order_relaxed);
  slot.cache_hits.store(record.cache_hits, std::memory_order_relaxed);
  slot.cache_misses.store(record.cache_misses, std::memory_order_relaxed);
  slot.committed.store(sequence, std::memory_order_release);
  return sequence;
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> records;
  records.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    const std::uint64_t sequence =
        slot.committed.load(std::memory_order_acquire);
    if (sequence == 0) continue;  // empty or write in flight
    FlightRecord record;
    record.sequence = sequence;
    record.spec_digest = slot.spec_digest.load(std::memory_order_relaxed);
    record.trace_id_hi = slot.trace_id_hi.load(std::memory_order_relaxed);
    record.trace_id_lo = slot.trace_id_lo.load(std::memory_order_relaxed);
    record.algorithm = slot.algorithm.load(std::memory_order_relaxed);
    record.status_code = slot.status_code.load(std::memory_order_relaxed);
    record.truncation = slot.truncation.load(std::memory_order_relaxed);
    record.source_count = slot.source_count.load(std::memory_order_relaxed);
    record.skyline_size = slot.skyline_size.load(std::memory_order_relaxed);
    record.wall_seconds = slot.wall_seconds.load(std::memory_order_relaxed);
    record.network_hits = slot.network_hits.load(std::memory_order_relaxed);
    record.network_misses =
        slot.network_misses.load(std::memory_order_relaxed);
    record.index_hits = slot.index_hits.load(std::memory_order_relaxed);
    record.index_misses = slot.index_misses.load(std::memory_order_relaxed);
    record.settled_nodes =
        slot.settled_nodes.load(std::memory_order_relaxed);
    record.dominance_tests =
        slot.dominance_tests.load(std::memory_order_relaxed);
    record.dominance_avoided =
        slot.dominance_avoided.load(std::memory_order_relaxed);
    record.bound_samples = slot.bound_samples.load(std::memory_order_relaxed);
    record.bound_pct_sum = slot.bound_pct_sum.load(std::memory_order_relaxed);
    record.cache_hits = slot.cache_hits.load(std::memory_order_relaxed);
    record.cache_misses = slot.cache_misses.load(std::memory_order_relaxed);
    // A writer that claimed this slot mid-copy invalidated or replaced the
    // sequence; drop the (possibly torn) copy.
    if (slot.committed.load(std::memory_order_acquire) != sequence) continue;
    records.push_back(record);
  }
  std::sort(records.begin(), records.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.sequence < b.sequence;
            });
  return records;
}

}  // namespace msq::obs
