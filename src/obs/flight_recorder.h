// Always-on per-query flight recorder: a fixed-size lock-free ring of
// completion records, written by every QueryExecutor worker on every query
// it finishes. The last `capacity` queries are always reconstructible after
// the fact — including the ones nobody thought to trace.
//
// Write path: one fetch_add claims a globally unique sequence number (and
// with it a slot), then the payload is stored field-by-field with relaxed
// atomics and the slot's commit word is released last. No locks, no
// allocation, wait-free for writers.
//
// Read path (Snapshot) is best-effort consistent: a slot is skipped while
// its commit word says a write is in flight, and re-checked after the
// payload copy so a record overwritten mid-copy is dropped rather than
// returned torn. Two writers can only collide on one slot when `capacity`
// writes complete while one is still in flight — size the ring well above
// the worker count (the default is 256 per executor).
#ifndef MSQ_OBS_FLIGHT_RECORDER_H_
#define MSQ_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace msq::obs {

// One query completion. Counter fields are the worker thread's
// ThreadCounters deltas over the query window — the same numbers
// QueryStats reports, plus dominance tests, which QueryStats drops.
struct FlightRecord {
  std::uint64_t sequence = 0;     // 1-based completion order, assigned by Record
  std::uint64_t spec_digest = 0;  // core::QuerySpecDigest of (algorithm, spec)
  // 128-bit request trace id (obs/request_context.h); zero when the query
  // was submitted without telemetry.
  std::uint64_t trace_id_hi = 0;
  std::uint64_t trace_id_lo = 0;
  std::uint32_t algorithm = 0;    // Algorithm enum value (opaque here)
  std::int32_t status_code = 0;   // StatusCode enum value; 0 == ok
  std::uint32_t truncation = 0;   // truncation StatusCode; 0 == not truncated
  std::uint32_t source_count = 0;
  std::uint64_t skyline_size = 0;
  double wall_seconds = 0.0;
  std::uint64_t network_hits = 0;
  std::uint64_t network_misses = 0;
  std::uint64_t index_hits = 0;
  std::uint64_t index_misses = 0;
  std::uint64_t settled_nodes = 0;
  std::uint64_t dominance_tests = 0;
  std::uint64_t dominance_avoided = 0;  // tests skipped by early exit
  std::uint64_t bound_samples = 0;      // bound-tightness samples taken
  std::uint64_t bound_pct_sum = 0;      // sum of sampled tightness percents
  std::uint64_t cache_hits = 0;    // wavefront + memo
  std::uint64_t cache_misses = 0;  // wavefront + memo
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Appends one record (record.sequence is assigned here, overwriting the
  // ring's oldest entry once full). Lock-free; safe from any thread.
  std::uint64_t Record(const FlightRecord& record);

  // The currently retained records in completion order (oldest first).
  // Records mid-overwrite are skipped, never returned torn.
  std::vector<FlightRecord> Snapshot() const;

  std::size_t capacity() const { return capacity_; }
  // Total records ever written (== the highest assigned sequence).
  std::uint64_t total_recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    // 0 = empty or write in flight; otherwise the committed sequence.
    std::atomic<std::uint64_t> committed{0};
    std::atomic<std::uint64_t> spec_digest{0};
    std::atomic<std::uint64_t> trace_id_hi{0};
    std::atomic<std::uint64_t> trace_id_lo{0};
    std::atomic<std::uint32_t> algorithm{0};
    std::atomic<std::int32_t> status_code{0};
    std::atomic<std::uint32_t> truncation{0};
    std::atomic<std::uint32_t> source_count{0};
    std::atomic<std::uint64_t> skyline_size{0};
    std::atomic<double> wall_seconds{0.0};
    std::atomic<std::uint64_t> network_hits{0};
    std::atomic<std::uint64_t> network_misses{0};
    std::atomic<std::uint64_t> index_hits{0};
    std::atomic<std::uint64_t> index_misses{0};
    std::atomic<std::uint64_t> settled_nodes{0};
    std::atomic<std::uint64_t> dominance_tests{0};
    std::atomic<std::uint64_t> dominance_avoided{0};
    std::atomic<std::uint64_t> bound_samples{0};
    std::atomic<std::uint64_t> bound_pct_sum{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};
  };

  const std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
};

}  // namespace msq::obs

#endif  // MSQ_OBS_FLIGHT_RECORDER_H_
