#include "obs/histogram.h"

namespace msq::obs {

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snapshot;
  // Derive the count from the buckets themselves so the quantile walk is
  // internally consistent even if a concurrent Observe lands between the
  // bucket pass and the count_ load.
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    snapshot.buckets[i] = bucket(i);
    snapshot.count += snapshot.buckets[i];
  }
  snapshot.sum = sum();
  return snapshot;
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Same rank convention as the sorted-vector percentile it replaces.
  const std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (rank < seen + in_bucket) {
      const double lower = static_cast<double>(BucketLower(i));
      const double upper = static_cast<double>(BucketUpper(i));
      const double position =
          (static_cast<double>(rank - seen) + 0.5) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * position;
    }
    seen += in_bucket;
  }
  // rank == count - 1 landed past the loop only via concurrent mutation;
  // fall back to the top of the highest populated bucket.
  for (std::size_t i = kBucketCount; i-- > 0;) {
    if (buckets[i] != 0) return static_cast<double>(BucketUpper(i));
  }
  return 0.0;
}

void Histogram::MergeFrom(const Histogram& other) {
  std::uint64_t merged_count = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = other.bucket(i);
    if (n == 0) continue;
    buckets_[i].fetch_add(n, std::memory_order_relaxed);
    merged_count += n;
  }
  count_.fetch_add(merged_count, std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

}  // namespace msq::obs
