// Lock-free log2-bucketed histogram — the distribution substrate of the
// serving-telemetry layer.
//
// Fixed layout: 65 buckets indexed by bit width. Bucket 0 holds the value
// 0; bucket i (i >= 1) holds [2^(i-1), 2^i - 1]. The layout is identical
// for every instance, so histograms merge bucket-by-bucket and export with
// one shared bound list. Observe is two relaxed atomic adds plus a
// bit_width — cheap enough to run on every query completion, always on,
// like the Counter it sits next to in MetricsRegistry.
//
// Quantile estimates interpolate inside the bucket containing the ranked
// observation, so an estimate is always within that observation's log2
// bucket: relative error is bounded by the bucket width (a factor of 2),
// asserted over adversarial distributions in tests/obs/histogram_test.cc.
//
// `count`/`sum` are exact (integers, relaxed adds): once writers are
// quiescent they reconcile exactly with the counter registry and with
// QueryStats totals. Concurrent snapshots are best-effort consistent: a
// reader may see a bucket increment before the matching sum add, never a
// torn value.
#ifndef MSQ_OBS_HISTOGRAM_H_
#define MSQ_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace msq::obs {

class Histogram {
 public:
  // Bit widths 0..64 — value 0 plus one bucket per leading-bit position.
  static constexpr std::size_t kBucketCount = 65;

  // Bucket index of `value` (its bit width).
  static constexpr std::size_t BucketIndex(std::uint64_t value) {
    return static_cast<std::size_t>(std::bit_width(value));
  }
  // Smallest value bucket `i` holds.
  static constexpr std::uint64_t BucketLower(std::size_t i) {
    return i <= 1 ? i : std::uint64_t{1} << (i - 1);
  }
  // Largest value bucket `i` holds (inclusive).
  static constexpr std::uint64_t BucketUpper(std::size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << i) - 1;
  }

  void Observe(std::uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  // Plain-value copy for exporters and merging (one pass over the atomics).
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kBucketCount> buckets{};

    // Quantile estimate over the snapshot, same contract as
    // Histogram::Quantile.
    double Quantile(double q) const;
  };
  Snapshot TakeSnapshot() const;

  // Estimated q-quantile (q in [0, 1], clamped). Uses the same rank
  // convention as a sorted-array lookup — rank = round(q * (n - 1)) — and
  // linearly interpolates inside the rank's bucket, so the estimate lies
  // in the same log2 bucket as the exact order statistic. Returns 0 on an
  // empty histogram.
  double Quantile(double q) const { return TakeSnapshot().Quantile(q); }

  // Folds `other`'s observations into this histogram (layout is fixed, so
  // buckets add position-wise).
  void MergeFrom(const Histogram& other);

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace msq::obs

#endif  // MSQ_OBS_HISTOGRAM_H_
