#include "obs/metrics.h"

namespace msq::obs {

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

ThreadCounters& ThreadLocalCounters() {
  thread_local ThreadCounters counters;
  return counters;
}

}  // namespace msq::obs
