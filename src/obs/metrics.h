// Named counter/gauge registry — the cross-layer observability substrate.
//
// Components (BufferManager, GraphPager, the Dijkstra/A* wavefronts, the
// dominance kernel) report into named metrics here; TraceSession
// (obs/trace.h) snapshots a tracked subset at span boundaries to attribute
// work to query phases, and obs/export.h dumps the whole registry as JSONL.
//
// Counters are relaxed-atomic uint64 increments behind a stable pointer, so
// the hot paths pay one uncontended atomic add (plus a null check where
// attachment is optional) — cheap enough to stay always-on, like the
// existing BufferStats. The registry itself is thread-safe: concurrent
// queries running in a QueryExecutor pool all report into the same global
// registry, whose totals stay exact under contention.
//
// Per-thread attribution lives next to the global totals: ThreadCounters is
// a thread-local block the same hot paths bump alongside the registry.
// Because a query runs entirely on one worker thread, per-query deltas of
// the thread-local block are exact even while other workers hammer the
// shared pools — this is what keeps QueryStats and trace reconciliation
// (obs/trace.h) byte-exact per query under concurrency.
//
// Naming scheme (DESIGN.md §9): `<layer>.<component>.<event>`, e.g.
// `buffer.network.misses` or `graph.settled_nodes`.
#ifndef MSQ_OBS_METRICS_H_
#define MSQ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/histogram.h"

namespace msq::obs {

// Monotonically increasing event count. Thread-safe; relaxed ordering is
// sufficient because readers only consume totals/deltas, never ordering.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Instantaneous level with a high-water mark. TraceSession scopes the peak
// to a span by saving/merging it around the span's lifetime. Thread-safe:
// Update publishes the level with a relaxed store and raises the peak via a
// CAS loop (concurrent peaks race benignly to the same maximum).
class Gauge {
 public:
  void Update(double value) {
    value_.store(value, std::memory_order_relaxed);
    RaiseToAtLeast(&peak_, value);
  }
  // Restarts peak tracking from the current level.
  void ResetPeak() {
    peak_.store(value_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }
  // Folds an externally saved peak back in (span unwinding).
  void MergePeak(double peak) { RaiseToAtLeast(&peak_, peak); }

  double value() const { return value_.load(std::memory_order_relaxed); }
  double peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  static void RaiseToAtLeast(std::atomic<double>* target, double value) {
    double current = target->load(std::memory_order_relaxed);
    while (value > current &&
           !target->compare_exchange_weak(current, value,
                                          std::memory_order_relaxed)) {
    }
  }

  std::atomic<double> value_{0.0};
  std::atomic<double> peak_{0.0};
};

// Find-or-create registry of named metrics. Returned pointers are stable
// for the registry's lifetime, so components cache them once and increment
// without lookups. find-or-create and iteration are mutex-guarded (they
// are off the hot path); the iteration callbacks must not call back into
// the same registry.
class MetricsRegistry {
 public:
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  // Distribution metrics (obs/histogram.h); named `<...>_hist` by the §9
  // scheme. Same find-or-create and pointer-stability contract as counters.
  Histogram* histogram(std::string_view name);

  // Iteration in name order (export, tests).
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) fn(name, *counter);
  }
  template <typename Fn>
  void ForEachGauge(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, gauge] : gauges_) fn(name, *gauge);
  }
  template <typename Fn>
  void ForEachHistogram(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, histogram] : histograms_) fn(name, *histogram);
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_;
};

// The process-wide registry every built-in metric lives in. Components that
// exist once per role (the two buffer pools) register themselves under
// role-specific prefixes; per-instance structures (searches, pagers) share
// one counter per event kind.
MetricsRegistry& GlobalMetrics();

// Per-thread mirror of the tracked cross-layer counters. The instrumented
// hot paths (BufferManager hits/misses via its attached role, wavefront
// settles, dominance tests, the search-heap gauge) bump the calling
// thread's block in addition to the global registry. A query executes on
// exactly one thread, so deltas of this block taken around a query window
// count that query's work and nothing else — the substrate for per-query
// QueryStats and span attribution under a concurrent executor.
struct ThreadCounters {
  std::uint64_t network_hits = 0;     // buffer.network.hits
  std::uint64_t network_misses = 0;   // buffer.network.misses
  std::uint64_t index_hits = 0;       // buffer.index.hits
  std::uint64_t index_misses = 0;     // buffer.index.misses
  std::uint64_t settled_nodes = 0;    // graph.settled_nodes
  std::uint64_t dominance_tests = 0;  // core.dominance_tests
  // Pruning-power accounting (DESIGN.md §17). `dominance_avoided` counts
  // pairwise tests a window early-exit or a bound-based prune made
  // unnecessary; `bound_pruned`/`bound_examined` partition candidate
  // objects by whether a plb/Euclid/ALT lower bound eliminated them or
  // exact distances had to be computed; `bound_samples` counts
  // bound-tightness ratios (plb/dN) observed at exact-completion sites.
  std::uint64_t dominance_avoided = 0;  // core.dominance_avoided
  std::uint64_t bound_pruned = 0;       // core.bound_pruned
  std::uint64_t bound_examined = 0;     // core.bound_examined
  std::uint64_t bound_samples = 0;      // core.bound_tightness_samples
  // Sum of the rounded tightness percents over those samples, so any
  // delta window can report a mean tightness (sum / samples) without
  // carrying the sample list.
  std::uint64_t bound_pct_sum = 0;      // core.bound_tightness_pct_sum
  // Cross-query cache consultations (src/cache). A distinct access class
  // from the buffer counters: a cache hit never touches a buffer pool, so
  // it must never be folded into page accesses.
  std::uint64_t cache_wavefront_hits = 0;    // cache.wavefront.hits
  std::uint64_t cache_wavefront_misses = 0;  // cache.wavefront.misses
  std::uint64_t cache_memo_hits = 0;         // cache.memo.hits
  std::uint64_t cache_memo_misses = 0;       // cache.memo.misses
  // Thread-scoped view of the core.heap_peak gauge, with the same
  // level+high-water semantics.
  double heap_value = 0.0;
  double heap_peak = 0.0;

  void UpdateHeap(double value) {
    heap_value = value;
    if (value > heap_peak) heap_peak = value;
  }
  void ResetHeapPeak() { heap_peak = heap_value; }
  void MergeHeapPeak(double peak) {
    if (peak > heap_peak) heap_peak = peak;
  }

  std::uint64_t network_accesses() const {
    return network_hits + network_misses;
  }
  std::uint64_t index_accesses() const { return index_hits + index_misses; }

  // Field-wise difference of this block against an earlier snapshot of the
  // SAME thread's block. Counters subtract; the heap fields carry the
  // current level and the window's high-water mark. The substrate for
  // intra-query parallelism: a helper task snapshots its thread's block
  // around the work, and the query thread Absorbs the delta so its own
  // StatsScope/QueryGuard/TraceSession windows see the helper's work.
  ThreadCounters Delta(const ThreadCounters& since) const {
    ThreadCounters d;
    d.network_hits = network_hits - since.network_hits;
    d.network_misses = network_misses - since.network_misses;
    d.index_hits = index_hits - since.index_hits;
    d.index_misses = index_misses - since.index_misses;
    d.settled_nodes = settled_nodes - since.settled_nodes;
    d.dominance_tests = dominance_tests - since.dominance_tests;
    d.dominance_avoided = dominance_avoided - since.dominance_avoided;
    d.bound_pruned = bound_pruned - since.bound_pruned;
    d.bound_examined = bound_examined - since.bound_examined;
    d.bound_samples = bound_samples - since.bound_samples;
    d.bound_pct_sum = bound_pct_sum - since.bound_pct_sum;
    d.cache_wavefront_hits = cache_wavefront_hits - since.cache_wavefront_hits;
    d.cache_wavefront_misses =
        cache_wavefront_misses - since.cache_wavefront_misses;
    d.cache_memo_hits = cache_memo_hits - since.cache_memo_hits;
    d.cache_memo_misses = cache_memo_misses - since.cache_memo_misses;
    d.heap_value = heap_value;
    d.heap_peak = heap_peak;
    return d;
  }

  // Adds a Delta()-produced block into this one. Never absorb a delta into
  // the thread that produced it — the work is already counted there.
  void Absorb(const ThreadCounters& delta) {
    network_hits += delta.network_hits;
    network_misses += delta.network_misses;
    index_hits += delta.index_hits;
    index_misses += delta.index_misses;
    settled_nodes += delta.settled_nodes;
    dominance_tests += delta.dominance_tests;
    dominance_avoided += delta.dominance_avoided;
    bound_pruned += delta.bound_pruned;
    bound_examined += delta.bound_examined;
    bound_samples += delta.bound_samples;
    bound_pct_sum += delta.bound_pct_sum;
    cache_wavefront_hits += delta.cache_wavefront_hits;
    cache_wavefront_misses += delta.cache_wavefront_misses;
    cache_memo_hits += delta.cache_memo_hits;
    cache_memo_misses += delta.cache_memo_misses;
    MergeHeapPeak(delta.heap_peak);
  }
};

// The calling thread's counter block.
ThreadCounters& ThreadLocalCounters();

// Well-known metric names. The buffer prefixes are what Workload attaches
// its two pools under; TraceSession tracks the counters listed here.
namespace metric {
inline constexpr char kNetworkBufferPrefix[] = "buffer.network";
inline constexpr char kIndexBufferPrefix[] = "buffer.index";
inline constexpr char kNetworkBufferHits[] = "buffer.network.hits";
inline constexpr char kNetworkBufferMisses[] = "buffer.network.misses";
inline constexpr char kIndexBufferHits[] = "buffer.index.hits";
inline constexpr char kIndexBufferMisses[] = "buffer.index.misses";
inline constexpr char kAdjacencyReads[] = "graph.pager.adjacency_reads";
inline constexpr char kSettledNodes[] = "graph.settled_nodes";
inline constexpr char kDominanceTests[] = "core.dominance_tests";
inline constexpr char kDominanceAvoided[] = "core.dominance_avoided";
inline constexpr char kBoundPruned[] = "core.bound_pruned";
inline constexpr char kBoundExamined[] = "core.bound_examined";
inline constexpr char kBoundSamples[] = "core.bound_tightness_samples";
inline constexpr char kBoundPctSum[] = "core.bound_tightness_pct_sum";
inline constexpr char kHeapPeak[] = "core.heap_peak";
// Cross-query cache (src/cache/query_cache.h).
inline constexpr char kCacheWavefrontHits[] = "cache.wavefront.hits";
inline constexpr char kCacheWavefrontMisses[] = "cache.wavefront.misses";
inline constexpr char kCacheWavefrontInserts[] = "cache.wavefront.inserts";
inline constexpr char kCacheWavefrontEvictions[] =
    "cache.wavefront.evictions";
inline constexpr char kCacheMemoHits[] = "cache.memo.hits";
inline constexpr char kCacheMemoMisses[] = "cache.memo.misses";
inline constexpr char kCacheMemoInserts[] = "cache.memo.inserts";
inline constexpr char kCacheMemoEvictions[] = "cache.memo.evictions";
inline constexpr char kCacheInvalidations[] = "cache.invalidations";
inline constexpr char kCacheBytes[] = "cache.bytes";
// Serving telemetry (obs/telemetry.h). The per-query distribution
// histograms are per algorithm — `exec.<algo>.<event>_hist`, e.g.
// `exec.ce.latency_us_hist` — built from these suffixes.
inline constexpr char kExecQueries[] = "exec.queries";
inline constexpr char kExecSlowQueries[] = "exec.slow_queries";
inline constexpr char kExecSlowQueriesCaptured[] =
    "exec.slow_queries_captured";
// Tail-based trace sampling (obs/trace_store.h): completions whose trace
// survived the retention decision, and requests the head-rate coin picked
// at ingress (which get detail spans and guaranteed retention).
inline constexpr char kTracesRetained[] = "exec.traces_retained";
inline constexpr char kTracesHeadSampled[] = "exec.traces_head_sampled";
inline constexpr char kLatencyUsHist[] = "latency_us_hist";
inline constexpr char kNetworkPageAccessesHist[] =
    "network_page_accesses_hist";
inline constexpr char kIndexPageAccessesHist[] = "index_page_accesses_hist";
inline constexpr char kSettledNodesHist[] = "settled_nodes_hist";
inline constexpr char kCacheHitsHist[] = "cache_hits_hist";
// Pruning-power distributions (ISSUE: msq_bound_tightness and
// msq_dominance_tests_{performed,avoided} after Prometheus mangling).
// bound_tightness is fed one observation per sample at the
// instrumentation site; the dominance pair is per-query, observed by
// ServingTelemetry::RecordQuery.
inline constexpr char kBoundTightnessHist[] = "bound_tightness";
inline constexpr char kDominancePerformedHist[] =
    "dominance_tests.performed";
inline constexpr char kDominanceAvoidedHist[] = "dominance_tests.avoided";
}  // namespace metric

}  // namespace msq::obs

#endif  // MSQ_OBS_METRICS_H_
