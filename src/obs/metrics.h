// Named counter/gauge registry — the cross-layer observability substrate.
//
// Components (BufferManager, GraphPager, the Dijkstra/A* wavefronts, the
// dominance kernel) report into named metrics here; TraceSession
// (obs/trace.h) snapshots a tracked subset at span boundaries to attribute
// work to query phases, and obs/export.h dumps the whole registry as JSONL.
//
// Counters are plain uint64 increments behind a stable pointer, so the hot
// paths pay one add (plus a null check where attachment is optional) —
// cheap enough to stay always-on, like the existing BufferStats. Like the
// rest of the storage/query stack, the registry is single-threaded.
//
// Naming scheme (DESIGN.md §9): `<layer>.<component>.<event>`, e.g.
// `buffer.network.misses` or `graph.settled_nodes`.
#ifndef MSQ_OBS_METRICS_H_
#define MSQ_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace msq::obs {

// Monotonically increasing event count.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// Instantaneous level with a high-water mark. TraceSession scopes the peak
// to a span by saving/merging it around the span's lifetime.
class Gauge {
 public:
  void Update(double value) {
    value_ = value;
    if (value > peak_) peak_ = value;
  }
  // Restarts peak tracking from the current level.
  void ResetPeak() { peak_ = value_; }
  // Folds an externally saved peak back in (span unwinding).
  void MergePeak(double peak) {
    if (peak > peak_) peak_ = peak;
  }

  double value() const { return value_; }
  double peak() const { return peak_; }

 private:
  double value_ = 0.0;
  double peak_ = 0.0;
};

// Find-or-create registry of named metrics. Returned pointers are stable
// for the registry's lifetime, so components cache them once and increment
// without lookups.
class MetricsRegistry {
 public:
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);

  // Iteration in name order (export, tests).
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const {
    for (const auto& [name, counter] : counters_) fn(name, *counter);
  }
  template <typename Fn>
  void ForEachGauge(Fn&& fn) const {
    for (const auto& [name, gauge] : gauges_) fn(name, *gauge);
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
};

// The process-wide registry every built-in metric lives in. Components that
// exist once per role (the two buffer pools) register themselves under
// role-specific prefixes; per-instance structures (searches, pagers) share
// one counter per event kind.
MetricsRegistry& GlobalMetrics();

// Well-known metric names. The buffer prefixes are what Workload attaches
// its two pools under; TraceSession tracks the counters listed here.
namespace metric {
inline constexpr char kNetworkBufferPrefix[] = "buffer.network";
inline constexpr char kIndexBufferPrefix[] = "buffer.index";
inline constexpr char kNetworkBufferHits[] = "buffer.network.hits";
inline constexpr char kNetworkBufferMisses[] = "buffer.network.misses";
inline constexpr char kIndexBufferHits[] = "buffer.index.hits";
inline constexpr char kIndexBufferMisses[] = "buffer.index.misses";
inline constexpr char kAdjacencyReads[] = "graph.pager.adjacency_reads";
inline constexpr char kSettledNodes[] = "graph.settled_nodes";
inline constexpr char kDominanceTests[] = "core.dominance_tests";
inline constexpr char kHeapPeak[] = "core.heap_peak";
}  // namespace metric

}  // namespace msq::obs

#endif  // MSQ_OBS_METRICS_H_
