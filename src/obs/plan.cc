#include "obs/plan.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <utility>

#include "core/query.h"

namespace msq::obs {
namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<std::size_t>(n));
}

void AppendEscaped(std::string* out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendF(out, "\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
}

// The span-tracked measures a phase rollup must partition exactly.
struct PhaseTotals {
  std::uint64_t network_accesses = 0;
  std::uint64_t index_accesses = 0;
  std::uint64_t settled_nodes = 0;
  std::uint64_t dominance_tests = 0;
  std::uint64_t dominance_avoided = 0;
  std::uint64_t bound_pruned = 0;
  std::uint64_t bound_examined = 0;
  std::uint64_t bound_samples = 0;
  std::uint64_t bound_pct_sum = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  void Add(const SpanCounters& c) {
    network_accesses += c.network_hits + c.network_misses;
    index_accesses += c.index_hits + c.index_misses;
    settled_nodes += c.settled_nodes;
    dominance_tests += c.dominance_tests;
    dominance_avoided += c.dominance_avoided;
    bound_pruned += c.bound_pruned;
    bound_examined += c.bound_examined;
    bound_samples += c.bound_samples;
    bound_pct_sum += c.bound_pct_sum;
    cache_hits += c.cache_wavefront_hits + c.cache_memo_hits;
    cache_misses += c.cache_wavefront_misses + c.cache_memo_misses;
  }
};

}  // namespace

void PlanCollector::RecordSource(std::size_t source,
                                 std::uint64_t settled_nodes, double radius,
                                 bool resumed_from_cache) {
  for (PlanSourceProgress& existing : sources_) {
    if (existing.source == source) {
      existing.settled_nodes = settled_nodes;
      existing.radius = radius;
      existing.resumed_from_cache = resumed_from_cache;
      return;
    }
  }
  PlanSourceProgress progress;
  progress.source = source;
  progress.settled_nodes = settled_nodes;
  progress.radius = radius;
  progress.resumed_from_cache = resumed_from_cache;
  sources_.push_back(progress);
}

ExecutionPlan BuildExecutionPlan(std::string_view algorithm,
                                 const msq::QueryStats& stats,
                                 const QueryProfile* profile,
                                 const PlanCollector* collector,
                                 bool truncated) {
  ExecutionPlan plan;
  plan.algorithm = std::string(algorithm);
  plan.total_seconds = stats.total_seconds;
  plan.truncated = truncated;
  plan.dominance_tests = stats.dominance_tests;
  plan.dominance_tests_avoided = stats.dominance_tests_avoided;
  plan.bound_pruned = stats.bound_pruned;
  plan.bound_examined = stats.bound_examined;
  plan.bound_tightness_samples = stats.bound_tightness_samples;
  plan.bound_tightness_pct_sum = stats.bound_tightness_pct_sum;
  plan.network_page_accesses = stats.network_page_accesses;
  plan.index_page_accesses = stats.index_page_accesses;
  plan.settled_nodes = stats.settled_nodes;
  plan.cache_hits = stats.cache_wavefront_hits + stats.cache_memo_hits;
  plan.cache_misses =
      stats.cache_wavefront_misses + stats.cache_memo_misses;
  plan.candidate_count = stats.candidate_count;
  plan.skyline_size = stats.skyline_size;
  if (collector != nullptr) {
    plan.bound_tightness = collector->tightness();
    plan.sources = collector->sources();
    plan.tiers = collector->tiers();
  }
  if (profile != nullptr && !profile->spans.empty()) {
    // Depth-1 spans (inclusive) plus the root's self counters partition
    // the root's inclusive totals — i.e. the query's totals — exactly.
    for (std::size_t i = 1; i < profile->spans.size(); ++i) {
      const SpanRecord& span = profile->spans[i];
      if (span.depth != 1) continue;
      PlanPhase phase;
      phase.name = span.name;
      phase.seconds = span.duration_seconds();
      phase.counters = profile->InclusiveCounters(i);
      plan.phases.push_back(std::move(phase));
    }
    PlanPhase rest;
    rest.name = "unattributed";
    rest.seconds = profile->spans[0].self_seconds();
    rest.counters = profile->spans[0].self;
    plan.phases.push_back(std::move(rest));
  }
  return plan;
}

std::string ReconcilePlan(const ExecutionPlan& plan,
                          const msq::QueryStats& stats) {
  char buf[256];
  auto mismatch = [&buf](const char* what, std::uint64_t plan_value,
                         std::uint64_t stats_value) {
    std::snprintf(buf, sizeof(buf),
                  "%s: plan %" PRIu64 " != expected %" PRIu64, what,
                  plan_value, stats_value);
    return std::string(buf);
  };
  const struct {
    const char* name;
    std::uint64_t plan_value;
    std::uint64_t stats_value;
  } scalars[] = {
      {"dominance_tests", plan.dominance_tests, stats.dominance_tests},
      {"dominance_tests_avoided", plan.dominance_tests_avoided,
       stats.dominance_tests_avoided},
      {"bound_pruned", plan.bound_pruned, stats.bound_pruned},
      {"bound_examined", plan.bound_examined, stats.bound_examined},
      {"bound_tightness_samples", plan.bound_tightness_samples,
       stats.bound_tightness_samples},
      {"bound_tightness_pct_sum", plan.bound_tightness_pct_sum,
       stats.bound_tightness_pct_sum},
      {"network_page_accesses", plan.network_page_accesses,
       stats.network_page_accesses},
      {"index_page_accesses", plan.index_page_accesses,
       stats.index_page_accesses},
      {"settled_nodes", plan.settled_nodes, stats.settled_nodes},
      {"cache_hits", plan.cache_hits,
       stats.cache_wavefront_hits + stats.cache_memo_hits},
      {"cache_misses", plan.cache_misses,
       stats.cache_wavefront_misses + stats.cache_memo_misses},
      {"candidate_count", plan.candidate_count, stats.candidate_count},
      {"skyline_size", plan.skyline_size, stats.skyline_size},
  };
  for (const auto& s : scalars) {
    if (s.plan_value != s.stats_value) {
      return mismatch(s.name, s.plan_value, s.stats_value);
    }
  }
  // The histogram was filled by the collector, the sample counters by the
  // thread-local substrate — two independent paths that must agree.
  if (plan.bound_tightness.count != stats.bound_tightness_samples) {
    return mismatch("tightness histogram count", plan.bound_tightness.count,
                    stats.bound_tightness_samples);
  }
  if (plan.bound_tightness.sum != stats.bound_tightness_pct_sum) {
    return mismatch("tightness histogram sum", plan.bound_tightness.sum,
                    stats.bound_tightness_pct_sum);
  }
  if (!plan.phases.empty()) {
    PhaseTotals totals;
    for (const PlanPhase& phase : plan.phases) totals.Add(phase.counters);
    const struct {
      const char* name;
      std::uint64_t phase_value;
      std::uint64_t stats_value;
    } rollup[] = {
        {"phase network_page_accesses", totals.network_accesses,
         stats.network_page_accesses},
        {"phase index_page_accesses", totals.index_accesses,
         stats.index_page_accesses},
        {"phase settled_nodes", totals.settled_nodes, stats.settled_nodes},
        {"phase dominance_tests", totals.dominance_tests,
         stats.dominance_tests},
        {"phase dominance_avoided", totals.dominance_avoided,
         stats.dominance_tests_avoided},
        {"phase bound_pruned", totals.bound_pruned, stats.bound_pruned},
        {"phase bound_examined", totals.bound_examined,
         stats.bound_examined},
        {"phase bound_samples", totals.bound_samples,
         stats.bound_tightness_samples},
        {"phase bound_pct_sum", totals.bound_pct_sum,
         stats.bound_tightness_pct_sum},
        {"phase cache_hits", totals.cache_hits,
         stats.cache_wavefront_hits + stats.cache_memo_hits},
        {"phase cache_misses", totals.cache_misses,
         stats.cache_wavefront_misses + stats.cache_memo_misses},
    };
    for (const auto& r : rollup) {
      if (r.phase_value != r.stats_value) {
        return mismatch(r.name, r.phase_value, r.stats_value);
      }
    }
  }
  return std::string();
}

std::string PlanJson(const ExecutionPlan& plan) {
  std::string out = "{\"algorithm\":\"";
  AppendEscaped(&out, plan.algorithm);
  AppendF(&out, "\",\"total_seconds\":%.6f,\"truncated\":%s",
          plan.total_seconds, plan.truncated ? "true" : "false");
  AppendF(&out,
          ",\"dominance_tests\":{\"performed\":%" PRIu64
          ",\"avoided\":%" PRIu64 "}",
          plan.dominance_tests, plan.dominance_tests_avoided);
  AppendF(&out,
          ",\"bounds\":{\"pruned\":%" PRIu64 ",\"examined\":%" PRIu64
          ",\"tightness\":{\"samples\":%" PRIu64 ",\"mean_pct\":%.1f,"
          "\"histogram\":[",
          plan.bound_pruned, plan.bound_examined,
          plan.bound_tightness_samples, plan.mean_tightness_pct());
  bool first = true;
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    if (plan.bound_tightness.buckets[i] == 0) continue;
    if (!first) out += ",";
    first = false;
    AppendF(&out, "{\"le\":%" PRIu64 ",\"count\":%" PRIu64 "}",
            Histogram::BucketUpper(i), plan.bound_tightness.buckets[i]);
  }
  out += "]}}";
  AppendF(&out,
          ",\"pages\":{\"network_accesses\":%" PRIu64
          ",\"index_accesses\":%" PRIu64 "},\"settled_nodes\":%" PRIu64,
          plan.network_page_accesses, plan.index_page_accesses,
          plan.settled_nodes);
  AppendF(&out,
          ",\"cache\":{\"hits\":%" PRIu64 ",\"misses\":%" PRIu64
          ",\"lookup_tiers\":{\"memo\":%" PRIu64 ",\"wavefront\":%" PRIu64
          ",\"computed\":%" PRIu64 "}}",
          plan.cache_hits, plan.cache_misses, plan.tiers.memo_hits,
          plan.tiers.wavefront_exact, plan.tiers.computed);
  AppendF(&out, ",\"candidates\":%" PRIu64 ",\"skyline_size\":%" PRIu64,
          plan.candidate_count, plan.skyline_size);
  out += ",\"phases\":[";
  for (std::size_t i = 0; i < plan.phases.size(); ++i) {
    const PlanPhase& phase = plan.phases[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"";
    AppendEscaped(&out, phase.name);
    AppendF(&out,
            "\",\"seconds\":%.6f,\"network_page_accesses\":%" PRIu64
            ",\"index_page_accesses\":%" PRIu64 ",\"settled_nodes\":%" PRIu64
            ",\"dominance_tests\":%" PRIu64 ",\"dominance_avoided\":%" PRIu64
            ",\"bound_pruned\":%" PRIu64 ",\"bound_examined\":%" PRIu64
            ",\"cache_hits\":%" PRIu64 "}",
            phase.seconds,
            phase.counters.network_hits + phase.counters.network_misses,
            phase.counters.index_hits + phase.counters.index_misses,
            phase.counters.settled_nodes, phase.counters.dominance_tests,
            phase.counters.dominance_avoided, phase.counters.bound_pruned,
            phase.counters.bound_examined,
            phase.counters.cache_wavefront_hits +
                phase.counters.cache_memo_hits);
  }
  out += "],\"sources\":[";
  for (std::size_t i = 0; i < plan.sources.size(); ++i) {
    const PlanSourceProgress& source = plan.sources[i];
    if (i > 0) out += ",";
    AppendF(&out,
            "{\"source\":%zu,\"settled_nodes\":%" PRIu64
            ",\"radius\":%.6f,\"resumed_from_cache\":%s}",
            source.source, source.settled_nodes, source.radius,
            source.resumed_from_cache ? "true" : "false");
  }
  out += "]}";
  return out;
}

void PlanStore::Retain(RetainedPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.push_back(std::move(plan));
  ++retained_total_;
  while (plans_.size() > capacity_) plans_.pop_front();
}

std::vector<RetainedPlan> PlanStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<RetainedPlan>(plans_.begin(), plans_.end());
}

void PlanStore::Account(std::string_view algorithm,
                        const msq::QueryStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = aggregates_.find(algorithm);
  if (it == aggregates_.end()) {
    it = aggregates_.emplace(std::string(algorithm), PlanAggregate{}).first;
  }
  PlanAggregate& agg = it->second;
  ++agg.queries;
  agg.dominance_tests += stats.dominance_tests;
  agg.dominance_avoided += stats.dominance_tests_avoided;
  agg.bound_pruned += stats.bound_pruned;
  agg.bound_examined += stats.bound_examined;
  agg.bound_samples += stats.bound_tightness_samples;
  agg.bound_pct_sum += stats.bound_tightness_pct_sum;
  ++accounted_total_;
}

std::vector<std::pair<std::string, PlanAggregate>> PlanStore::Aggregates()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::pair<std::string, PlanAggregate>>(
      aggregates_.begin(), aggregates_.end());
}

std::uint64_t PlanStore::retained_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_total_;
}

std::uint64_t PlanStore::accounted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accounted_total_;
}

std::string ExplainzJson(const PlanStore& store) {
  const std::vector<std::pair<std::string, PlanAggregate>> aggregates =
      store.Aggregates();
  const std::vector<RetainedPlan> plans = store.Snapshot();
  std::string out = "{\"pruning_efficiency\":[";
  bool first = true;
  for (const auto& [algo, agg] : aggregates) {
    if (!first) out += ",";
    first = false;
    const double avoided_ratio =
        agg.dominance_tests + agg.dominance_avoided == 0
            ? 0.0
            : static_cast<double>(agg.dominance_avoided) /
                  static_cast<double>(agg.dominance_tests +
                                      agg.dominance_avoided);
    const double prune_ratio =
        agg.bound_pruned + agg.bound_examined == 0
            ? 0.0
            : static_cast<double>(agg.bound_pruned) /
                  static_cast<double>(agg.bound_pruned + agg.bound_examined);
    const double mean_tightness =
        agg.bound_samples == 0
            ? 0.0
            : static_cast<double>(agg.bound_pct_sum) /
                  static_cast<double>(agg.bound_samples);
    out += "{\"algorithm\":\"";
    AppendEscaped(&out, algo);
    AppendF(&out,
            "\",\"queries\":%" PRIu64 ",\"dominance_tests\":%" PRIu64
            ",\"dominance_avoided\":%" PRIu64 ",\"avoided_ratio\":%.4f"
            ",\"bound_pruned\":%" PRIu64 ",\"bound_examined\":%" PRIu64
            ",\"prune_ratio\":%.4f,\"mean_tightness_pct\":%.1f}",
            agg.queries, agg.dominance_tests, agg.dominance_avoided,
            avoided_ratio, agg.bound_pruned, agg.bound_examined, prune_ratio,
            mean_tightness);
  }
  out += "],\"plans\":[";
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (i > 0) out += ",";
    AppendF(&out, "{\"sequence\":%" PRIu64 ",\"trace_id\":\"",
            plans[i].sequence);
    AppendEscaped(&out, plans[i].trace_id);
    out += "\",\"plan\":";
    out += PlanJson(plans[i].plan);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace msq::obs
