// Structured per-query execution plans — the EXPLAIN layer.
//
// An ExecutionPlan is the query-shaped answer to "why was this query
// expensive": the per-phase breakdown the spans already record, the
// paper's pruning-power counters (dominance tests performed vs. avoided,
// objects pruned by a lower bound vs. fully examined), a log2 histogram of
// bound-tightness samples (plb/dN as a percent), per-source wavefront
// progress, and cache-tier attribution of exact distance lookups.
//
// Collection is split in two so the hot paths stay cheap:
//
//   * PlanCollector rides on SkylineQuerySpec::plan and receives only what
//     the counters cannot reconstruct — tightness samples, per-source
//     progress, lookup tiers. Null collector = no work.
//   * BuildExecutionPlan folds the collector together with the query's
//     QueryStats and QueryProfile after the run (executor worker or
//     msq_profile), so plan totals are the same thread-exact deltas the
//     stats report.
//
// ReconcilePlan is the oracle: every plan counter must equal its
// QueryStats twin exactly, the histogram's count/sum must equal the
// independently counted sample counters, and the phase rollup must sum to
// the totals — the same discipline spans already obey (DESIGN.md §17).
#ifndef MSQ_OBS_PLAN_H_
#define MSQ_OBS_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "obs/trace.h"

namespace msq {
struct QueryStats;
}  // namespace msq

namespace msq::obs {

// One top-level phase of the query (a depth-1 span of the profile, e.g.
// "lbc.filter"), with its inclusive counters. A synthetic "unattributed"
// phase carries the root span's self counters so the phases partition the
// query's totals exactly.
struct PlanPhase {
  std::string name;
  double seconds = 0.0;
  SpanCounters counters;
};

// Wavefront progress of one query source at the end of the run.
struct PlanSourceProgress {
  std::size_t source = 0;
  // Nodes this source's expansion settled (for EDC/LBC: settled by exact
  // distance computations attributed to this source).
  std::uint64_t settled_nodes = 0;
  // Farthest network distance the expansion reached (0 when it never ran).
  double radius = 0.0;
  // Whether the expansion resumed from a cross-query cached wavefront.
  bool resumed_from_cache = false;
};

// Where exact distance lookups were answered: the cross-query memo, an
// exact hit inside a cached wavefront snapshot, or an actual A*/Dijkstra
// computation.
struct PlanCacheTiers {
  std::uint64_t memo_hits = 0;
  std::uint64_t wavefront_exact = 0;
  std::uint64_t computed = 0;

  std::uint64_t total() const {
    return memo_hits + wavefront_exact + computed;
  }
};

// The finished plan of one query.
struct ExecutionPlan {
  std::string algorithm;
  double total_seconds = 0.0;
  bool truncated = false;
  // Scalar totals — each the exact QueryStats twin (ReconcilePlan).
  std::uint64_t dominance_tests = 0;
  std::uint64_t dominance_tests_avoided = 0;
  std::uint64_t bound_pruned = 0;
  std::uint64_t bound_examined = 0;
  std::uint64_t bound_tightness_samples = 0;
  std::uint64_t bound_tightness_pct_sum = 0;
  std::uint64_t network_page_accesses = 0;
  std::uint64_t index_page_accesses = 0;
  std::uint64_t settled_nodes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t candidate_count = 0;
  std::uint64_t skyline_size = 0;
  // Log2 histogram of the per-sample tightness percents (bucket layout of
  // obs/histogram.h; count/sum reconcile against the sample counters).
  Histogram::Snapshot bound_tightness;
  std::vector<PlanPhase> phases;
  std::vector<PlanSourceProgress> sources;
  PlanCacheTiers tiers;

  // Mean plb/dN tightness in percent (100 = bounds were exact); 0 when no
  // samples were taken.
  double mean_tightness_pct() const {
    return bound_tightness_samples == 0
               ? 0.0
               : static_cast<double>(bound_tightness_pct_sum) /
                     static_cast<double>(bound_tightness_samples);
  }
};

// Per-query collection sink the algorithms write into (single-threaded:
// a query runs on one worker). Reusable across queries via Reset().
class PlanCollector {
 public:
  void Reset() {
    tightness_ = Histogram::Snapshot{};
    sources_.clear();
    tiers_ = PlanCacheTiers{};
  }

  // One bound-tightness sample, as the percent RecordBoundTightness
  // returned. Kept separate from the global counters on purpose: the
  // reconciliation oracle compares this histogram's count/sum against the
  // independently accumulated thread counters.
  void RecordTightness(unsigned pct) {
    ++tightness_.buckets[Histogram::BucketIndex(pct)];
    ++tightness_.count;
    tightness_.sum += pct;
  }

  // Final progress of one source (last write wins, keyed by index).
  void RecordSource(std::size_t source, std::uint64_t settled_nodes,
                    double radius, bool resumed_from_cache);

  void RecordMemoHit(std::uint64_t n = 1) { tiers_.memo_hits += n; }
  void RecordWavefrontExact(std::uint64_t n = 1) {
    tiers_.wavefront_exact += n;
  }
  void RecordComputed(std::uint64_t n = 1) { tiers_.computed += n; }

  const Histogram::Snapshot& tightness() const { return tightness_; }
  const std::vector<PlanSourceProgress>& sources() const { return sources_; }
  const PlanCacheTiers& tiers() const { return tiers_; }

 private:
  Histogram::Snapshot tightness_;
  std::vector<PlanSourceProgress> sources_;
  PlanCacheTiers tiers_;
};

// Folds the post-run pieces into one plan. `profile` and `collector` may
// be null (phases / sources+tiers+histogram are then empty); `stats`
// supplies every scalar total, so reconciliation against it is exact by
// construction and ReconcilePlan guards the fold itself.
ExecutionPlan BuildExecutionPlan(std::string_view algorithm,
                                 const msq::QueryStats& stats,
                                 const QueryProfile* profile,
                                 const PlanCollector* collector,
                                 bool truncated);

// Exact reconciliation oracle: empty string when every plan counter equals
// its QueryStats twin, the tightness histogram's count/sum equal the
// sample counters, and the phase rollup sums to the totals; otherwise a
// description of the first mismatch.
std::string ReconcilePlan(const ExecutionPlan& plan,
                          const msq::QueryStats& stats);

// Single-line JSON encoding of one plan (the served `"plan"` field and the
// /explainz entries).
std::string PlanJson(const ExecutionPlan& plan);

// One retained plan in the bounded recent-plan ring.
struct RetainedPlan {
  std::uint64_t sequence = 0;   // flight-recorder sequence of the query
  std::string trace_id;         // hex trace id ("" when untraced)
  ExecutionPlan plan;
};

// Running per-algorithm pruning-power totals — the always-on side of
// /explainz. Scalar adds from counters the completion path already holds,
// so accounting every query costs nothing measurable (unlike building and
// retaining a full ExecutionPlan, which is explain-only).
struct PlanAggregate {
  std::uint64_t queries = 0;
  std::uint64_t dominance_tests = 0;
  std::uint64_t dominance_avoided = 0;
  std::uint64_t bound_pruned = 0;
  std::uint64_t bound_examined = 0;
  std::uint64_t bound_samples = 0;
  std::uint64_t bound_pct_sum = 0;
};

// Bounded FIFO of recent plans plus the per-algorithm pruning aggregates
// (GET /explainz). Mutex-guarded — full plans are retained only for
// explain-requested queries; Account() is the cheap every-completion path.
class PlanStore {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit PlanStore(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void Retain(RetainedPlan plan);
  std::vector<RetainedPlan> Snapshot() const;

  // Folds one completed query's pruning counters into the per-algorithm
  // rollup. Called for every completion when telemetry is on.
  void Account(std::string_view algorithm, const msq::QueryStats& stats);
  std::vector<std::pair<std::string, PlanAggregate>> Aggregates() const;

  std::size_t capacity() const { return capacity_; }
  std::uint64_t retained_total() const;
  std::uint64_t accounted_total() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<RetainedPlan> plans_;
  std::map<std::string, PlanAggregate, std::less<>> aggregates_;
  std::uint64_t retained_total_ = 0;
  std::uint64_t accounted_total_ = 0;
};

// The GET /explainz body: the per-algorithm pruning-efficiency rollup
// (queries, dominance tests performed / avoided and the avoided ratio,
// objects bound-pruned / examined and the prune ratio, mean bound
// tightness — fed by Account for every completion) plus the retained
// explain plans.
std::string ExplainzJson(const PlanStore& store);

}  // namespace msq::obs

#endif  // MSQ_OBS_PLAN_H_
