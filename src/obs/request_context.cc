#include "obs/request_context.h"

#include <atomic>
#include <chrono>
#include <random>

namespace msq::obs {
namespace {

// splitmix64: full-period 64-bit mixer — consecutive counter values map to
// well-distributed ids.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t ProcessSeed() {
  static const std::uint64_t seed = [] {
    std::random_device rd;
    std::uint64_t s = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    s ^= static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return s | 1;  // never zero
  }();
  return seed;
}

std::uint64_t NextId() {
  static std::atomic<std::uint64_t> counter{0};
  return Mix(ProcessSeed() +
             counter.fetch_add(1, std::memory_order_relaxed));
}

void AppendHex(std::string* out, std::uint64_t value, int digits) {
  static const char kHex[] = "0123456789abcdef";
  for (int shift = (digits - 1) * 4; shift >= 0; shift -= 4) {
    out->push_back(kHex[(value >> shift) & 0xF]);
  }
}

// Parses exactly `digits` lowercase hex chars. Uppercase is rejected: the
// W3C grammar is lowercase-only and we don't normalize on behalf of a
// broken propagator.
bool ParseHex(std::string_view s, std::uint64_t* out) {
  std::uint64_t value = 0;
  for (const char c : s) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = value;
  return true;
}

}  // namespace

std::string TraceContext::TraceIdHex() const {
  std::string out;
  out.reserve(32);
  AppendHex(&out, trace_id_hi, 16);
  AppendHex(&out, trace_id_lo, 16);
  return out;
}

std::string TraceContext::ToTraceparent() const {
  std::string out;
  out.reserve(55);
  out += "00-";
  AppendHex(&out, trace_id_hi, 16);
  AppendHex(&out, trace_id_lo, 16);
  out += '-';
  AppendHex(&out, parent_span_id, 16);
  out += '-';
  AppendHex(&out, sampled ? 1 : 0, 2);
  return out;
}

TraceContext TraceContext::Mint(bool sampled) {
  TraceContext ctx;
  // Two mixer outputs for the 128-bit id; re-draw the (astronomically
  // unlikely) all-zero id so valid() is unambiguous.
  do {
    ctx.trace_id_hi = NextId();
    ctx.trace_id_lo = NextId();
  } while (!ctx.valid());
  do {
    ctx.parent_span_id = NextId();
  } while (ctx.parent_span_id == 0);
  ctx.sampled = sampled;
  return ctx;
}

StatusOr<TraceContext> TraceContext::Parse(std::string_view traceparent) {
  if (traceparent.size() != 55) {
    return Status::InvalidArgument(
        "traceparent must be exactly 55 bytes, got " +
        std::to_string(traceparent.size()));
  }
  if (traceparent[2] != '-' || traceparent[35] != '-' ||
      traceparent[52] != '-') {
    return Status::InvalidArgument(
        "traceparent separators must be '-' at offsets 2, 35, 52");
  }
  std::uint64_t version = 0;
  (void)version;
  if (!ParseHex(traceparent.substr(0, 2), &version)) {
    return Status::InvalidArgument(
        "traceparent version is not lowercase hex");
  }
  if (traceparent.substr(0, 2) != "00") {
    return Status::InvalidArgument(
        "unsupported traceparent version \"" +
        std::string(traceparent.substr(0, 2)) + "\" (only 00)");
  }
  TraceContext ctx;
  if (!ParseHex(traceparent.substr(3, 16), &ctx.trace_id_hi) ||
      !ParseHex(traceparent.substr(19, 16), &ctx.trace_id_lo)) {
    return Status::InvalidArgument(
        "traceparent trace-id is not 32 lowercase hex chars");
  }
  if (!ctx.valid()) {
    return Status::InvalidArgument("traceparent trace-id must be non-zero");
  }
  if (!ParseHex(traceparent.substr(36, 16), &ctx.parent_span_id)) {
    return Status::InvalidArgument(
        "traceparent parent-id is not 16 lowercase hex chars");
  }
  if (ctx.parent_span_id == 0) {
    return Status::InvalidArgument(
        "traceparent parent-id must be non-zero");
  }
  std::uint64_t flags = 0;
  if (!ParseHex(traceparent.substr(53, 2), &flags)) {
    return Status::InvalidArgument(
        "traceparent flags are not lowercase hex");
  }
  ctx.sampled = (flags & 0x1) != 0;
  return ctx;
}

}  // namespace msq::obs
