// Request-scoped trace context: the identity a request keeps across the
// whole serving path (socket accept -> parse -> admission -> executor
// queue -> CE/EDC/LBC -> cache probes -> storage page reads).
//
// The wire format is the W3C Trace Context `traceparent` header:
//
//   00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// e.g. 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//
// Parsing is strict — stricter than the W3C recommendation, matching the
// serving schema's reject-don't-guess stance: only version 00, exactly 55
// bytes, lowercase hex, non-zero trace and parent ids. A request carrying
// a malformed traceparent is rejected with INVALID_ARGUMENT rather than
// silently re-minted, so propagation bugs surface at the edge.
//
// The `sampled` bit is the *head* sampling decision (W3C flags bit 0, or
// the server's own head-rate coin when minting). Head-sampled requests get
// detail spans (per-miss storage reads, cache probes); every request —
// sampled or not — still gets coarse phase spans and is a candidate for
// tail retention (obs/trace_store.h) if it turns out slow, errored, or
// truncated.
#ifndef MSQ_OBS_REQUEST_CONTEXT_H_
#define MSQ_OBS_REQUEST_CONTEXT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace msq::obs {

struct TraceContext {
  // 128-bit trace id, zero when the context is unset.
  std::uint64_t trace_id_hi = 0;
  std::uint64_t trace_id_lo = 0;
  // The caller's span id (16 hex on the wire). We record it for the wide
  // event but do not build spans under it — server-side spans are rooted
  // at the request.
  std::uint64_t parent_span_id = 0;
  // Head-sampling decision: flags bit 0 of the incoming traceparent, or
  // the mint-time coin. Grants detail spans; tail retention is independent.
  bool sampled = false;

  bool valid() const { return (trace_id_hi | trace_id_lo) != 0; }

  // 32 lowercase hex chars (hi then lo).
  std::string TraceIdHex() const;
  // The full 55-byte traceparent value for this context.
  std::string ToTraceparent() const;

  // Mints a fresh context: a process-unique 128-bit trace id and a
  // non-zero parent span id. Thread-safe, allocation-free, a few ns.
  static TraceContext Mint(bool sampled);

  // Strict parse of a traceparent value (see file comment for the exact
  // accepted grammar). kInvalidArgument with a specific message otherwise.
  static StatusOr<TraceContext> Parse(std::string_view traceparent);
};

}  // namespace msq::obs

#endif  // MSQ_OBS_REQUEST_CONTEXT_H_
