#include "obs/telemetry.h"

#include <cmath>
#include <utility>

namespace msq::obs {
namespace {

std::uint64_t LatencyMicros(double seconds) {
  if (seconds <= 0.0) return 0;
  return static_cast<std::uint64_t>(std::llround(seconds * 1e6));
}

}  // namespace

ServingTelemetry::ServingTelemetry(const TelemetryConfig& config)
    : config_(config),
      registry_(config.registry != nullptr ? config.registry
                                           : &GlobalMetrics()),
      flight_(config.flight_capacity),
      queries_(registry_->counter(metric::kExecQueries)),
      slow_queries_(registry_->counter(metric::kExecSlowQueries)),
      slow_captured_(
          registry_->counter(metric::kExecSlowQueriesCaptured)) {}

const ServingTelemetry::AlgoHistograms& ServingTelemetry::HistogramsFor(
    std::string_view algorithm) {
  std::lock_guard<std::mutex> lock(algos_mu_);
  auto it = algos_.find(algorithm);
  if (it == algos_.end()) {
    const std::string prefix = "exec." + std::string(algorithm) + ".";
    AlgoHistograms histograms;
    histograms.latency_us =
        registry_->histogram(prefix + metric::kLatencyUsHist);
    histograms.network_page_accesses =
        registry_->histogram(prefix + metric::kNetworkPageAccessesHist);
    histograms.index_page_accesses =
        registry_->histogram(prefix + metric::kIndexPageAccessesHist);
    histograms.settled_nodes =
        registry_->histogram(prefix + metric::kSettledNodesHist);
    histograms.cache_hits =
        registry_->histogram(prefix + metric::kCacheHitsHist);
    it = algos_.emplace(std::string(algorithm), histograms).first;
  }
  return it->second;
}

std::uint64_t ServingTelemetry::RecordQuery(std::string_view algorithm,
                                            const FlightRecord& record) {
  if (!config_.enabled) return 0;
  const AlgoHistograms& histograms = HistogramsFor(algorithm);
  histograms.latency_us->Observe(LatencyMicros(record.wall_seconds));
  histograms.network_page_accesses->Observe(record.network_hits +
                                            record.network_misses);
  histograms.index_page_accesses->Observe(record.index_hits +
                                          record.index_misses);
  histograms.settled_nodes->Observe(record.settled_nodes);
  histograms.cache_hits->Observe(record.cache_hits);
  queries_->Inc();
  return flight_.Record(record);
}

bool ServingTelemetry::ShouldCaptureSlow(const FlightRecord& record) {
  if (!config_.enabled) return false;
  const bool wall_slow = config_.slow_wall_seconds > 0.0 &&
                         record.wall_seconds > config_.slow_wall_seconds;
  const std::uint64_t accesses = record.network_hits +
                                 record.network_misses + record.index_hits +
                                 record.index_misses;
  const bool pages_slow = config_.slow_page_accesses > 0 &&
                          accesses > config_.slow_page_accesses;
  if (!wall_slow && !pages_slow) return false;
  slow_queries_->Inc();
  std::lock_guard<std::mutex> lock(slow_mu_);
  // Once the log is full, stop re-running queries: detection stays counted,
  // capture cost stays bounded.
  return slow_log_.size() < config_.slow_log_capacity;
}

void ServingTelemetry::RetainSlowQuery(SlowQueryRecord record) {
  std::lock_guard<std::mutex> lock(slow_mu_);
  if (slow_log_.size() >= config_.slow_log_capacity) return;
  slow_log_.push_back(std::move(record));
  slow_captured_->Inc();
}

std::vector<SlowQueryRecord> ServingTelemetry::SlowQueries() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return std::vector<SlowQueryRecord>(slow_log_.begin(), slow_log_.end());
}

}  // namespace msq::obs
