#include "obs/telemetry.h"

#include <cmath>
#include <utility>

namespace msq::obs {
namespace {

std::uint64_t LatencyMicros(double seconds) {
  if (seconds <= 0.0) return 0;
  return static_cast<std::uint64_t>(std::llround(seconds * 1e6));
}

}  // namespace

ServingTelemetry::ServingTelemetry(const TelemetryConfig& config)
    : config_(config),
      registry_(config.registry != nullptr ? config.registry
                                           : &GlobalMetrics()),
      flight_(config.flight_capacity),
      traces_(config.trace_capacity),
      plans_(config.plan_capacity),
      queries_(registry_->counter(metric::kExecQueries)),
      slow_queries_(registry_->counter(metric::kExecSlowQueries)),
      slow_captured_(
          registry_->counter(metric::kExecSlowQueriesCaptured)),
      traces_retained_(registry_->counter(metric::kTracesRetained)),
      head_sampled_(registry_->counter(metric::kTracesHeadSampled)) {}

const ServingTelemetry::AlgoHistograms& ServingTelemetry::HistogramsFor(
    std::string_view algorithm) {
  std::lock_guard<std::mutex> lock(algos_mu_);
  auto it = algos_.find(algorithm);
  if (it == algos_.end()) {
    const std::string prefix = "exec." + std::string(algorithm) + ".";
    AlgoHistograms histograms;
    histograms.latency_us =
        registry_->histogram(prefix + metric::kLatencyUsHist);
    histograms.network_page_accesses =
        registry_->histogram(prefix + metric::kNetworkPageAccessesHist);
    histograms.index_page_accesses =
        registry_->histogram(prefix + metric::kIndexPageAccessesHist);
    histograms.settled_nodes =
        registry_->histogram(prefix + metric::kSettledNodesHist);
    histograms.cache_hits =
        registry_->histogram(prefix + metric::kCacheHitsHist);
    it = algos_.emplace(std::string(algorithm), histograms).first;
  }
  return it->second;
}

std::uint64_t ServingTelemetry::RecordQuery(std::string_view algorithm,
                                            const FlightRecord& record) {
  if (!config_.enabled) return 0;
  const AlgoHistograms& histograms = HistogramsFor(algorithm);
  histograms.latency_us->Observe(LatencyMicros(record.wall_seconds));
  histograms.network_page_accesses->Observe(record.network_hits +
                                            record.network_misses);
  histograms.index_page_accesses->Observe(record.index_hits +
                                          record.index_misses);
  histograms.settled_nodes->Observe(record.settled_nodes);
  histograms.cache_hits->Observe(record.cache_hits);
  Histogram* performed = dominance_performed_.load(std::memory_order_acquire);
  if (performed == nullptr) {
    performed = registry_->histogram(metric::kDominancePerformedHist);
    dominance_performed_.store(performed, std::memory_order_release);
  }
  Histogram* avoided = dominance_avoided_.load(std::memory_order_acquire);
  if (avoided == nullptr) {
    avoided = registry_->histogram(metric::kDominanceAvoidedHist);
    dominance_avoided_.store(avoided, std::memory_order_release);
  }
  performed->Observe(record.dominance_tests);
  avoided->Observe(record.dominance_avoided);
  queries_->Inc();
  return flight_.Record(record);
}

bool ServingTelemetry::IsSlow(const FlightRecord& record) const {
  const bool wall_slow = config_.slow_wall_seconds > 0.0 &&
                         record.wall_seconds > config_.slow_wall_seconds;
  const std::uint64_t accesses = record.network_hits +
                                 record.network_misses + record.index_hits +
                                 record.index_misses;
  const bool pages_slow = config_.slow_page_accesses > 0 &&
                          accesses > config_.slow_page_accesses;
  return wall_slow || pages_slow;
}

bool ServingTelemetry::ShouldCaptureSlow(const FlightRecord& record) {
  if (!config_.enabled) return false;
  if (!IsSlow(record)) return false;
  slow_queries_->Inc();
  std::lock_guard<std::mutex> lock(slow_mu_);
  // Once the log is full, captures stop: detection stays counted, capture
  // memory stays bounded.
  return slow_log_.size() < config_.slow_log_capacity;
}

bool ServingTelemetry::HeadSample() {
  if (!config_.enabled || config_.head_sample_every == 0) return false;
  const std::uint64_t n =
      head_counter_.fetch_add(1, std::memory_order_relaxed);
  if (n % config_.head_sample_every != 0) return false;
  head_sampled_->Inc();
  return true;
}

RetainReason ServingTelemetry::CompleteRequest(const TraceContext& ctx,
                                               const FlightRecord& record,
                                               double queue_seconds,
                                               std::string_view algorithm,
                                               QueryProfile profile) {
  if (!config_.enabled) return RetainReason::kNone;
  // Slow queries feed the bounded slow log from this run's profile — no
  // re-execution, so nothing is double-counted anywhere.
  const bool capture_slow = ShouldCaptureSlow(record);
  if (capture_slow) {
    SlowQueryRecord slow;
    slow.summary = record;
    slow.recapture_wall_seconds = record.wall_seconds;
    slow.profile = profile;
    RetainSlowQuery(std::move(slow));
  }
  // Retention priority: outcome anomalies first, then slowness, then the
  // head-sampling coin. 100% of errored/truncated/slow traces are kept;
  // fast healthy traces are kept at most at the head rate.
  RetainReason reason = RetainReason::kNone;
  if (record.status_code != 0) {
    reason = RetainReason::kError;
  } else if (record.truncation != 0) {
    reason = RetainReason::kTruncated;
  } else if (capture_slow || IsSlow(record)) {
    reason = RetainReason::kSlow;
  } else if (ctx.sampled) {
    reason = RetainReason::kHeadSampled;
  }
  if (reason == RetainReason::kNone) return reason;
  RetainedTrace trace;
  trace.trace_id_hi = ctx.trace_id_hi;
  trace.trace_id_lo = ctx.trace_id_lo;
  trace.sequence = record.sequence;
  trace.algorithm = std::string(algorithm);
  trace.status_code = record.status_code;
  trace.truncation = record.truncation;
  trace.reason = reason;
  trace.queue_seconds = queue_seconds;
  trace.wall_seconds = record.wall_seconds;
  trace.page_accesses = record.network_hits + record.network_misses +
                        record.index_hits + record.index_misses;
  trace.profile = std::move(profile);
  const std::string trace_id = trace.TraceIdHex();
  traces_.Retain(std::move(trace));
  traces_retained_->Inc();
  // Exemplar: link this latency observation's histogram bucket to the
  // retained trace so the Prometheus exposition can point a p99 bucket at
  // a /tracez trace_id.
  exemplars_.Observe(
      "exec." + std::string(algorithm) + "." + metric::kLatencyUsHist,
      LatencyMicros(record.wall_seconds), trace_id);
  // Pruning-power exemplars: point the dominance/bound-tightness series at
  // the same retained trace.
  exemplars_.Observe(metric::kDominancePerformedHist, record.dominance_tests,
                     trace_id);
  exemplars_.Observe(metric::kDominanceAvoidedHist, record.dominance_avoided,
                     trace_id);
  if (record.bound_samples > 0) {
    exemplars_.Observe(metric::kBoundTightnessHist,
                       record.bound_pct_sum / record.bound_samples, trace_id);
  }
  return reason;
}

void ServingTelemetry::RetainSlowQuery(SlowQueryRecord record) {
  std::lock_guard<std::mutex> lock(slow_mu_);
  if (slow_log_.size() >= config_.slow_log_capacity) return;
  slow_log_.push_back(std::move(record));
  slow_captured_->Inc();
}

std::vector<SlowQueryRecord> ServingTelemetry::SlowQueries() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return std::vector<SlowQueryRecord>(slow_log_.begin(), slow_log_.end());
}

}  // namespace msq::obs
