// Always-on serving telemetry: the layer QueryExecutor reports every query
// completion into. Three consumers hang off one RecordQuery call:
//
//   1. Distribution histograms (obs/histogram.h) in a MetricsRegistry,
//      per algorithm: latency, network/index page accesses, settled
//      nodes, cache hits — `exec.<algo>.<event>_hist`. Their
//      count/sum reconcile exactly with the counter registry and with
//      QueryStats totals once the batch is quiescent.
//   2. The flight recorder (obs/flight_recorder.h): the last N query
//      summaries, always reconstructible.
//   3. Tail-based trace sampling (CompleteRequest): the executor traces
//      every query into its worker's span buffer and hands the finished
//      profile here; the trace is retained in the TraceStore iff the
//      query was slow (wall/page thresholds), errored, truncated, or
//      head-sampled at the configured rate — otherwise it is dropped on
//      the spot. Slow completions also land in the bounded slow-query
//      log, fed from the same profile: the old "re-run the query traced"
//      capture path is gone, so a slow query is never executed twice and
//      counters/histograms/flight records count it exactly once.
//
// This file stays core-independent like the rest of src/obs: the executor
// translates its SkylineResult/ThreadCounters into a plain FlightRecord
// before reporting. Everything here is thread-safe; RecordQuery is two
// atomic bumps, one small mutex-guarded pointer-cache lookup, and a ring
// write — cheap enough to stay on for every query (< 2% of bench_throughput
// cold QPS, measured in BENCH_throughput.json).
#ifndef MSQ_OBS_TELEMETRY_H_
#define MSQ_OBS_TELEMETRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/plan.h"
#include "obs/request_context.h"
#include "obs/trace.h"
#include "obs/trace_store.h"

namespace msq::obs {

struct TelemetryConfig {
  // false turns every telemetry call into a no-op (the baseline mode the
  // throughput bench measures overhead against).
  bool enabled = true;
  std::size_t flight_capacity = FlightRecorder::kDefaultCapacity;
  // Slow-query thresholds; 0 disables the respective trigger. A query is
  // slow when wall time exceeds `slow_wall_seconds` or total buffer page
  // accesses (network + index) exceed `slow_page_accesses`. Slow queries
  // feed both the slow-query log and tail trace retention.
  double slow_wall_seconds = 0.0;
  std::uint64_t slow_page_accesses = 0;
  // Retained slow-query profiles; once full, the log stops growing
  // (detection stays counted; traces may still be tail-retained).
  std::size_t slow_log_capacity = 16;
  // Tail-sampling retention: capacity of the retained-trace store, and the
  // head-sampling rate — every Nth query is sampled at ingress regardless
  // of outcome (0 = head sampling off; 1 = sample everything). Slow,
  // errored, and truncated queries are always retained.
  std::size_t trace_capacity = TraceStore::kDefaultCapacity;
  std::uint64_t head_sample_every = 0;
  // Recent execution plans retained for GET /explainz.
  std::size_t plan_capacity = PlanStore::kDefaultCapacity;
  // Histogram/counter registry; null means GlobalMetrics(). Tests pass an
  // isolated registry.
  MetricsRegistry* registry = nullptr;
};

// One auto-captured slow query: the completion record that tripped the
// threshold plus the profile recorded during that same run (queries are
// always traced, so capture never re-executes anything).
struct SlowQueryRecord {
  FlightRecord summary;
  // Wall seconds of the run the profile covers. Equal to
  // summary.wall_seconds since capture stopped re-running queries; kept
  // for dump compatibility.
  double recapture_wall_seconds = 0.0;
  QueryProfile profile;
};

class ServingTelemetry {
 public:
  explicit ServingTelemetry(const TelemetryConfig& config = {});

  ServingTelemetry(const ServingTelemetry&) = delete;
  ServingTelemetry& operator=(const ServingTelemetry&) = delete;

  bool enabled() const { return config_.enabled; }
  const TelemetryConfig& config() const { return config_; }
  MetricsRegistry* registry() const { return registry_; }

  // Reports one query completion: observes the per-algorithm histograms
  // and appends to the flight recorder. `algorithm` is the stable
  // AlgorithmName. Returns the ring-assigned sequence (0 when disabled)
  // so the caller can stamp its own copy of the record.
  std::uint64_t RecordQuery(std::string_view algorithm,
                            const FlightRecord& record);

  // True when `record` crosses a slow threshold and the slow log still has
  // room for RetainSlowQuery. Also counts the detection
  // (exec.slow_queries).
  bool ShouldCaptureSlow(const FlightRecord& record);

  void RetainSlowQuery(SlowQueryRecord record);

  // Head-sampling coin: true for every `head_sample_every`-th call (and
  // never when the rate is 0). Thread-safe; called once per request at
  // ingress (server accept or executor submit without a context).
  bool HeadSample();

  // Tail-sampling completion hook, called by the executor once per query
  // after RecordQuery. Decides retention (slow per the thresholds above /
  // error / truncated / ctx.sampled), stores the trace, feeds the
  // slow-query log and the latency-histogram exemplar, and returns the
  // decision (kNone = dropped). `queue_seconds` is submit -> execute
  // start; `profile` is the span tree of this run.
  RetainReason CompleteRequest(const TraceContext& ctx,
                               const FlightRecord& record,
                               double queue_seconds,
                               std::string_view algorithm,
                               QueryProfile profile);

  const FlightRecorder& flight_recorder() const { return flight_; }
  std::vector<SlowQueryRecord> SlowQueries() const;
  const TraceStore& trace_store() const { return traces_; }
  PlanStore& plans() { return plans_; }
  const PlanStore& plans() const { return plans_; }
  ExemplarStore& exemplars() { return exemplars_; }
  const ExemplarStore& exemplars() const { return exemplars_; }

 private:
  struct AlgoHistograms {
    Histogram* latency_us = nullptr;
    Histogram* network_page_accesses = nullptr;
    Histogram* index_page_accesses = nullptr;
    Histogram* settled_nodes = nullptr;
    Histogram* cache_hits = nullptr;
  };
  const AlgoHistograms& HistogramsFor(std::string_view algorithm);
  // Pure threshold test (no counting, no log-capacity check).
  bool IsSlow(const FlightRecord& record) const;

  const TelemetryConfig config_;
  MetricsRegistry* const registry_;
  FlightRecorder flight_;
  TraceStore traces_;
  ExemplarStore exemplars_;
  PlanStore plans_;
  // Per-query pruning-power distributions (msq_dominance_tests_performed /
  // msq_dominance_tests_avoided in the Prometheus exposition). Registered
  // lazily on the first RecordQuery so a disabled telemetry instance adds
  // no histograms to the registry; the registry hands back one stable
  // pointer per name, so a racing double-init stores the same value.
  std::atomic<Histogram*> dominance_performed_{nullptr};
  std::atomic<Histogram*> dominance_avoided_{nullptr};
  Counter* const queries_;
  Counter* const slow_queries_;
  Counter* const slow_captured_;
  Counter* const traces_retained_;
  Counter* const head_sampled_;
  std::atomic<std::uint64_t> head_counter_{0};

  std::mutex algos_mu_;
  std::map<std::string, AlgoHistograms, std::less<>> algos_;

  mutable std::mutex slow_mu_;
  std::deque<SlowQueryRecord> slow_log_;
};

}  // namespace msq::obs

#endif  // MSQ_OBS_TELEMETRY_H_
