// Always-on serving telemetry: the layer QueryExecutor reports every query
// completion into. Three consumers hang off one RecordQuery call:
//
//   1. Distribution histograms (obs/histogram.h) in a MetricsRegistry,
//      per algorithm: latency, network/index page accesses, settled
//      nodes, cache hits — `exec.<algo>.<event>_hist`. Their
//      count/sum reconcile exactly with the counter registry and with
//      QueryStats totals once the batch is quiescent.
//   2. The flight recorder (obs/flight_recorder.h): the last N query
//      summaries, always reconstructible.
//   3. Slow-query detection: when a completion crosses the configured
//      wall-time or page-access threshold, ShouldCaptureSlow tells the
//      executor to re-run the query once with a TraceSession attached;
//      the resulting QueryProfile lands in a bounded slow-query log.
//
// This file stays core-independent like the rest of src/obs: the executor
// translates its SkylineResult/ThreadCounters into a plain FlightRecord
// before reporting. Everything here is thread-safe; RecordQuery is two
// atomic bumps, one small mutex-guarded pointer-cache lookup, and a ring
// write — cheap enough to stay on for every query (< 2% of bench_throughput
// cold QPS, measured in BENCH_throughput.json).
#ifndef MSQ_OBS_TELEMETRY_H_
#define MSQ_OBS_TELEMETRY_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace msq::obs {

struct TelemetryConfig {
  // false turns every telemetry call into a no-op (the baseline mode the
  // throughput bench measures overhead against).
  bool enabled = true;
  std::size_t flight_capacity = FlightRecorder::kDefaultCapacity;
  // Slow-query auto-capture triggers; 0 disables the respective trigger.
  // A query is slow when wall time exceeds `slow_wall_seconds` or total
  // buffer page accesses (network + index) exceed `slow_page_accesses`.
  double slow_wall_seconds = 0.0;
  std::uint64_t slow_page_accesses = 0;
  // Retained slow-query profiles; once full, capture stops (no re-runs).
  std::size_t slow_log_capacity = 16;
  // Histogram/counter registry; null means GlobalMetrics(). Tests pass an
  // isolated registry.
  MetricsRegistry* registry = nullptr;
};

// One auto-captured slow query: the completion record that tripped the
// threshold plus the profile of the traced re-run.
struct SlowQueryRecord {
  FlightRecord summary;
  // Wall seconds of the traced re-run (the profile's own window; the
  // original, untraced timing is summary.wall_seconds).
  double recapture_wall_seconds = 0.0;
  QueryProfile profile;
};

class ServingTelemetry {
 public:
  explicit ServingTelemetry(const TelemetryConfig& config = {});

  ServingTelemetry(const ServingTelemetry&) = delete;
  ServingTelemetry& operator=(const ServingTelemetry&) = delete;

  bool enabled() const { return config_.enabled; }
  const TelemetryConfig& config() const { return config_; }
  MetricsRegistry* registry() const { return registry_; }

  // Reports one query completion: observes the per-algorithm histograms
  // and appends to the flight recorder. `algorithm` is the stable
  // AlgorithmName. Returns the ring-assigned sequence (0 when disabled)
  // so the caller can stamp its own copy of the record.
  std::uint64_t RecordQuery(std::string_view algorithm,
                            const FlightRecord& record);

  // True when `record` crosses a slow threshold and the slow log still has
  // room — the executor then re-runs the query traced and calls
  // RetainSlowQuery. Also counts the detection (exec.slow_queries).
  bool ShouldCaptureSlow(const FlightRecord& record);

  void RetainSlowQuery(SlowQueryRecord record);

  const FlightRecorder& flight_recorder() const { return flight_; }
  std::vector<SlowQueryRecord> SlowQueries() const;

 private:
  struct AlgoHistograms {
    Histogram* latency_us = nullptr;
    Histogram* network_page_accesses = nullptr;
    Histogram* index_page_accesses = nullptr;
    Histogram* settled_nodes = nullptr;
    Histogram* cache_hits = nullptr;
  };
  const AlgoHistograms& HistogramsFor(std::string_view algorithm);

  const TelemetryConfig config_;
  MetricsRegistry* const registry_;
  FlightRecorder flight_;
  Counter* const queries_;
  Counter* const slow_queries_;
  Counter* const slow_captured_;

  std::mutex algos_mu_;
  std::map<std::string, AlgoHistograms, std::less<>> algos_;

  mutable std::mutex slow_mu_;
  std::deque<SlowQueryRecord> slow_log_;
};

}  // namespace msq::obs

#endif  // MSQ_OBS_TELEMETRY_H_
