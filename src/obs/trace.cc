#include "obs/trace.h"

#include <chrono>

namespace msq::obs {
namespace {

// Bounds a runaway span tree (e.g. a per-candidate span in a huge query);
// far above any profile a human or the Chrome viewer can use.
constexpr std::size_t kMaxSpans = 1 << 17;

double NowSeconds() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

}  // namespace

SpanCounters& SpanCounters::operator+=(const SpanCounters& other) {
  network_hits += other.network_hits;
  network_misses += other.network_misses;
  index_hits += other.index_hits;
  index_misses += other.index_misses;
  settled_nodes += other.settled_nodes;
  dominance_tests += other.dominance_tests;
  dominance_avoided += other.dominance_avoided;
  bound_pruned += other.bound_pruned;
  bound_examined += other.bound_examined;
  bound_samples += other.bound_samples;
  bound_pct_sum += other.bound_pct_sum;
  cache_wavefront_hits += other.cache_wavefront_hits;
  cache_wavefront_misses += other.cache_wavefront_misses;
  cache_memo_hits += other.cache_memo_hits;
  cache_memo_misses += other.cache_memo_misses;
  return *this;
}

SpanCounters QueryProfile::InclusiveCounters(std::size_t i) const {
  SpanCounters total = spans[i].self;
  // Children appear after their parent (spans are in open order), so one
  // forward sweep over descendants suffices.
  for (std::size_t j = i + 1; j < spans.size(); ++j) {
    int p = spans[j].parent;
    while (p > static_cast<int>(i)) p = spans[p].parent;
    if (p == static_cast<int>(i)) total += spans[j].self;
  }
  return total;
}

SpanCounters QueryProfile::TotalCounters() const {
  SpanCounters total;
  for (const SpanRecord& span : spans) total += span.self;
  return total;
}

TraceSession::TraceSession(MetricsRegistry* registry)
    : per_thread_(registry == &GlobalMetrics()),
      network_hits_(registry->counter(metric::kNetworkBufferHits)),
      network_misses_(registry->counter(metric::kNetworkBufferMisses)),
      index_hits_(registry->counter(metric::kIndexBufferHits)),
      index_misses_(registry->counter(metric::kIndexBufferMisses)),
      settled_nodes_(registry->counter(metric::kSettledNodes)),
      dominance_tests_(registry->counter(metric::kDominanceTests)),
      dominance_avoided_(registry->counter(metric::kDominanceAvoided)),
      bound_pruned_(registry->counter(metric::kBoundPruned)),
      bound_examined_(registry->counter(metric::kBoundExamined)),
      bound_samples_(registry->counter(metric::kBoundSamples)),
      bound_pct_sum_(registry->counter(metric::kBoundPctSum)),
      cache_wavefront_hits_(
          registry->counter(metric::kCacheWavefrontHits)),
      cache_wavefront_misses_(
          registry->counter(metric::kCacheWavefrontMisses)),
      cache_memo_hits_(registry->counter(metric::kCacheMemoHits)),
      cache_memo_misses_(registry->counter(metric::kCacheMemoMisses)),
      heap_peak_(registry->gauge(metric::kHeapPeak)) {}

TraceSession::Snapshot TraceSession::Read() const {
  Snapshot snap;
  if (per_thread_) {
    // The instrumented hot paths bump the thread-local block alongside the
    // global counters, so this thread's view is exact even while other
    // workers advance the shared totals.
    const ThreadCounters& tc = ThreadLocalCounters();
    snap.network_hits = tc.network_hits;
    snap.network_misses = tc.network_misses;
    snap.index_hits = tc.index_hits;
    snap.index_misses = tc.index_misses;
    snap.settled_nodes = tc.settled_nodes;
    snap.dominance_tests = tc.dominance_tests;
    snap.dominance_avoided = tc.dominance_avoided;
    snap.bound_pruned = tc.bound_pruned;
    snap.bound_examined = tc.bound_examined;
    snap.bound_samples = tc.bound_samples;
    snap.bound_pct_sum = tc.bound_pct_sum;
    snap.cache_wavefront_hits = tc.cache_wavefront_hits;
    snap.cache_wavefront_misses = tc.cache_wavefront_misses;
    snap.cache_memo_hits = tc.cache_memo_hits;
    snap.cache_memo_misses = tc.cache_memo_misses;
    return snap;
  }
  snap.network_hits = network_hits_->value();
  snap.network_misses = network_misses_->value();
  snap.index_hits = index_hits_->value();
  snap.index_misses = index_misses_->value();
  snap.settled_nodes = settled_nodes_->value();
  snap.dominance_tests = dominance_tests_->value();
  snap.dominance_avoided = dominance_avoided_->value();
  snap.bound_pruned = bound_pruned_->value();
  snap.bound_examined = bound_examined_->value();
  snap.bound_samples = bound_samples_->value();
  snap.bound_pct_sum = bound_pct_sum_->value();
  snap.cache_wavefront_hits = cache_wavefront_hits_->value();
  snap.cache_wavefront_misses = cache_wavefront_misses_->value();
  snap.cache_memo_hits = cache_memo_hits_->value();
  snap.cache_memo_misses = cache_memo_misses_->value();
  return snap;
}

double TraceSession::HeapPeak() const {
  return per_thread_ ? ThreadLocalCounters().heap_peak : heap_peak_->peak();
}

void TraceSession::HeapResetPeak() {
  if (per_thread_) {
    ThreadLocalCounters().ResetHeapPeak();
  } else {
    heap_peak_->ResetPeak();
  }
}

void TraceSession::HeapMergePeak(double peak) {
  if (per_thread_) {
    ThreadLocalCounters().MergeHeapPeak(peak);
  } else {
    heap_peak_->MergePeak(peak);
  }
}

void TraceSession::Attribute() {
  const Snapshot now = Read();
  if (!stack_.empty()) {
    SpanCounters& self = spans_[stack_.back()].self;
    self.network_hits += now.network_hits - last_.network_hits;
    self.network_misses += now.network_misses - last_.network_misses;
    self.index_hits += now.index_hits - last_.index_hits;
    self.index_misses += now.index_misses - last_.index_misses;
    self.settled_nodes += now.settled_nodes - last_.settled_nodes;
    self.dominance_tests += now.dominance_tests - last_.dominance_tests;
    self.dominance_avoided +=
        now.dominance_avoided - last_.dominance_avoided;
    self.bound_pruned += now.bound_pruned - last_.bound_pruned;
    self.bound_examined += now.bound_examined - last_.bound_examined;
    self.bound_samples += now.bound_samples - last_.bound_samples;
    self.bound_pct_sum += now.bound_pct_sum - last_.bound_pct_sum;
    self.cache_wavefront_hits +=
        now.cache_wavefront_hits - last_.cache_wavefront_hits;
    self.cache_wavefront_misses +=
        now.cache_wavefront_misses - last_.cache_wavefront_misses;
    self.cache_memo_hits += now.cache_memo_hits - last_.cache_memo_hits;
    self.cache_memo_misses +=
        now.cache_memo_misses - last_.cache_memo_misses;
  }
  last_ = now;
}

int TraceSession::OpenSpan(std::string_view name) {
  Attribute();
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return -1;
  }
  const double now = NowSeconds();
  if (stack_.empty() && spans_.empty()) epoch_ = now;
  SpanRecord span;
  span.name = std::string(name);
  span.parent = stack_.empty() ? -1 : stack_.back();
  span.depth = static_cast<int>(stack_.size());
  span.start_seconds = now - epoch_;
  const int id = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  stack_.push_back(id);
  // Scope the heap high-water mark to this span; the outer peak is folded
  // back in at close.
  saved_peaks_.push_back(HeapPeak());
  HeapResetPeak();
  return id;
}

void TraceSession::CloseTop(double now) {
  SpanRecord& span = spans_[stack_.back()];
  span.end_seconds = now - epoch_;
  span.heap_peak = HeapPeak();
  HeapMergePeak(saved_peaks_.back());
  if (span.parent >= 0) {
    spans_[span.parent].child_seconds += span.duration_seconds();
  }
  stack_.pop_back();
  saved_peaks_.pop_back();
}

void TraceSession::CloseSpan(int id) {
  if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) return;
  bool open = false;
  for (const int sid : stack_) {
    if (sid == id) {
      open = true;
      break;
    }
  }
  if (!open) return;  // already closed (possibly force-closed by a parent)
  Attribute();
  const double now = NowSeconds();
  while (!stack_.empty()) {
    const bool was_target = stack_.back() == id;
    CloseTop(now);
    if (was_target) break;
  }
}

QueryProfile TraceSession::Take() {
  Attribute();
  const double now = NowSeconds();
  while (!stack_.empty()) CloseTop(now);
  QueryProfile profile;
  profile.spans = std::move(spans_);
  profile.dropped_spans = dropped_;
  spans_.clear();
  dropped_ = 0;
  epoch_ = 0.0;
  return profile;
}

namespace {
thread_local TraceSession* g_current_session = nullptr;
}  // namespace

TraceSession* CurrentTraceSession() { return g_current_session; }

ScopedCurrentSession::ScopedCurrentSession(TraceSession* session)
    : prev_(g_current_session) {
  g_current_session = session;
}

ScopedCurrentSession::~ScopedCurrentSession() {
  g_current_session = prev_;
}

Span DetailSpan(std::string_view name) {
  TraceSession* session = g_current_session;
  if (session == nullptr || !session->detail()) return Span();
  return Span(session, name);
}

}  // namespace msq::obs
