// Query-phase tracing: TraceSession + RAII Span.
//
// A TraceSession records a tree of named spans. At every span open/close it
// snapshots the tracked cross-layer counters (obs/metrics.h) and attributes
// the delta since the previous snapshot to the span that was innermost over
// that interval ("self" attribution). Because the deltas partition the
// session's counter consumption, the self counters of all spans sum
// *exactly* to the root span's inclusive totals — which is what lets a
// query profile reconcile against the run's top-level QueryStats.
//
// Tracing is opt-in per query (SkylineQuerySpec::trace). With a null
// session every Span operation is a pointer test, so the instrumented
// algorithms pay near-zero overhead when profiling is off.
#ifndef MSQ_OBS_TRACE_H_
#define MSQ_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace msq::obs {

// Deltas of the tracked counters over one attribution interval.
struct SpanCounters {
  std::uint64_t network_hits = 0;    // buffer.network.hits
  std::uint64_t network_misses = 0;  // buffer.network.misses
  std::uint64_t index_hits = 0;      // buffer.index.hits
  std::uint64_t index_misses = 0;    // buffer.index.misses
  std::uint64_t settled_nodes = 0;   // graph.settled_nodes
  std::uint64_t dominance_tests = 0;  // core.dominance_tests
  // Pruning-power deltas (obs/metrics.h ThreadCounters for semantics).
  std::uint64_t dominance_avoided = 0;  // core.dominance_avoided
  std::uint64_t bound_pruned = 0;       // core.bound_pruned
  std::uint64_t bound_examined = 0;     // core.bound_examined
  std::uint64_t bound_samples = 0;      // core.bound_tightness_samples
  std::uint64_t bound_pct_sum = 0;      // core.bound_tightness_pct_sum
  // Cross-query cache consultations — a distinct access class, never part
  // of the page-access counters above.
  std::uint64_t cache_wavefront_hits = 0;    // cache.wavefront.hits
  std::uint64_t cache_wavefront_misses = 0;  // cache.wavefront.misses
  std::uint64_t cache_memo_hits = 0;         // cache.memo.hits
  std::uint64_t cache_memo_misses = 0;       // cache.memo.misses

  SpanCounters& operator+=(const SpanCounters& other);
};

// One finished span. Spans appear in open order; spans[0] of a profile is
// the root covering the whole query.
struct SpanRecord {
  std::string name;
  int parent = -1;  // index into the profile's spans; -1 for the root
  int depth = 0;
  double start_seconds = 0.0;  // relative to the session epoch
  double end_seconds = 0.0;
  // Counter deltas attributed exclusively to this span (intervals where it
  // was the innermost open span).
  SpanCounters self;
  // Wall time spent in direct children (self wall = duration - children).
  double child_seconds = 0.0;
  // High-water mark of the core.heap_peak gauge while this span was open
  // (children included).
  double heap_peak = 0.0;

  double duration_seconds() const { return end_seconds - start_seconds; }
  double self_seconds() const { return duration_seconds() - child_seconds; }
};

// The finished trace of one query, carried on SkylineResult.
struct QueryProfile {
  std::vector<SpanRecord> spans;
  // Spans not recorded because the session hit its span cap. Counter
  // attribution stays exact: dropped spans' activity folds into the
  // innermost recorded ancestor.
  std::size_t dropped_spans = 0;

  // Inclusive counters of span `i`: its self deltas plus all descendants'.
  SpanCounters InclusiveCounters(std::size_t i) const;
  // Sum of self counters across every span (== root inclusive totals).
  SpanCounters TotalCounters() const;
};

// Records one span tree. Reusable: Take() returns the finished profile and
// resets the session for the next query. Spans must not outlive the Take()
// of the session they were opened in.
//
// A session is owned by one thread (each QueryExecutor worker constructs
// its own). When tracking the global registry it snapshots the calling
// thread's obs::ThreadCounters instead of the shared totals, so span deltas
// cover exactly the owning thread's work — other workers hammering the same
// buffer pools never leak into this query's profile, and the exact
// self-sum == root-inclusive reconciliation survives concurrency. A custom
// registry (isolated tests) is snapshotted directly, as before.
class TraceSession {
 public:
  // Tracked counters are resolved from `registry` once at construction.
  explicit TraceSession(MetricsRegistry* registry = &GlobalMetrics());

  // Opens a span as a child of the innermost open span. Returns an id for
  // CloseSpan, or -1 when the span cap was hit (activity then accrues to
  // the nearest recorded ancestor).
  int OpenSpan(std::string_view name);

  // Closes `id`, force-closing any still-open descendants first (an
  // unbalanced close is handled, not UB). No-op for -1 or already-closed
  // ids.
  void CloseSpan(int id);

  // Force-closes every open span, returns the finished profile, and resets
  // the session for reuse.
  QueryProfile Take();

  bool idle() const { return stack_.empty(); }
  std::size_t open_depth() const { return stack_.size(); }

  // Detail mode gates the optional fine-grained spans opened via
  // DetailSpan() (per-miss storage page reads, cache probes). Off by
  // default; the executor enables it only for head-sampled requests, so
  // always-on coarse tracing pays nothing for it.
  void set_detail(bool on) { detail_ = on; }
  bool detail() const { return detail_; }

 private:
  struct Snapshot {
    std::uint64_t network_hits = 0, network_misses = 0;
    std::uint64_t index_hits = 0, index_misses = 0;
    std::uint64_t settled_nodes = 0, dominance_tests = 0;
    std::uint64_t dominance_avoided = 0, bound_pruned = 0;
    std::uint64_t bound_examined = 0, bound_samples = 0;
    std::uint64_t bound_pct_sum = 0;
    std::uint64_t cache_wavefront_hits = 0, cache_wavefront_misses = 0;
    std::uint64_t cache_memo_hits = 0, cache_memo_misses = 0;
  };

  Snapshot Read() const;
  // Attributes the counter delta since the last snapshot to the innermost
  // open span (dropped if none) and advances the snapshot.
  void Attribute();
  void CloseTop(double now);

  // Heap-gauge scoping, routed to the thread-local block or the registry
  // gauge depending on the mode.
  double HeapPeak() const;
  void HeapResetPeak();
  void HeapMergePeak(double peak);

  // True when tracking the global registry: snapshots come from the calling
  // thread's ThreadCounters rather than the shared atomic totals.
  bool per_thread_;
  Counter* network_hits_;
  Counter* network_misses_;
  Counter* index_hits_;
  Counter* index_misses_;
  Counter* settled_nodes_;
  Counter* dominance_tests_;
  Counter* dominance_avoided_;
  Counter* bound_pruned_;
  Counter* bound_examined_;
  Counter* bound_samples_;
  Counter* bound_pct_sum_;
  Counter* cache_wavefront_hits_;
  Counter* cache_wavefront_misses_;
  Counter* cache_memo_hits_;
  Counter* cache_memo_misses_;
  Gauge* heap_peak_;

  std::vector<SpanRecord> spans_;
  std::vector<int> stack_;          // indices of open spans, root first
  std::vector<double> saved_peaks_;  // outer heap peaks, parallel to stack_
  Snapshot last_;
  double epoch_ = 0.0;
  std::size_t dropped_ = 0;
  bool detail_ = false;
};

// RAII handle for one span. All operations are no-ops when constructed with
// a null session, which is how algorithms run untraced.
class Span {
 public:
  Span() = default;
  Span(TraceSession* session, std::string_view name)
      : session_(session) {
    if (session_ != nullptr) id_ = session_->OpenSpan(name);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept : session_(other.session_), id_(other.id_) {
    other.session_ = nullptr;
    other.id_ = -1;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      Close();
      session_ = other.session_;
      id_ = other.id_;
      other.session_ = nullptr;
      other.id_ = -1;
    }
    return *this;
  }
  ~Span() { Close(); }

  void Close() {
    if (session_ != nullptr) session_->CloseSpan(id_);
    session_ = nullptr;
    id_ = -1;
  }

 private:
  TraceSession* session_ = nullptr;
  int id_ = -1;
};

// The session currently tracing the calling thread's query, or null.
// StatsScope registers the query's session for exactly the window its
// stats cover, which lets layers that have no session pointer of their own
// (BufferManager, QueryCache) attach detail spans to the running query.
TraceSession* CurrentTraceSession();

// RAII registration of the calling thread's current session; restores the
// previous pointer on destruction (nested queries are not a thing today,
// but a fault unwind must not leave a dangling registration).
class ScopedCurrentSession {
 public:
  explicit ScopedCurrentSession(TraceSession* session);
  ~ScopedCurrentSession();
  ScopedCurrentSession(const ScopedCurrentSession&) = delete;
  ScopedCurrentSession& operator=(const ScopedCurrentSession&) = delete;

 private:
  TraceSession* prev_;
};

// A span on the calling thread's current session — but only when that
// session is in detail mode. Otherwise (no session, or coarse tracing)
// this is a no-op Span: one thread-local load and a branch.
Span DetailSpan(std::string_view name);

}  // namespace msq::obs

#endif  // MSQ_OBS_TRACE_H_
