#include "obs/trace_store.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <utility>

#include "obs/export.h"

namespace msq::obs {
namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<std::size_t>(n));
}

void AppendHex(std::string* out, std::uint64_t value, int digits) {
  static const char kHex[] = "0123456789abcdef";
  for (int shift = (digits - 1) * 4; shift >= 0; shift -= 4) {
    out->push_back(kHex[(value >> shift) & 0xF]);
  }
}

// One Chrome trace_event complete event. `ts`/`dur` in microseconds.
void AppendEvent(std::string* out, bool* first, std::string_view name,
                 double ts_us, double dur_us, const std::string& trace_id,
                 const SpanCounters* counters) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\n{\"name\":\"" + JsonEscape(name) + "\"";
  *out += ",\"cat\":\"msq\",\"ph\":\"X\",\"pid\":1,\"tid\":1";
  AppendF(out, ",\"ts\":%.3f", ts_us);
  AppendF(out, ",\"dur\":%.3f", dur_us);
  *out += ",\"args\":{\"trace_id\":\"" + trace_id + "\"";
  if (counters != nullptr) {
    AppendF(out, ",\"network_hits\":%" PRIu64, counters->network_hits);
    AppendF(out, ",\"network_misses\":%" PRIu64, counters->network_misses);
    AppendF(out, ",\"index_hits\":%" PRIu64, counters->index_hits);
    AppendF(out, ",\"index_misses\":%" PRIu64, counters->index_misses);
    AppendF(out, ",\"settled_nodes\":%" PRIu64, counters->settled_nodes);
    AppendF(out, ",\"dominance_tests\":%" PRIu64,
            counters->dominance_tests);
    AppendF(out, ",\"cache_hits\":%" PRIu64,
            counters->cache_wavefront_hits + counters->cache_memo_hits);
    AppendF(out, ",\"cache_misses\":%" PRIu64,
            counters->cache_wavefront_misses + counters->cache_memo_misses);
  }
  *out += "}}";
}

}  // namespace

std::string_view RetainReasonName(RetainReason reason) {
  switch (reason) {
    case RetainReason::kNone: return "none";
    case RetainReason::kError: return "error";
    case RetainReason::kTruncated: return "truncated";
    case RetainReason::kSlow: return "slow";
    case RetainReason::kHeadSampled: return "head_sampled";
  }
  return "none";
}

std::string RetainedTrace::TraceIdHex() const {
  std::string out;
  out.reserve(32);
  AppendHex(&out, trace_id_hi, 16);
  AppendHex(&out, trace_id_lo, 16);
  return out;
}

TraceStore::TraceStore(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceStore::Retain(RetainedTrace trace) {
  std::lock_guard<std::mutex> lock(mu_);
  if (traces_.size() >= capacity_) {
    traces_.pop_front();
    ++evicted_total_;
  }
  traces_.push_back(std::move(trace));
  ++retained_total_;
}

std::vector<RetainedTrace> TraceStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<RetainedTrace>(traces_.begin(), traces_.end());
}

std::optional<RetainedTrace> TraceStore::Find(
    std::string_view trace_id_hex) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Newest first: if a trace id was somehow retained twice, the most
  // recent retention wins.
  for (auto it = traces_.rbegin(); it != traces_.rend(); ++it) {
    if (it->TraceIdHex() == trace_id_hex) return *it;
  }
  return std::nullopt;
}

bool TraceStore::Contains(std::uint64_t hi, std::uint64_t lo) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const RetainedTrace& trace : traces_) {
    if (trace.trace_id_hi == hi && trace.trace_id_lo == lo) return true;
  }
  return false;
}

std::uint64_t TraceStore::retained_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_total_;
}

std::uint64_t TraceStore::evicted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_total_;
}

std::string RetainedTraceChromeJson(const RetainedTrace& trace) {
  const std::string trace_id = trace.TraceIdHex();
  const double queue_us = trace.queue_seconds * 1e6;
  // The recorded profile's root span covers the execute window; the
  // request root covers queue wait + execution.
  double exec_us = trace.wall_seconds * 1e6;
  if (!trace.profile.spans.empty()) {
    const SpanRecord& root = trace.profile.spans.front();
    if (root.duration_seconds() * 1e6 > exec_us) {
      exec_us = root.duration_seconds() * 1e6;
    }
  }
  std::string out = "[";
  bool first = true;
  AppendEvent(&out, &first, "request", 0.0, queue_us + exec_us, trace_id,
              nullptr);
  AppendEvent(&out, &first, "queue_wait", 0.0, queue_us, trace_id, nullptr);
  for (const SpanRecord& span : trace.profile.spans) {
    AppendEvent(&out, &first, span.name, queue_us + span.start_seconds * 1e6,
                span.duration_seconds() * 1e6, trace_id, &span.self);
  }
  out += "\n]\n";
  return out;
}

std::string TracezJson(const TraceStore& store) {
  std::string out = "{\"retained\":[";
  bool first = true;
  for (const RetainedTrace& trace : store.Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "{\"trace_id\":\"" + trace.TraceIdHex() + "\"";
    AppendF(&out, ",\"sequence\":%" PRIu64, trace.sequence);
    out += ",\"algo\":\"" + JsonEscape(trace.algorithm) + "\"";
    out += ",\"reason\":\"";
    out += RetainReasonName(trace.reason);
    out += "\"";
    AppendF(&out, ",\"status_code\":%d", trace.status_code);
    out += ",\"truncated\":";
    out += trace.truncation != 0 ? "true" : "false";
    AppendF(&out, ",\"queue_ms\":%.3f", trace.queue_seconds * 1e3);
    AppendF(&out, ",\"wall_ms\":%.3f", trace.wall_seconds * 1e3);
    AppendF(&out, ",\"page_accesses\":%" PRIu64, trace.page_accesses);
    AppendF(&out, ",\"spans\":%zu", trace.profile.spans.size());
    out += "}";
  }
  out += "],";
  AppendF(&out, "\"retained_total\":%" PRIu64, store.retained_total());
  AppendF(&out, ",\"evicted_total\":%" PRIu64, store.evicted_total());
  AppendF(&out, ",\"capacity\":%zu", store.capacity());
  out += "}";
  return out;
}

std::string WideEvent::ToJson() const {
  std::string out = "{\"trace_id\":\"" + JsonEscape(trace_id) + "\"";
  out += ",\"id\":\"" + JsonEscape(request_id) + "\"";
  out += ",\"algo\":\"" + JsonEscape(algorithm) + "\"";
  out += ",\"outcome\":\"" + JsonEscape(outcome) + "\"";
  AppendF(&out, ",\"status_code\":%d", status_code);
  AppendF(&out, ",\"http_status\":%d", http_status);
  out += ",\"sampled\":";
  out += sampled ? "true" : "false";
  out += ",\"trace_retained\":";
  out += trace_retained ? "true" : "false";
  AppendF(&out, ",\"queue_ms\":%.3f", queue_ms);
  AppendF(&out, ",\"parse_ms\":%.3f", parse_ms);
  AppendF(&out, ",\"execute_ms\":%.3f", execute_ms);
  AppendF(&out, ",\"serialize_ms\":%.3f", serialize_ms);
  AppendF(&out, ",\"write_ms\":%.3f", write_ms);
  AppendF(&out, ",\"total_ms\":%.3f", total_ms);
  AppendF(&out, ",\"network_page_accesses\":%" PRIu64,
          network_page_accesses);
  AppendF(&out, ",\"index_page_accesses\":%" PRIu64, index_page_accesses);
  AppendF(&out, ",\"cache_hits\":%" PRIu64, cache_hits);
  AppendF(&out, ",\"settled_nodes\":%" PRIu64, settled_nodes);
  AppendF(&out, ",\"skyline_size\":%" PRIu64, skyline_size);
  AppendF(&out, ",\"returned\":%" PRIu64, returned);
  AppendF(&out, ",\"sequence\":%" PRIu64, sequence);
  out += "}";
  return out;
}

WideEventLog::WideEventLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void WideEventLog::Append(WideEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) events_.pop_front();
  events_.push_back(std::move(event));
  ++total_;
}

std::vector<WideEvent> WideEventLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<WideEvent>(events_.begin(), events_.end());
}

std::uint64_t WideEventLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::string WideEventLog::Json() const {
  std::string out = "{\"events\":[";
  bool first = true;
  for (const WideEvent& event : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += event.ToJson();
  }
  out += "\n],";
  AppendF(&out, "\"total\":%" PRIu64, total());
  out += "}";
  return out;
}

std::string WideEventLog::Jsonl() const {
  std::string out;
  for (const WideEvent& event : Snapshot()) {
    out += event.ToJson();
    out += "\n";
  }
  return out;
}

void ExemplarStore::Observe(std::string_view histogram_name,
                            std::uint64_t value,
                            std::string_view trace_id_hex) {
  const std::size_t bucket = Histogram::BucketIndex(value);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_histogram_.find(histogram_name);
  if (it == by_histogram_.end()) {
    it = by_histogram_.emplace(std::string(histogram_name), BucketArray{})
             .first;
  }
  it->second[bucket] = Exemplar{value, std::string(trace_id_hex)};
}

std::optional<ExemplarStore::Exemplar> ExemplarStore::Find(
    std::string_view histogram_name, std::size_t bucket) const {
  if (bucket >= Histogram::kBucketCount) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_histogram_.find(histogram_name);
  if (it == by_histogram_.end()) return std::nullopt;
  const Exemplar& exemplar = it->second[bucket];
  if (exemplar.trace_id.empty()) return std::nullopt;
  return exemplar;
}

}  // namespace msq::obs
