// Tail-based trace retention, canonical wide events, and histogram
// exemplars — the storage side of request tracing (obs/request_context.h).
//
// Three bounded, thread-safe stores:
//
//   * TraceStore — recently *retained* traces. Every query is traced into
//     its worker's per-request span buffer; at completion the telemetry
//     layer keeps the trace iff it was slow (wall/page thresholds),
//     errored, truncated, or head-sampled — otherwise the profile is
//     dropped at the cost of a buffer reset. Retained traces are served by
//     GET /tracez and exportable as Chrome trace JSON per trace_id, with
//     the executor queue wait synthesized as a span so the export shows
//     the request's full server-side timeline.
//   * WideEventLog — one canonical wide event per served request (the
//     "one log line per request" model): trace id, per-stage latency
//     decomposition, admission verdict, counters, result size, status.
//     Served by GET /requestz and dumpable as JSONL.
//   * ExemplarStore — per-histogram, per-bucket links from a latency
//     observation to the retained trace that produced it, appended to the
//     Prometheus exposition in OpenMetrics exemplar syntax so a p99 bucket
//     points at a /tracez trace_id.
#ifndef MSQ_OBS_TRACE_STORE_H_
#define MSQ_OBS_TRACE_STORE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"
#include "obs/trace.h"

namespace msq::obs {

// Why a trace survived tail sampling. Order is priority: a slow *and*
// head-sampled trace reports kSlow.
enum class RetainReason : std::uint8_t {
  kNone = 0,     // not retained
  kError,        // query failed
  kTruncated,    // budget/deadline cut it short
  kSlow,         // crossed the wall-time or page-access threshold
  kHeadSampled,  // the configured head rate picked it at ingress
};

std::string_view RetainReasonName(RetainReason reason);

// One retained trace: the request identity, summary numbers, and the full
// span tree recorded while it executed.
struct RetainedTrace {
  std::uint64_t trace_id_hi = 0;
  std::uint64_t trace_id_lo = 0;
  std::uint64_t sequence = 0;  // flight-recorder sequence of the query
  std::string algorithm;
  std::int32_t status_code = 0;
  std::uint32_t truncation = 0;  // truncation StatusCode; 0 = full result
  RetainReason reason = RetainReason::kNone;
  double queue_seconds = 0.0;  // executor submit -> execute start
  double wall_seconds = 0.0;   // execute duration
  std::uint64_t page_accesses = 0;  // network + index, hits + misses
  QueryProfile profile;

  std::string TraceIdHex() const;
};

// Bounded FIFO of retained traces. Retain/Snapshot/Find are mutex-guarded;
// retention happens at most once per *retained* request, so the lock is
// far off the per-query fast path.
class TraceStore {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit TraceStore(std::size_t capacity = kDefaultCapacity);

  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  void Retain(RetainedTrace trace);

  // Oldest first.
  std::vector<RetainedTrace> Snapshot() const;
  std::optional<RetainedTrace> Find(std::string_view trace_id_hex) const;
  bool Contains(std::uint64_t hi, std::uint64_t lo) const;

  std::size_t capacity() const { return capacity_; }
  // Total traces ever retained / evicted by the capacity bound.
  std::uint64_t retained_total() const;
  std::uint64_t evicted_total() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<RetainedTrace> traces_;
  std::uint64_t retained_total_ = 0;
  std::uint64_t evicted_total_ = 0;
};

// Chrome trace_event JSON for one retained trace: a synthetic "request"
// root spanning queue wait + execution, a "queue_wait" child, then the
// recorded profile spans shifted to start after the queue wait. Every
// event carries the trace_id in args.
std::string RetainedTraceChromeJson(const RetainedTrace& trace);

// The GET /tracez index body: summaries of every retained trace (no span
// payloads) plus store totals.
std::string TracezJson(const TraceStore& store);

// One canonical wide event per served request. All *_ms stage fields are
// wall milliseconds; stages are disjoint (queue is admission->execute
// start, parse is JSON parse, write is the response write syscall window).
struct WideEvent {
  std::string trace_id;    // 32 lowercase hex
  std::string request_id;  // client-supplied "id", may be empty
  std::string algorithm;   // empty when the request never parsed
  std::string outcome;     // rejected|shed|completed|truncated|failed
  std::int32_t status_code = 0;
  int http_status = 0;
  bool sampled = false;        // head-sampling decision
  bool trace_retained = false; // tail sampling kept the trace (/tracez)
  double queue_ms = 0.0;
  double parse_ms = 0.0;
  double execute_ms = 0.0;
  double serialize_ms = 0.0;
  double write_ms = 0.0;
  double total_ms = 0.0;
  std::uint64_t network_page_accesses = 0;
  std::uint64_t index_page_accesses = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t settled_nodes = 0;
  std::uint64_t skyline_size = 0;
  std::uint64_t returned = 0;  // entries actually encoded (after k cap)
  std::uint64_t sequence = 0;  // flight-recorder sequence (0 if unadmitted)
  // Monotonic receive timestamp, used by the server to finalize total_ms
  // after the response write; not serialized.
  double received_at_mono = 0.0;

  std::string ToJson() const;
};

// Bounded ring of recent wide events (GET /requestz, JSONL dumps).
class WideEventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit WideEventLog(std::size_t capacity = kDefaultCapacity);

  WideEventLog(const WideEventLog&) = delete;
  WideEventLog& operator=(const WideEventLog&) = delete;

  void Append(WideEvent event);

  std::vector<WideEvent> Snapshot() const;  // oldest first
  std::uint64_t total() const;

  // {"events":[...],"total":N} — the GET /requestz body.
  std::string Json() const;
  // One event per line (the canonical JSONL dump).
  std::string Jsonl() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<WideEvent> events_;
  std::uint64_t total_ = 0;
};

// Latest exemplar per (histogram name, log2 bucket): the observed value
// and the retained trace that produced it. Fed only when a trace is
// retained, read only at scrape time.
class ExemplarStore {
 public:
  struct Exemplar {
    std::uint64_t value = 0;
    std::string trace_id;
  };

  ExemplarStore() = default;
  ExemplarStore(const ExemplarStore&) = delete;
  ExemplarStore& operator=(const ExemplarStore&) = delete;

  void Observe(std::string_view histogram_name, std::uint64_t value,
               std::string_view trace_id_hex);

  // The exemplar for (histogram, bucket), if any.
  std::optional<Exemplar> Find(std::string_view histogram_name,
                               std::size_t bucket) const;

 private:
  using BucketArray = std::array<Exemplar, Histogram::kBucketCount>;
  mutable std::mutex mu_;
  std::map<std::string, BucketArray, std::less<>> by_histogram_;
};

}  // namespace msq::obs

#endif  // MSQ_OBS_TRACE_STORE_H_
