#include "serve/admission.h"

#include <algorithm>

#include "common/check.h"

namespace msq::serve {

double EstimateCost(const ServeRequest& request) {
  // Mutations are flat-cost: each runs once under the exclusive write
  // barrier, and the barrier's drain (not the op itself) is the expensive
  // part — object churn pays more because it walks the middle layer and
  // COW-rewrites an R-tree path.
  switch (request.op) {
    case ServeOp::kUpdateEdge:
      return 4.0;
    case ServeOp::kInsertObject:
    case ServeOp::kDeleteObject:
      return 6.0;
    case ServeOp::kQuery:
      break;
  }
  // Each source drives one network wavefront; the algorithm weight
  // captures how much of the network each wavefront touches relative to
  // LBC (the pruned, instance-optimal baseline).
  double weight = 1.0;
  switch (request.algorithm) {
    case Algorithm::kNaive:
      weight = 8.0;  // full |Q| x |D| distance matrix
      break;
    case Algorithm::kCe:
      weight = 2.0;  // expands every source to the last candidate
      break;
    case Algorithm::kEdc:
    case Algorithm::kEdcIncremental:
      weight = 1.5;  // Euclidean-pruned probes
      break;
    case Algorithm::kLbc:
    case Algorithm::kLbcNoPlb:
      weight = 1.0;
      break;
  }
  return weight * static_cast<double>(std::max<std::size_t>(
                      request.sources.size(), 1));
}

namespace {

obs::MetricsRegistry* ResolveRegistry(const AdmissionConfig& config) {
  return config.registry != nullptr ? config.registry
                                    : &obs::GlobalMetrics();
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config),
      received_(ResolveRegistry(config)->counter(metric::kServeReceived)),
      rejected_(ResolveRegistry(config)->counter(metric::kServeRejected)),
      shed_(ResolveRegistry(config)->counter(metric::kServeShed)),
      admitted_(ResolveRegistry(config)->counter(metric::kServeAdmitted)),
      completed_(ResolveRegistry(config)->counter(metric::kServeCompleted)),
      truncated_(ResolveRegistry(config)->counter(metric::kServeTruncated)),
      failed_(ResolveRegistry(config)->counter(metric::kServeFailed)),
      pending_gauge_(ResolveRegistry(config)->gauge(metric::kServePending)),
      pending_cost_gauge_(
          ResolveRegistry(config)->gauge(metric::kServePendingCost)) {
  MSQ_CHECK(config_.max_pending > 0);
  MSQ_CHECK(config_.max_pending_cost > 0.0);
  MSQ_CHECK(config_.retry_after_max_ms >= config_.retry_after_base_ms);
}

void AdmissionController::CountReceived() { received_->Inc(); }

void AdmissionController::CountRejected() { rejected_->Inc(); }

void AdmissionController::CountShed() { shed_->Inc(); }

bool AdmissionController::TryAdmit(double cost, double* retry_after_ms) {
  MSQ_CHECK(cost >= 0.0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_ < config_.max_pending &&
        pending_cost_ + cost <= config_.max_pending_cost) {
      ++pending_;
      pending_cost_ += cost;
      pending_gauge_->Update(static_cast<double>(pending_));
      pending_cost_gauge_->Update(pending_cost_);
      admitted_->Inc();
      return true;
    }
    if (retry_after_ms != nullptr) {
      // Scale the hint with the overload ratio, counting the shed request
      // itself (admitted load alone never exceeds the watermark, so the
      // incoming demand is the signal): at the watermark the hint is the
      // base; at 2x overload it doubles. Clamped to the configured ceiling
      // — unbounded, a deep overload spiral would push clients out to
      // hints longer than any deadline they could carry.
      const double depth_ratio =
          static_cast<double>(pending_ + 1) /
          static_cast<double>(config_.max_pending);
      const double cost_ratio =
          (pending_cost_ + cost) / config_.max_pending_cost;
      *retry_after_ms =
          std::min(config_.retry_after_max_ms,
                   config_.retry_after_base_ms *
                       std::max(1.0, std::max(depth_ratio, cost_ratio)));
    }
  }
  shed_->Inc();
  return false;
}

void AdmissionController::Finish(RequestOutcome outcome, double cost) {
  switch (outcome) {
    case RequestOutcome::kCompleted:
      completed_->Inc();
      break;
    case RequestOutcome::kTruncated:
      truncated_->Inc();
      break;
    case RequestOutcome::kFailed:
      failed_->Inc();
      break;
    case RequestOutcome::kRejected:
    case RequestOutcome::kShed:
      MSQ_CHECK_MSG(false, "Finish() outcome must be terminal for an "
                           "admitted request");
  }
  std::lock_guard<std::mutex> lock(mu_);
  MSQ_CHECK(pending_ > 0);
  --pending_;
  pending_cost_ = std::max(0.0, pending_cost_ - cost);
  pending_gauge_->Update(static_cast<double>(pending_));
  pending_cost_gauge_->Update(pending_cost_);
}

RequestOutcome AdmissionController::Classify(const SkylineResult& result) {
  if (!result.status.ok()) return RequestOutcome::kFailed;
  if (result.truncated) return RequestOutcome::kTruncated;
  return RequestOutcome::kCompleted;
}

std::size_t AdmissionController::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

double AdmissionController::pending_cost() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_cost_;
}

std::string AdmissionController::CheckConservation() const {
  const std::uint64_t received = received_->value();
  const std::uint64_t rejected = rejected_->value();
  const std::uint64_t shed = shed_->value();
  const std::uint64_t admitted = admitted_->value();
  const std::uint64_t completed = completed_->value();
  const std::uint64_t truncated = truncated_->value();
  const std::uint64_t failed = failed_->value();
  if (received != rejected + shed + completed + truncated + failed) {
    return "received " + std::to_string(received) +
           " != rejected " + std::to_string(rejected) + " + shed " +
           std::to_string(shed) + " + completed " +
           std::to_string(completed) + " + truncated " +
           std::to_string(truncated) + " + failed " +
           std::to_string(failed);
  }
  if (admitted != completed + truncated + failed) {
    return "admitted " + std::to_string(admitted) + " != completed " +
           std::to_string(completed) + " + truncated " +
           std::to_string(truncated) + " + failed " +
           std::to_string(failed);
  }
  return "";
}

}  // namespace msq::serve
