// Admission control and request accounting for the serving front door.
//
// The controller guards the executor's queue with two watermarks — pending
// request count and pending estimated cost — and sheds anything beyond
// them immediately: a shed request costs one counter bump and one small
// response instead of queuing until its deadline dies. The Retry-After
// hint scales with how far past the watermark the server is.
//
// Accounting is the part the chaos harness gates on: every received
// request finishes in exactly one of five outcome buckets, and
//
//   received == rejected + shed + completed + truncated + failed
//   admitted == completed + truncated + failed
//
// hold at any quiescent point (asserted by CheckConservation, the serve
// tests, and bench_soak against the live Prometheus export).
#ifndef MSQ_SERVE_ADMISSION_H_
#define MSQ_SERVE_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "core/skyline_query.h"
#include "obs/metrics.h"
#include "serve/request.h"

namespace msq::serve {

struct AdmissionConfig {
  // Watermark on admitted-but-unfinished requests (queue + in-flight).
  std::size_t max_pending = 64;
  // Watermark on the summed cost estimate of pending requests.
  double max_pending_cost = 512.0;
  // Base Retry-After hint; the emitted hint is this scaled by the overload
  // ratio, so deeper overload pushes clients back harder.
  double retry_after_base_ms = 25.0;
  // Ceiling on the emitted hint: however deep the overload, clients are
  // never pushed back further than this (an unbounded exponential hint
  // outlives any deadline the retry could carry).
  double retry_after_max_ms = 5000.0;
  // Metrics registry for the serve.* counters; null = GlobalMetrics().
  obs::MetricsRegistry* registry = nullptr;
};

// How one received request ended. Exactly one per request.
enum class RequestOutcome {
  kRejected,   // malformed or invalid (4xx) — never admitted
  kShed,       // admission refused under overload (RESOURCE_EXHAUSTED)
  kCompleted,  // ran to completion, status OK, not truncated
  kTruncated,  // ran, cut by deadline/budget; prefix (possibly empty)
  kFailed,     // ran, error status (storage fault etc.)
};

// Cost estimate for admission: roughly "wavefronts the query will run",
// scaled by an algorithm weight (naive pays a full distance matrix; CE
// expands every source; EDC/LBC prune). Units are arbitrary but stable —
// watermarks are configured in the same units.
double EstimateCost(const ServeRequest& request);

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Every request read off a connection reports in exactly once, before
  // any outcome is decided.
  void CountReceived();

  // A request that never reaches admission (parse/validation failure).
  void CountRejected();

  // A request shed without consulting the watermarks (server draining).
  void CountShed();

  // Attempts to admit a request of estimated `cost`. On success the
  // pending gauges rise and the caller MUST later call Finish() with the
  // terminal outcome. On refusal the shed counter bumps and
  // *retry_after_ms receives the backoff hint.
  bool TryAdmit(double cost, double* retry_after_ms);

  // Terminal outcome of an admitted request (kCompleted/kTruncated/
  // kFailed only); releases the pending slot and cost.
  void Finish(RequestOutcome outcome, double cost);

  // Classifies an executor result into its outcome bucket.
  static RequestOutcome Classify(const SkylineResult& result);

  // Verifies both conservation identities over the live counters; returns
  // a description of the first violation, or empty when exact. Only
  // meaningful at quiescent points (no request mid-flight).
  std::string CheckConservation() const;

  std::uint64_t received() const { return received_->value(); }
  std::uint64_t rejected() const { return rejected_->value(); }
  std::uint64_t shed() const { return shed_->value(); }
  std::uint64_t admitted() const { return admitted_->value(); }
  std::uint64_t completed() const { return completed_->value(); }
  std::uint64_t truncated() const { return truncated_->value(); }
  std::uint64_t failed() const { return failed_->value(); }
  std::size_t pending() const;
  // Summed cost estimate of pending requests (the second watermark's
  // current level — /healthz reports it against max_pending_cost).
  double pending_cost() const;
  const AdmissionConfig& config() const { return config_; }

 private:
  const AdmissionConfig config_;
  obs::Counter* const received_;
  obs::Counter* const rejected_;
  obs::Counter* const shed_;
  obs::Counter* const admitted_;
  obs::Counter* const completed_;
  obs::Counter* const truncated_;
  obs::Counter* const failed_;
  obs::Gauge* const pending_gauge_;
  obs::Gauge* const pending_cost_gauge_;

  mutable std::mutex mu_;
  std::size_t pending_ = 0;
  double pending_cost_ = 0.0;
};

// serve.* metric names (DESIGN.md §13 taxonomy).
namespace metric {
inline constexpr char kServeReceived[] = "serve.requests_received";
inline constexpr char kServeRejected[] = "serve.requests_rejected";
inline constexpr char kServeShed[] = "serve.requests_shed";
inline constexpr char kServeAdmitted[] = "serve.requests_admitted";
inline constexpr char kServeCompleted[] = "serve.requests_completed";
inline constexpr char kServeTruncated[] = "serve.requests_truncated";
inline constexpr char kServeFailed[] = "serve.requests_failed";
inline constexpr char kServePending[] = "serve.pending";
inline constexpr char kServePendingCost[] = "serve.pending_cost";
inline constexpr char kServeConnections[] = "serve.connections";
inline constexpr char kServeConnShed[] = "serve.connections_shed";
inline constexpr char kServeReadTimeouts[] = "serve.read_timeouts";
inline constexpr char kServeWriteErrors[] = "serve.write_errors";
inline constexpr char kServeQueueUsHist[] = "serve.queue_us_hist";
inline constexpr char kServeWallUsHist[] = "serve.admitted_wall_us_hist";
// True queue wait (accept -> execute start on a worker), split by the
// admitted request's outcome. Unlike kServeQueueUsHist (derived as total
// minus execution), these come from the executor's exec_started_at stamp.
inline constexpr char kServeQueueWaitCompletedUsHist[] =
    "serve.queue_wait_us_hist.completed";
inline constexpr char kServeQueueWaitTruncatedUsHist[] =
    "serve.queue_wait_us_hist.truncated";
inline constexpr char kServeQueueWaitFailedUsHist[] =
    "serve.queue_wait_us_hist.failed";
// Dynamic-world mutations through the front door.
inline constexpr char kServeMutationsApplied[] = "serve.mutations_applied";
inline constexpr char kServeMutationsFailed[] = "serve.mutations_failed";
// Last data_epoch reported by a successful mutation — the world-version
// gauge dashboards join query anomalies against.
inline constexpr char kServeDataEpoch[] = "serve.data_epoch";
}  // namespace metric

}  // namespace msq::serve

#endif  // MSQ_SERVE_ADMISSION_H_
