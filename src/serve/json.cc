#include "serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "obs/export.h"

namespace msq::serve {

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(Array a) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::make_shared<const Array>(std::move(a));
  return v;
}

JsonValue JsonValue::MakeObject(Object o) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::make_shared<const Object>(std::move(o));
  return v;
}

bool JsonValue::AsBool() const {
  MSQ_CHECK(is_bool());
  return bool_;
}

double JsonValue::AsNumber() const {
  MSQ_CHECK(is_number());
  return number_;
}

const std::string& JsonValue::AsString() const {
  MSQ_CHECK(is_string());
  return string_;
}

const JsonValue::Array& JsonValue::AsArray() const {
  MSQ_CHECK(is_array());
  return *array_;
}

const JsonValue::Object& JsonValue::AsObject() const {
  MSQ_CHECK(is_object());
  return *object_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : *object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

// Recursive-descent parser over a bounded input. All failure paths funnel
// through Fail() so every error carries the byte offset.
class Parser {
 public:
  Parser(std::string_view text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  StatusOr<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    Status status = ParseValue(0, &value);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing content after JSON value");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (AtEnd() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  Status ConsumeLiteral(const char* literal) {
    const std::size_t n = std::strlen(literal);
    if (text_.size() - pos_ < n ||
        text_.compare(pos_, n, literal) != 0) {
      return Fail(std::string("expected '") + literal + "'");
    }
    pos_ += n;
    return Status();
  }

  Status CountValue() {
    if (++values_ > limits_.max_values) {
      return Fail("too many values (limit " +
                  std::to_string(limits_.max_values) + ")");
    }
    return Status();
  }

  Status ParseValue(std::size_t depth, JsonValue* out) {
    if (depth > limits_.max_depth) {
      return Fail("nesting deeper than " +
                  std::to_string(limits_.max_depth));
    }
    Status counted = CountValue();
    if (!counted.ok()) return counted;
    SkipWhitespace();
    if (AtEnd()) return Fail("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        Status status = ParseString(&s);
        if (!status.ok()) return status;
        *out = JsonValue::MakeString(std::move(s));
        return Status();
      }
      case 't': {
        Status status = ConsumeLiteral("true");
        if (!status.ok()) return status;
        *out = JsonValue::MakeBool(true);
        return Status();
      }
      case 'f': {
        Status status = ConsumeLiteral("false");
        if (!status.ok()) return status;
        *out = JsonValue::MakeBool(false);
        return Status();
      }
      case 'n': {
        Status status = ConsumeLiteral("null");
        if (!status.ok()) return status;
        *out = JsonValue();
        return Status();
      }
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(std::size_t depth, JsonValue* out) {
    MSQ_CHECK(Consume('{'));
    JsonValue::Object members;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue::MakeObject(std::move(members));
      return Status();
    }
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Fail("expected object key");
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      for (const auto& [name, value] : members) {
        if (name == key) return Fail("duplicate object key \"" + key + "\"");
      }
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      JsonValue value;
      status = ParseValue(depth + 1, &value);
      if (!status.ok()) return status;
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Fail("expected ',' or '}' in object");
    }
    *out = JsonValue::MakeObject(std::move(members));
    return Status();
  }

  Status ParseArray(std::size_t depth, JsonValue* out) {
    MSQ_CHECK(Consume('['));
    JsonValue::Array elements;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue::MakeArray(std::move(elements));
      return Status();
    }
    for (;;) {
      JsonValue value;
      Status status = ParseValue(depth + 1, &value);
      if (!status.ok()) return status;
      elements.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Fail("expected ',' or ']' in array");
    }
    *out = JsonValue::MakeArray(std::move(elements));
    return Status();
  }

  // One \uXXXX escape (the backslash and 'u' already consumed). Returns
  // the code unit, or an error on malformed hex.
  Status ParseHex4(unsigned* out) {
    if (text_.size() - pos_ < 4) return Fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status();
  }

  static void AppendUtf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    MSQ_CHECK(Consume('"'));
    out->clear();
    for (;;) {
      if (AtEnd()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status();
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (AtEnd()) return Fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned unit = 0;
          Status status = ParseHex4(&unit);
          if (!status.ok()) return status;
          if (unit >= 0xDC00 && unit <= 0xDFFF) {
            return Fail("lone low surrogate");
          }
          if (unit >= 0xD800 && unit <= 0xDBFF) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if (text_.size() - pos_ < 2 || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("lone high surrogate");
            }
            pos_ += 2;
            unsigned low = 0;
            status = ParseHex4(&low);
            if (!status.ok()) return status;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid surrogate pair");
            }
            const unsigned cp =
                0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
            AppendUtf8(out, cp);
          } else {
            AppendUtf8(out, unit);
          }
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (Consume('-') && AtEnd()) return Fail("truncated number");
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      return Fail("invalid value");
    }
    // Integer part: a leading zero must stand alone (RFC 8259).
    if (Consume('0')) {
      if (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        return Fail("leading zero in number");
      }
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (Consume('.')) {
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("truncated fraction");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("truncated exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("invalid number");
    if (!std::isfinite(value)) {
      // Overflow to infinity: reject rather than hand the schema layer a
      // non-finite distance/deadline.
      return Fail("number out of range");
    }
    *out = JsonValue::MakeNumber(value);
    return Status();
  }

  std::string_view text_;
  const JsonLimits& limits_;
  std::size_t pos_ = 0;
  std::size_t values_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text,
                              const JsonLimits& limits) {
  if (text.size() > limits.max_bytes) {
    return Status::InvalidArgument(
        "json: input of " + std::to_string(text.size()) +
        " bytes exceeds limit " + std::to_string(limits.max_bytes));
  }
  Parser parser(text, limits);
  return parser.Parse();
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  out->append(obs::JsonEscape(s));
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double value) {
  MSQ_CHECK(std::isfinite(value));
  char buf[32];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out->append(buf);
}

}  // namespace msq::serve
