// Strict, bounded JSON parser for the serving front door.
//
// Requests arrive over the network, so the parser treats its input as
// hostile: every parse is bounded in bytes and nesting depth, rejects
// anything RFC 8259 rejects (trailing garbage, duplicate object keys,
// unescaped control characters, lone surrogates, leading zeros,
// non-finite numbers), and reports failures as kInvalidArgument Status
// values carrying the byte offset — never a crash, never a silently
// misread value. The corpus under tests/serve/corpus/ plus the
// fuzz_repro --json mode keep it that way.
//
// The value model is deliberately small: null/bool/number/string/array/
// object, numbers as double (the request schema has no 64-bit-exact
// integer fields; integral range checks happen in request.cc).
#ifndef MSQ_SERVE_JSON_H_
#define MSQ_SERVE_JSON_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace msq::serve {

struct JsonLimits {
  // Hard cap on input size; longer inputs fail without being scanned.
  std::size_t max_bytes = 1 << 16;
  // Maximum array/object nesting depth.
  std::size_t max_depth = 32;
  // Maximum total number of values (DoS guard for flat megabyte arrays).
  std::size_t max_values = 1 << 14;
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  // Insertion-ordered; the parser rejects duplicate keys so lookup by
  // linear scan is unambiguous.
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(Array a);
  static JsonValue MakeObject(Object o);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; calling the wrong one is a programming error (the
  // request mapper checks kind() first).
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  const Object& AsObject() const;

  // Object member lookup; null when absent (or not an object).
  const JsonValue* Find(std::string_view key) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<const Array> array_;
  std::shared_ptr<const Object> object_;
};

// Parses exactly one JSON value spanning all of `text` (leading/trailing
// RFC whitespace allowed, nothing else). kInvalidArgument on any
// violation, with the byte offset in the message.
StatusOr<JsonValue> ParseJson(std::string_view text,
                              const JsonLimits& limits = {});

// Serialization helpers for building response bodies. AppendJsonString
// writes a quoted, escaped string literal; AppendJsonNumber writes the
// shortest round-trip double representation (integers without exponent).
void AppendJsonString(std::string* out, std::string_view s);
void AppendJsonNumber(std::string* out, double value);

}  // namespace msq::serve

#endif  // MSQ_SERVE_JSON_H_
