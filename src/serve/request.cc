#include "serve/request.h"

#include <cmath>

#include "common/status.h"
#include "obs/plan.h"

namespace msq::serve {

namespace {

Status FieldError(const char* field, const std::string& what) {
  return Status::InvalidArgument(std::string("request field \"") + field +
                                 "\": " + what);
}

// Non-negative integral number fitting `max`; JSON numbers are doubles, so
// integrality is an explicit check (edge ids and budgets must not be
// silently rounded).
Status ParseIndex(const JsonValue& v, const char* field, double max,
                  double* out) {
  if (!v.is_number()) return FieldError(field, "expected a number");
  const double d = v.AsNumber();
  if (d < 0.0 || d > max) {
    return FieldError(field, "out of range [0, " + std::to_string(max) + "]");
  }
  if (d != std::floor(d)) return FieldError(field, "expected an integer");
  *out = d;
  return Status();
}

}  // namespace

const char* ServeOpName(ServeOp op) {
  switch (op) {
    case ServeOp::kQuery: return "query";
    case ServeOp::kUpdateEdge: return "update_edge";
    case ServeOp::kInsertObject: return "insert_object";
    case ServeOp::kDeleteObject: return "delete_object";
  }
  return "query";
}

StatusOr<ServeRequest> ParseServeRequest(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  ServeRequest request;
  bool saw_algo = false;
  bool saw_sources = false;
  bool saw_query_extras = false;  // limits / k / lbc_source
  bool saw_edge = false;
  bool saw_length = false;
  bool saw_offset = false;
  bool saw_object = false;
  for (const auto& [key, value] : json.AsObject()) {
    if (key == "op") {
      if (!value.is_string()) return FieldError("op", "expected a string");
      const std::string& op = value.AsString();
      if (op == "update_edge") {
        request.op = ServeOp::kUpdateEdge;
      } else if (op == "insert_object") {
        request.op = ServeOp::kInsertObject;
      } else if (op == "delete_object") {
        request.op = ServeOp::kDeleteObject;
      } else {
        return FieldError("op", "unknown op \"" + op +
                                    "\" (expected one of: update_edge, "
                                    "insert_object, delete_object)");
      }
    } else if (key == "edge") {
      double edge_value = 0.0;
      Status status = ParseIndex(
          value, "edge", static_cast<double>(kInvalidEdge) - 1.0,
          &edge_value);
      if (!status.ok()) return status;
      request.edge = static_cast<EdgeId>(edge_value);
      saw_edge = true;
    } else if (key == "length") {
      if (!value.is_number()) {
        return FieldError("length", "expected a number");
      }
      request.length = value.AsNumber();
      if (request.length < 0.0 || request.length > kMaxEdgeLength) {
        return FieldError("length",
                          "out of range [0, " +
                              std::to_string(kMaxEdgeLength) + "]");
      }
      saw_length = true;
    } else if (key == "offset") {
      if (!value.is_number()) {
        return FieldError("offset", "expected a number");
      }
      request.offset = value.AsNumber();
      if (request.offset < 0.0) return FieldError("offset", "negative");
      saw_offset = true;
    } else if (key == "object") {
      double object_value = 0.0;
      Status status = ParseIndex(value, "object", 4294967294.0,
                                 &object_value);
      if (!status.ok()) return status;
      request.object = static_cast<ObjectId>(object_value);
      saw_object = true;
    } else if (key == "algo") {
      if (!value.is_string()) return FieldError("algo", "expected a string");
      if (!ParseAlgorithm(value.AsString(), &request.algorithm)) {
        return FieldError("algo", "unknown algorithm \"" + value.AsString() +
                                      "\" (expected one of: " +
                                      AlgorithmNames() + ")");
      }
      saw_algo = true;
    } else if (key == "sources") {
      if (!value.is_array()) {
        return FieldError("sources", "expected an array");
      }
      const JsonValue::Array& array = value.AsArray();
      if (array.empty()) return FieldError("sources", "must be non-empty");
      if (array.size() > kMaxSources) {
        return FieldError("sources",
                          "more than " + std::to_string(kMaxSources) +
                              " entries");
      }
      for (const JsonValue& entry : array) {
        if (!entry.is_object()) {
          return FieldError("sources", "each entry must be an object");
        }
        for (const auto& [entry_key, entry_value] : entry.AsObject()) {
          (void)entry_value;
          if (entry_key != "edge" && entry_key != "offset") {
            return FieldError("sources", "entry has unknown field \"" +
                                             entry_key + "\"");
          }
        }
        const JsonValue* edge = entry.Find("edge");
        const JsonValue* offset = entry.Find("offset");
        if (edge == nullptr) {
          return FieldError("sources", "entry missing \"edge\"");
        }
        double edge_value = 0.0;
        Status status =
            ParseIndex(*edge, "sources.edge",
                       static_cast<double>(kInvalidEdge) - 1.0, &edge_value);
        if (!status.ok()) return status;
        Location location;
        location.edge = static_cast<EdgeId>(edge_value);
        if (offset != nullptr) {
          if (!offset->is_number()) {
            return FieldError("sources.offset", "expected a number");
          }
          location.offset = offset->AsNumber();
          if (location.offset < 0.0) {
            return FieldError("sources.offset", "negative");
          }
        }
        request.sources.push_back(location);
      }
      saw_sources = true;
    } else if (key == "limits") {
      if (!value.is_object()) {
        return FieldError("limits", "expected an object");
      }
      saw_query_extras = true;
      for (const auto& [limit_key, limit_value] : value.AsObject()) {
        if (limit_key == "deadline_ms") {
          if (!limit_value.is_number()) {
            return FieldError("limits.deadline_ms", "expected a number");
          }
          request.deadline_ms = limit_value.AsNumber();
          if (request.deadline_ms <= 0.0 ||
              request.deadline_ms > kMaxDeadlineMs) {
            return FieldError("limits.deadline_ms",
                              "out of range (0, " +
                                  std::to_string(kMaxDeadlineMs) + "]");
          }
        } else if (limit_key == "page_budget") {
          double budget = 0.0;
          Status status =
              ParseIndex(limit_value, "limits.page_budget", 1e15, &budget);
          if (!status.ok()) return status;
          request.page_budget = static_cast<std::uint64_t>(budget);
        } else {
          return FieldError("limits",
                            "unknown field \"" + limit_key + "\"");
        }
      }
    } else if (key == "k") {
      double k = 0.0;
      Status status =
          ParseIndex(value, "k", static_cast<double>(kMaxK), &k);
      if (!status.ok()) return status;
      request.k = static_cast<std::size_t>(k);
      saw_query_extras = true;
    } else if (key == "lbc_source") {
      double index = 0.0;
      Status status = ParseIndex(value, "lbc_source",
                                 static_cast<double>(kMaxSources - 1),
                                 &index);
      if (!status.ok()) return status;
      request.lbc_source_index = static_cast<std::size_t>(index);
      saw_query_extras = true;
    } else if (key == "explain") {
      if (!value.is_bool()) {
        return FieldError("explain", "expected a boolean");
      }
      request.explain = value.AsBool();
      saw_query_extras = true;
    } else if (key == "traceparent") {
      if (!value.is_string()) {
        return FieldError("traceparent", "expected a string");
      }
      StatusOr<obs::TraceContext> ctx =
          obs::TraceContext::Parse(value.AsString());
      if (!ctx.ok()) return FieldError("traceparent", ctx.status().message());
      request.trace_context = ctx.value();
    } else if (key == "id") {
      if (!value.is_string()) return FieldError("id", "expected a string");
      if (value.AsString().size() > kMaxIdBytes) {
        return FieldError("id", "longer than " +
                                    std::to_string(kMaxIdBytes) + " bytes");
      }
      request.id = value.AsString();
    } else {
      return Status::InvalidArgument("request has unknown field \"" + key +
                                     "\"");
    }
  }
  // Cross-field validation: each op has exactly its own required fields,
  // so a half-query-half-mutation never silently executes one side.
  if (request.op == ServeOp::kQuery) {
    if (saw_edge || saw_length || saw_offset || saw_object) {
      return Status::InvalidArgument(
          "mutation field present without \"op\"");
    }
    if (!saw_algo) {
      return Status::InvalidArgument("request missing \"algo\"");
    }
    if (!saw_sources) {
      return Status::InvalidArgument("request missing \"sources\"");
    }
    if (request.lbc_source_index >= request.sources.size()) {
      return FieldError("lbc_source", "out of range for " +
                                          std::to_string(
                                              request.sources.size()) +
                                          " sources");
    }
    return request;
  }
  if (saw_algo || saw_sources || saw_query_extras) {
    return Status::InvalidArgument(
        std::string("query field not allowed with op \"") +
        ServeOpName(request.op) + "\"");
  }
  const char* op_name = ServeOpName(request.op);
  auto require = [&](bool saw, const char* field) {
    return saw ? Status()
               : Status::InvalidArgument(std::string("op \"") + op_name +
                                         "\" missing \"" + field + "\"");
  };
  auto forbid = [&](bool saw, const char* field) {
    return saw ? Status::InvalidArgument(std::string("op \"") + op_name +
                                         "\" does not take \"" + field +
                                         "\"")
               : Status();
  };
  Status status;
  switch (request.op) {
    case ServeOp::kUpdateEdge:
      if (!(status = require(saw_edge, "edge")).ok()) return status;
      if (!(status = require(saw_length, "length")).ok()) return status;
      if (!(status = forbid(saw_offset, "offset")).ok()) return status;
      if (!(status = forbid(saw_object, "object")).ok()) return status;
      break;
    case ServeOp::kInsertObject:
      if (!(status = require(saw_edge, "edge")).ok()) return status;
      if (!(status = forbid(saw_length, "length")).ok()) return status;
      if (!(status = forbid(saw_object, "object")).ok()) return status;
      break;
    case ServeOp::kDeleteObject:
      if (!(status = require(saw_object, "object")).ok()) return status;
      if (!(status = forbid(saw_edge, "edge")).ok()) return status;
      if (!(status = forbid(saw_length, "length")).ok()) return status;
      if (!(status = forbid(saw_offset, "offset")).ok()) return status;
      break;
    case ServeOp::kQuery:
      break;  // handled above
  }
  return request;
}

StatusOr<ServeRequest> ParseServeRequestText(std::string_view text) {
  StatusOr<JsonValue> json = ParseJson(text);
  if (!json.ok()) return json.status();
  return ParseServeRequest(json.value());
}

int HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kDeadlineExceeded:
      return 408;
    case StatusCode::kResourceExhausted:
      return 503;  // shed; oversized payloads map to 413 at the edge
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kIoError:
    case StatusCode::kCorruption:
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

std::string EncodeResultResponse(const ServeRequest& request,
                                 const SkylineResult& result,
                                 std::size_t returned, double queue_ms,
                                 double wall_ms) {
  std::string out = "{";
  if (!request.id.empty()) {
    out += "\"id\":";
    AppendJsonString(&out, request.id);
    out += ",";
  }
  out += "\"status\":\"OK\",\"truncated\":";
  out += result.truncated ? "true" : "false";
  if (result.truncated) {
    out += ",\"truncation_reason\":\"";
    out += StatusCodeName(result.truncation_reason);
    out += "\"";
  }
  out += ",\"skyline\":[";
  for (std::size_t i = 0; i < returned; ++i) {
    const SkylineEntry& entry = result.skyline[i];
    if (i > 0) out += ",";
    out += "{\"object\":";
    AppendJsonNumber(&out, static_cast<double>(entry.object));
    out += ",\"vector\":[";
    for (std::size_t d = 0; d < entry.vector.size(); ++d) {
      if (d > 0) out += ",";
      AppendJsonNumber(&out, entry.vector[d]);
    }
    out += "]}";
  }
  out += "],\"count\":";
  AppendJsonNumber(&out, static_cast<double>(returned));
  out += ",\"total\":";
  AppendJsonNumber(&out, static_cast<double>(result.skyline.size()));
  out += ",\"stats\":{\"queue_ms\":";
  AppendJsonNumber(&out, queue_ms);
  out += ",\"wall_ms\":";
  AppendJsonNumber(&out, wall_ms);
  out += ",\"network_pages\":";
  AppendJsonNumber(&out, static_cast<double>(result.stats.network_pages));
  out += ",\"index_pages\":";
  AppendJsonNumber(&out, static_cast<double>(result.stats.index_pages));
  out += ",\"settled_nodes\":";
  AppendJsonNumber(&out, static_cast<double>(result.stats.settled_nodes));
  out += "}";
  if (request.explain && result.plan.has_value()) {
    out += ",\"plan\":";
    out += obs::PlanJson(*result.plan);
  }
  out += "}";
  return out;
}

std::string EncodeErrorResponse(const std::string& id, StatusCode code,
                                const std::string& message,
                                double retry_after_ms) {
  std::string out = "{";
  if (!id.empty()) {
    out += "\"id\":";
    AppendJsonString(&out, id);
    out += ",";
  }
  out += "\"error\":{\"code\":\"";
  out += StatusCodeName(code);
  out += "\",\"http\":";
  AppendJsonNumber(&out, HttpStatusFor(code));
  out += ",\"message\":";
  AppendJsonString(&out, message);
  out += "}";
  if (retry_after_ms > 0.0) {
    out += ",\"retry_after_ms\":";
    AppendJsonNumber(&out, retry_after_ms);
  }
  out += "}";
  return out;
}

std::string EncodeMutationResponse(const ServeRequest& request,
                                   const MutationResult& result,
                                   double wall_ms) {
  std::string out = "{";
  if (!request.id.empty()) {
    out += "\"id\":";
    AppendJsonString(&out, request.id);
    out += ",";
  }
  out += "\"status\":\"OK\",\"op\":\"";
  out += ServeOpName(request.op);
  out += "\",\"data_epoch\":";
  AppendJsonNumber(&out, static_cast<double>(result.data_epoch));
  switch (request.op) {
    case ServeOp::kUpdateEdge:
      out += ",\"applied_length\":";
      AppendJsonNumber(&out, result.applied_length);
      break;
    case ServeOp::kInsertObject:
      out += ",\"object\":";
      AppendJsonNumber(&out, static_cast<double>(result.object));
      break;
    case ServeOp::kDeleteObject:
      out += ",\"removed\":";
      out += result.removed ? "true" : "false";
      break;
    case ServeOp::kQuery:
      break;
  }
  out += ",\"stats\":{\"wall_ms\":";
  AppendJsonNumber(&out, wall_ms);
  out += "}}";
  return out;
}

}  // namespace msq::serve
