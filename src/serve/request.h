// Serving request schema and response encoding.
//
// One request is one JSON object. A query:
//
//   {"algo":"lbc",
//    "sources":[{"edge":12,"offset":0.5}, ...],
//    "limits":{"deadline_ms":100,"page_budget":20000},
//    "k":16,                       // optional: cap returned entries
//    "lbc_source":0,               // optional: LBC expansion origin
//    "explain":true,               // optional: attach the execution plan
//                                  // (obs/plan.h) to the response

//    "id":"client-tag",            // optional: echoed in the response
//    "traceparent":"00-<32 hex>-<16 hex>-01"}  // optional: W3C trace
//                                  // context; flags bit 0 = sampled
//
// Or a mutation, selected by the "op" field (absent = query, so the
// original query corpus keeps parsing unchanged):
//
//   {"op":"update_edge",   "edge":12, "length":3.5}   // 0 = reset to
//                                                     // Euclidean
//   {"op":"insert_object", "edge":12, "offset":0.5}
//   {"op":"delete_object", "object":7}
//
// Mutations take "id"/"traceparent" like queries; mixing query fields
// ("algo", "sources", ...) with an op — or op fields without "op" — is a
// parse error. Mutations run under the executor's exclusive write barrier
// and respond with the new data_epoch (EncodeMutationResponse).
//
// ParseServeRequest maps a parsed JsonValue onto ServeRequest with strict
// validation (unknown fields rejected, every field type- and
// range-checked) so a malformed request yields a structured
// INVALID_ARGUMENT response, never a crash or a silently defaulted field.
// Responses are single-line JSON; the error taxonomy mirrors StatusCode
// with an HTTP-style numeric status for the dual-protocol front door
// (serve/server.h).
#ifndef MSQ_SERVE_REQUEST_H_
#define MSQ_SERVE_REQUEST_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "core/query.h"
#include "core/skyline_query.h"
#include "obs/request_context.h"
#include "serve/json.h"

namespace msq::serve {

// Schema caps: requests beyond these are hostile or misconfigured, and
// admission-cost estimation relies on them being bounded.
inline constexpr std::size_t kMaxSources = 64;
inline constexpr std::size_t kMaxK = 4096;
inline constexpr std::size_t kMaxIdBytes = 128;
inline constexpr double kMaxDeadlineMs = 600'000.0;
inline constexpr double kMaxEdgeLength = 1e15;

// What one request asks for: a skyline query (the default) or one of the
// dynamic-world mutations.
enum class ServeOp { kQuery, kUpdateEdge, kInsertObject, kDeleteObject };

// Wire name of an op ("query", "update_edge", ...).
const char* ServeOpName(ServeOp op);

struct ServeRequest {
  ServeOp op = ServeOp::kQuery;
  // --- mutation fields (unused when op == kQuery) ---
  // Target edge of update_edge / insert_object.
  EdgeId edge = 0;
  // update_edge: requested length; 0 resets to the endpoint Euclidean
  // distance, and any positive value below it is clamped up server-side.
  double length = 0.0;
  // insert_object: offset along the edge (validated against the edge
  // length at execution, not parse — the schema doesn't know the network).
  double offset = 0.0;
  // delete_object: target object id.
  ObjectId object = 0;
  // --- query fields ---
  Algorithm algorithm = Algorithm::kLbc;
  std::vector<Location> sources;
  std::size_t lbc_source_index = 0;
  // Client deadline in milliseconds (0 = none given; the server applies
  // its default). Mapped to QueryLimits::deadline_at at admission so queue
  // wait counts against it.
  double deadline_ms = 0.0;
  // Page-access budget (0 = unlimited), mapped to
  // QueryLimits::max_page_accesses.
  std::uint64_t page_budget = 0;
  // Cap on returned skyline entries (0 = all). Response-side only — the
  // query still computes the full (possibly truncated-by-limits) skyline.
  std::size_t k = 0;
  // EXPLAIN: ask the executor to collect this query's ExecutionPlan and
  // encode it as the response's "plan" field.
  bool explain = false;
  std::string id;
  // Parsed "traceparent" field (obs/request_context.h). Invalid (the
  // default) when the request carried none; a present-but-malformed value
  // is a parse error, not a silent re-mint.
  obs::TraceContext trace_context;
};

// Validates and maps a parsed JSON value. kInvalidArgument with a
// field-specific message on any violation.
StatusOr<ServeRequest> ParseServeRequest(const JsonValue& json);

// Convenience: ParseJson + ParseServeRequest with the serving limits.
StatusOr<ServeRequest> ParseServeRequestText(std::string_view text);

// HTTP-style status for a StatusCode: 400 for invalid input, 404 not
// found, 408 read timeout, 413 oversized frame, 503 shed/unavailable,
// 500 otherwise.
int HttpStatusFor(StatusCode code);

// Single-line JSON success response. `returned` entries of
// `result.skyline` are encoded (the k cap already applied by the caller);
// `queue_ms`/`wall_ms` report server-side queue wait and execution time.
// When the request asked for an explain and `result.plan` is present, the
// response carries it as a "plan" object (obs/plan.h PlanJson).
std::string EncodeResultResponse(const ServeRequest& request,
                                 const SkylineResult& result,
                                 std::size_t returned, double queue_ms,
                                 double wall_ms);

// Single-line JSON error response. `retry_after_ms` > 0 adds the
// load-shedding hint ({"retry_after_ms":N}).
std::string EncodeErrorResponse(const std::string& id, StatusCode code,
                                const std::string& message,
                                double retry_after_ms = 0.0);

// Result of one executed mutation, produced by the embedder's handler
// (ServerConfig::mutation_handler) under the executor's write barrier.
struct MutationResult {
  Status status;
  // The pager's data_epoch() after the mutation — the stamp that makes
  // pre-mutation cache entries unreachable. Clients use it to correlate
  // "my query ran against at least this world".
  std::uint64_t data_epoch = 0;
  // insert_object: the id assigned.
  ObjectId object = 0;
  // update_edge: the applied (possibly clamped) length.
  double applied_length = 0.0;
  // delete_object: whether the object was live (false = clean no-op).
  bool removed = false;
};

// Runs one parsed mutation request; set by the embedder (the server core
// doesn't know the workload). Must be thread-safe — connection threads
// call it concurrently.
using MutationHandler = std::function<MutationResult(const ServeRequest&)>;

// Single-line JSON success response for a mutation: status, op, the new
// data_epoch, and the op-specific payload field.
std::string EncodeMutationResponse(const ServeRequest& request,
                                   const MutationResult& result,
                                   double wall_ms);

}  // namespace msq::serve

#endif  // MSQ_SERVE_REQUEST_H_
