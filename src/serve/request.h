// Serving request schema and response encoding.
//
// One request is one JSON object:
//
//   {"algo":"lbc",
//    "sources":[{"edge":12,"offset":0.5}, ...],
//    "limits":{"deadline_ms":100,"page_budget":20000},
//    "k":16,                       // optional: cap returned entries
//    "lbc_source":0,               // optional: LBC expansion origin
//    "id":"client-tag",            // optional: echoed in the response
//    "traceparent":"00-<32 hex>-<16 hex>-01"}  // optional: W3C trace
//                                  // context; flags bit 0 = sampled
//
// ParseServeRequest maps a parsed JsonValue onto ServeRequest with strict
// validation (unknown fields rejected, every field type- and
// range-checked) so a malformed request yields a structured
// INVALID_ARGUMENT response, never a crash or a silently defaulted field.
// Responses are single-line JSON; the error taxonomy mirrors StatusCode
// with an HTTP-style numeric status for the dual-protocol front door
// (serve/server.h).
#ifndef MSQ_SERVE_REQUEST_H_
#define MSQ_SERVE_REQUEST_H_

#include <cstddef>
#include <string>

#include "core/query.h"
#include "core/skyline_query.h"
#include "obs/request_context.h"
#include "serve/json.h"

namespace msq::serve {

// Schema caps: requests beyond these are hostile or misconfigured, and
// admission-cost estimation relies on them being bounded.
inline constexpr std::size_t kMaxSources = 64;
inline constexpr std::size_t kMaxK = 4096;
inline constexpr std::size_t kMaxIdBytes = 128;
inline constexpr double kMaxDeadlineMs = 600'000.0;

struct ServeRequest {
  Algorithm algorithm = Algorithm::kLbc;
  std::vector<Location> sources;
  std::size_t lbc_source_index = 0;
  // Client deadline in milliseconds (0 = none given; the server applies
  // its default). Mapped to QueryLimits::deadline_at at admission so queue
  // wait counts against it.
  double deadline_ms = 0.0;
  // Page-access budget (0 = unlimited), mapped to
  // QueryLimits::max_page_accesses.
  std::uint64_t page_budget = 0;
  // Cap on returned skyline entries (0 = all). Response-side only — the
  // query still computes the full (possibly truncated-by-limits) skyline.
  std::size_t k = 0;
  std::string id;
  // Parsed "traceparent" field (obs/request_context.h). Invalid (the
  // default) when the request carried none; a present-but-malformed value
  // is a parse error, not a silent re-mint.
  obs::TraceContext trace_context;
};

// Validates and maps a parsed JSON value. kInvalidArgument with a
// field-specific message on any violation.
StatusOr<ServeRequest> ParseServeRequest(const JsonValue& json);

// Convenience: ParseJson + ParseServeRequest with the serving limits.
StatusOr<ServeRequest> ParseServeRequestText(std::string_view text);

// HTTP-style status for a StatusCode: 400 for invalid input, 404 not
// found, 408 read timeout, 413 oversized frame, 503 shed/unavailable,
// 500 otherwise.
int HttpStatusFor(StatusCode code);

// Single-line JSON success response. `returned` entries of
// `result.skyline` are encoded (the k cap already applied by the caller);
// `queue_ms`/`wall_ms` report server-side queue wait and execution time.
std::string EncodeResultResponse(const ServeRequest& request,
                                 const SkylineResult& result,
                                 std::size_t returned, double queue_ms,
                                 double wall_ms);

// Single-line JSON error response. `retry_after_ms` > 0 adds the
// load-shedding hint ({"retry_after_ms":N}).
std::string EncodeErrorResponse(const std::string& id, StatusCode code,
                                const std::string& message,
                                double retry_after_ms = 0.0);

}  // namespace msq::serve

#endif  // MSQ_SERVE_REQUEST_H_
