#include "serve/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <utility>

#include <cinttypes>
#include <cstdio>

#include "common/check.h"
#include "obs/build_info.h"
#include "obs/export.h"

namespace msq::serve {

namespace {

const char* HttpReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string HttpResponse(int status, const std::string& content_type,
                         const std::string& body,
                         double retry_after_ms = 0.0) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    HttpReason(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  if (retry_after_ms > 0.0) {
    out += "Retry-After: " +
           std::to_string(static_cast<long>(
               std::ceil(retry_after_ms / 1000.0))) +
           "\r\n";
  }
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

bool LooksLikeHttp(const std::string& line) {
  return line.rfind("GET ", 0) == 0 || line.rfind("POST ", 0) == 0 ||
         line.rfind("HEAD ", 0) == 0 || line.rfind("PUT ", 0) == 0 ||
         line.rfind("DELETE ", 0) == 0 || line.rfind("OPTIONS ", 0) == 0;
}

}  // namespace

MsqServer::MsqServer(QueryExecutor* executor, const ServerConfig& config)
    : executor_(executor),
      config_(config),
      registry_(config.registry != nullptr ? config.registry
                                           : &obs::GlobalMetrics()),
      admission_([&] {
        AdmissionConfig admission = config.admission;
        if (admission.registry == nullptr) admission.registry = registry_;
        return admission;
      }()),
      connections_gauge_(registry_->gauge(metric::kServeConnections)),
      conn_shed_(registry_->counter(metric::kServeConnShed)),
      read_timeouts_(registry_->counter(metric::kServeReadTimeouts)),
      write_errors_(registry_->counter(metric::kServeWriteErrors)),
      queue_us_hist_(registry_->histogram(metric::kServeQueueUsHist)),
      wall_us_hist_(registry_->histogram(metric::kServeWallUsHist)),
      queue_wait_completed_(
          registry_->histogram(metric::kServeQueueWaitCompletedUsHist)),
      queue_wait_truncated_(
          registry_->histogram(metric::kServeQueueWaitTruncatedUsHist)),
      queue_wait_failed_(
          registry_->histogram(metric::kServeQueueWaitFailedUsHist)),
      mutations_applied_(
          registry_->counter(metric::kServeMutationsApplied)),
      mutations_failed_(registry_->counter(metric::kServeMutationsFailed)),
      data_epoch_gauge_(registry_->gauge(metric::kServeDataEpoch)),
      wide_events_(config.wide_event_capacity) {
  MSQ_CHECK(executor_ != nullptr);
}

MsqServer::~MsqServer() { Shutdown(); }

Status MsqServer::Start() {
  MSQ_CHECK(!running_.load());
  IgnoreSigpipe();
  StatusOr<int> listener =
      ListenTcp(config_.host, config_.port, config_.backlog, &port_);
  if (!listener.ok()) return listener.status();
  listener_ = listener.value();
  running_.store(true);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status();
}

void MsqServer::Shutdown() {
  if (!running_.exchange(false)) return;
  draining_.store(true, std::memory_order_relaxed);
  // Wake the blocked accept; the loop sees running_ == false and exits.
  ::shutdown(listener_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listener_);
  listener_ = -1;
  // Unblock idle connections (recv returns EOF). In-flight requests keep
  // their write half: responses still go out, deadlines still truncate.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (Conn& conn : conns_) {
      if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RD);
    }
  }
  ReapConnections(/*join_all=*/true);
  // Settle slow-query captures and queued work so a post-drain telemetry
  // flush reads stable, fully-accounted numbers.
  executor_->Quiesce();
}

void MsqServer::AcceptLoop() {
  for (;;) {
    int fd;
    do {
      fd = ::accept(listener_, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (!running_.load()) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) continue;
    ReapConnections(/*join_all=*/false);
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (open_connections_ >= config_.max_connections) {
      // Connection-level shed: one line that both a raw client and a
      // human can read, then close. Never queue sockets we cannot serve.
      conn_shed_->Inc();
      const std::string line =
          EncodeErrorResponse(
              "", StatusCode::kResourceExhausted,
              "connection limit reached",
              config_.admission.retry_after_base_ms) +
          "\n";
      (void)WriteAll(fd, line);
      ::close(fd);
      continue;
    }
    ++open_connections_;
    connections_gauge_->Update(static_cast<double>(open_connections_));
    conns_.emplace_back();
    Conn* conn = &conns_.back();
    conn->fd = fd;
    conn->thread = std::thread([this, conn] { HandleConnection(conn); });
  }
}

void MsqServer::ReapConnections(bool join_all) {
  std::list<Conn> to_join;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      auto next = std::next(it);
      if (join_all || it->done.load(std::memory_order_acquire)) {
        to_join.splice(to_join.end(), conns_, it);
      }
      it = next;
    }
  }
  for (Conn& conn : to_join) {
    if (conn.thread.joinable()) conn.thread.join();
  }
}

void MsqServer::HandleConnection(Conn* conn) {
  const int fd = conn->fd;
  (void)SetSocketTimeouts(fd, config_.read_timeout_seconds,
                          config_.write_timeout_seconds);
  FrameReader reader(fd, config_.max_request_bytes);
  for (;;) {
    StatusOr<std::string> line = reader.ReadLine();
    if (!line.ok()) {
      switch (line.status().code()) {
        case StatusCode::kNotFound:
          // Clean EOF between frames: the peer (or drain) closed us.
          break;
        case StatusCode::kDeadlineExceeded:
          // Idle connections close quietly; a peer stalled mid-frame is a
          // slow client — tell it, then close.
          read_timeouts_->Inc();
          if (reader.partial_frame()) {
            const std::string reply =
                EncodeErrorResponse("", StatusCode::kDeadlineExceeded,
                                    "timed out reading request frame") +
                "\n";
            if (!WriteAll(fd, reply).ok()) write_errors_->Inc();
          }
          break;
        case StatusCode::kResourceExhausted: {
          // Oversized frame: a full request was attempted, so it enters
          // the accounting as received+rejected before the close.
          admission_.CountReceived();
          admission_.CountRejected();
          const std::string reply =
              EncodeErrorResponse("", StatusCode::kResourceExhausted,
                                  line.status().message()) +
              "\n";
          if (!WriteAll(fd, reply).ok()) write_errors_->Inc();
          break;
        }
        default:
          break;  // reset / EOF mid-frame: nothing to say to a dead peer
      }
      break;
    }
    const double received_at = MonotonicSeconds();
    const std::string& text = line.value();
    if (LooksLikeHttp(text)) {
      bool close_connection = true;
      Reply reply = HandleHttp(text, &reader, received_at,
                               &close_connection);
      const double write_start = MonotonicSeconds();
      const bool write_ok = WriteAll(fd, reply.body).ok();
      if (!write_ok) write_errors_->Inc();
      FinishWideEvent(&reply, MonotonicSeconds() - write_start);
      if (close_connection) break;
      continue;
    }
    Reply reply = HandleQuery(text, received_at, obs::TraceContext{});
    reply.body += "\n";
    const double write_start = MonotonicSeconds();
    const bool write_ok = WriteAll(fd, reply.body).ok();
    if (!write_ok) write_errors_->Inc();
    FinishWideEvent(&reply, MonotonicSeconds() - write_start);
    if (!write_ok) break;
    if (draining_.load(std::memory_order_relaxed)) break;
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    ::close(conn->fd);
    conn->fd = -1;
    MSQ_CHECK(open_connections_ > 0);
    --open_connections_;
    connections_gauge_->Update(static_cast<double>(open_connections_));
  }
  conn->done.store(true, std::memory_order_release);
}

MsqServer::Reply MsqServer::HandleQuery(const std::string& text,
                                        double received_at,
                                        const obs::TraceContext& header_ctx) {
  obs::ServingTelemetry& telemetry = executor_->telemetry();
  admission_.CountReceived();
  Reply reply;
  reply.has_event = telemetry.enabled();
  obs::WideEvent& event = reply.event;
  event.received_at_mono = received_at;
  const double parse_start = MonotonicSeconds();
  StatusOr<ServeRequest> parsed =
      ParseServeRequestText(std::string_view(text));
  event.parse_ms = (MonotonicSeconds() - parse_start) * 1e3;
  // Trace context priority: request body field, then HTTP header, then a
  // server mint with the head-sampling coin. Every request — even one
  // about to be rejected — gets an identity so its wide event is
  // correlatable.
  obs::TraceContext ctx =
      parsed.ok() && parsed.value().trace_context.valid()
          ? parsed.value().trace_context
          : header_ctx;
  if (!ctx.valid() && telemetry.enabled()) {
    ctx = obs::TraceContext::Mint(telemetry.HeadSample());
  }
  if (ctx.valid()) event.trace_id = ctx.TraceIdHex();
  event.sampled = ctx.sampled;
  if (!parsed.ok()) {
    admission_.CountRejected();
    event.outcome = "rejected";
    event.status_code = static_cast<std::int32_t>(parsed.status().code());
    reply.http_status = HttpStatusFor(parsed.status().code());
    event.http_status = reply.http_status;
    reply.body = EncodeErrorResponse("", parsed.status().code(),
                                     parsed.status().message());
    return reply;
  }
  const ServeRequest& request = parsed.value();
  event.request_id = request.id;
  // Mutations report under their op name — "update_edge" latency belongs
  // in a different bucket than any query algorithm.
  event.algorithm = request.op == ServeOp::kQuery
                        ? AlgorithmName(request.algorithm)
                        : std::string_view(ServeOpName(request.op));
  const double cost = EstimateCost(request);
  if (draining_.load(std::memory_order_relaxed)) {
    // Drain counts as shed, not failure: the request was well-formed and
    // a retry against a healthy replica would succeed.
    admission_.CountShed();
    event.outcome = "shed";
    event.status_code =
        static_cast<std::int32_t>(StatusCode::kResourceExhausted);
    event.http_status = 503;
    reply.http_status = 503;
    reply.body =
        EncodeErrorResponse(request.id, StatusCode::kResourceExhausted,
                            "server draining",
                            config_.admission.retry_after_base_ms);
    return reply;
  }
  double retry_after_ms = 0.0;
  if (!admission_.TryAdmit(cost, &retry_after_ms)) {
    event.outcome = "shed";
    event.status_code =
        static_cast<std::int32_t>(StatusCode::kResourceExhausted);
    event.http_status = 503;
    reply.http_status = 503;
    reply.body =
        EncodeErrorResponse(request.id, StatusCode::kResourceExhausted,
                            "admission queue full", retry_after_ms);
    return reply;
  }
  if (request.op != ServeOp::kQuery) {
    return HandleMutation(std::move(reply), request, cost);
  }
  QueryRequest query;
  query.algorithm = request.algorithm;
  query.spec.sources = request.sources;
  query.spec.lbc_source_index = request.lbc_source_index;
  query.spec.limits.max_page_accesses = request.page_budget;
  query.collect_plan = request.explain;
  query.trace_context = ctx;
  const double deadline_ms = request.deadline_ms > 0.0
                                 ? request.deadline_ms
                                 : config_.default_deadline_ms;
  const double admit_at = MonotonicSeconds();
  if (deadline_ms > 0.0) {
    query.spec.limits.deadline_at = admit_at + deadline_ms / 1e3;
  }
  SkylineResult result = executor_->Submit(std::move(query)).get();
  const double total_seconds = MonotonicSeconds() - admit_at;
  const double queue_seconds =
      std::max(0.0, total_seconds - result.stats.total_seconds);
  const RequestOutcome outcome = AdmissionController::Classify(result);
  admission_.Finish(outcome, cost);
  queue_us_hist_->Observe(
      static_cast<std::uint64_t>(queue_seconds * 1e6));
  wall_us_hist_->Observe(
      static_cast<std::uint64_t>(total_seconds * 1e6));
  // True queue wait — accept to execute-start on a worker, from the
  // executor's clock stamps — split by outcome. Falls back to the derived
  // figure if the stamps are missing (disabled telemetry never clears
  // them, so this is belt-and-braces).
  const double queue_wait_seconds =
      result.exec_started_at > 0.0
          ? std::max(0.0, result.exec_started_at - received_at)
          : queue_seconds;
  obs::Histogram* queue_wait_hist =
      outcome == RequestOutcome::kCompleted   ? queue_wait_completed_
      : outcome == RequestOutcome::kTruncated ? queue_wait_truncated_
                                              : queue_wait_failed_;
  queue_wait_hist->Observe(
      static_cast<std::uint64_t>(queue_wait_seconds * 1e6));
  event.queue_ms = queue_wait_seconds * 1e3;
  event.execute_ms =
      (result.exec_finished_at > result.exec_started_at
           ? result.exec_finished_at - result.exec_started_at
           : result.stats.total_seconds) *
      1e3;
  event.network_page_accesses = result.stats.network_page_accesses;
  event.index_page_accesses = result.stats.index_page_accesses;
  event.cache_hits =
      result.stats.cache_wavefront_hits + result.stats.cache_memo_hits;
  event.settled_nodes = result.stats.settled_nodes;
  event.skyline_size = result.skyline.size();
  event.sequence = result.flight_sequence;
  event.status_code = static_cast<std::int32_t>(result.status.code());
  event.trace_retained =
      telemetry.enabled() && ctx.valid() &&
      telemetry.trace_store().Contains(ctx.trace_id_hi, ctx.trace_id_lo);
  if (event.trace_retained) {
    // Serve-level latency exemplar: the p99 bucket of the admitted-wall
    // histogram points at a /tracez-retrievable trace.
    telemetry.exemplars().Observe(
        metric::kServeWallUsHist,
        static_cast<std::uint64_t>(total_seconds * 1e6), event.trace_id);
  }
  const double serialize_start = MonotonicSeconds();
  if (outcome == RequestOutcome::kFailed) {
    event.outcome = "failed";
    reply.http_status = HttpStatusFor(result.status.code());
    event.http_status = reply.http_status;
    reply.body = EncodeErrorResponse(request.id, result.status.code(),
                                     result.status.message());
    event.serialize_ms = (MonotonicSeconds() - serialize_start) * 1e3;
    return reply;
  }
  const std::size_t returned =
      request.k > 0 ? std::min(request.k, result.skyline.size())
                    : result.skyline.size();
  event.returned = returned;
  event.outcome =
      outcome == RequestOutcome::kTruncated ? "truncated" : "completed";
  reply.http_status = 200;
  event.http_status = 200;
  reply.body =
      EncodeResultResponse(request, result, returned, queue_seconds * 1e3,
                           total_seconds * 1e3);
  event.serialize_ms = (MonotonicSeconds() - serialize_start) * 1e3;
  return reply;
}

MsqServer::Reply MsqServer::HandleMutation(Reply reply,
                                           const ServeRequest& request,
                                           double cost) {
  obs::WideEvent& event = reply.event;
  const double started_at = MonotonicSeconds();
  MutationResult result;
  if (config_.mutation_handler) {
    result = config_.mutation_handler(request);
  } else {
    result.status =
        Status::InvalidArgument("this server does not accept mutations");
  }
  const double wall_seconds = MonotonicSeconds() - started_at;
  // A mutation either applies or fails — there is no truncated prefix —
  // so the conservation identities hold with the same Finish() discipline
  // as queries.
  const RequestOutcome outcome = result.status.ok()
                                     ? RequestOutcome::kCompleted
                                     : RequestOutcome::kFailed;
  admission_.Finish(outcome, cost);
  wall_us_hist_->Observe(static_cast<std::uint64_t>(wall_seconds * 1e6));
  if (result.status.ok()) {
    mutations_applied_->Inc();
    data_epoch_gauge_->Update(static_cast<double>(result.data_epoch));
  } else {
    mutations_failed_->Inc();
  }
  // The exclusive-barrier drain happens inside the handler, so it counts
  // as execution here: mutation latency *is* dominated by waiting out the
  // in-flight queries.
  event.execute_ms = wall_seconds * 1e3;
  event.status_code = static_cast<std::int32_t>(result.status.code());
  const double serialize_start = MonotonicSeconds();
  if (outcome == RequestOutcome::kFailed) {
    event.outcome = "failed";
    reply.http_status = HttpStatusFor(result.status.code());
    event.http_status = reply.http_status;
    reply.body = EncodeErrorResponse(request.id, result.status.code(),
                                     result.status.message());
  } else {
    event.outcome = "completed";
    reply.http_status = 200;
    event.http_status = 200;
    reply.body =
        EncodeMutationResponse(request, result, wall_seconds * 1e3);
  }
  event.serialize_ms = (MonotonicSeconds() - serialize_start) * 1e3;
  return reply;
}

void MsqServer::FinishWideEvent(Reply* reply, double write_seconds) {
  if (!reply->has_event) return;
  obs::WideEvent& event = reply->event;
  event.write_ms = write_seconds * 1e3;
  if (event.received_at_mono > 0.0) {
    event.total_ms =
        (MonotonicSeconds() - event.received_at_mono) * 1e3;
  }
  wide_events_.Append(std::move(event));
  reply->has_event = false;
}

MsqServer::Reply MsqServer::HandleHttp(const std::string& request_line,
                                       FrameReader* reader,
                                       double received_at,
                                       bool* close_connection) {
  *close_connection = true;  // HTTP mode is one-shot; NDJSON persists
  const std::size_t method_end = request_line.find(' ');
  const std::size_t path_end = request_line.find(' ', method_end + 1);
  if (method_end == std::string::npos || path_end == std::string::npos ||
      request_line.compare(path_end + 1, 5, "HTTP/") != 0) {
    return {HttpResponse(400, "application/json",
                         EncodeErrorResponse(
                             "", StatusCode::kInvalidArgument,
                             "malformed HTTP request line")),
            400};
  }
  const std::string method = request_line.substr(0, method_end);
  const std::string path =
      request_line.substr(method_end + 1, path_end - method_end - 1);
  // Headers: bounded in count and (via FrameReader) per-line size. Only
  // Content-Length and (for POST /query) traceparent matter to this
  // server.
  std::size_t content_length = 0;
  std::string traceparent_header;
  for (int i = 0; i < 64; ++i) {
    StatusOr<std::string> header = reader->ReadLine();
    if (!header.ok()) {
      const int status =
          header.status().code() == StatusCode::kResourceExhausted ? 413
                                                                   : 408;
      return {HttpResponse(status, "application/json",
                           EncodeErrorResponse("", header.status().code(),
                                               header.status().message())),
              status};
    }
    const std::string& h = header.value();
    if (h.empty()) break;  // end of headers
    const std::size_t colon = h.find(':');
    if (colon == std::string::npos) continue;
    std::string name = h.substr(0, colon);
    std::transform(name.begin(), name.end(), name.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (name == "content-length") {
      std::size_t value_start = colon + 1;
      while (value_start < h.size() && h[value_start] == ' ') ++value_start;
      char* end = nullptr;
      const unsigned long long n =
          std::strtoull(h.c_str() + value_start, &end, 10);
      if (end == h.c_str() + value_start ||
          n > config_.max_request_bytes) {
        return {HttpResponse(413, "application/json",
                             EncodeErrorResponse(
                                 "", StatusCode::kResourceExhausted,
                                 "content-length exceeds limit")),
                413};
      }
      content_length = static_cast<std::size_t>(n);
    } else if (name == "traceparent") {
      std::size_t value_start = colon + 1;
      while (value_start < h.size() && h[value_start] == ' ') ++value_start;
      traceparent_header = h.substr(value_start);
    }
  }
  if (method == "GET" && path == "/metrics") {
    // Level-style gauges refresh on read: bring the shard-balance gauges
    // up to date before the registry is serialized.
    if (executor_->dataset().graph_buffer != nullptr) {
      executor_->dataset().graph_buffer->shard_balance();
    }
    if (executor_->dataset().index_buffer != nullptr) {
      executor_->dataset().index_buffer->shard_balance();
    }
    return {HttpResponse(200, "text/plain; version=0.0.4",
                         obs::PrometheusText(
                             *registry_,
                             &executor_->telemetry().exemplars())),
            200};
  }
  if (method == "GET" && path == "/healthz") {
    return {HttpResponse(200, "application/json", HealthzJson()), 200};
  }
  if (method == "GET" && path == "/explainz") {
    return {HttpResponse(200, "application/json",
                         obs::ExplainzJson(executor_->telemetry().plans())),
            200};
  }
  if (method == "GET" && path == "/debugz") {
    return {HttpResponse(200, "application/json", DebugzJson()), 200};
  }
  if (method == "GET" && path == "/statz") {
    return {HttpResponse(200, "application/json", StatzJson()), 200};
  }
  if (method == "GET" &&
      (path == "/tracez" || path.rfind("/tracez?", 0) == 0)) {
    const obs::TraceStore& store = executor_->telemetry().trace_store();
    const std::string needle = "trace_id=";
    const std::size_t query_start = path.find('?');
    std::string trace_id;
    if (query_start != std::string::npos) {
      const std::size_t id_start = path.find(needle, query_start);
      if (id_start != std::string::npos) {
        trace_id = path.substr(id_start + needle.size());
        const std::size_t amp = trace_id.find('&');
        if (amp != std::string::npos) trace_id.resize(amp);
      }
    }
    if (!trace_id.empty()) {
      std::optional<obs::RetainedTrace> trace = store.Find(trace_id);
      if (!trace.has_value()) {
        return {HttpResponse(404, "application/json",
                             EncodeErrorResponse(
                                 "", StatusCode::kNotFound,
                                 "no retained trace " + trace_id)),
                404};
      }
      return {HttpResponse(200, "application/json",
                           obs::RetainedTraceChromeJson(*trace)),
              200};
    }
    return {HttpResponse(200, "application/json", obs::TracezJson(store)),
            200};
  }
  if (method == "GET" && path == "/requestz") {
    return {HttpResponse(200, "application/json", wide_events_.Json()),
            200};
  }
  if (method == "POST" && path == "/query") {
    StatusOr<std::string> body = reader->ReadExact(content_length);
    if (!body.ok()) {
      const int status =
          body.status().code() == StatusCode::kResourceExhausted ? 413
                                                                 : 408;
      return {HttpResponse(status, "application/json",
                           EncodeErrorResponse("", body.status().code(),
                                               body.status().message())),
              status};
    }
    // A traceparent header is held to the same strict grammar as the body
    // field: malformed propagation is a client bug worth surfacing, not
    // something to silently re-mint over.
    obs::TraceContext header_ctx;
    if (!traceparent_header.empty()) {
      StatusOr<obs::TraceContext> ctx =
          obs::TraceContext::Parse(traceparent_header);
      if (!ctx.ok()) {
        admission_.CountReceived();
        admission_.CountRejected();
        return {HttpResponse(400, "application/json",
                             EncodeErrorResponse(
                                 "", StatusCode::kInvalidArgument,
                                 "traceparent header: " +
                                     ctx.status().message())),
                400};
      }
      header_ctx = ctx.value();
    }
    Reply reply = HandleQuery(body.value(), received_at, header_ctx);
    // Reuse the JSON body; lift the retry hint into the HTTP header.
    double retry_after_ms = 0.0;
    if (reply.http_status == 503) {
      retry_after_ms = config_.admission.retry_after_base_ms;
    }
    std::string http_body = HttpResponse(reply.http_status,
                                         "application/json", reply.body,
                                         retry_after_ms);
    reply.body = std::move(http_body);
    return reply;
  }
  if (path == "/metrics" || path == "/healthz" || path == "/statz" ||
      path == "/query" || path == "/tracez" || path == "/requestz" ||
      path == "/explainz" || path == "/debugz") {
    return {HttpResponse(405, "application/json",
                         EncodeErrorResponse(
                             "", StatusCode::kInvalidArgument,
                             "method not allowed for " + path)),
            405};
  }
  return {HttpResponse(404, "application/json",
                       EncodeErrorResponse("", StatusCode::kNotFound,
                                           "unknown path " + path)),
          404};
}

std::string MsqServer::StatzJson() const {
  std::string out = "{\"received\":";
  AppendJsonNumber(&out, static_cast<double>(admission_.received()));
  out += ",\"rejected\":";
  AppendJsonNumber(&out, static_cast<double>(admission_.rejected()));
  out += ",\"shed\":";
  AppendJsonNumber(&out, static_cast<double>(admission_.shed()));
  out += ",\"admitted\":";
  AppendJsonNumber(&out, static_cast<double>(admission_.admitted()));
  out += ",\"completed\":";
  AppendJsonNumber(&out, static_cast<double>(admission_.completed()));
  out += ",\"truncated\":";
  AppendJsonNumber(&out, static_cast<double>(admission_.truncated()));
  out += ",\"failed\":";
  AppendJsonNumber(&out, static_cast<double>(admission_.failed()));
  out += ",\"pending\":";
  AppendJsonNumber(&out, static_cast<double>(admission_.pending()));
  out += ",\"draining\":";
  out += draining_.load(std::memory_order_relaxed) ? "true" : "false";
  // Buffer-pool shard balance (storage/buffer_manager.h): the first place
  // to look when multi-core throughput stalls on a hot lock stripe.
  const auto append_pool = [&out](const char* name,
                                  const BufferManager* pool) {
    if (pool == nullptr) return;
    const ShardBalanceStats balance = pool->shard_balance();
    out += ",\"";
    out += name;
    out += "\":{\"shards\":";
    AppendJsonNumber(&out, static_cast<double>(balance.shard_count));
    out += ",\"resident_pages\":";
    AppendJsonNumber(&out, static_cast<double>(pool->resident_pages()));
    out += ",\"shard_occupancy_min\":";
    AppendJsonNumber(&out, static_cast<double>(balance.min_occupancy));
    out += ",\"shard_occupancy_max\":";
    AppendJsonNumber(&out, static_cast<double>(balance.max_occupancy));
    out += ",\"shard_occupancy_ratio\":";
    AppendJsonNumber(&out, balance.occupancy_ratio);
    out += ",\"shard_access_min\":";
    AppendJsonNumber(&out, static_cast<double>(balance.min_accesses));
    out += ",\"shard_access_max\":";
    AppendJsonNumber(&out, static_cast<double>(balance.max_accesses));
    out += ",\"shard_access_ratio\":";
    AppendJsonNumber(&out, balance.access_ratio);
    out += "}";
  };
  append_pool("network_buffer", executor_->dataset().graph_buffer);
  append_pool("index_buffer", executor_->dataset().index_buffer);
  out += "}";
  return out;
}

std::string MsqServer::HealthzJson() const {
  // "status":"ok" stays first and literal: liveness probes (and the CI
  // smoke) grep for it.
  std::string out = "{\"status\":\"ok\",\"draining\":";
  out += draining_.load(std::memory_order_relaxed) ? "true" : "false";
  out += ",\"data_epoch\":";
  AppendJsonNumber(&out, data_epoch_gauge_->value());
  out += ",\"admission\":{\"pending\":";
  AppendJsonNumber(&out, static_cast<double>(admission_.pending()));
  out += ",\"max_pending\":";
  AppendJsonNumber(&out,
                   static_cast<double>(config_.admission.max_pending));
  out += ",\"pending_cost\":";
  AppendJsonNumber(&out, admission_.pending_cost());
  out += ",\"max_pending_cost\":";
  AppendJsonNumber(&out, config_.admission.max_pending_cost);
  out += "}}";
  return out;
}

namespace {

// One flight-ring record for the /debugz bundle. Counters keep the
// FlightRecord field names so the bundle joins against DESIGN.md §12.
void AppendFlightRecordJson(std::string* out,
                            const obs::FlightRecord& record) {
  char buf[64];
  *out += "{\"sequence\":";
  AppendJsonNumber(out, static_cast<double>(record.sequence));
  *out += ",\"algo\":\"";
  *out += AlgorithmName(static_cast<Algorithm>(record.algorithm));
  *out += "\"";
  if (record.trace_id_hi != 0 || record.trace_id_lo != 0) {
    std::snprintf(buf, sizeof(buf), "%016" PRIx64 "%016" PRIx64,
                  record.trace_id_hi, record.trace_id_lo);
    *out += ",\"trace_id\":\"";
    *out += buf;
    *out += "\"";
  }
  *out += ",\"status_code\":";
  AppendJsonNumber(out, record.status_code);
  *out += ",\"truncated\":";
  *out += record.truncation != 0 ? "true" : "false";
  *out += ",\"sources\":";
  AppendJsonNumber(out, record.source_count);
  *out += ",\"skyline_size\":";
  AppendJsonNumber(out, static_cast<double>(record.skyline_size));
  *out += ",\"wall_ms\":";
  AppendJsonNumber(out, record.wall_seconds * 1e3);
  *out += ",\"network_pages\":";
  AppendJsonNumber(
      out, static_cast<double>(record.network_hits + record.network_misses));
  *out += ",\"index_pages\":";
  AppendJsonNumber(
      out, static_cast<double>(record.index_hits + record.index_misses));
  *out += ",\"settled_nodes\":";
  AppendJsonNumber(out, static_cast<double>(record.settled_nodes));
  *out += ",\"dominance_tests\":";
  AppendJsonNumber(out, static_cast<double>(record.dominance_tests));
  *out += ",\"dominance_avoided\":";
  AppendJsonNumber(out, static_cast<double>(record.dominance_avoided));
  *out += ",\"bound_samples\":";
  AppendJsonNumber(out, static_cast<double>(record.bound_samples));
  *out += ",\"bound_pct_sum\":";
  AppendJsonNumber(out, static_cast<double>(record.bound_pct_sum));
  *out += ",\"cache_hits\":";
  AppendJsonNumber(out, static_cast<double>(record.cache_hits));
  *out += ",\"cache_misses\":";
  AppendJsonNumber(out, static_cast<double>(record.cache_misses));
  *out += "}";
}

// MetricsJsonl emits one JSON object per line; the bundle wants them as
// one array value.
std::string JsonlToArray(const std::string& jsonl) {
  std::string out = "[";
  bool first = true;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    if (end > start) {
      if (!first) out += ",";
      first = false;
      out += "\n";
      out.append(jsonl, start, end - start);
    }
    start = end + 1;
  }
  out += "\n]";
  return out;
}

}  // namespace

std::string MsqServer::DebugzJson() const {
  // Refresh level-style gauges the same way GET /metrics does, so the
  // bundle's snapshot is current rather than last-scrape.
  if (executor_->dataset().graph_buffer != nullptr) {
    executor_->dataset().graph_buffer->shard_balance();
  }
  if (executor_->dataset().index_buffer != nullptr) {
    executor_->dataset().index_buffer->shard_balance();
  }
  obs::ServingTelemetry& telemetry = executor_->telemetry();
  std::string out = "{\"build\":";
  out += obs::BuildInfoJson();
  out += ",\n\"config\":{\"host\":";
  AppendJsonString(&out, config_.host);
  out += ",\"port\":";
  AppendJsonNumber(&out, port_);
  out += ",\"max_connections\":";
  AppendJsonNumber(&out, static_cast<double>(config_.max_connections));
  out += ",\"max_request_bytes\":";
  AppendJsonNumber(&out, static_cast<double>(config_.max_request_bytes));
  out += ",\"read_timeout_s\":";
  AppendJsonNumber(&out, config_.read_timeout_seconds);
  out += ",\"write_timeout_s\":";
  AppendJsonNumber(&out, config_.write_timeout_seconds);
  out += ",\"default_deadline_ms\":";
  AppendJsonNumber(&out, config_.default_deadline_ms);
  out += ",\"workers\":";
  AppendJsonNumber(&out, static_cast<double>(executor_->worker_count()));
  out += "}";
  out += ",\n\"healthz\":";
  out += HealthzJson();
  out += ",\n\"statz\":";
  out += StatzJson();
  out += ",\n\"flight\":{\"total\":";
  AppendJsonNumber(
      &out,
      static_cast<double>(telemetry.flight_recorder().total_recorded()));
  out += ",\"records\":[";
  bool first = true;
  for (const obs::FlightRecord& record :
       telemetry.flight_recorder().Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    AppendFlightRecordJson(&out, record);
  }
  out += "\n]}";
  out += ",\n\"traces\":";
  out += obs::TracezJson(telemetry.trace_store());
  out += ",\n\"requests\":";
  out += wide_events_.Json();
  out += ",\n\"metrics\":";
  out += JsonlToArray(obs::MetricsJsonl(*registry_));
  out += ",\n\"explain\":";
  out += obs::ExplainzJson(telemetry.plans());
  out += "}";
  return out;
}

}  // namespace msq::serve
