// The serving front door: a persistent-connection TCP server running
// skyline queries through a QueryExecutor with admission control, load
// shedding, deadline propagation, and graceful drain.
//
// Two protocols share one port, sniffed per connection from the first
// frame:
//
//   * NDJSON (persistent): each request is one JSON object on one line
//     (serve/request.h schema), each response one JSON line. A malformed
//     request gets a structured error response and the connection lives
//     on — framing resynchronizes at the next newline.
//   * Minimal HTTP/1.1 (curl/Prometheus-friendly, Connection: close):
//     POST /query with the same JSON body; GET /metrics (Prometheus text
//     exposition with retained-trace exemplars), GET /healthz (live
//     readiness: draining flag, data epoch, admission watermark
//     occupancy), GET /statz (accounting snapshot), GET /tracez
//     (tail-retained traces; with ?trace_id= the Chrome-trace export of
//     one), GET /requestz (recent canonical wide events), GET /explainz
//     (recent execution plans + per-algorithm pruning efficiency,
//     DESIGN.md §17), GET /debugz (the one-shot postmortem bundle:
//     build info, config, epochs, shard balance, admission accounting,
//     flight ring, retained traces, metric snapshots, recent plans).
//
// EXPLAIN: a query carrying "explain":true runs with plan collection and
// its response carries the structured ExecutionPlan as a "plan" field —
// the same plan /explainz retains for recent queries.
//
// Request tracing: a trace context arrives as a "traceparent" request
// field (NDJSON or POST body) or a traceparent HTTP header; absent one,
// the server mints an id with the telemetry head-sampling coin. The
// context flows through admission into the executor, and every request —
// including rejected and shed ones — emits one wide-event line into a
// bounded ring (DESIGN.md §14).
//
// Overload behavior, in order of the degradation ladder:
//   1. deadline propagation — the client deadline becomes
//      QueryLimits::deadline_at, so queue wait counts and an overloaded
//      server produces truncated-prefix results instead of late full ones;
//   2. load shedding — beyond the admission watermarks new requests get an
//      immediate RESOURCE_EXHAUSTED response with a retry_after_ms hint;
//   3. connection cap — beyond max_connections new sockets get a shed
//      response and close, so accept backlog cannot hoard fds.
//
// Slow or hostile peers are bounded in every direction: per-connection
// read/write timeouts, a frame-size cap enforced mid-read, EINTR/partial
// -write-safe I/O that never raises SIGPIPE (serve/socket.h).
#ifndef MSQ_SERVE_SERVER_H_
#define MSQ_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <thread>

#include "exec/query_executor.h"
#include "obs/request_context.h"
#include "obs/trace_store.h"
#include "serve/admission.h"
#include "serve/request.h"
#include "serve/socket.h"

namespace msq::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  // 0 binds an ephemeral port; port() reports the actual one.
  std::uint16_t port = 0;
  int backlog = 64;
  // Concurrent connections; beyond this, new sockets are shed and closed.
  std::size_t max_connections = 64;
  // Per-frame (request line or HTTP body) byte cap.
  std::size_t max_request_bytes = 64 * 1024;
  // Per-recv timeout. For an idle persistent connection this is the idle
  // timeout (closed quietly); mid-frame it is the slow-client bound
  // (error + close).
  double read_timeout_seconds = 10.0;
  // Per-send stall bound: a reader that stops draining its socket for
  // this long gets disconnected.
  double write_timeout_seconds = 5.0;
  // Applied when a request carries no deadline (0 = unlimited).
  double default_deadline_ms = 0.0;
  AdmissionConfig admission;
  // Executes parsed mutation requests ("op" field, serve/request.h) —
  // typically a closure over the owning Workload that runs the mutation
  // through QueryExecutor::SubmitExclusive. Null (the default) rejects
  // every mutation with INVALID_ARGUMENT; queries are unaffected.
  MutationHandler mutation_handler;
  // Registry served by GET /metrics; null = GlobalMetrics(). Should match
  // the executor's telemetry registry so one scrape sees everything.
  obs::MetricsRegistry* registry = nullptr;
  // Bounded ring of canonical wide events (GET /requestz).
  std::size_t wide_event_capacity = obs::WideEventLog::kDefaultCapacity;
};

class MsqServer {
 public:
  // `executor` is borrowed and must outlive the server.
  MsqServer(QueryExecutor* executor, const ServerConfig& config);
  ~MsqServer();  // calls Shutdown() if still running

  MsqServer(const MsqServer&) = delete;
  MsqServer& operator=(const MsqServer&) = delete;

  // Binds, listens, and starts the acceptor thread.
  Status Start();

  // Graceful drain, idempotent: stop accepting, unblock idle connections,
  // let in-flight requests finish (their deadlines still truncate them),
  // join every connection thread, and quiesce the executor so telemetry
  // is stable for a final flush. Returns when fully drained.
  void Shutdown();

  std::uint16_t port() const { return port_; }
  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }
  const AdmissionController& admission() const { return admission_; }
  QueryExecutor& executor() const { return *executor_; }

  // Accounting snapshot as one JSON object (the GET /statz body).
  std::string StatzJson() const;

  // Readiness snapshot as one JSON object (the GET /healthz body):
  // status, draining, data_epoch, and the admission watermark occupancy.
  std::string HealthzJson() const;

  // The postmortem bundle as one JSON object (the GET /debugz body).
  // Everything a debugging session starts from, in one fetch: build
  // stamp, server config, data epoch, accounting + shard balance
  // (StatzJson), the flight ring, retained traces, every counter/gauge/
  // histogram snapshot, and the recent execution plans. msq_server also
  // writes this to disk on SIGUSR1.
  std::string DebugzJson() const;

  // The wide-event ring (GET /requestz). Stable to read after Shutdown.
  const obs::WideEventLog& wide_events() const { return wide_events_; }

 private:
  struct Conn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void HandleConnection(Conn* conn);
  // One NDJSON line or HTTP POST body -> response body + HTTP status.
  // Query replies also carry the request's wide event; HandleConnection
  // finalizes its write/total stages after the socket write and appends it
  // to the ring.
  struct Reply {
    std::string body;
    int http_status = 200;
    obs::WideEvent event;
    bool has_event = false;
  };
  // `received_at` is the MonotonicSeconds() mark of frame arrival (the
  // wide event's epoch); `header_ctx` is the HTTP traceparent header
  // context (invalid for NDJSON, where the body field carries it).
  Reply HandleQuery(const std::string& text, double received_at,
                    const obs::TraceContext& header_ctx);
  // Runs one already-admitted mutation through the configured handler and
  // finishes its accounting (HandleQuery branches here after TryAdmit).
  Reply HandleMutation(Reply reply, const ServeRequest& request,
                       double cost);
  Reply HandleHttp(const std::string& request_line, FrameReader* reader,
                   double received_at, bool* close_connection);
  // Appends the reply's wide event (if any) after finalizing the
  // write-stage and total latency.
  void FinishWideEvent(Reply* reply, double write_seconds);
  // Joins finished connection threads (called from the acceptor between
  // accepts and from Shutdown for the stragglers).
  void ReapConnections(bool join_all);

  QueryExecutor* const executor_;
  const ServerConfig config_;
  obs::MetricsRegistry* const registry_;
  AdmissionController admission_;
  obs::Gauge* const connections_gauge_;
  obs::Counter* const conn_shed_;
  obs::Counter* const read_timeouts_;
  obs::Counter* const write_errors_;
  obs::Histogram* const queue_us_hist_;
  obs::Histogram* const wall_us_hist_;
  // True queue wait (accept -> execute start), split by outcome.
  obs::Histogram* const queue_wait_completed_;
  obs::Histogram* const queue_wait_truncated_;
  obs::Histogram* const queue_wait_failed_;
  obs::Counter* const mutations_applied_;
  obs::Counter* const mutations_failed_;
  obs::Gauge* const data_epoch_gauge_;
  obs::WideEventLog wide_events_;

  int listener_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::thread acceptor_;
  std::mutex conns_mu_;
  std::list<Conn> conns_;
  std::size_t open_connections_ = 0;
};

}  // namespace msq::serve

#endif  // MSQ_SERVE_SERVER_H_
