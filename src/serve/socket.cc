#include "serve/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <mutex>

namespace msq::serve {

void IgnoreSigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

namespace {

Status ParseHost(const std::string& host, in_addr* out) {
  if (::inet_pton(AF_INET, host.c_str(), out) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return Status();
}

}  // namespace

StatusOr<int> ListenTcp(const std::string& host, std::uint16_t port,
                        int backlog, std::uint16_t* bound_port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  Status parsed = ParseHost(host, &addr.sin_addr);
  if (!parsed.ok()) return parsed;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return IoErrorFromErrno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = IoErrorFromErrno("bind " + host + ":" +
                                     std::to_string(port));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) < 0) {
    Status status = IoErrorFromErrno("listen");
    ::close(fd);
    return status;
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) < 0) {
      Status status = IoErrorFromErrno("getsockname");
      ::close(fd);
      return status;
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

StatusOr<int> ConnectTcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  Status parsed = ParseHost(host, &addr.sin_addr);
  if (!parsed.ok()) return parsed;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return IoErrorFromErrno("socket");
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status status = IoErrorFromErrno("connect " + host + ":" +
                                     std::to_string(port));
    ::close(fd);
    return status;
  }
  return fd;
}

Status SetSocketTimeouts(int fd, double recv_seconds, double send_seconds) {
  auto set = [fd](int option, double seconds, const char* name) -> Status {
    timeval tv{};
    if (seconds > 0.0) {
      tv.tv_sec = static_cast<time_t>(seconds);
      tv.tv_usec = static_cast<suseconds_t>(
          (seconds - std::floor(seconds)) * 1e6);
      // A strictly positive timeout must not round down to "disabled".
      if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
    }
    if (::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) < 0) {
      return IoErrorFromErrno(name);
    }
    return Status();
  };
  Status status = set(SO_RCVTIMEO, recv_seconds, "setsockopt(SO_RCVTIMEO)");
  if (!status.ok()) return status;
  return set(SO_SNDTIMEO, send_seconds, "setsockopt(SO_SNDTIMEO)");
}

Status WriteAll(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  std::size_t remaining = size;
  while (remaining > 0) {
    // MSG_NOSIGNAL belt-and-braces with IgnoreSigpipe: neither path may
    // raise SIGPIPE on a closed peer.
    const ssize_t n = ::send(fd, p, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Unavailable("write timed out (slow reader)");
      }
      return IoErrorFromErrno("send");
    }
    if (n == 0) return Status::Unavailable("send made no progress");
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  return Status();
}

Status FrameReader::FillOnce() {
  if (eof_) return Status::NotFound("eof");
  char chunk[4096];
  ssize_t n;
  do {
    n = ::recv(fd_, chunk, sizeof(chunk), 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("read timed out");
    }
    if (errno == ECONNRESET) {
      return Status::Unavailable("connection reset by peer");
    }
    return IoErrorFromErrno("recv");
  }
  if (n == 0) {
    eof_ = true;
    return Status::NotFound("eof");
  }
  buffer_.append(chunk, static_cast<std::size_t>(n));
  return Status();
}

StatusOr<std::string> FrameReader::ReadLine() {
  std::size_t scanned = 0;
  for (;;) {
    const std::size_t nl = buffer_.find('\n', scanned);
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.size() > max_frame_bytes_) {
        return Status::ResourceExhausted(
            "frame of " + std::to_string(line.size()) +
            " bytes exceeds limit " + std::to_string(max_frame_bytes_));
      }
      return line;
    }
    if (buffer_.size() > max_frame_bytes_) {
      return Status::ResourceExhausted(
          "unterminated frame exceeds limit " +
          std::to_string(max_frame_bytes_));
    }
    scanned = buffer_.size();
    Status filled = FillOnce();
    if (!filled.ok()) {
      if (filled.code() == StatusCode::kNotFound && !buffer_.empty()) {
        return Status::Unavailable("eof mid-frame");
      }
      return filled;
    }
  }
}

StatusOr<std::string> FrameReader::ReadExact(std::size_t n) {
  if (n > max_frame_bytes_) {
    return Status::ResourceExhausted(
        "frame of " + std::to_string(n) + " bytes exceeds limit " +
        std::to_string(max_frame_bytes_));
  }
  while (buffer_.size() < n) {
    Status filled = FillOnce();
    if (!filled.ok()) {
      if (filled.code() == StatusCode::kNotFound) {
        return Status::Unavailable("eof mid-frame");
      }
      return filled;
    }
  }
  std::string frame = buffer_.substr(0, n);
  buffer_.erase(0, n);
  return frame;
}

}  // namespace msq::serve
