// Robust POSIX socket helpers shared by msq_server, the msq_stats metrics
// endpoint, and the bench_soak client driver.
//
// Everything here assumes a hostile or flaky peer: writes handle partial
// progress and EINTR and never raise SIGPIPE; reads are bounded in bytes
// and in time (SO_RCVTIMEO maps to kDeadlineExceeded, a vanished peer to
// kUnavailable); and the line reader enforces a frame-size cap so a peer
// streaming garbage without a newline cannot grow a connection buffer
// unboundedly.
#ifndef MSQ_SERVE_SOCKET_H_
#define MSQ_SERVE_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace msq::serve {

// Process-wide, idempotent: ignore SIGPIPE so a peer that closed mid-write
// surfaces as an EPIPE Status instead of killing the process. Every server
// or client entry point calls this before touching sockets.
void IgnoreSigpipe();

// Creates a TCP listener bound to `host`:`port` (port 0 picks an ephemeral
// port). Returns the listening fd; *bound_port receives the actual port.
StatusOr<int> ListenTcp(const std::string& host, std::uint16_t port,
                        int backlog, std::uint16_t* bound_port);

// Blocking connect to `host`:`port`. Returns the connected fd.
StatusOr<int> ConnectTcp(const std::string& host, std::uint16_t port);

// Sets SO_RCVTIMEO / SO_SNDTIMEO (seconds; 0 disables the respective
// timeout).
Status SetSocketTimeouts(int fd, double recv_seconds, double send_seconds);

// Writes all `size` bytes, retrying partial writes and EINTR. kUnavailable
// with errno context when the peer stalls past SO_SNDTIMEO or vanishes.
Status WriteAll(int fd, const void* data, std::size_t size);
inline Status WriteAll(int fd, const std::string& s) {
  return WriteAll(fd, s.data(), s.size());
}

// Buffered reader over one connection fd. Owns leftover bytes between
// frames so pipelined requests are not lost; both entry points enforce
// `max_frame_bytes` against the *frame*, independent of how the bytes are
// chunked on the wire.
class FrameReader {
 public:
  FrameReader(int fd, std::size_t max_frame_bytes)
      : fd_(fd), max_frame_bytes_(max_frame_bytes) {}

  // Reads up to and including the next '\n'; returns the line without the
  // terminator (a trailing '\r' is also stripped). Errors:
  //   kNotFound          clean EOF with no buffered partial line
  //   kDeadlineExceeded  SO_RCVTIMEO expired (partial_frame() says whether
  //                      mid-frame or between frames)
  //   kResourceExhausted frame exceeded max_frame_bytes
  //   kUnavailable       connection reset / EOF mid-line
  StatusOr<std::string> ReadLine();

  // Reads exactly `n` bytes (HTTP bodies). Same error taxonomy.
  StatusOr<std::string> ReadExact(std::size_t n);

  // True when buffered bytes exist — a timeout then means a stalled
  // mid-frame peer rather than an idle connection.
  bool partial_frame() const { return !buffer_.empty(); }

 private:
  // Appends one recv() of data to buffer_; Status conveys EOF (kNotFound)
  // or the error taxonomy above.
  Status FillOnce();

  int fd_;
  std::size_t max_frame_bytes_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace msq::serve

#endif  // MSQ_SERVE_SOCKET_H_
