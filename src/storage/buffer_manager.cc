#include "storage/buffer_manager.h"

#include "common/check.h"

namespace msq {

BufferManager::BufferManager(DiskManager* disk, std::size_t frames)
    : disk_(disk), frames_(frames) {
  MSQ_CHECK(disk != nullptr);
  MSQ_CHECK(frames >= 1);
}

Page* BufferManager::Fetch(PageId id, bool mark_dirty) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    ++stats_.hits;
    // Move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->dirty |= mark_dirty;
    return &it->second->page;
  }
  ++stats_.misses;
  if (lru_.size() >= frames_) EvictOne();
  lru_.emplace_front();
  Frame& frame = lru_.front();
  frame.id = id;
  frame.dirty = mark_dirty;
  disk_->Read(id, &frame.page);
  table_[id] = lru_.begin();
  return &frame.page;
}

std::pair<PageId, Page*> BufferManager::AllocatePage() {
  const PageId id = disk_->Allocate();
  if (lru_.size() >= frames_) EvictOne();
  lru_.emplace_front();
  Frame& frame = lru_.front();
  frame.id = id;
  frame.dirty = true;
  table_[id] = lru_.begin();
  return {id, &frame.page};
}

void BufferManager::FlushAll() {
  for (Frame& frame : lru_) {
    if (frame.dirty) {
      disk_->Write(frame.id, frame.page);
      frame.dirty = false;
      ++stats_.dirty_writebacks;
    }
  }
}

void BufferManager::Clear() {
  FlushAll();
  lru_.clear();
  table_.clear();
}

void BufferManager::EvictOne() {
  MSQ_CHECK(!lru_.empty());
  Frame& victim = lru_.back();
  if (victim.dirty) {
    disk_->Write(victim.id, victim.page);
    ++stats_.dirty_writebacks;
  }
  table_.erase(victim.id);
  lru_.pop_back();
  ++stats_.evictions;
}

}  // namespace msq
