#include "storage/buffer_manager.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "common/check.h"
#include "obs/trace.h"

namespace msq {

void PageGuard::Release() {
  if (pool_ != nullptr && frame_ != nullptr) {
    pool_->Unpin(shard_, frame_);
  }
  pool_ = nullptr;
  frame_ = nullptr;
  page_ = nullptr;
  id_ = kInvalidPage;
}

BufferManager::BufferManager(DiskManager* disk, std::size_t frames,
                             RetryPolicy retry, std::size_t shards)
    : disk_(disk), frames_(frames), retry_(retry) {
  MSQ_CHECK(disk != nullptr);
  MSQ_CHECK(frames >= 1);
  MSQ_CHECK(retry.max_read_attempts >= 1);
  MSQ_CHECK(retry.max_write_attempts >= 1);
  if (shards == 0) {
    shards = std::clamp<std::size_t>(frames / 8, 1, 16);
  }
  shard_count_ = std::clamp<std::size_t>(shards, 1, frames);
  shards_ = std::make_unique<Shard[]>(shard_count_);
  // Distribute capacity round-robin so every shard can hold at least one
  // frame and the caps sum exactly to `frames`.
  const std::size_t base = frames / shard_count_;
  const std::size_t extra = frames % shard_count_;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    shards_[i].capacity = base + (i < extra ? 1 : 0);
  }
}

void BufferManager::AttachMetrics(obs::MetricsRegistry* registry,
                                  std::string_view prefix) {
  MSQ_CHECK(registry != nullptr);
  const std::string base(prefix);
  metric_hits_ = registry->counter(base + ".hits");
  metric_misses_ = registry->counter(base + ".misses");
  metric_evictions_ = registry->counter(base + ".evictions");
  metric_writebacks_ = registry->counter(base + ".writebacks");
  metric_occupancy_ratio_ = registry->gauge(base + ".shard_occupancy_ratio");
  metric_access_ratio_ = registry->gauge(base + ".shard_access_ratio");
  if (prefix == obs::metric::kNetworkBufferPrefix) {
    role_ = BufferRole::kNetwork;
  } else if (prefix == obs::metric::kIndexBufferPrefix) {
    role_ = BufferRole::kIndex;
  }
}

void BufferManager::CountHit() {
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  if (metric_hits_ != nullptr) metric_hits_->Inc();
  switch (role_) {
    case BufferRole::kNetwork:
      ++obs::ThreadLocalCounters().network_hits;
      break;
    case BufferRole::kIndex:
      ++obs::ThreadLocalCounters().index_hits;
      break;
    case BufferRole::kNone:
      break;
  }
}

void BufferManager::CountMiss() {
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  if (metric_misses_ != nullptr) metric_misses_->Inc();
  switch (role_) {
    case BufferRole::kNetwork:
      ++obs::ThreadLocalCounters().network_misses;
      break;
    case BufferRole::kIndex:
      ++obs::ThreadLocalCounters().index_misses;
      break;
    case BufferRole::kNone:
      break;
  }
}

Status BufferManager::ReadWithRetry(PageId id, Page* out) {
  Status status;
  for (int attempt = 0; attempt < retry_.max_read_attempts; ++attempt) {
    if (attempt > 0) {
      stats_.read_retries.fetch_add(1, std::memory_order_relaxed);
      if (retry_.backoff_micros > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(retry_.backoff_micros << (attempt - 1)));
      }
    }
    status = disk_->Read(id, out);
    if (status.ok() || !status.transient()) break;
  }
  if (!status.ok()) stats_.failed_reads.fetch_add(1, std::memory_order_relaxed);
  return status;
}

Status BufferManager::WriteWithRetry(PageId id, const Page& page) {
  Status status;
  for (int attempt = 0; attempt < retry_.max_write_attempts; ++attempt) {
    if (attempt > 0) {
      stats_.write_retries.fetch_add(1, std::memory_order_relaxed);
      if (retry_.backoff_micros > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(retry_.backoff_micros << (attempt - 1)));
      }
    }
    status = disk_->Write(id, page);
    if (status.ok() || !status.transient()) break;
  }
  return status;
}

StatusOr<PageGuard> BufferManager::Fetch(PageId id, bool mark_dirty) {
  const std::size_t shard_index = id % shard_count_;
  Shard& shard = shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.accesses;
  if (auto it = shard.table.find(id); it != shard.table.end()) {
    CountHit();
    // Move to MRU position; list splice keeps the frame's address stable,
    // which is what lets outstanding guards survive the reordering.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    Frame& frame = *it->second;
    frame.dirty |= mark_dirty;
    ++frame.pins;
    return PageGuard(this, shard_index, &frame, &frame.page, id);
  }
  // Detail span (head-sampled queries only): one span per physical page
  // read, covering evict + disk read + frame install.
  obs::Span read_span = obs::DetailSpan("storage.page_read");
  CountMiss();
  if (Status status = EvictLocked(shard); !status.ok()) return status;
  // Read into a scratch frame first so a failed read leaves no stale entry
  // in the pool.
  shard.lru.emplace_front();
  Frame& frame = shard.lru.front();
  frame.id = id;
  frame.dirty = mark_dirty;
  if (Status status = ReadWithRetry(id, &frame.page); !status.ok()) {
    shard.lru.pop_front();
    return status;
  }
  frame.pins = 1;
  shard.table[id] = shard.lru.begin();
  return PageGuard(this, shard_index, &frame, &frame.page, id);
}

StatusOr<PageGuard> BufferManager::AllocatePage() {
  StatusOr<PageId> id = disk_->Allocate();
  if (!id.ok()) return id.status();
  const std::size_t shard_index = *id % shard_count_;
  Shard& shard = shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (Status status = EvictLocked(shard); !status.ok()) return status;
  shard.lru.emplace_front();
  Frame& frame = shard.lru.front();
  frame.id = *id;
  frame.dirty = true;
  frame.pins = 1;
  shard.table[*id] = shard.lru.begin();
  return PageGuard(this, shard_index, &frame, &frame.page, *id);
}

Status BufferManager::FreePage(PageId id) {
  Shard& shard = ShardFor(id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (auto it = shard.table.find(id); it != shard.table.end()) {
      if (it->second->pins > 0) {
        return Status::InvalidArgument("free of pinned page " +
                                       std::to_string(id));
      }
      // Drop the image without writeback: a freed page's contents are dead,
      // and leaving the frame resident would let a recycled id serve stale
      // bytes from the pool.
      shard.lru.erase(it->second);
      shard.table.erase(it);
    }
  }
  return disk_->Free(id);
}

void BufferManager::Unpin(std::size_t shard_index, void* frame) {
  Shard& shard = shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mu);
  Frame* f = static_cast<Frame*>(frame);
  MSQ_CHECK(f->pins > 0);
  --f->pins;
}

Status BufferManager::EvictLocked(Shard& shard) {
  while (shard.lru.size() >= shard.capacity) {
    // Victim: the least-recently-used unpinned frame. The back of the list
    // is normally unpinned, so this scan is O(1) in the steady state.
    auto victim = shard.lru.end();
    for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
      if (it->pins == 0) {
        victim = std::prev(it.base());
        break;
      }
    }
    if (victim == shard.lru.end()) {
      // Every frame is pinned: overflow temporarily rather than deadlock or
      // fail — later fetches shrink the shard back under capacity.
      return Status();
    }
    if (victim->dirty) {
      Status status = WriteWithRetry(victim->id, victim->page);
      if (!status.ok()) {
        stats_.failed_writebacks.fetch_add(1, std::memory_order_relaxed);
        return status;
      }
      victim->dirty = false;
      stats_.dirty_writebacks.fetch_add(1, std::memory_order_relaxed);
      if (metric_writebacks_ != nullptr) metric_writebacks_->Inc();
    }
    shard.table.erase(victim->id);
    shard.lru.erase(victim);
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    if (metric_evictions_ != nullptr) metric_evictions_->Inc();
  }
  return Status();
}

Status BufferManager::FlushAll() {
  Status first_error;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (Frame& frame : shard.lru) {
      if (!frame.dirty) continue;
      Status status = WriteWithRetry(frame.id, frame.page);
      if (status.ok()) {
        frame.dirty = false;
        stats_.dirty_writebacks.fetch_add(1, std::memory_order_relaxed);
        if (metric_writebacks_ != nullptr) metric_writebacks_->Inc();
      } else {
        stats_.failed_writebacks.fetch_add(1, std::memory_order_relaxed);
        if (first_error.ok()) first_error = status;
      }
    }
  }
  return first_error;
}

Status BufferManager::Clear() {
  if (Status status = FlushAll(); !status.ok()) return status;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->pins > 0) {
        ++it;
        continue;
      }
      shard.table.erase(it->id);
      it = shard.lru.erase(it);
    }
  }
  return Status();
}

BufferStats BufferManager::stats() const {
  BufferStats snapshot;
  snapshot.hits = stats_.hits.load(std::memory_order_relaxed);
  snapshot.misses = stats_.misses.load(std::memory_order_relaxed);
  snapshot.evictions = stats_.evictions.load(std::memory_order_relaxed);
  snapshot.dirty_writebacks =
      stats_.dirty_writebacks.load(std::memory_order_relaxed);
  snapshot.read_retries = stats_.read_retries.load(std::memory_order_relaxed);
  snapshot.write_retries =
      stats_.write_retries.load(std::memory_order_relaxed);
  snapshot.failed_reads = stats_.failed_reads.load(std::memory_order_relaxed);
  snapshot.failed_writebacks =
      stats_.failed_writebacks.load(std::memory_order_relaxed);
  return snapshot;
}

void BufferManager::ResetStats() {
  stats_.hits.store(0, std::memory_order_relaxed);
  stats_.misses.store(0, std::memory_order_relaxed);
  stats_.evictions.store(0, std::memory_order_relaxed);
  stats_.dirty_writebacks.store(0, std::memory_order_relaxed);
  stats_.read_retries.store(0, std::memory_order_relaxed);
  stats_.write_retries.store(0, std::memory_order_relaxed);
  stats_.failed_reads.store(0, std::memory_order_relaxed);
  stats_.failed_writebacks.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    shards_[i].accesses = 0;
  }
}

ShardBalanceStats BufferManager::shard_balance() const {
  ShardBalanceStats balance;
  balance.shard_count = shard_count_;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    std::size_t occupancy = 0;
    std::uint64_t accesses = 0;
    {
      std::lock_guard<std::mutex> lock(shards_[i].mu);
      occupancy = shards_[i].table.size();
      accesses = shards_[i].accesses;
    }
    if (i == 0) {
      balance.min_occupancy = balance.max_occupancy = occupancy;
      balance.min_accesses = balance.max_accesses = accesses;
    } else {
      balance.min_occupancy = std::min(balance.min_occupancy, occupancy);
      balance.max_occupancy = std::max(balance.max_occupancy, occupancy);
      balance.min_accesses = std::min(balance.min_accesses, accesses);
      balance.max_accesses = std::max(balance.max_accesses, accesses);
    }
  }
  balance.occupancy_ratio =
      static_cast<double>(balance.max_occupancy) /
      static_cast<double>(std::max<std::size_t>(1, balance.min_occupancy));
  balance.access_ratio =
      static_cast<double>(balance.max_accesses) /
      static_cast<double>(std::max<std::uint64_t>(1, balance.min_accesses));
  if (metric_occupancy_ratio_ != nullptr) {
    metric_occupancy_ratio_->Update(balance.occupancy_ratio);
  }
  if (metric_access_ratio_ != nullptr) {
    metric_access_ratio_->Update(balance.access_ratio);
  }
  return balance;
}

std::size_t BufferManager::resident_pages() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].table.size();
  }
  return total;
}

std::size_t BufferManager::pinned_pages() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    for (const Frame& frame : shards_[i].lru) {
      if (frame.pins > 0) ++total;
    }
  }
  return total;
}

}  // namespace msq
