#include "storage/buffer_manager.h"

#include <chrono>
#include <string>
#include <thread>

#include "common/check.h"

namespace msq {

BufferManager::BufferManager(DiskManager* disk, std::size_t frames,
                             RetryPolicy retry)
    : disk_(disk), frames_(frames), retry_(retry) {
  MSQ_CHECK(disk != nullptr);
  MSQ_CHECK(frames >= 1);
  MSQ_CHECK(retry.max_read_attempts >= 1);
  MSQ_CHECK(retry.max_write_attempts >= 1);
}

void BufferManager::AttachMetrics(obs::MetricsRegistry* registry,
                                  std::string_view prefix) {
  MSQ_CHECK(registry != nullptr);
  const std::string base(prefix);
  metric_hits_ = registry->counter(base + ".hits");
  metric_misses_ = registry->counter(base + ".misses");
  metric_evictions_ = registry->counter(base + ".evictions");
  metric_writebacks_ = registry->counter(base + ".writebacks");
}

Status BufferManager::ReadWithRetry(PageId id, Page* out) {
  Status status;
  for (int attempt = 0; attempt < retry_.max_read_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.read_retries;
      if (retry_.backoff_micros > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(retry_.backoff_micros << (attempt - 1)));
      }
    }
    status = disk_->Read(id, out);
    if (status.ok() || !status.transient()) break;
  }
  if (!status.ok()) ++stats_.failed_reads;
  return status;
}

Status BufferManager::WriteWithRetry(PageId id, const Page& page) {
  Status status;
  for (int attempt = 0; attempt < retry_.max_write_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.write_retries;
      if (retry_.backoff_micros > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(retry_.backoff_micros << (attempt - 1)));
      }
    }
    status = disk_->Write(id, page);
    if (status.ok() || !status.transient()) break;
  }
  return status;
}

StatusOr<Page*> BufferManager::Fetch(PageId id, bool mark_dirty) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    ++stats_.hits;
    if (metric_hits_ != nullptr) metric_hits_->Inc();
    // Move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->dirty |= mark_dirty;
    return &it->second->page;
  }
  ++stats_.misses;
  if (metric_misses_ != nullptr) metric_misses_->Inc();
  if (lru_.size() >= frames_) {
    if (Status status = EvictOne(); !status.ok()) return status;
  }
  // Read into a scratch frame first so a failed read leaves no stale entry
  // in the pool.
  lru_.emplace_front();
  Frame& frame = lru_.front();
  frame.id = id;
  frame.dirty = mark_dirty;
  if (Status status = ReadWithRetry(id, &frame.page); !status.ok()) {
    lru_.pop_front();
    return status;
  }
  table_[id] = lru_.begin();
  return &frame.page;
}

StatusOr<std::pair<PageId, Page*>> BufferManager::AllocatePage() {
  StatusOr<PageId> id = disk_->Allocate();
  if (!id.ok()) return id.status();
  if (lru_.size() >= frames_) {
    if (Status status = EvictOne(); !status.ok()) return status;
  }
  lru_.emplace_front();
  Frame& frame = lru_.front();
  frame.id = *id;
  frame.dirty = true;
  table_[*id] = lru_.begin();
  return std::pair<PageId, Page*>{*id, &frame.page};
}

Status BufferManager::FlushAll() {
  Status first_error;
  for (Frame& frame : lru_) {
    if (!frame.dirty) continue;
    Status status = WriteWithRetry(frame.id, frame.page);
    if (status.ok()) {
      frame.dirty = false;
      ++stats_.dirty_writebacks;
      if (metric_writebacks_ != nullptr) metric_writebacks_->Inc();
    } else {
      ++stats_.failed_writebacks;
      if (first_error.ok()) first_error = status;
    }
  }
  return first_error;
}

Status BufferManager::Clear() {
  if (Status status = FlushAll(); !status.ok()) return status;
  lru_.clear();
  table_.clear();
  return Status();
}

Status BufferManager::EvictOne() {
  MSQ_CHECK(!lru_.empty());
  Frame& victim = lru_.back();
  if (victim.dirty) {
    Status status = WriteWithRetry(victim.id, victim.page);
    if (!status.ok()) {
      ++stats_.failed_writebacks;
      return status;
    }
    victim.dirty = false;
    ++stats_.dirty_writebacks;
    if (metric_writebacks_ != nullptr) metric_writebacks_->Inc();
  }
  table_.erase(victim.id);
  lru_.pop_back();
  ++stats_.evictions;
  if (metric_evictions_ != nullptr) metric_evictions_->Inc();
  return Status();
}

}  // namespace msq
