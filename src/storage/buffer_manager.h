// Thread-safe lock-striped LRU buffer pool in front of a DiskManager.
//
// The paper's setup: "The disk page size is set to 4KB and a 1MB LRU buffer
// is used in all experiments." Buffer misses are the "disk pages accessed"
// reported in Figures 5 and 6.
//
// Concurrency model (DESIGN.md §10): the pool is sharded by PageId into S
// shards, each owning its private mutex, LRU list, and hash table, so
// concurrent queries running in a QueryExecutor pool contend only when they
// touch pages of the same shard. Fetch returns a PageGuard — an RAII pin on
// the frame. Pinned frames are never evicted, and the guarded pointer stays
// valid for exactly the guard's lifetime (this replaces the historical
// single-threaded "pointer valid until next Fetch" contract). The paged
// structures above (GraphPager, RTree, BpTree) hold the guard only while
// copying the record out of the page.
//
// All operations that touch the disk return Status/StatusOr: a failed read
// is reported to the caller instead of caching garbage, and a failed
// writeback keeps the dirty frame resident so no acknowledged write is
// silently dropped. Transient (kUnavailable) disk errors are retried per
// RetryPolicy — with an exponential backoff sleep between attempts when
// RetryPolicy::backoff_micros is nonzero — before surfacing.
#ifndef MSQ_STORAGE_BUFFER_MANAGER_H_
#define MSQ_STORAGE_BUFFER_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace msq {

// The experiment default: 1 MB of 4 KB frames.
inline constexpr std::size_t kDefaultBufferFrames = (1 << 20) / kPageSize;

// Cumulative buffer statistics (a snapshot; the live counters are atomic).
struct BufferStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      // == physical page reads
  std::uint64_t evictions = 0;
  std::uint64_t dirty_writebacks = 0;
  std::uint64_t read_retries = 0;   // transient read faults retried
  std::uint64_t write_retries = 0;  // transient write faults retried
  std::uint64_t failed_reads = 0;   // reads that failed after retries
  std::uint64_t failed_writebacks = 0;  // writebacks that failed after retries

  std::uint64_t accesses() const { return hits + misses; }
};

// Cross-shard balance snapshot (diagnostics for the lock-striping design:
// a hot shard serializes its callers, so skew here is the first thing to
// check when multi-core scaling stalls). Occupancy counts resident pages
// per shard; accesses counts cumulative Fetch calls per shard. Ratios are
// max over min with the min clamped to 1, so an empty pool reads as
// perfectly balanced rather than dividing by zero.
struct ShardBalanceStats {
  std::size_t shard_count = 0;
  std::size_t min_occupancy = 0;
  std::size_t max_occupancy = 0;
  std::uint64_t min_accesses = 0;
  std::uint64_t max_accesses = 0;
  double occupancy_ratio = 1.0;
  double access_ratio = 1.0;
};

// How the pool reacts to transient (kUnavailable) disk errors. Permanent
// errors (kIoError, kCorruption, kInvalidArgument) are never retried — a
// checksum mismatch does not heal on re-read from the same cold medium.
struct RetryPolicy {
  // Total attempts per physical read/write, including the first.
  int max_read_attempts = 3;
  int max_write_attempts = 3;
  // Base sleep between attempts, doubled per retry (attempt k sleeps
  // backoff_micros << (k-1)). Zero (default) keeps tests and benchmarks
  // fast; real deployments use a small exponential backoff.
  std::uint64_t backoff_micros = 0;
};

// Which query-stack role a pool serves; set by AttachMetrics from the
// well-known prefixes. Role-attached pools additionally bump the calling
// thread's obs::ThreadCounters on every hit/miss, which is what gives each
// concurrent query exact private page-access counts (core/query.h).
enum class BufferRole { kNone, kNetwork, kIndex };

class BufferManager;

// RAII pin on one pooled frame. While any guard on a frame is live the
// frame is never evicted and its Page* stays valid; destruction (or
// Release) unpins. Movable, not copyable. Guards are cheap but hold pool
// capacity — hold one only while copying a record out of the page.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { MoveFrom(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  ~PageGuard() { Release(); }

  // The pinned in-pool page image. Null iff !valid().
  Page* page() const { return page_; }
  Page* operator->() const { return page_; }
  Page& operator*() const { return *page_; }
  PageId id() const { return id_; }
  bool valid() const { return page_ != nullptr; }
  explicit operator bool() const { return valid(); }

  // Unpins now instead of at destruction.
  void Release();

 private:
  friend class BufferManager;
  PageGuard(BufferManager* pool, std::size_t shard, void* frame, Page* page,
            PageId id)
      : pool_(pool), shard_(shard), frame_(frame), page_(page), id_(id) {}

  void MoveFrom(PageGuard& other) {
    pool_ = other.pool_;
    shard_ = other.shard_;
    frame_ = other.frame_;
    page_ = other.page_;
    id_ = other.id_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
    other.page_ = nullptr;
    other.id_ = kInvalidPage;
  }

  BufferManager* pool_ = nullptr;
  std::size_t shard_ = 0;
  void* frame_ = nullptr;  // BufferManager::Frame*, opaque to callers
  Page* page_ = nullptr;
  PageId id_ = kInvalidPage;
};

// Sharded thread-safe LRU buffer pool. Fetch/AllocatePage/stats are safe to
// call from any number of threads. FlushAll/Clear/ResetStats iterate the
// shards consistently but assume no concurrent *writers* of pinned pages
// (benchmarks and builders call them from quiescent points).
class BufferManager {
 public:
  // `frames` is the pool capacity in pages; must be >= 1. `shards` of 0
  // picks one shard per 8 frames, clamped to [1, 16] — small pools (unit
  // tests asserting exact LRU order) get a single shard, the experiment
  // default of 256 frames gets 16. The manager does not own `disk`.
  BufferManager(DiskManager* disk, std::size_t frames,
                RetryPolicy retry = RetryPolicy{}, std::size_t shards = 0);

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  // Returns a pinned guard on the in-pool image of page `id`, reading it
  // from disk on a miss and evicting the shard's least-recently-used
  // unpinned frame if the shard is full (a shard whose frames are all
  // pinned overflows temporarily and shrinks back on later fetches).
  // If `mark_dirty` is true the page is written back before eviction.
  // Fails when the miss read fails (after retries) or when making room
  // requires a writeback that fails; the pool is left unchanged on failure.
  StatusOr<PageGuard> Fetch(PageId id, bool mark_dirty = false);

  // Allocates a fresh page on disk and returns a pinned guard on its pooled
  // image (dirty); guard.id() is the new page's id. Not thread-safe against
  // other AllocatePage calls — allocation happens at build time or under
  // the executor's exclusive write barrier, never concurrently with queries.
  StatusOr<PageGuard> AllocatePage();

  // Returns page `id` to the disk free list, dropping its pooled image
  // first (without writeback — a freed page's contents are dead) so a later
  // reuse of the id can never serve stale pooled bytes. Refuses with
  // kInvalidArgument while the frame is pinned. Same concurrency contract
  // as AllocatePage.
  Status FreePage(PageId id);

  // Writes back every dirty page (pool keeps its contents). On failure the
  // affected frame stays dirty and the first error is returned after
  // attempting the remaining frames.
  Status FlushAll();

  // Drops all pooled unpinned pages after flushing — the next Fetch of any
  // page is a miss (pinned frames, if any, stay resident). Benchmarks call
  // this between runs for cold-cache measurements. If any writeback fails,
  // NO frame is dropped (the dirty data survives in the pool) and the error
  // is returned.
  Status Clear();

  BufferStats stats() const;
  void ResetStats();

  // Occupancy/traffic balance across the lock stripes. When the pool is
  // metric-attached this also refreshes the `<prefix>.shard_occupancy_ratio`
  // and `<prefix>.shard_access_ratio` gauges, so a /statz poll keeps the
  // Prometheus view current.
  ShardBalanceStats shard_balance() const;

  // Mirrors hit/miss/eviction/writeback counts into `registry` counters
  // named "<prefix>.hits" etc (prefix: obs::metric::kNetworkBufferPrefix or
  // kIndexBufferPrefix for the two query-stack roles; those two prefixes
  // also set the pool's BufferRole, enabling per-thread access counting).
  // Registry counters are cumulative across pools attached under the same
  // prefix — span attribution (obs/trace.h) only ever reads deltas.
  // Unattached pools (raw tests) skip the mirroring entirely.
  void AttachMetrics(obs::MetricsRegistry* registry, std::string_view prefix);

  BufferRole role() const { return role_; }
  std::size_t frame_count() const { return frames_; }
  std::size_t shard_count() const { return shard_count_; }
  std::size_t resident_pages() const;
  // Pinned frames across all shards (diagnostics/tests).
  std::size_t pinned_pages() const;

  DiskManager* disk() { return disk_; }

 private:
  friend class PageGuard;

  struct Frame {
    PageId id = kInvalidPage;
    bool dirty = false;
    int pins = 0;
    Page page;
  };

  // One lock stripe: a private LRU over this shard's resident pages.
  // std::list nodes give stable Frame addresses across splices, so pinned
  // frames can be referenced by guards while the LRU order churns.
  struct Shard {
    mutable std::mutex mu;
    std::list<Frame> lru;  // most-recently-used at front
    std::unordered_map<PageId, std::list<Frame>::iterator> table;
    std::size_t capacity = 1;
    // Cumulative Fetch calls landing on this stripe (guarded by mu; feeds
    // ShardBalanceStats, reset by ResetStats).
    std::uint64_t accesses = 0;
  };

  // Live atomic counters behind the BufferStats snapshot.
  struct AtomicStats {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> dirty_writebacks{0};
    std::atomic<std::uint64_t> read_retries{0};
    std::atomic<std::uint64_t> write_retries{0};
    std::atomic<std::uint64_t> failed_reads{0};
    std::atomic<std::uint64_t> failed_writebacks{0};
  };

  Shard& ShardFor(PageId id) { return shards_[id % shard_count_]; }

  // Called by PageGuard; locks the shard and decrements the pin.
  void Unpin(std::size_t shard, void* frame);

  // Evicts LRU-most unpinned frames until the shard is under capacity
  // (at most one in the steady state). If a victim's writeback fails, the
  // frame is NOT evicted and the error is returned. A fully pinned shard
  // returns OK without evicting (temporary overflow).
  Status EvictLocked(Shard& shard);

  void CountHit();
  void CountMiss();

  // Physical I/O with transient-fault retries per retry_; called with the
  // owning shard's mutex held, so a retry backoff stalls only that shard.
  Status ReadWithRetry(PageId id, Page* out);
  Status WriteWithRetry(PageId id, const Page& page);

  DiskManager* disk_;
  std::size_t frames_;
  RetryPolicy retry_;
  std::size_t shard_count_ = 1;
  std::unique_ptr<Shard[]> shards_;
  AtomicStats stats_;
  BufferRole role_ = BufferRole::kNone;
  // Null until AttachMetrics.
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_evictions_ = nullptr;
  obs::Counter* metric_writebacks_ = nullptr;
  obs::Gauge* metric_occupancy_ratio_ = nullptr;
  obs::Gauge* metric_access_ratio_ = nullptr;
};

}  // namespace msq

#endif  // MSQ_STORAGE_BUFFER_MANAGER_H_
