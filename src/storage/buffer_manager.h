// LRU buffer pool in front of a DiskManager.
//
// The paper's setup: "The disk page size is set to 4KB and a 1MB LRU buffer
// is used in all experiments." Buffer misses are the "disk pages accessed"
// reported in Figures 5 and 6.
//
// All operations that touch the disk return Status/StatusOr: a failed read
// is reported to the caller instead of caching garbage, and a failed
// writeback keeps the dirty frame resident so no acknowledged write is
// silently dropped. Transient (kUnavailable) disk errors are retried per
// RetryPolicy before surfacing.
#ifndef MSQ_STORAGE_BUFFER_MANAGER_H_
#define MSQ_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace msq {

// The experiment default: 1 MB of 4 KB frames.
inline constexpr std::size_t kDefaultBufferFrames = (1 << 20) / kPageSize;

// Cumulative buffer statistics.
struct BufferStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      // == physical page reads
  std::uint64_t evictions = 0;
  std::uint64_t dirty_writebacks = 0;
  std::uint64_t read_retries = 0;   // transient read faults retried
  std::uint64_t write_retries = 0;  // transient write faults retried
  std::uint64_t failed_reads = 0;   // reads that failed after retries
  std::uint64_t failed_writebacks = 0;  // writebacks that failed after retries

  std::uint64_t accesses() const { return hits + misses; }
};

// How the pool reacts to transient (kUnavailable) disk errors. Permanent
// errors (kIoError, kCorruption, kInvalidArgument) are never retried — a
// checksum mismatch does not heal on re-read from the same cold medium.
struct RetryPolicy {
  // Total attempts per physical read/write, including the first.
  int max_read_attempts = 3;
  int max_write_attempts = 3;
  // Sleep between attempts. Zero (default) keeps tests and benchmarks fast;
  // real deployments would use a small exponential backoff.
  std::uint64_t backoff_micros = 0;
};

// Single-threaded LRU buffer pool. Pages are accessed through Fetch(),
// which returns a pointer valid until the next Fetch/FlushAll call — query
// algorithms copy what they need out of the page, matching how the
// paged structures (GraphPager, RTree, BpTree) use it.
class BufferManager {
 public:
  // `frames` is the pool capacity in pages; must be >= 1. The manager does
  // not own `disk`.
  BufferManager(DiskManager* disk, std::size_t frames,
                RetryPolicy retry = RetryPolicy{});

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  // Returns the in-pool image of page `id`, reading it from disk on a miss
  // and evicting the least-recently-used frame if the pool is full.
  // If `mark_dirty` is true the page is written back before eviction.
  // Fails when the miss read fails (after retries) or when making room
  // requires a writeback that fails; the pool is left unchanged on failure.
  StatusOr<Page*> Fetch(PageId id, bool mark_dirty = false);

  // Allocates a fresh page on disk and returns its pooled image (dirty).
  StatusOr<std::pair<PageId, Page*>> AllocatePage();

  // Writes back every dirty page (pool keeps its contents). On failure the
  // affected frame stays dirty and the first error is returned after
  // attempting the remaining frames.
  Status FlushAll();

  // Drops all pooled pages after flushing — the next Fetch of any page is a
  // miss. Benchmarks call this between runs for cold-cache measurements.
  // If any writeback fails, NO frame is dropped (the dirty data survives in
  // the pool) and the error is returned.
  Status Clear();

  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferStats{}; }

  // Mirrors hit/miss/eviction/writeback counts into `registry` counters
  // named "<prefix>.hits" etc (prefix: obs::metric::kNetworkBufferPrefix or
  // kIndexBufferPrefix for the two query-stack roles). Registry counters
  // are cumulative across pools attached under the same prefix — span
  // attribution (obs/trace.h) only ever reads deltas. Unattached pools
  // (raw tests) skip the mirroring entirely.
  void AttachMetrics(obs::MetricsRegistry* registry, std::string_view prefix);

  std::size_t frame_count() const { return frames_; }
  std::size_t resident_pages() const { return table_.size(); }

  DiskManager* disk() { return disk_; }

 private:
  struct Frame {
    PageId id = kInvalidPage;
    bool dirty = false;
    Page page;
  };

  // Evicts the LRU frame (back of the list). If the victim is dirty and its
  // writeback fails, the frame is NOT evicted and the error is returned.
  Status EvictOne();

  // Physical I/O with transient-fault retries per retry_.
  Status ReadWithRetry(PageId id, Page* out);
  Status WriteWithRetry(PageId id, const Page& page);

  DiskManager* disk_;
  std::size_t frames_;
  RetryPolicy retry_;
  // Most-recently-used at front.
  std::list<Frame> lru_;
  std::unordered_map<PageId, std::list<Frame>::iterator> table_;
  BufferStats stats_;
  // Null until AttachMetrics.
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_evictions_ = nullptr;
  obs::Counter* metric_writebacks_ = nullptr;
};

}  // namespace msq

#endif  // MSQ_STORAGE_BUFFER_MANAGER_H_
