// LRU buffer pool in front of a DiskManager.
//
// The paper's setup: "The disk page size is set to 4KB and a 1MB LRU buffer
// is used in all experiments." Buffer misses are the "disk pages accessed"
// reported in Figures 5 and 6.
#ifndef MSQ_STORAGE_BUFFER_MANAGER_H_
#define MSQ_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"

namespace msq {

// The experiment default: 1 MB of 4 KB frames.
inline constexpr std::size_t kDefaultBufferFrames = (1 << 20) / kPageSize;

// Cumulative buffer statistics.
struct BufferStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      // == physical page reads
  std::uint64_t evictions = 0;
  std::uint64_t dirty_writebacks = 0;

  std::uint64_t accesses() const { return hits + misses; }
};

// Single-threaded LRU buffer pool. Pages are accessed through Fetch(),
// which returns a pointer valid until the next Fetch/FlushAll call — query
// algorithms copy what they need out of the page, matching how the
// paged structures (GraphPager, RTree, BpTree) use it.
class BufferManager {
 public:
  // `frames` is the pool capacity in pages; must be >= 1. The manager does
  // not own `disk`.
  BufferManager(DiskManager* disk, std::size_t frames);

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  // Returns the in-pool image of page `id`, reading it from disk on a miss
  // and evicting the least-recently-used frame if the pool is full.
  // If `mark_dirty` is true the page is written back before eviction.
  Page* Fetch(PageId id, bool mark_dirty = false);

  // Allocates a fresh page on disk and returns its pooled image (dirty).
  std::pair<PageId, Page*> AllocatePage();

  // Writes back every dirty page (pool keeps its contents).
  void FlushAll();

  // Drops all pooled pages after flushing — the next Fetch of any page is a
  // miss. Benchmarks call this between runs for cold-cache measurements.
  void Clear();

  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferStats{}; }

  std::size_t frame_count() const { return frames_; }
  std::size_t resident_pages() const { return table_.size(); }

  DiskManager* disk() { return disk_; }

 private:
  struct Frame {
    PageId id = kInvalidPage;
    bool dirty = false;
    Page page;
  };

  // Evicts the LRU frame (back of the list).
  void EvictOne();

  DiskManager* disk_;
  std::size_t frames_;
  // Most-recently-used at front.
  std::list<Frame> lru_;
  std::unordered_map<PageId, std::list<Frame>::iterator> table_;
  BufferStats stats_;
};

}  // namespace msq

#endif  // MSQ_STORAGE_BUFFER_MANAGER_H_
