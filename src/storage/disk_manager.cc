#include "storage/disk_manager.h"

#include <cstring>

#include "common/check.h"

namespace msq {

PageId InMemoryDiskManager::Allocate() {
  pages_.push_back(std::make_unique<Page>());
  return static_cast<PageId>(pages_.size() - 1);
}

void InMemoryDiskManager::Read(PageId id, Page* out) {
  MSQ_CHECK(id < pages_.size());
  *out = *pages_[id];
  ++reads_;
}

void InMemoryDiskManager::Write(PageId id, const Page& page) {
  MSQ_CHECK(id < pages_.size());
  *pages_[id] = page;
  ++writes_;
}

std::unique_ptr<FileDiskManager> FileDiskManager::Open(const std::string& path,
                                                       bool truncate) {
  std::FILE* file = nullptr;
  if (!truncate) {
    file = std::fopen(path.c_str(), "r+b");
  }
  if (file == nullptr) {
    file = std::fopen(path.c_str(), "w+b");
  }
  if (file == nullptr) return nullptr;
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  MSQ_CHECK(size >= 0);
  MSQ_CHECK_MSG(static_cast<std::size_t>(size) % kPageSize == 0,
                "file %s is not page-aligned", path.c_str());
  return std::unique_ptr<FileDiskManager>(
      new FileDiskManager(file, static_cast<std::size_t>(size) / kPageSize));
}

FileDiskManager::FileDiskManager(std::FILE* file, std::size_t page_count)
    : file_(file), page_count_(page_count) {}

FileDiskManager::~FileDiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

PageId FileDiskManager::Allocate() {
  Page zero{};
  std::fseek(file_, static_cast<long>(page_count_ * kPageSize), SEEK_SET);
  const std::size_t written =
      std::fwrite(zero.data.data(), 1, kPageSize, file_);
  MSQ_CHECK(written == kPageSize);
  return static_cast<PageId>(page_count_++);
}

void FileDiskManager::Read(PageId id, Page* out) {
  MSQ_CHECK(id < page_count_);
  std::fseek(file_, static_cast<long>(static_cast<std::size_t>(id) * kPageSize),
             SEEK_SET);
  const std::size_t got = std::fread(out->data.data(), 1, kPageSize, file_);
  MSQ_CHECK(got == kPageSize);
  ++reads_;
}

void FileDiskManager::Write(PageId id, const Page& page) {
  MSQ_CHECK(id < page_count_);
  std::fseek(file_, static_cast<long>(static_cast<std::size_t>(id) * kPageSize),
             SEEK_SET);
  const std::size_t written =
      std::fwrite(page.data.data(), 1, kPageSize, file_);
  MSQ_CHECK(written == kPageSize);
  std::fflush(file_);
  ++writes_;
}

}  // namespace msq
