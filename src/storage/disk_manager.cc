#include "storage/disk_manager.h"

#include <cstring>

#include "common/check.h"
#include "common/crc32.h"

namespace msq {
namespace {

std::string PageContext(const std::string& path, PageId id,
                        const char* what) {
  return std::string(what) + " page " + std::to_string(id) + " of " + path;
}

}  // namespace

StatusOr<PageId> InMemoryDiskManager::Allocate() {
  if (!free_.empty()) {
    const PageId id = free_.back();
    free_.pop_back();
    freed_[id] = false;
    *pages_[id] = Page{};  // a recycled slot starts zeroed, like a fresh one
    return id;
  }
  pages_.push_back(std::make_unique<Page>());
  if (freed_.size() < pages_.size()) freed_.resize(pages_.size(), false);
  return static_cast<PageId>(pages_.size() - 1);
}

Status InMemoryDiskManager::Read(PageId id, Page* out) {
  if (id >= pages_.size()) {
    return Status::InvalidArgument("read of unallocated page " +
                                   std::to_string(id));
  }
  // Distinct pages live in distinct heap allocations and same-page access is
  // serialized by the buffer shard that owns the page, so no lock is needed.
  *out = *pages_[id];
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status();
}

Status InMemoryDiskManager::Write(PageId id, const Page& page) {
  if (id >= pages_.size()) {
    return Status::InvalidArgument("write of unallocated page " +
                                   std::to_string(id));
  }
  *pages_[id] = page;
  writes_.fetch_add(1, std::memory_order_relaxed);
  return Status();
}

Status InMemoryDiskManager::Free(PageId id) {
  if (id >= pages_.size()) {
    return Status::InvalidArgument("free of unallocated page " +
                                   std::to_string(id));
  }
  if (id < freed_.size() && freed_[id]) {
    return Status::InvalidArgument("double free of page " +
                                   std::to_string(id));
  }
  if (freed_.size() < pages_.size()) freed_.resize(pages_.size(), false);
  freed_[id] = true;
  free_.push_back(id);
  return Status();
}

StatusOr<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path, bool truncate) {
  std::FILE* file = nullptr;
  if (!truncate) {
    file = std::fopen(path.c_str(), "r+b");
  }
  if (file == nullptr) {
    file = std::fopen(path.c_str(), "w+b");
  }
  if (file == nullptr) {
    return IoErrorFromErrno("cannot open " + path);
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    const Status status = IoErrorFromErrno("cannot seek to end of " + path);
    std::fclose(file);
    return status;
  }
  const long size = std::ftell(file);
  if (size < 0) {
    const Status status = IoErrorFromErrno("cannot tell size of " + path);
    std::fclose(file);
    return status;
  }
  if (static_cast<std::size_t>(size) % kSlotSize != 0) {
    std::fclose(file);
    return Status::Corruption("file " + path + " is not slot-aligned (" +
                              std::to_string(size) + " bytes)");
  }
  return std::unique_ptr<FileDiskManager>(new FileDiskManager(
      file, path, static_cast<std::size_t>(size) / kSlotSize));
}

FileDiskManager::FileDiskManager(std::FILE* file, std::string path,
                                 std::size_t page_count)
    : file_(file), path_(std::move(path)), page_count_(page_count) {}

FileDiskManager::~FileDiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileDiskManager::WriteSlot(PageId id, const Page& page) {
  if (std::fseek(file_,
                 static_cast<long>(static_cast<std::size_t>(id) * kSlotSize),
                 SEEK_SET) != 0) {
    return IoErrorFromErrno(PageContext(path_, id, "cannot seek to"));
  }
  PageTrailer trailer;
  trailer.magic = kPageMagic;
  trailer.page_id = id;
  trailer.payload_crc = Crc32c(page.data.data(), kPageSize);
  const std::size_t wrote_payload =
      std::fwrite(page.data.data(), 1, kPageSize, file_);
  if (wrote_payload != kPageSize) {
    return IoErrorFromErrno(PageContext(path_, id, "short write of"));
  }
  const std::size_t wrote_trailer =
      std::fwrite(&trailer, 1, sizeof(trailer), file_);
  if (wrote_trailer != sizeof(trailer)) {
    return IoErrorFromErrno(PageContext(path_, id, "short trailer write of"));
  }
  if (std::fflush(file_) != 0) {
    return IoErrorFromErrno(PageContext(path_, id, "cannot flush"));
  }
  return Status();
}

StatusOr<PageId> FileDiskManager::Allocate() {
  std::lock_guard<std::mutex> lock(io_mu_);
  const Page zero{};
  if (!free_.empty()) {
    const PageId id = free_.back();
    // Zero the recycled slot first; only a clean write takes it off the
    // free list, so a failed reuse can be retried.
    if (Status status = WriteSlot(id, zero); !status.ok()) return status;
    free_.pop_back();
    freed_[id] = false;
    return id;
  }
  const PageId id =
      static_cast<PageId>(page_count_.load(std::memory_order_relaxed));
  if (Status status = WriteSlot(id, zero); !status.ok()) return status;
  page_count_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Status FileDiskManager::Read(PageId id, Page* out) {
  if (id >= page_count_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("read of unallocated page " +
                                   std::to_string(id) + " of " + path_);
  }
  std::lock_guard<std::mutex> lock(io_mu_);
  if (std::fseek(file_,
                 static_cast<long>(static_cast<std::size_t>(id) * kSlotSize),
                 SEEK_SET) != 0) {
    return IoErrorFromErrno(PageContext(path_, id, "cannot seek to"));
  }
  const std::size_t got = std::fread(out->data.data(), 1, kPageSize, file_);
  if (got != kPageSize) {
    if (std::ferror(file_) != 0) {
      std::clearerr(file_);
      return IoErrorFromErrno(PageContext(path_, id, "cannot read"));
    }
    return Status::IoError(PageContext(path_, id, "short read of"));
  }
  PageTrailer trailer;
  const std::size_t got_trailer =
      std::fread(&trailer, 1, sizeof(trailer), file_);
  if (got_trailer != sizeof(trailer)) {
    if (std::ferror(file_) != 0) {
      std::clearerr(file_);
      return IoErrorFromErrno(PageContext(path_, id, "cannot read trailer of"));
    }
    return Status::IoError(PageContext(path_, id, "short trailer read of"));
  }
  if (trailer.magic != kPageMagic) {
    return Status::Corruption(PageContext(path_, id, "bad trailer magic on"));
  }
  if (trailer.page_id != id) {
    return Status::Corruption(PageContext(path_, id, "misdirected page at") +
                              " (trailer says page " +
                              std::to_string(trailer.page_id) + ")");
  }
  const std::uint32_t crc = Crc32c(out->data.data(), kPageSize);
  if (crc != trailer.payload_crc) {
    return Status::Corruption(PageContext(path_, id, "checksum mismatch on"));
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status();
}

Status FileDiskManager::Write(PageId id, const Page& page) {
  if (id >= page_count_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("write of unallocated page " +
                                   std::to_string(id) + " of " + path_);
  }
  std::lock_guard<std::mutex> lock(io_mu_);
  if (Status status = WriteSlot(id, page); !status.ok()) return status;
  writes_.fetch_add(1, std::memory_order_relaxed);
  return Status();
}

Status FileDiskManager::Free(PageId id) {
  if (id >= page_count_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("free of unallocated page " +
                                   std::to_string(id) + " of " + path_);
  }
  std::lock_guard<std::mutex> lock(io_mu_);
  if (id < freed_.size() && freed_[id]) {
    return Status::InvalidArgument("double free of page " +
                                   std::to_string(id) + " of " + path_);
  }
  const std::size_t count = page_count_.load(std::memory_order_relaxed);
  if (freed_.size() < count) freed_.resize(count, false);
  freed_[id] = true;
  free_.push_back(id);
  return Status();
}

std::size_t FileDiskManager::FreeCount() const {
  std::lock_guard<std::mutex> lock(io_mu_);
  return free_.size();
}

}  // namespace msq
