// Page-granular storage backends.
//
// Every structure whose access cost the paper measures (network adjacency
// lists, R-trees, the B+-tree middle layer) is laid out in 4 KB pages and
// read through a DiskManager, so "disk pages accessed" is a real count, not
// a model. Two backends: an in-memory one (default for benchmarks — the
// metric of interest is the page-access count, which is identical) and a
// file-backed one (for datasets larger than memory and for persistence
// tests).
//
// Every operation reports failure through Status instead of aborting: I/O
// errors are environmental, and the query stack above degrades to a clean
// typed error rather than crashing (see common/status.h and DESIGN.md's
// "Failure model").
#ifndef MSQ_STORAGE_DISK_MANAGER_H_
#define MSQ_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace msq {

// Abstract page store. Concurrent Read/Write calls on distinct pages are
// safe (the sharded BufferManager above serializes same-page access);
// Allocate/Free happen at build time or under the executor's exclusive
// write barrier, never concurrently with queries.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  // Returns a zeroed page id: a recycled one from the free list when
  // available, otherwise a freshly appended page. Reusing freed slots
  // bounds file growth under repeated relayout/mutation churn.
  virtual StatusOr<PageId> Allocate() = 0;
  // Reads page `id` into `*out`. Fails with kInvalidArgument for an
  // unallocated id, kIoError/kCorruption for environmental failures.
  virtual Status Read(PageId id, Page* out) = 0;
  // Writes `page` at `id`. Same failure taxonomy as Read.
  virtual Status Write(PageId id, const Page& page) = 0;
  // Returns page `id` to the free list for reuse by a later Allocate.
  // kInvalidArgument for an unallocated or already-free id. The slot stays
  // readable (zeroed on reuse) — callers must drop their own references
  // (and any buffered copies) first.
  virtual Status Free(PageId id) = 0;
  // Number of allocated slots (freed-but-not-reused slots included — this
  // is the file-size metric the churn bench bounds).
  virtual std::size_t PageCount() const = 0;
  // Slots currently on the free list.
  virtual std::size_t FreeCount() const = 0;

  // Cumulative successful physical read/write counters (for I/O accounting
  // tests; the benchmark metric is buffer-miss counts from BufferManager,
  // which equal physical reads here).
  std::uint64_t reads() const {
    return reads_.load(std::memory_order_relaxed);
  }
  std::uint64_t writes() const {
    return writes_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
  }

 protected:
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> writes_{0};
};

// Heap-backed page store. Never fails except on out-of-range ids.
class InMemoryDiskManager final : public DiskManager {
 public:
  StatusOr<PageId> Allocate() override;
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;
  Status Free(PageId id) override;
  std::size_t PageCount() const override { return pages_.size(); }
  std::size_t FreeCount() const override { return free_.size(); }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
  // Recycled ids, popped LIFO by Allocate. `freed_[id]` guards double-free.
  std::vector<PageId> free_;
  std::vector<bool> freed_;
};

// File-backed page store. The file is created (truncated) on construction
// when `truncate` is true, otherwise existing pages are adopted.
//
// On-disk format: each page occupies a fixed-size slot — the 4 KB payload
// followed by a PageTrailer {magic+version, page id, CRC-32C of the
// payload}. Every Read verifies the trailer, so torn writes, bit flips, and
// misdirected pages surface as kCorruption instead of silently feeding bad
// bytes to the structures above.
class FileDiskManager final : public DiskManager {
 public:
  // Versioned on-disk page trailer. Bump kPageMagic when the layout changes.
  struct PageTrailer {
    std::uint32_t magic = 0;
    std::uint32_t page_id = 0;
    std::uint32_t payload_crc = 0;
    std::uint32_t reserved = 0;
  };
  static constexpr std::uint32_t kPageMagic = 0x4d535131;  // "MSQ1"
  // On-disk bytes per page slot (payload + trailer); tests use this to
  // compute raw file offsets when injecting corruption.
  static constexpr std::size_t kSlotSize = kPageSize + sizeof(PageTrailer);

  // Opens (or creates) `path`. Fails with kIoError when the file cannot be
  // opened and kCorruption when an adopted file is not slot-aligned.
  static StatusOr<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path, bool truncate);
  ~FileDiskManager() override;

  FileDiskManager(const FileDiskManager&) = delete;
  FileDiskManager& operator=(const FileDiskManager&) = delete;

  StatusOr<PageId> Allocate() override;
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;
  Status Free(PageId id) override;
  std::size_t PageCount() const override {
    return page_count_.load(std::memory_order_relaxed);
  }
  std::size_t FreeCount() const override;

 private:
  FileDiskManager(std::FILE* file, std::string path, std::size_t page_count);

  // Seeks to `id`'s slot and writes payload + trailer. Caller holds io_mu_.
  Status WriteSlot(PageId id, const Page& page);

  // The single FILE* carries one seek position, so concurrent page I/O from
  // different buffer shards must serialize around seek+read/write pairs.
  mutable std::mutex io_mu_;
  std::FILE* file_;
  std::string path_;  // for error messages
  std::atomic<std::size_t> page_count_;
  // In-memory only: the free list is not persisted, so an adopted file
  // starts with every slot considered live. Guarded by io_mu_.
  std::vector<PageId> free_;
  std::vector<bool> freed_;
};

}  // namespace msq

#endif  // MSQ_STORAGE_DISK_MANAGER_H_
