// Page-granular storage backends.
//
// Every structure whose access cost the paper measures (network adjacency
// lists, R-trees, the B+-tree middle layer) is laid out in 4 KB pages and
// read through a DiskManager, so "disk pages accessed" is a real count, not
// a model. Two backends: an in-memory one (default for benchmarks — the
// metric of interest is the page-access count, which is identical) and a
// file-backed one (for datasets larger than memory and for persistence
// tests).
#ifndef MSQ_STORAGE_DISK_MANAGER_H_
#define MSQ_STORAGE_DISK_MANAGER_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "storage/page.h"

namespace msq {

// Abstract page store. Not thread-safe; queries in this library are
// single-threaded, as in the paper.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  // Appends a zeroed page and returns its id.
  virtual PageId Allocate() = 0;
  // Reads page `id` into `*out`. `id` must have been allocated.
  virtual void Read(PageId id, Page* out) = 0;
  // Writes `page` at `id`. `id` must have been allocated.
  virtual void Write(PageId id, const Page& page) = 0;
  // Number of allocated pages.
  virtual std::size_t PageCount() const = 0;

  // Cumulative physical read/write counters (for I/O accounting tests; the
  // benchmark metric is buffer-miss counts from BufferManager, which equal
  // physical reads here).
  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  void ResetCounters() {
    reads_ = 0;
    writes_ = 0;
  }

 protected:
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

// Heap-backed page store.
class InMemoryDiskManager final : public DiskManager {
 public:
  PageId Allocate() override;
  void Read(PageId id, Page* out) override;
  void Write(PageId id, const Page& page) override;
  std::size_t PageCount() const override { return pages_.size(); }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
};

// File-backed page store. The file is created (truncated) on construction
// when `truncate` is true, otherwise existing pages are adopted.
class FileDiskManager final : public DiskManager {
 public:
  // Opens (or creates) `path`. Returns nullptr when the file cannot be
  // opened.
  static std::unique_ptr<FileDiskManager> Open(const std::string& path,
                                               bool truncate);
  ~FileDiskManager() override;

  FileDiskManager(const FileDiskManager&) = delete;
  FileDiskManager& operator=(const FileDiskManager&) = delete;

  PageId Allocate() override;
  void Read(PageId id, Page* out) override;
  void Write(PageId id, const Page& page) override;
  std::size_t PageCount() const override { return page_count_; }

 private:
  FileDiskManager(std::FILE* file, std::size_t page_count);

  std::FILE* file_;
  std::size_t page_count_;
};

}  // namespace msq

#endif  // MSQ_STORAGE_DISK_MANAGER_H_
