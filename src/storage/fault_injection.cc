#include "storage/fault_injection.h"

#include <string>

namespace msq {

FaultInjectingDiskManager::FaultInjectingDiskManager(
    DiskManager* inner, FaultInjectionConfig config)
    : inner_(inner), config_(config), rng_(config.seed) {}

void FaultInjectingDiskManager::FailNextReads(int count, StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < count; ++i) scripted_read_faults_.push_back(code);
}

void FaultInjectingDiskManager::FailNextWrites(int count, StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < count; ++i) scripted_write_faults_.push_back(code);
}

FaultInjectionStats FaultInjectingDiskManager::fault_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fault_stats_;
}

Status FaultInjectingDiskManager::MakeFault(StatusCode code, const char* op,
                                            PageId id) {
  const std::string msg = std::string("injected fault: ") + op + " page " +
                          std::to_string(id);
  switch (code) {
    case StatusCode::kUnavailable:
      return Status::Unavailable(msg);
    case StatusCode::kCorruption:
      return Status::Corruption(msg);
    case StatusCode::kIoError:
    default:
      return Status::IoError(msg);
  }
}

StatusOr<PageId> FaultInjectingDiskManager::Allocate() {
  return inner_->Allocate();
}

Status FaultInjectingDiskManager::Free(PageId id) {
  return inner_->Free(id);
}

std::size_t FaultInjectingDiskManager::PageCount() const {
  return inner_->PageCount();
}

std::size_t FaultInjectingDiskManager::FreeCount() const {
  return inner_->FreeCount();
}

Status FaultInjectingDiskManager::Read(PageId id, Page* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!scripted_read_faults_.empty()) {
      const StatusCode code = scripted_read_faults_.front();
      scripted_read_faults_.pop_front();
      ++fault_stats_.injected_scripted_faults;
      return MakeFault(code, "read", id);
    }
    if (armed()) {
      if (dead_pages_.count(id) > 0) {
        ++fault_stats_.injected_persistent_reads;
        return MakeFault(StatusCode::kIoError, "read (dead page)", id);
      }
      // One uniform draw per read, carved into disjoint intervals, keeps the
      // schedule a pure function of the seed and the read sequence.
      const double roll = rng_.NextDouble();
      double edge = config_.transient_read_rate;
      if (roll < edge) {
        ++fault_stats_.injected_transient_reads;
        return MakeFault(StatusCode::kUnavailable, "read", id);
      }
      edge += config_.persistent_read_rate;
      if (roll < edge) {
        dead_pages_.insert(id);
        ++fault_stats_.injected_persistent_reads;
        return MakeFault(StatusCode::kIoError, "read (dead page)", id);
      }
      edge += config_.corrupt_read_rate;
      if (roll < edge) {
        ++fault_stats_.injected_corrupt_reads;
        return MakeFault(StatusCode::kCorruption, "read", id);
      }
    }
  }
  return inner_->Read(id, out);
}

Status FaultInjectingDiskManager::Write(PageId id, const Page& page) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!scripted_write_faults_.empty()) {
      const StatusCode code = scripted_write_faults_.front();
      scripted_write_faults_.pop_front();
      ++fault_stats_.injected_scripted_faults;
      return MakeFault(code, "write", id);
    }
    if (armed() && config_.write_error_rate > 0.0 &&
        rng_.NextDouble() < config_.write_error_rate) {
      ++fault_stats_.injected_write_errors;
      return MakeFault(StatusCode::kIoError, "write", id);
    }
  }
  return inner_->Write(id, page);
}

}  // namespace msq
