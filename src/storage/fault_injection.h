// Deterministic fault-injecting DiskManager decorator.
//
// Wraps any DiskManager and, while armed, fails a seeded random subset of
// operations so the stack above can be stress-tested under storage faults:
// the acceptance bar is "identical result to the fault-free run, or a clean
// typed error — never a crash, never a wrong skyline".
//
// Two fault sources compose:
//   * Probabilistic faults from FaultInjectionConfig rates, driven by the
//     seeded Rng — reproducible schedules for the stress suite.
//   * Scripted faults queued with FailNextReads/FailNextWrites — exact
//     failure placement for unit tests (e.g. "the next eviction writeback
//     fails with kIoError").
// Scripted faults fire first; probabilistic faults apply only while armed.
//
// Fault flavours:
//   * transient read  -> kUnavailable (succeeds if retried; models a flaky
//     interconnect, exercises BufferManager's retry policy)
//   * persistent read -> the chosen page fails with kIoError forever
//     (models a dead sector)
//   * corrupt read    -> kCorruption (models a checksum mismatch as
//     FileDiskManager would report it; the payload is never delivered)
//   * write error     -> kIoError on Write (models a full or failing disk)
#ifndef MSQ_STORAGE_FAULT_INJECTION_H_
#define MSQ_STORAGE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_set>

#include "common/rng.h"
#include "common/status.h"
#include "storage/disk_manager.h"

namespace msq {

// Per-operation fault probabilities in [0, 1]. All default to zero, so a
// default-constructed config injects nothing even while armed.
struct FaultInjectionConfig {
  std::uint64_t seed = 1;
  double transient_read_rate = 0.0;
  double persistent_read_rate = 0.0;
  double corrupt_read_rate = 0.0;
  double write_error_rate = 0.0;
};

// Counters for asserting that a schedule actually exercised faults.
struct FaultInjectionStats {
  std::uint64_t injected_transient_reads = 0;
  std::uint64_t injected_persistent_reads = 0;
  std::uint64_t injected_corrupt_reads = 0;
  std::uint64_t injected_write_errors = 0;
  std::uint64_t injected_scripted_faults = 0;

  std::uint64_t total() const {
    return injected_transient_reads + injected_persistent_reads +
           injected_corrupt_reads + injected_write_errors +
           injected_scripted_faults;
  }
};

// Decorator over an unowned inner DiskManager. Allocate passes through
// untouched (allocation happens at build time, before faults are armed).
//
// Thread-safe: concurrent reads/writes from the sharded buffer pool draw
// faults under an internal mutex, so the injected-fault accounting stays
// exact under the hammer tests. The fault *schedule* is deterministic per
// seed only for a deterministic operation order — single-threaded tests
// keep exact reproducibility, concurrent tests assert on invariants.
class FaultInjectingDiskManager final : public DiskManager {
 public:
  // `inner` must outlive this decorator.
  FaultInjectingDiskManager(DiskManager* inner, FaultInjectionConfig config);

  // Probabilistic injection gate. Construction starts disarmed so the
  // structure build phase runs fault-free; tests arm after the stack is
  // built and flushed.
  void Arm() { armed_.store(true, std::memory_order_relaxed); }
  void Disarm() { armed_.store(false, std::memory_order_relaxed); }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Scripted faults: the next `count` Read/Write calls fail with `code`
  // regardless of the armed state. Queued codes fire in FIFO order.
  void FailNextReads(int count, StatusCode code);
  void FailNextWrites(int count, StatusCode code);

  // Snapshot of the injected-fault counters (by value: the live counters
  // may advance concurrently).
  FaultInjectionStats fault_stats() const;
  DiskManager* inner() { return inner_; }

  StatusOr<PageId> Allocate() override;
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;
  // Free passes through untouched, like Allocate: free-list bookkeeping is
  // metadata the fault model does not cover.
  Status Free(PageId id) override;
  std::size_t PageCount() const override;
  std::size_t FreeCount() const override;

 private:
  static Status MakeFault(StatusCode code, const char* op, PageId id);

  DiskManager* inner_;
  FaultInjectionConfig config_;
  std::atomic<bool> armed_{false};
  // Guards the rng, scripted queues, dead-page set, and stats — everything
  // that makes a fault decision. Inner I/O happens outside the lock.
  mutable std::mutex mu_;
  Rng rng_;
  std::deque<StatusCode> scripted_read_faults_;
  std::deque<StatusCode> scripted_write_faults_;
  std::unordered_set<PageId> dead_pages_;
  FaultInjectionStats fault_stats_;
};

}  // namespace msq

#endif  // MSQ_STORAGE_FAULT_INJECTION_H_
