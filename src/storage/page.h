// Fixed-size disk page, the unit of I/O accounting in all experiments.
#ifndef MSQ_STORAGE_PAGE_H_
#define MSQ_STORAGE_PAGE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/check.h"
#include "common/types.h"

namespace msq {

// The paper's experiment setup: "The disk page size is set to 4KB".
inline constexpr std::size_t kPageSize = 4096;

// Raw page payload. Structured readers/writers (PageWriter/PageReader)
// serialize typed records into it.
struct Page {
  std::array<std::byte, kPageSize> data{};
};

// Sequential typed writer into a page. Aborts on overflow — callers size
// their records to the page before writing (the pagers compute capacity
// up front).
class PageWriter {
 public:
  explicit PageWriter(Page* page) : page_(page) {}

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    MSQ_CHECK(offset_ + sizeof(T) <= kPageSize);
    std::memcpy(page_->data.data() + offset_, &value, sizeof(T));
    offset_ += sizeof(T);
  }

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return kPageSize - offset_; }

 private:
  Page* page_;
  std::size_t offset_ = 0;
};

// Sequential typed reader from a page.
class PageReader {
 public:
  explicit PageReader(const Page* page) : page_(page) {}

  template <typename T>
  T Read() {
    static_assert(std::is_trivially_copyable_v<T>);
    MSQ_CHECK(offset_ + sizeof(T) <= kPageSize);
    T value;
    std::memcpy(&value, page_->data.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  void Seek(std::size_t offset) {
    MSQ_CHECK(offset <= kPageSize);
    offset_ = offset;
  }

  std::size_t offset() const { return offset_; }

 private:
  const Page* page_;
  std::size_t offset_ = 0;
};

}  // namespace msq

#endif  // MSQ_STORAGE_PAGE_H_
