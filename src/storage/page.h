// Fixed-size disk page, the unit of I/O accounting in all experiments.
#ifndef MSQ_STORAGE_PAGE_H_
#define MSQ_STORAGE_PAGE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/check.h"
#include "common/types.h"

namespace msq {

// The paper's experiment setup: "The disk page size is set to 4KB".
inline constexpr std::size_t kPageSize = 4096;

// Raw page payload. Structured readers/writers (PageWriter/PageReader)
// serialize typed records into it.
struct Page {
  std::array<std::byte, kPageSize> data{};
};

// --- varint / zigzag primitives -----------------------------------------
//
// LEB128 unsigned varints plus zigzag mapping for signed deltas. Used by
// the CSR adjacency page format (graph_pager) where neighbor ids are
// delta-encoded: after a space-filling-curve relabel the deltas are small,
// so most neighbors cost 1-2 bytes instead of 4.

inline constexpr std::size_t kMaxVarintBytes = 10;

inline std::size_t VarintEncodedSize(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// Writes `v` at `dst` (which must have kMaxVarintBytes available) and
// returns the number of bytes written.
inline std::size_t EncodeVarint(std::uint64_t v, std::byte* dst) {
  std::size_t n = 0;
  while (v >= 0x80) {
    dst[n++] = static_cast<std::byte>((v & 0x7f) | 0x80);
    v >>= 7;
  }
  dst[n++] = static_cast<std::byte>(v);
  return n;
}

// Bounded decode: reads a varint from [*cursor, end). On success advances
// *cursor past it and returns true; returns false on truncation or a
// varint longer than kMaxVarintBytes (corrupt input, never aborts).
inline bool DecodeVarint(const std::byte** cursor, const std::byte* end,
                         std::uint64_t* value) {
  std::uint64_t result = 0;
  std::uint32_t shift = 0;
  const std::byte* p = *cursor;
  while (p < end && shift < 7 * kMaxVarintBytes) {
    const auto byte = static_cast<std::uint8_t>(*p++);
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *cursor = p;
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

inline std::uint64_t ZigZagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t ZigZagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// Sequential typed writer into a page. Aborts on overflow — callers size
// their records to the page before writing (the pagers compute capacity
// up front).
class PageWriter {
 public:
  explicit PageWriter(Page* page) : page_(page) {}

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    MSQ_CHECK(offset_ + sizeof(T) <= kPageSize);
    std::memcpy(page_->data.data() + offset_, &value, sizeof(T));
    offset_ += sizeof(T);
  }

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return kPageSize - offset_; }

 private:
  Page* page_;
  std::size_t offset_ = 0;
};

// Sequential typed reader from a page.
class PageReader {
 public:
  explicit PageReader(const Page* page) : page_(page) {}

  template <typename T>
  T Read() {
    static_assert(std::is_trivially_copyable_v<T>);
    MSQ_CHECK(offset_ + sizeof(T) <= kPageSize);
    T value;
    std::memcpy(&value, page_->data.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  void Seek(std::size_t offset) {
    MSQ_CHECK(offset <= kPageSize);
    offset_ = offset;
  }

  std::size_t offset() const { return offset_; }

 private:
  const Page* page_;
  std::size_t offset_ = 0;
};

}  // namespace msq

#endif  // MSQ_STORAGE_PAGE_H_
