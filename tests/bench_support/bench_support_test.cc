#include <cmath>

#include <gtest/gtest.h>

#include "bench_support/metrics.h"
#include "bench_support/table.h"

namespace msq {
namespace {

TEST(StatsAccumulatorTest, EmptyMeansZero) {
  StatsAccumulator acc;
  EXPECT_EQ(acc.runs(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean_candidates(), 0.0);
  EXPECT_DOUBLE_EQ(acc.mean_total_seconds(), 0.0);
}

TEST(StatsAccumulatorTest, MeansOverRuns) {
  StatsAccumulator acc;
  QueryStats a;
  a.candidate_count = 10;
  a.skyline_size = 2;
  a.network_pages = 100;
  a.index_pages = 4;
  a.settled_nodes = 1000;
  a.total_seconds = 1.0;
  a.initial_seconds = 0.25;
  QueryStats b;
  b.candidate_count = 20;
  b.skyline_size = 4;
  b.network_pages = 200;
  b.index_pages = 8;
  b.settled_nodes = 3000;
  b.total_seconds = 3.0;
  b.initial_seconds = 0.75;
  acc.Add(a);
  acc.Add(b);
  EXPECT_EQ(acc.runs(), 2u);
  EXPECT_DOUBLE_EQ(acc.mean_candidates(), 15.0);
  EXPECT_DOUBLE_EQ(acc.mean_skyline(), 3.0);
  EXPECT_DOUBLE_EQ(acc.mean_network_pages(), 150.0);
  EXPECT_DOUBLE_EQ(acc.mean_index_pages(), 6.0);
  EXPECT_DOUBLE_EQ(acc.mean_settled(), 2000.0);
  EXPECT_DOUBLE_EQ(acc.mean_total_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(acc.mean_initial_seconds(), 0.5);
}

TEST(SeriesTest, EmptySeriesIsAllZero) {
  Series s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SeriesTest, TracksMinMaxMeanStddev) {
  Series s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sum of squared deviations is 32; sample variance 32/7.
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SeriesTest, SingleValueHasZeroSpread) {
  Series s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(StatsAccumulatorTest, SeriesAccessorsExposeSpread) {
  StatsAccumulator acc;
  QueryStats a;
  a.total_seconds = 1.0;
  QueryStats b;
  b.total_seconds = 3.0;
  acc.Add(a);
  acc.Add(b);
  EXPECT_DOUBLE_EQ(acc.total_seconds().min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.total_seconds().max(), 3.0);
  EXPECT_NEAR(acc.total_seconds().stddev(), std::sqrt(2.0), 1e-12);
}

TEST(QueryStatsJsonLineTest, EmitsAllFieldsAndEscapesLabel) {
  QueryStats stats;
  stats.candidate_count = 7;
  stats.skyline_size = 3;
  stats.network_pages = 10;
  stats.network_page_accesses = 40;
  stats.index_pages = 2;
  stats.index_page_accesses = 5;
  stats.settled_nodes = 123;
  stats.total_seconds = 0.5;
  stats.initial_seconds = 0.125;
  const std::string line = QueryStatsJsonLine("fig5.\"CE\"", stats);
  EXPECT_NE(line.find("\"label\":\"fig5.\\\"CE\\\"\""), std::string::npos);
  EXPECT_NE(line.find("\"candidates\":7"), std::string::npos);
  EXPECT_NE(line.find("\"network_pages\":10"), std::string::npos);
  EXPECT_NE(line.find("\"network_page_accesses\":40"), std::string::npos);
  EXPECT_NE(line.find("\"index_page_accesses\":5"), std::string::npos);
  EXPECT_NE(line.find("\"settled_nodes\":123"), std::string::npos);
  EXPECT_NE(line.find("\"total_seconds\":0.500000"), std::string::npos);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "v"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  EXPECT_EQ(table.ToString(),
            "name    v\n"
            "a       1\n"
            "longer  22\n");
}

TEST(TablePrinterTest, HeaderOnly) {
  TablePrinter table({"x", "y"});
  EXPECT_EQ(table.ToString(), "x  y\n");
}

TEST(TablePrinterTest, RaggedRowsTolerated) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("1\n"), std::string::npos);
}

TEST(TablePrinterTest, NumericFormatters) {
  EXPECT_EQ(TablePrinter::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fixed(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Integer(41.6), "42");
  EXPECT_EQ(TablePrinter::Integer(-0.2), "0");
}

}  // namespace
}  // namespace msq
