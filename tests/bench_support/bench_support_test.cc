#include <gtest/gtest.h>

#include "bench_support/metrics.h"
#include "bench_support/table.h"

namespace msq {
namespace {

TEST(StatsAccumulatorTest, EmptyMeansZero) {
  StatsAccumulator acc;
  EXPECT_EQ(acc.runs(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean_candidates(), 0.0);
  EXPECT_DOUBLE_EQ(acc.mean_total_seconds(), 0.0);
}

TEST(StatsAccumulatorTest, MeansOverRuns) {
  StatsAccumulator acc;
  QueryStats a;
  a.candidate_count = 10;
  a.skyline_size = 2;
  a.network_pages = 100;
  a.index_pages = 4;
  a.settled_nodes = 1000;
  a.total_seconds = 1.0;
  a.initial_seconds = 0.25;
  QueryStats b;
  b.candidate_count = 20;
  b.skyline_size = 4;
  b.network_pages = 200;
  b.index_pages = 8;
  b.settled_nodes = 3000;
  b.total_seconds = 3.0;
  b.initial_seconds = 0.75;
  acc.Add(a);
  acc.Add(b);
  EXPECT_EQ(acc.runs(), 2u);
  EXPECT_DOUBLE_EQ(acc.mean_candidates(), 15.0);
  EXPECT_DOUBLE_EQ(acc.mean_skyline(), 3.0);
  EXPECT_DOUBLE_EQ(acc.mean_network_pages(), 150.0);
  EXPECT_DOUBLE_EQ(acc.mean_index_pages(), 6.0);
  EXPECT_DOUBLE_EQ(acc.mean_settled(), 2000.0);
  EXPECT_DOUBLE_EQ(acc.mean_total_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(acc.mean_initial_seconds(), 0.5);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "v"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  EXPECT_EQ(table.ToString(),
            "name    v\n"
            "a       1\n"
            "longer  22\n");
}

TEST(TablePrinterTest, HeaderOnly) {
  TablePrinter table({"x", "y"});
  EXPECT_EQ(table.ToString(), "x  y\n");
}

TEST(TablePrinterTest, RaggedRowsTolerated) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("1\n"), std::string::npos);
}

TEST(TablePrinterTest, NumericFormatters) {
  EXPECT_EQ(TablePrinter::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fixed(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Integer(41.6), "42");
  EXPECT_EQ(TablePrinter::Integer(-0.2), "0");
}

}  // namespace
}  // namespace msq
