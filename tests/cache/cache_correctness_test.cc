// Cross-query cache end-to-end guarantees: warm results are byte-identical
// to cold ones for every cached algorithm, under eviction pressure, across
// algorithm mixes, and after invalidation; cache hits reduce page accesses;
// QueryLimits truncation semantics hold on warm queries; and the cache
// counters reconcile exactly across QueryStats, profiles, and instance
// stats.
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cache/query_cache.h"
#include "core/skyline_query.h"
#include "gen/workloads.h"
#include "obs/trace.h"
#include "testing_support.h"

namespace msq {
namespace {

constexpr Algorithm kCachedAlgorithms[] = {Algorithm::kCe, Algorithm::kEdc,
                                           Algorithm::kLbc};

std::unique_ptr<Workload> CacheWorkload(std::uint64_t seed = 5) {
  return testing::MakeRandomWorkload(220, 300, 1.0, seed);
}

// Full byte-identity: same objects in the same order with bitwise-equal
// distance vectors.
void ExpectSameSkyline(const SkylineResult& got, const SkylineResult& want,
                       const char* label) {
  ASSERT_TRUE(got.status.ok()) << label;
  ASSERT_TRUE(want.status.ok()) << label;
  ASSERT_EQ(got.skyline.size(), want.skyline.size()) << label;
  for (std::size_t i = 0; i < got.skyline.size(); ++i) {
    EXPECT_EQ(got.skyline[i].object, want.skyline[i].object)
        << label << " entry " << i;
    EXPECT_EQ(got.skyline[i].vector, want.skyline[i].vector)
        << label << " entry " << i;
  }
}

std::uint64_t CacheHits(const QueryStats& stats) {
  return stats.cache_wavefront_hits + stats.cache_memo_hits;
}

std::uint64_t CacheMisses(const QueryStats& stats) {
  return stats.cache_wavefront_misses + stats.cache_memo_misses;
}

TEST(CacheCorrectnessTest, WarmRunsAreByteIdenticalAndCheaper) {
  for (const Algorithm algorithm : kCachedAlgorithms) {
    SCOPED_TRACE(AlgorithmName(algorithm));
    auto workload = CacheWorkload();
    const SkylineQuerySpec spec = workload->SampleQuery(3, 77);
    const SkylineResult baseline =
        RunSkylineQuery(algorithm, workload->dataset(), spec);
    ASSERT_TRUE(baseline.status.ok());
    ASSERT_FALSE(baseline.skyline.empty());
    EXPECT_EQ(CacheHits(baseline.stats) + CacheMisses(baseline.stats), 0u);

    QueryCache cache;
    Dataset dataset = workload->dataset();
    dataset.cache = &cache;
    const SkylineResult cold = RunSkylineQuery(algorithm, dataset, spec);
    const SkylineResult warm = RunSkylineQuery(algorithm, dataset, spec);

    // Attaching an empty cache must not perturb the computation, and the
    // warm rerun must reproduce it bit for bit.
    ExpectSameSkyline(cold, baseline, "cold");
    ExpectSameSkyline(warm, baseline, "warm");

    EXPECT_GT(CacheMisses(cold.stats), 0u);
    EXPECT_GT(CacheHits(warm.stats), 0u);
    // The reuse is real: the warm run touches the network pages less.
    EXPECT_LT(warm.stats.network_page_accesses,
              cold.stats.network_page_accesses);
  }
}

TEST(CacheCorrectnessTest, MixedAlgorithmFlowStaysByteIdentical) {
  auto workload = CacheWorkload();
  const SkylineQuerySpec spec = workload->SampleQuery(3, 83);

  std::vector<SkylineResult> baselines;
  for (const Algorithm algorithm : kCachedAlgorithms) {
    baselines.push_back(
        RunSkylineQuery(algorithm, workload->dataset(), spec));
    ASSERT_TRUE(baselines.back().status.ok());
  }

  // One cache shared across algorithms, two rounds: CE's harvested
  // distances flow into EDC/LBC and vice versa without changing a byte.
  QueryCache cache;
  Dataset dataset = workload->dataset();
  dataset.cache = &cache;
  std::uint64_t second_round_hits = 0;
  for (int round = 0; round < 2; ++round) {
    for (std::size_t a = 0; a < std::size(kCachedAlgorithms); ++a) {
      SCOPED_TRACE(AlgorithmName(kCachedAlgorithms[a]));
      const SkylineResult result =
          RunSkylineQuery(kCachedAlgorithms[a], dataset, spec);
      ExpectSameSkyline(result, baselines[a],
                        round == 0 ? "first round" : "second round");
      if (round == 1) second_round_hits += CacheHits(result.stats);
    }
  }
  EXPECT_GT(second_round_hits, 0u);
}

TEST(CacheCorrectnessTest, EvictionPressureNeverChangesResults) {
  auto workload = CacheWorkload();
  const SkylineQuerySpec spec = workload->SampleQuery(3, 91);
  const SkylineResult baseline_ce =
      RunSkylineQuery(Algorithm::kCe, workload->dataset(), spec);
  const SkylineResult baseline_edc =
      RunSkylineQuery(Algorithm::kEdc, workload->dataset(), spec);

  // A budget so tight the memo tier constantly evicts and wavefront
  // snapshots are rejected outright.
  QueryCacheConfig config;
  config.max_bytes = 4096;
  config.shard_count = 1;
  QueryCache cache(config);
  Dataset dataset = workload->dataset();
  dataset.cache = &cache;

  for (int round = 0; round < 2; ++round) {
    ExpectSameSkyline(RunSkylineQuery(Algorithm::kCe, dataset, spec),
                      baseline_ce, "ce under eviction");
    ExpectSameSkyline(RunSkylineQuery(Algorithm::kEdc, dataset, spec),
                      baseline_edc, "edc under eviction");
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.bytes(), config.max_bytes);
}

TEST(CacheCorrectnessTest, InvalidateIsolatesDatasetSwap) {
  auto workload_a = CacheWorkload(5);
  const SkylineQuerySpec spec_a = workload_a->SampleQuery(3, 77);

  QueryCache cache;
  {
    Dataset dataset_a = workload_a->dataset();
    dataset_a.cache = &cache;
    ASSERT_TRUE(
        RunSkylineQuery(Algorithm::kCe, dataset_a, spec_a).status.ok());
  }
  ASSERT_GT(cache.bytes(), 0u);

  // Reload: a different network/object set behind the same cache instance.
  cache.Invalidate();
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.epoch(), 1u);

  auto workload_b = testing::MakeRandomWorkload(180, 260, 1.0, 9);
  const SkylineQuerySpec spec_b = workload_b->SampleQuery(3, 55);
  const SkylineResult baseline_b =
      RunSkylineQuery(Algorithm::kCe, workload_b->dataset(), spec_b);
  Dataset dataset_b = workload_b->dataset();
  dataset_b.cache = &cache;
  ExpectSameSkyline(RunSkylineQuery(Algorithm::kCe, dataset_b, spec_b),
                    baseline_b, "after invalidate");
}

TEST(CacheCorrectnessTest, FullyCachedQueryIsNotTruncated) {
  auto workload = CacheWorkload();
  const SkylineQuerySpec spec = workload->SampleQuery(3, 99);
  const SkylineResult unlimited =
      RunSkylineQuery(Algorithm::kCe, workload->dataset(), spec);
  ASSERT_TRUE(unlimited.status.ok());

  SkylineQuerySpec limited = spec;
  limited.limits.max_page_accesses = 64;
  // The budget genuinely bites a cold run of this query...
  const SkylineResult cold_limited =
      RunSkylineQuery(Algorithm::kCe, workload->dataset(), limited);
  ASSERT_TRUE(cold_limited.truncated);
  EXPECT_EQ(cold_limited.truncation_reason, StatusCode::kResourceExhausted);

  // ...but once the wavefronts are cached, the same query re-emits from
  // the snapshots without page traffic: it must complete, un-truncated and
  // byte-identical, rather than report a phantom truncation.
  QueryCache cache;
  Dataset dataset = workload->dataset();
  dataset.cache = &cache;
  ASSERT_TRUE(RunSkylineQuery(Algorithm::kCe, dataset, spec).status.ok());
  const SkylineResult warm_limited =
      RunSkylineQuery(Algorithm::kCe, dataset, limited);
  EXPECT_FALSE(warm_limited.truncated);
  EXPECT_EQ(warm_limited.truncation_reason, StatusCode::kOk);
  ExpectSameSkyline(warm_limited, unlimited, "warm limited");
}

TEST(CacheCorrectnessTest, TruncatedResumesYieldTrueSkylinePrefixes) {
  auto workload = CacheWorkload();
  const SkylineQuerySpec spec = workload->SampleQuery(3, 99);
  const SkylineResult unlimited =
      RunSkylineQuery(Algorithm::kCe, workload->dataset(), spec);
  ASSERT_TRUE(unlimited.status.ok());

  SkylineQuerySpec limited = spec;
  limited.limits.max_page_accesses = 200;

  // Run the budgeted query repeatedly against one cache. Each run resumes
  // the stored wavefronts, pays its page budget on fresh expansion, and
  // checkpoints further progress — so the sequence must terminate with a
  // complete run. Every truncated prefix along the way may only contain
  // confirmed true skyline points, bitwise equal to the unlimited run's.
  QueryCache cache;
  Dataset dataset = workload->dataset();
  dataset.cache = &cache;
  bool completed = false;
  bool saw_truncation = false;
  for (int round = 0; round < 200 && !completed; ++round) {
    const SkylineResult result =
        RunSkylineQuery(Algorithm::kCe, dataset, limited);
    ASSERT_TRUE(result.status.ok()) << "round " << round;
    for (const SkylineEntry& entry : result.skyline) {
      bool found = false;
      for (const SkylineEntry& truth : unlimited.skyline) {
        if (truth.object == entry.object) {
          EXPECT_EQ(entry.vector, truth.vector) << "round " << round;
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "round " << round << " reported non-skyline "
                         << entry.object;
    }
    if (result.truncated) {
      EXPECT_EQ(result.truncation_reason, StatusCode::kResourceExhausted);
      saw_truncation = true;
    } else {
      ExpectSameSkyline(result, unlimited, "final resumed run");
      completed = true;
    }
  }
  EXPECT_TRUE(saw_truncation);  // the budget was small enough to matter
  EXPECT_TRUE(completed);       // and resumption made monotone progress
}

TEST(CacheCorrectnessTest, CacheCountersReconcileExactly) {
  auto workload = CacheWorkload();
  SkylineQuerySpec spec = workload->SampleQuery(3, 77);
  QueryCache cache;
  Dataset dataset = workload->dataset();
  dataset.cache = &cache;

  ASSERT_TRUE(RunSkylineQuery(Algorithm::kCe, dataset, spec).status.ok());

  // Single-threaded: the instance-stats delta across one query must equal
  // that query's QueryStats fields, which must equal the profile totals.
  const QueryCache::Stats before = cache.stats();
  obs::TraceSession trace;
  spec.trace = &trace;
  const SkylineResult warm = RunSkylineQuery(Algorithm::kCe, dataset, spec);
  ASSERT_TRUE(warm.status.ok());
  const QueryCache::Stats after = cache.stats();

  EXPECT_GT(warm.stats.cache_wavefront_hits, 0u);
  EXPECT_EQ(after.wavefront_hits - before.wavefront_hits,
            warm.stats.cache_wavefront_hits);
  EXPECT_EQ(after.wavefront_misses - before.wavefront_misses,
            warm.stats.cache_wavefront_misses);
  EXPECT_EQ(after.memo_hits - before.memo_hits, warm.stats.cache_memo_hits);
  EXPECT_EQ(after.memo_misses - before.memo_misses,
            warm.stats.cache_memo_misses);

  ASSERT_TRUE(warm.profile.has_value());
  const obs::SpanCounters totals = warm.profile->TotalCounters();
  EXPECT_EQ(totals.cache_wavefront_hits, warm.stats.cache_wavefront_hits);
  EXPECT_EQ(totals.cache_wavefront_misses,
            warm.stats.cache_wavefront_misses);
  EXPECT_EQ(totals.cache_memo_hits, warm.stats.cache_memo_hits);
  EXPECT_EQ(totals.cache_memo_misses, warm.stats.cache_memo_misses);
}

}  // namespace
}  // namespace msq
