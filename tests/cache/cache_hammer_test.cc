// Cache under concurrency: eight workers sharing one QueryCache must
// produce byte-identical results to sequential cacheless runs, the
// instance-level cache stats must conserve exactly against the per-query
// QueryStats sums, and Invalidate racing live queries must stay safe.
// Runs under TSan in CI (tools/check.sh matches "Cache").
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cache/query_cache.h"
#include "core/skyline_query.h"
#include "exec/query_executor.h"
#include "gen/workloads.h"
#include "testing_support.h"

namespace msq {
namespace {

constexpr Algorithm kAlgorithms[] = {Algorithm::kCe, Algorithm::kEdc,
                                     Algorithm::kLbc};

std::unique_ptr<Workload> SharedWorkload() {
  WorkloadConfig config;
  config.network = NetworkGenConfig{220, 290, 5, 0.0};
  config.object_density = 1.0;
  config.object_seed = 11;
  // Pools small enough that concurrent queries evict each other's pages.
  config.graph_buffer_frames = 32;
  config.index_buffer_frames = 32;
  return std::make_unique<Workload>(config);
}

std::vector<QueryRequest> MixedRequests(const Workload& workload,
                                        std::size_t queries) {
  std::vector<QueryRequest> requests;
  for (std::size_t q = 0; q < queries; ++q) {
    const SkylineQuerySpec spec = workload.SampleQuery(3, 40 + q);
    for (const Algorithm algorithm : kAlgorithms) {
      QueryRequest request;
      request.algorithm = algorithm;
      request.spec = spec;
      requests.push_back(request);
    }
  }
  return requests;
}

TEST(CacheHammerTest, WarmConcurrentBatchesStayByteIdentical) {
  auto workload = SharedWorkload();
  const std::vector<QueryRequest> requests = MixedRequests(*workload, 4);

  std::vector<SkylineResult> expected;
  for (const QueryRequest& request : requests) {
    expected.push_back(
        RunSkylineQuery(request.algorithm, workload->dataset(), request.spec));
    ASSERT_TRUE(expected.back().status.ok());
  }

  QueryExecutor executor(workload->dataset(), /*workers=*/8,
                         QueryCacheConfig{});
  ASSERT_NE(executor.cache(), nullptr);

  std::uint64_t wavefront_hits = 0, wavefront_misses = 0;
  std::uint64_t memo_hits = 0, memo_misses = 0;
  // Three rounds of the same batch: round one populates concurrently
  // (queries sharing sources race to store), later rounds reuse. Whatever
  // the interleaving — partial snapshots, racing stores, evict-while-read —
  // every result must equal the sequential cacheless run bit for bit.
  for (int round = 0; round < 3; ++round) {
    const std::vector<SkylineResult> results = executor.RunBatch(requests);
    ASSERT_EQ(results.size(), expected.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const SkylineResult& got = results[i];
      const SkylineResult& want = expected[i];
      ASSERT_TRUE(got.status.ok()) << "round " << round << " request " << i;
      EXPECT_FALSE(got.truncated);
      ASSERT_EQ(got.skyline.size(), want.skyline.size())
          << "round " << round << " request " << i;
      for (std::size_t j = 0; j < got.skyline.size(); ++j) {
        EXPECT_EQ(got.skyline[j].object, want.skyline[j].object)
            << "round " << round << " request " << i;
        EXPECT_EQ(got.skyline[j].vector, want.skyline[j].vector)
            << "round " << round << " request " << i;
      }
      wavefront_hits += got.stats.cache_wavefront_hits;
      wavefront_misses += got.stats.cache_wavefront_misses;
      memo_hits += got.stats.cache_memo_hits;
      memo_misses += got.stats.cache_memo_misses;
    }
  }

  // Conservation: every cache consultation happens inside exactly one
  // query on exactly one worker thread, so the per-query counters must sum
  // to the instance totals — no lost or double-counted consultations under
  // contention.
  const QueryCache::Stats stats = executor.cache()->stats();
  EXPECT_EQ(stats.wavefront_hits, wavefront_hits);
  EXPECT_EQ(stats.wavefront_misses, wavefront_misses);
  EXPECT_EQ(stats.memo_hits, memo_hits);
  EXPECT_EQ(stats.memo_misses, memo_misses);
  // The warm rounds actually reused: plenty of hits across the run.
  EXPECT_GT(stats.wavefront_hits + stats.memo_hits, 0u);
}

TEST(CacheHammerTest, InvalidateRacingQueriesKeepsResultsExact) {
  auto workload = SharedWorkload();
  const std::vector<QueryRequest> requests = MixedRequests(*workload, 3);

  std::vector<SkylineResult> expected;
  for (const QueryRequest& request : requests) {
    expected.push_back(
        RunSkylineQuery(request.algorithm, workload->dataset(), request.spec));
    ASSERT_TRUE(expected.back().status.ok());
  }

  QueryExecutor executor(workload->dataset(), /*workers=*/8,
                         QueryCacheConfig{});
  // Same dataset throughout, so Invalidate only discards reusable state —
  // queries holding snapshot pointers must keep them alive and correct.
  std::vector<std::future<SkylineResult>> futures;
  for (int round = 0; round < 3; ++round) {
    for (const QueryRequest& request : requests) {
      futures.push_back(executor.Submit(request));
    }
    executor.cache()->Invalidate();
  }

  ASSERT_EQ(futures.size(), 3 * expected.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const SkylineResult got = futures[i].get();
    const SkylineResult& want = expected[i % expected.size()];
    ASSERT_TRUE(got.status.ok()) << "request " << i;
    ASSERT_EQ(got.skyline.size(), want.skyline.size()) << "request " << i;
    for (std::size_t j = 0; j < got.skyline.size(); ++j) {
      EXPECT_EQ(got.skyline[j].object, want.skyline[j].object);
      EXPECT_EQ(got.skyline[j].vector, want.skyline[j].vector);
    }
  }
  EXPECT_GE(executor.cache()->epoch(), 3u);
}

}  // namespace
}  // namespace msq
